"""Gradient-checked tests for every layer in the nn substrate."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    MultiHeadSelfAttention,
    ReLU,
    Residual,
    Sequential,
    TransformerEncoderLayer,
)

RNG = np.random.default_rng(0)


def numeric_grad_input(layer, x, eps=1e-5):
    """Central-difference gradient of sum(layer(x)) w.r.t. x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        up = layer.forward(x).sum()
        x[idx] = orig - eps
        down = layer.forward(x).sum()
        x[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


def check_input_grad(layer, x, tol=1e-5):
    layer.train()
    out = layer.forward(x.copy())
    analytic = layer.backward(np.ones_like(out))
    numeric = numeric_grad_input(layer, x.copy())
    np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=tol)


def numeric_grad_param(layer, x, name, eps=1e-5):
    param = layer.params[name]
    grad = np.zeros_like(param)
    it = np.nditer(param, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = param[idx]
        param[idx] = orig + eps
        up = layer.forward(x).sum()
        param[idx] = orig - eps
        down = layer.forward(x).sum()
        param[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


def check_param_grads(module, x, owner=None, tol=1e-4):
    """Check every parameter gradient of ``module`` numerically."""
    module.train()
    module.zero_grad()
    out = module.forward(x)
    module.backward(np.ones_like(out))
    for mod in module.modules():
        for name in mod.params:
            numeric = numeric_grad_param_of(module, mod, name, x)
            np.testing.assert_allclose(
                mod.grads[name], numeric, rtol=2e-3, atol=tol,
                err_msg=f"param {type(mod).__name__}.{name}",
            )


def numeric_grad_param_of(root, mod, name, x, eps=1e-5):
    param = mod.params[name]
    grad = np.zeros_like(param)
    it = np.nditer(param, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = param[idx]
        param[idx] = orig + eps
        up = root.forward(x).sum()
        param[idx] = orig - eps
        down = root.forward(x).sum()
        param[idx] = orig
        grad[idx] = (up - down) / (2 * eps)
        it.iternext()
    return grad


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(6, 4, seed=1)
        assert layer(RNG.normal(size=(3, 6))).shape == (3, 4)

    def test_input_grad(self):
        check_input_grad(Linear(5, 3, seed=2), RNG.normal(size=(4, 5)))

    def test_param_grads(self):
        layer = Linear(4, 3, seed=3)
        check_param_grads(layer, RNG.normal(size=(5, 4)))

    def test_mask_zeroes_outputs(self):
        layer = Linear(4, 2, bias=False, seed=4)
        layer.set_mask(np.zeros((2, 4), dtype=bool))
        assert np.allclose(layer(RNG.normal(size=(3, 4))), 0.0)

    def test_mask_straight_through_gradient(self):
        """Pruned weights still receive gradient (Sec. III-B revival)."""
        layer = Linear(4, 2, bias=False, seed=5)
        mask = np.ones((2, 4), dtype=bool)
        mask[0, 0] = False
        layer.set_mask(mask)
        x = RNG.normal(size=(3, 4))
        out = layer(x)
        layer.backward(np.ones_like(out))
        assert layer.grads["weight"][0, 0] != 0.0

    def test_mask_shape_check(self):
        with pytest.raises(ValueError):
            Linear(4, 2).set_mask(np.ones((3, 3), dtype=bool))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_3d_input(self):
        layer = Linear(6, 4, seed=6)
        assert layer(RNG.normal(size=(2, 5, 6))).shape == (2, 5, 4)


class TestConv2d:
    def test_forward_shape(self):
        conv = Conv2d(3, 8, 3, padding=1, seed=1)
        assert conv(RNG.normal(size=(2, 3, 8, 8))).shape == (2, 8, 8, 8)

    def test_stride(self):
        conv = Conv2d(3, 4, 3, stride=2, padding=1, seed=2)
        assert conv(RNG.normal(size=(1, 3, 8, 8))).shape == (1, 4, 4, 4)

    def test_matches_direct_convolution(self):
        conv = Conv2d(1, 1, 3, padding=0, bias=False, seed=3)
        x = RNG.normal(size=(1, 1, 5, 5))
        out = conv(x)
        w = conv.params["weight"][0, 0]
        expected = sum(
            w[i, j] * x[0, 0, i : i + 3, j : j + 3] for i in range(3) for j in range(3)
        )
        np.testing.assert_allclose(out[0, 0], expected, rtol=1e-10)

    def test_input_grad(self):
        check_input_grad(Conv2d(2, 3, 3, padding=1, seed=4), RNG.normal(size=(2, 2, 4, 4)))

    def test_param_grads(self):
        conv = Conv2d(2, 2, 3, padding=1, seed=5)
        check_param_grads(conv, RNG.normal(size=(2, 2, 4, 4)))

    def test_weight_matrix_shape(self):
        conv = Conv2d(3, 8, 3, seed=6)
        assert conv.weight_matrix().shape == (8, 27)

    def test_mask_applies(self):
        conv = Conv2d(2, 2, 3, padding=1, bias=False, seed=7)
        conv.set_mask(np.zeros((2, 18), dtype=bool))
        assert np.allclose(conv(RNG.normal(size=(1, 2, 4, 4))), 0.0)


class TestActivations:
    def test_relu_grad(self):
        check_input_grad(ReLU(), RNG.normal(size=(4, 5)) + 0.1)

    def test_gelu_grad(self):
        check_input_grad(GELU(), RNG.normal(size=(4, 5)))

    def test_gelu_values(self):
        g = GELU()
        assert g.forward(np.array([[0.0]]))[0, 0] == pytest.approx(0.0)
        assert g.forward(np.array([[10.0]]))[0, 0] == pytest.approx(10.0, rel=1e-3)


class TestNorms:
    def test_batchnorm_normalizes(self):
        bn = BatchNorm2d(3)
        x = RNG.normal(2.0, 3.0, size=(8, 3, 4, 4))
        out = bn(x)
        assert abs(out.mean()) < 1e-7
        assert out.std() == pytest.approx(1.0, abs=0.01)

    def test_batchnorm_input_grad(self):
        check_input_grad(BatchNorm2d(2), RNG.normal(size=(3, 2, 3, 3)), tol=1e-4)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        for _ in range(50):
            bn(RNG.normal(1.0, 2.0, size=(16, 2, 4, 4)))
        bn.eval()
        out = bn(RNG.normal(1.0, 2.0, size=(16, 2, 4, 4)))
        assert abs(out.mean()) < 0.2

    def test_layernorm_grad(self):
        check_input_grad(LayerNorm(6), RNG.normal(size=(4, 6)), tol=1e-4)

    def test_layernorm_param_grads(self):
        check_param_grads(LayerNorm(4), RNG.normal(size=(3, 4)))


class TestPoolingAndShape:
    def test_maxpool_forward(self):
        pool = MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        np.testing.assert_array_equal(pool(x)[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_grad_routes_to_max(self):
        pool = MaxPool2d(2)
        x = RNG.normal(size=(1, 1, 4, 4))
        out = pool(x)
        gx = pool.backward(np.ones_like(out))
        assert gx.sum() == pytest.approx(out.size)
        assert (gx != 0).sum() == out.size

    def test_maxpool_rejects_unaligned(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).forward(np.zeros((1, 1, 5, 5)))

    def test_global_avgpool_grad(self):
        check_input_grad(GlobalAvgPool2d(), RNG.normal(size=(2, 3, 4, 4)))

    def test_flatten_roundtrip(self):
        f = Flatten()
        x = RNG.normal(size=(2, 3, 4))
        out = f(x)
        assert out.shape == (2, 12)
        assert f.backward(out).shape == x.shape


class TestDropout:
    def test_eval_is_identity(self):
        d = Dropout(0.5)
        d.eval()
        x = RNG.normal(size=(4, 4))
        np.testing.assert_array_equal(d(x), x)

    def test_train_scales(self):
        d = Dropout(0.5, seed=1)
        x = np.ones((1000, 10))
        out = d(x)
        assert out.mean() == pytest.approx(1.0, abs=0.1)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestComposite:
    def test_sequential_grad(self):
        model = Sequential(Linear(5, 6, seed=1), ReLU(), Linear(6, 3, seed=2))
        check_param_grads(model, RNG.normal(size=(3, 5)))

    def test_residual_grad(self):
        model = Residual(Sequential(Linear(4, 4, seed=3), ReLU()))
        check_input_grad(model, RNG.normal(size=(3, 4)))

    def test_attention_shapes(self):
        attn = MultiHeadSelfAttention(8, heads=2, seed=1)
        assert attn(RNG.normal(size=(2, 5, 8))).shape == (2, 5, 8)

    def test_attention_input_grad(self):
        attn = MultiHeadSelfAttention(4, heads=2, seed=2)
        check_input_grad(attn, RNG.normal(size=(1, 3, 4)) * 0.5, tol=1e-4)

    def test_attention_rejects_bad_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(6, heads=4)

    def test_encoder_layer_grad(self):
        block = TransformerEncoderLayer(4, heads=2, seed=3)
        check_input_grad(block, RNG.normal(size=(1, 3, 4)) * 0.5, tol=1e-3)

    def test_parameter_counting(self):
        model = Sequential(Linear(4, 8, seed=1), ReLU(), Linear(8, 2, seed=2))
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_zero_grad(self):
        model = Sequential(Linear(3, 3, seed=1))
        x = RNG.normal(size=(2, 3))
        model.backward_input = model(x)
        model.backward(np.ones((2, 3)))
        model.zero_grad()
        assert np.all(model.layers[0].grads["weight"] == 0)
