"""Tests for losses, optimizers, datasets, models and training loops."""

import numpy as np
import pytest

from repro.core.patterns import PatternFamily
from repro.nn import (
    SGD,
    Adam,
    TransformerClassifier,
    accuracy,
    apply_masks,
    cluster_dataset,
    evaluate,
    image_dataset,
    make_cnn,
    make_mlp,
    mse_loss,
    one_shot_prune,
    prunable_layers,
    quantization_error,
    quantize_model,
    quantize_weights,
    sequence_dataset,
    softmax_cross_entropy,
    train,
)

RNG = np.random.default_rng(0)


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = np.zeros((4, 8))
        loss, grad = softmax_cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss == pytest.approx(np.log(8))
        assert grad.shape == (4, 8)

    def test_cross_entropy_grad_numeric(self):
        logits = RNG.normal(size=(3, 5))
        labels = np.array([0, 2, 4])
        _, grad = softmax_cross_entropy(logits.copy(), labels)
        eps = 1e-6
        for i in range(3):
            for j in range(5):
                up = logits.copy()
                up[i, j] += eps
                down = logits.copy()
                down[i, j] -= eps
                num = (
                    softmax_cross_entropy(up, labels)[0] - softmax_cross_entropy(down, labels)[0]
                ) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-5)

    def test_cross_entropy_shape_checks(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_mse(self):
        loss, grad = mse_loss(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert loss == pytest.approx(2.5)
        np.testing.assert_allclose(grad, [1.0, 2.0])

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0


class TestOptimizers:
    def _quadratic_step(self, opt_cls, **kw):
        model = make_mlp(4, 8, 2, depth=1, seed=0)
        data = cluster_dataset(n_samples=128, n_features=4, n_classes=2, seed=0)
        opt = opt_cls(model, **kw)
        x, y = data[0][:32], data[1][:32]
        losses = []
        for _ in range(30):
            opt.zero_grad()
            logits = model(x)
            loss, grad = softmax_cross_entropy(logits, y)
            model.backward(grad)
            opt.step()
            losses.append(loss)
        return losses

    def test_sgd_decreases_loss(self):
        losses = self._quadratic_step(SGD, lr=0.05)
        assert losses[-1] < losses[0] * 0.5

    def test_adam_decreases_loss(self):
        losses = self._quadratic_step(Adam, lr=0.01)
        assert losses[-1] < losses[0] * 0.5

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(make_mlp(2, 2, 2, depth=1), lr=0.0)

    def test_weight_decay_shrinks_weights(self):
        model = make_mlp(4, 8, 2, depth=1, seed=1)
        w0 = np.abs(model.layers[0].params["weight"]).mean()
        opt = SGD(model, lr=0.1, momentum=0.0, weight_decay=0.5)
        for _ in range(10):
            model.zero_grad()
            # zero task gradient: only decay acts
            for mod, name in opt.handles:
                mod.grads[name] = np.zeros_like(mod.params[name])
            opt.step()
        assert np.abs(model.layers[0].params["weight"]).mean() < w0


class TestDatasets:
    def test_cluster_shapes_and_split(self):
        tr_x, tr_y, te_x, te_y = cluster_dataset(n_samples=100, n_features=8, seed=0)
        assert tr_x.shape[1] == 8
        assert len(tr_x) + len(te_x) == 100
        assert len(te_x) == 25

    def test_cluster_deterministic(self):
        a = cluster_dataset(seed=3)
        b = cluster_dataset(seed=3)
        np.testing.assert_array_equal(a[0], b[0])

    def test_image_shapes(self):
        tr_x, tr_y, te_x, te_y = image_dataset(n_samples=40, channels=3, size=8, seed=0)
        assert tr_x.shape[1:] == (3, 8, 8)

    def test_sequence_tokens_in_vocab(self):
        tr_x, tr_y, te_x, te_y = sequence_dataset(n_samples=40, vocab=16, seed=0)
        assert tr_x.max() < 16 and tr_x.min() >= 0

    def test_cluster_learnable(self):
        data = cluster_dataset(n_samples=256, n_features=16, n_classes=4, seed=1, noise=0.4)
        model = make_mlp(16, 32, 4, depth=2, seed=1)
        res = train(model, data, epochs=10, seed=1)
        assert res.test_accuracy > 0.8

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            cluster_dataset(n_samples=2, n_classes=4)


class TestModels:
    def test_mlp_depth(self):
        model = make_mlp(8, 16, 4, depth=3)
        linears = [m for m in model.modules() if type(m).__name__ == "Linear"]
        assert len(linears) == 4

    def test_cnn_forward(self):
        model = make_cnn(channels=3, width=8, n_classes=4)
        assert model(RNG.normal(size=(2, 3, 16, 16))).shape == (2, 4)

    def test_transformer_forward(self):
        model = TransformerClassifier(vocab=16, dim=16, heads=2, depth=1, n_classes=3)
        tokens = RNG.integers(0, 16, size=(2, 8))
        assert model(tokens).shape == (2, 3)

    def test_transformer_trains(self):
        data = sequence_dataset(n_samples=256, seq_len=12, vocab=16, n_classes=4, seed=2)
        model = TransformerClassifier(vocab=16, dim=24, heads=2, depth=1, n_classes=4, seed=2)
        from repro.nn.optim import Adam

        res = train(model, data, epochs=14, seed=2, optimizer=Adam(model, lr=3e-3))
        assert res.test_accuracy > 0.5

    def test_prunable_excludes_stem_and_head(self):
        model = make_mlp(8, 16, 4, depth=3)
        layers = prunable_layers(model)
        all_linear = [m for m in model.modules() if type(m).__name__ == "Linear"]
        assert layers == all_linear[1:-1]

    def test_prunable_empty_for_tiny_model(self):
        assert prunable_layers(make_mlp(4, 4, 2, depth=1)) == []


class TestSparseTraining:
    def test_apply_masks_hits_target(self):
        model = make_mlp(32, 64, 4, depth=3, seed=0)
        achieved = apply_masks(model, PatternFamily.TBS, 0.75)
        assert abs(achieved - 0.75) < 0.08

    def test_apply_masks_none_removes(self):
        model = make_mlp(32, 64, 4, depth=3, seed=0)
        apply_masks(model, PatternFamily.US, 0.5)
        assert apply_masks(model, None, 0.0) == 0.0
        assert all(layer.mask is None for layer in prunable_layers(model))

    def test_sparse_training_reaches_sparsity(self):
        data = cluster_dataset(n_samples=256, n_features=32, seed=4)
        model = make_mlp(32, 48, 4, depth=3, seed=4)
        res = train(model, data, family=PatternFamily.TBS, sparsity=0.75, epochs=5, seed=4)
        assert res.sparsity_history[-1] == pytest.approx(0.75, abs=0.08)
        assert len(res.loss_history) == 5

    def test_sparse_training_converges(self):
        data = cluster_dataset(n_samples=256, n_features=32, n_classes=4, seed=5, noise=0.5)
        model = make_mlp(32, 48, 4, depth=3, seed=5)
        res = train(model, data, family=PatternFamily.TBS, sparsity=0.5, epochs=10, seed=5)
        assert res.test_accuracy > 0.8
        assert res.loss_history[-1] < res.loss_history[0]

    def test_ts_cap_pins_ts_sparsity(self):
        model = make_mlp(32, 64, 4, depth=3, seed=6)
        capped = apply_masks(model, PatternFamily.TS, 0.75, ts_cap=0.5)
        assert capped == pytest.approx(0.5, abs=0.05)
        matched = apply_masks(model, PatternFamily.TS, 0.75, ts_cap=None)
        assert matched == pytest.approx(0.75, abs=0.05)

    def test_one_shot_prune(self):
        model = make_mlp(32, 48, 4, depth=3, seed=7)
        achieved = one_shot_prune(model, PatternFamily.US, 0.5)
        assert achieved == pytest.approx(0.5, abs=0.02)

    def test_one_shot_with_score_fn(self):
        model = make_mlp(32, 48, 4, depth=3, seed=8)
        calls = []

        def score_fn(layer):
            calls.append(layer)
            return np.abs(layer.weight_matrix())

        one_shot_prune(model, PatternFamily.TBS, 0.5, score_fn=score_fn)
        assert len(calls) == len(prunable_layers(model))

    def test_mask_refresh_schedule(self):
        data = cluster_dataset(n_samples=128, n_features=16, seed=9)
        model = make_mlp(16, 32, 4, depth=3, seed=9)
        refreshed = []
        train(
            model,
            data,
            family=PatternFamily.US,
            sparsity=0.5,
            epochs=4,
            seed=9,
            mask_refresh=lambda e: refreshed.append(e) or e < 2,
        )
        assert refreshed == [0, 1, 2, 3]


class TestQuantization:
    def test_roundtrip_small_error(self):
        w = RNG.normal(size=(16, 16))
        assert quantization_error(w, bits=8) < 0.01

    def test_lower_bits_more_error(self):
        w = RNG.normal(size=(16, 16))
        assert quantization_error(w, bits=4) > quantization_error(w, bits=8)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantize_weights(np.ones((2, 2)), bits=1)

    def test_zero_weights_stable(self):
        w = np.zeros((4, 4))
        np.testing.assert_array_equal(quantize_weights(w), w)

    def test_quantize_model_touches_prunable(self):
        model = make_mlp(16, 32, 4, depth=3, seed=10)
        touched = quantize_model(model, bits=8)
        assert len(touched) == len(prunable_layers(model))

    def test_quantized_model_accuracy_preserved(self):
        """Fig. 15(b): 8-bit weight quantization costs <1% accuracy."""
        data = cluster_dataset(n_samples=256, n_features=16, n_classes=4, seed=11, noise=0.5)
        model = make_mlp(16, 32, 4, depth=2, seed=11)
        res = train(model, data, epochs=10, seed=11)
        quantize_model(model, bits=8)
        quant_acc = evaluate(model, data[2], data[3])
        assert res.test_accuracy - quant_acc < 0.05


class TestSchedulers:
    def _opt(self, lr=0.1):
        from repro.nn import SGD, make_mlp

        return SGD(make_mlp(4, 4, 2, depth=1), lr=lr)

    def test_constant(self):
        from repro.nn import ConstantLR

        sched = ConstantLR(self._opt())
        assert sched.step() == 0.1
        assert sched.step() == 0.1

    def test_step_decay(self):
        from repro.nn import StepLR

        sched = StepLR(self._opt(), step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(4)]
        assert lrs == [0.1, 0.1, 0.05, 0.05]

    def test_cosine_endpoints(self):
        from repro.nn import CosineLR

        sched = CosineLR(self._opt(), total=10, min_lr=0.01)
        first = sched.step()
        for _ in range(10):
            last = sched.step()
        assert first == pytest.approx(0.1)
        assert last == pytest.approx(0.01)

    def test_warmup_ramps(self):
        from repro.nn import WarmupLR

        sched = WarmupLR(self._opt(), warmup=4)
        lrs = [sched.step() for _ in range(5)]
        assert lrs == pytest.approx([0.025, 0.05, 0.075, 0.1, 0.1])

    def test_rejects_bad_params(self):
        from repro.nn import CosineLR, StepLR, WarmupLR

        with pytest.raises(ValueError):
            StepLR(self._opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineLR(self._opt(), total=0)
        with pytest.raises(ValueError):
            WarmupLR(self._opt(), warmup=0)

    def test_train_accepts_scheduler(self):
        from repro.nn import CosineLR, SGD, cluster_dataset, make_mlp, train

        data = cluster_dataset(n_samples=128, n_features=8, seed=0)
        model = make_mlp(8, 16, 4, depth=1, seed=0)
        opt = SGD(model, lr=0.1)
        res = train(model, data, epochs=4, optimizer=opt, scheduler=CosineLR(opt, total=4))
        assert len(res.loss_history) == 4
        assert opt.lr < 0.1


class TestGlobalThreshold:
    """Sec. III-B1: one magnitude threshold over all prunable weights."""

    def test_overall_sparsity_matches_target(self):
        model = make_mlp(32, 64, 4, depth=4, seed=20)
        achieved = apply_masks(model, PatternFamily.US, 0.75, global_threshold=True)
        assert achieved == pytest.approx(0.75, abs=0.02)

    def test_layer_sparsities_differ(self):
        """Layers with smaller magnitudes end up sparser."""
        model = make_mlp(32, 64, 4, depth=4, seed=21)
        layers = prunable_layers(model)
        layers[0].params["weight"] *= 4.0  # make layer 0 loud
        apply_masks(model, PatternFamily.US, 0.75, global_threshold=True)
        s0 = 1 - layers[0].mask.mean()
        s1 = 1 - layers[1].mask.mean()
        assert s0 < s1

    def test_per_layer_mode_uniform(self):
        model = make_mlp(32, 64, 4, depth=4, seed=22)
        layers = prunable_layers(model)
        layers[0].params["weight"] *= 4.0
        apply_masks(model, PatternFamily.US, 0.75, global_threshold=False)
        for layer in layers:
            assert 1 - layer.mask.mean() == pytest.approx(0.75, abs=0.02)

    def test_train_accepts_global_threshold(self):
        data = cluster_dataset(n_samples=128, n_features=16, seed=23)
        model = make_mlp(16, 32, 4, depth=3, seed=23)
        res = train(
            model, data, family=PatternFamily.TBS, sparsity=0.5, epochs=3,
            seed=23, global_threshold=True,
        )
        assert res.sparsity_history[-1] == pytest.approx(0.5, abs=0.1)

    def test_extremes(self):
        from repro.nn.train import _global_layer_sparsities

        model = make_mlp(16, 32, 4, depth=3, seed=24)
        layers = prunable_layers(model)
        assert _global_layer_sparsities(layers, 0.0) == [0.0] * len(layers)
        assert _global_layer_sparsities(layers, 1.0) == [1.0] * len(layers)
