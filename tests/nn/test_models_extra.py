"""Additional model-level tests: embedding gradients, end-to-end
backward consistency, CNN stage shapes."""

import numpy as np
import pytest

from repro.nn.layers import Sequential
from repro.nn.losses import softmax_cross_entropy
from repro.nn.models import Embedding, TransformerClassifier, make_cnn, make_mlp

RNG = np.random.default_rng(0)


class TestEmbedding:
    def test_forward_shape(self):
        emb = Embedding(vocab=10, dim=6, max_len=8, seed=0)
        tokens = RNG.integers(0, 10, size=(3, 5))
        assert emb(tokens).shape == (3, 5, 6)

    def test_positional_added(self):
        emb = Embedding(vocab=4, dim=4, max_len=8, seed=1)
        tokens = np.zeros((1, 3), dtype=int)
        out = emb(tokens)
        # Same token at different positions differs by the pos table.
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_table_gradient_accumulates_repeats(self):
        emb = Embedding(vocab=4, dim=2, max_len=4, seed=2)
        tokens = np.array([[1, 1, 2]])
        out = emb(tokens)
        emb.zero_grad()
        emb.backward(np.ones_like(out))
        # Token 1 appears twice -> double the gradient of token 2.
        np.testing.assert_allclose(emb.grads["table"][1], 2 * emb.grads["table"][2])
        assert np.all(emb.grads["table"][0] == 0)

    def test_pos_gradient_shape(self):
        emb = Embedding(vocab=4, dim=2, max_len=6, seed=3)
        out = emb(np.zeros((2, 3), dtype=int))
        emb.zero_grad()
        emb.backward(np.ones_like(out))
        assert np.all(emb.grads["pos"][3:] == 0)  # untouched positions


class TestEndToEndBackward:
    def test_mlp_loss_gradient_numeric(self):
        """Full-model gradient check through the loss."""
        model = make_mlp(6, 8, 3, depth=2, seed=4)
        x = RNG.normal(size=(4, 6))
        y = np.array([0, 1, 2, 1])

        model.zero_grad()
        logits = model(x)
        _, dlogits = softmax_cross_entropy(logits, y)
        model.backward(dlogits)

        layer = model.layers[0]
        analytic = layer.grads["weight"]
        eps = 1e-6
        for idx in [(0, 0), (3, 2), (7, 5)]:
            orig = layer.params["weight"][idx]
            layer.params["weight"][idx] = orig + eps
            up, _ = softmax_cross_entropy(model(x), y)
            layer.params["weight"][idx] = orig - eps
            down, _ = softmax_cross_entropy(model(x), y)
            layer.params["weight"][idx] = orig
            assert analytic[idx] == pytest.approx((up - down) / (2 * eps), abs=1e-5)

    def test_transformer_loss_gradient_numeric(self):
        model = TransformerClassifier(vocab=8, dim=8, heads=2, depth=1, n_classes=3, seed=5)
        tokens = RNG.integers(0, 8, size=(2, 4))
        y = np.array([0, 2])

        model.zero_grad()
        _, dlogits = softmax_cross_entropy(model(tokens), y)
        model.backward(dlogits)

        layer = model.head
        analytic = layer.grads["weight"]
        eps = 1e-6
        for idx in [(0, 0), (2, 5)]:
            orig = layer.params["weight"][idx]
            layer.params["weight"][idx] = orig + eps
            up, _ = softmax_cross_entropy(model(tokens), y)
            layer.params["weight"][idx] = orig - eps
            down, _ = softmax_cross_entropy(model(tokens), y)
            layer.params["weight"][idx] = orig
            assert analytic[idx] == pytest.approx((up - down) / (2 * eps), abs=1e-5)


class TestCNNStructure:
    def test_eval_mode_deterministic(self):
        model = make_cnn(channels=3, width=8, n_classes=4, seed=6)
        x = RNG.normal(size=(2, 3, 16, 16))
        model(x)  # populate BN running stats
        model.eval()
        np.testing.assert_array_equal(model(x), model(x))

    def test_stage_channel_doubling(self):
        from repro.nn.layers import Conv2d

        model = make_cnn(channels=3, width=8, n_classes=4, seed=7)
        convs = [m for m in model.modules() if isinstance(m, Conv2d)]
        assert convs[0].out_channels == 8
        assert any(c.out_channels == 16 for c in convs)

    def test_module_registry_complete(self):
        model = make_cnn(channels=3, width=8, n_classes=4, seed=8)
        # Every parameterised module reachable via modules().
        assert model.num_parameters() > 0
        handles = model.parameters()
        assert len({id(m) for m, _ in handles}) >= 8


class TestSequentialComposition:
    def test_nested_sequential_modules(self):
        inner = Sequential(make_mlp(4, 4, 2, depth=1))
        assert len(inner.modules()) >= 3

    def test_empty_sequential(self):
        seq = Sequential()
        x = RNG.normal(size=(2, 3))
        np.testing.assert_array_equal(seq(x), x)
        np.testing.assert_array_equal(seq.backward(x), x)
