"""Property suite for the scenario workload families (stencil/MoE/inference24).

Every generator is pinned to four structural guarantees, checked across
seeds and block sizes so a new family cannot ship without them:

* masks satisfy their pattern family's :mod:`repro.core.validate`
  invariants (TBS block validity, the TS per-group cap, ...);
* the achieved sparsity tracks the family's effective target (exactly
  for the rigid dense/2:4 regimes, within a quantisation tolerance for
  TBS's per-block N selection);
* every lowered GEMM stays ``m``-divisible in both dimensions for every
  block size, with a positive ``b_cols``;
* regeneration from the same seed is byte-identical -- the determinism
  the sweep cache and the golden harness stand on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import PatternFamily, PatternSpec
from repro.core.validate import validate_mask
from repro.workloads import (
    STENCILS,
    MoESpec,
    build_scenario,
    build_stencil_workload,
    moe_combined_sparsity,
    route_tokens,
    stencil_tap_mask,
)
from repro.workloads.scenarios import SCENARIO_FAMILIES, SCENARIO_PATTERNS

#: Smallest shapes -- the properties are size-independent.
_SCALE = 64

#: TBS picks each block's N from the candidate set, so the achieved
#: sparsity quantises around the target; 0.125 is the worst deviation
#: measured across seeds 0..100 at scale 64 for both block sizes.
_TBS_TOLERANCE = 0.2

_seeds = st.integers(0, 100)
_ms = st.sampled_from([4, 8])
_families = st.sampled_from(SCENARIO_FAMILIES)
_patterns = st.sampled_from(SCENARIO_PATTERNS)


def _bundle_workloads(bundle):
    return list(bundle.layers) + [bundle.format_workload]


def _spec_for(wl):
    if wl.family is PatternFamily.TS:
        # The 2:4 regime always runs the saturated 4:8 ratio.
        return PatternSpec(PatternFamily.TS, m=wl.m, sparsity=0.5)
    return PatternSpec(wl.family, m=wl.m)


class TestMaskValidity:
    @given(seed=_seeds, family=_families, pattern=_patterns, m=_ms)
    @settings(max_examples=15, deadline=None)
    def test_masks_satisfy_family_invariants(self, seed, family, pattern, m):
        bundle = build_scenario(family, pattern, m=m, seed=seed, scale=_SCALE)
        for wl in _bundle_workloads(bundle):
            report = validate_mask(wl.mask, _spec_for(wl), tbs=wl.tbs)
            assert report.ok, f"{wl.name}: {report.summary()}"

    @given(seed=_seeds, family=_families, pattern=_patterns, m=_ms)
    @settings(max_examples=15, deadline=None)
    def test_masks_are_boolean(self, seed, family, pattern, m):
        bundle = build_scenario(family, pattern, m=m, seed=seed, scale=_SCALE)
        for wl in _bundle_workloads(bundle):
            assert wl.mask.dtype == np.bool_, wl.name


class TestAchievedSparsity:
    @given(seed=_seeds, family=_families, m=_ms)
    @settings(max_examples=15, deadline=None)
    def test_dense_regime_keeps_everything(self, seed, family, m):
        bundle = build_scenario(family, "dense", m=m, seed=seed, scale=_SCALE)
        for wl in _bundle_workloads(bundle):
            assert wl.sparsity == 0.0, wl.name

    @given(seed=_seeds, family=_families, m=_ms)
    @settings(max_examples=15, deadline=None)
    def test_ts_regime_is_exactly_half(self, seed, family, m):
        """The STC caveat: 4:8 whatever the target, explicit zeros included.

        Exactness holds because every lowered matrix is ``m``-divisible,
        so each reduction-dim group keeps exactly ``m/2`` entries even
        where the family's structural zeros leave nothing worth keeping.
        """
        bundle = build_scenario(family, "2:4", m=m, seed=seed, scale=_SCALE)
        for wl in _bundle_workloads(bundle):
            assert wl.sparsity == pytest.approx(0.5, abs=1e-12), wl.name

    @given(seed=_seeds, m=_ms)
    @settings(max_examples=15, deadline=None)
    def test_tbs_stencils_track_effective_target(self, seed, m):
        for spec in STENCILS.values():
            wl = build_stencil_workload(spec, PatternFamily.TBS, 0.75, m=m, seed=seed, scale=_SCALE)
            effective = max(0.75, spec.structural_sparsity)
            assert wl.sparsity == pytest.approx(effective, abs=_TBS_TOLERANCE), wl.name

    @given(seed=_seeds, m=_ms)
    @settings(max_examples=15, deadline=None)
    def test_tbs_moe_combined_tracks_lifted_target(self, seed, m):
        bundle = build_scenario("moe", "TBS", m=m, seed=seed, scale=_SCALE)
        effective = moe_combined_sparsity(MoESpec().scaled(_SCALE, m=m), 0.5)
        assert bundle.format_workload.sparsity == pytest.approx(effective, abs=_TBS_TOLERANCE)

    @given(seed=_seeds, m=_ms)
    @settings(max_examples=15, deadline=None)
    def test_tbs_inference24_tracks_recipe_target(self, seed, m):
        bundle = build_scenario("inference24", "TBS", m=m, seed=seed, scale=_SCALE)
        for wl in bundle.layers:
            assert wl.sparsity == pytest.approx(0.5, abs=_TBS_TOLERANCE), wl.name


class TestShapes:
    @given(seed=_seeds, family=_families, pattern=_patterns, m=_ms)
    @settings(max_examples=15, deadline=None)
    def test_dims_divisible_by_m(self, seed, family, pattern, m):
        bundle = build_scenario(family, pattern, m=m, seed=seed, scale=_SCALE)
        for wl in _bundle_workloads(bundle):
            rows, cols = wl.shape
            assert rows % m == 0 and cols % m == 0, wl.name
            assert wl.b_cols >= 1, wl.name

    @given(seed=_seeds, m=_ms)
    @settings(max_examples=15, deadline=None)
    def test_moe_expert_masks_are_combined_slices(self, seed, m):
        """One pruning decision, two views: experts slice the combined mask."""
        bundle = build_scenario("moe", "TBS", m=m, seed=seed, scale=_SCALE)
        combined = bundle.format_workload
        spec = MoESpec().scaled(_SCALE, m=m)
        for e, wl in enumerate(bundle.layers):
            block = combined.mask[
                e * spec.d_ff : (e + 1) * spec.d_ff,
                e * spec.d_model : (e + 1) * spec.d_model,
            ]
            np.testing.assert_array_equal(wl.mask, block)


class TestDeterminism:
    @given(seed=_seeds, family=_families, pattern=_patterns)
    @settings(max_examples=10, deadline=None)
    def test_byte_identical_regeneration(self, seed, family, pattern):
        first = build_scenario(family, pattern, seed=seed, scale=_SCALE)
        second = build_scenario(family, pattern, seed=seed, scale=_SCALE)
        assert first.repeats == second.repeats
        for a, b in zip(_bundle_workloads(first), _bundle_workloads(second)):
            assert a.name == b.name
            assert a.b_cols == b.b_cols
            assert a.values.tobytes() == b.values.tobytes()
            assert a.mask.tobytes() == b.mask.tobytes()


class TestRouter:
    @given(
        seed=st.integers(0, 200),
        experts=st.integers(2, 16),
        tokens=st.integers(16, 1024),
        imbalance=st.sampled_from([0.3, 1.0, 5.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_counts_partition_the_tokens(self, seed, experts, tokens, imbalance):
        spec = MoESpec(experts=experts, tokens=tokens, imbalance=imbalance)
        counts = route_tokens(spec, seed=seed)
        assert counts.shape == (experts,)
        assert int(counts.sum()) == tokens
        assert (counts >= 0).all()
        np.testing.assert_array_equal(counts, route_tokens(spec, seed=seed))


class TestStencilStructure:
    def test_tap_counts_match_the_named_shapes(self):
        assert int(stencil_tap_mask(2, "star").sum()) == 5
        assert int(stencil_tap_mask(3, "star").sum()) == 7
        assert int(stencil_tap_mask(2, "box").sum()) == 9
        assert int(stencil_tap_mask(3, "box").sum()) == 27

    @given(dims=st.sampled_from([2, 3]), kind=st.sampled_from(["star", "box"]))
    @settings(max_examples=4, deadline=None)
    def test_centre_tap_always_kept(self, dims, kind):
        taps = stencil_tap_mask(dims, kind)
        assert taps[len(taps) // 2]

    @given(seed=_seeds, m=_ms)
    @settings(max_examples=10, deadline=None)
    def test_structural_zeros_carry_zero_weight(self, seed, m):
        for spec in STENCILS.values():
            wl = build_stencil_workload(spec, PatternFamily.TBS, 0.75, m=m, seed=seed, scale=_SCALE)
            scaled = spec.scaled(_SCALE, m=m)
            assert (wl.values[~scaled.structure()] == 0).all(), wl.name
