"""Tests for the trained-model -> simulator bridge."""

import numpy as np
import pytest

from repro.core.patterns import PatternFamily
from repro.nn import cluster_dataset, make_mlp, train
from repro.nn.models import prunable_layers
from repro.sim import simulate, verify_workload
from repro.hw.config import tb_stc
from repro.workloads.from_model import workload_from_layer, workloads_from_model


def _trained_sparse_model(family=PatternFamily.TBS, sparsity=0.75, seed=0):
    data = cluster_dataset(n_samples=256, n_features=32, seed=seed)
    model = make_mlp(32, 48, 4, depth=3, seed=seed)
    train(model, data, family=family, sparsity=sparsity, epochs=4, seed=seed)
    return model


class TestWorkloadFromLayer:
    def test_mask_carried_exactly(self):
        model = _trained_sparse_model()
        layer = prunable_layers(model)[0]
        wl = workload_from_layer(layer, b_cols=16, family=PatternFamily.TBS)
        np.testing.assert_array_equal(wl.mask, layer.mask)
        np.testing.assert_array_equal(wl.values, layer.weight_matrix())

    def test_tbs_metadata_recovered(self):
        """Re-derived block metadata reproduces the trained mask."""
        model = _trained_sparse_model()
        layer = prunable_layers(model)[0]
        wl = workload_from_layer(layer, b_cols=16, family=PatternFamily.TBS)
        assert wl.tbs is not None
        np.testing.assert_array_equal(wl.tbs.mask, layer.mask)
        # Block nnz counts match the declared N (valid TBS metadata).
        n_br, n_bc = wl.tbs.block_n.shape
        for br in range(n_br):
            for bc in range(n_bc):
                block = wl.mask[br * 8 : (br + 1) * 8, bc * 8 : (bc + 1) * 8]
                assert block.sum() == wl.tbs.block_n[br, bc] * 8

    def test_unmasked_layer_is_dense(self):
        model = make_mlp(16, 24, 4, depth=3, seed=1)
        layer = prunable_layers(model)[0]
        wl = workload_from_layer(layer, b_cols=8, family=PatternFamily.US)
        assert wl.mask.all()

    def test_rejects_non_maskable(self):
        from repro.nn.layers import ReLU

        with pytest.raises(TypeError):
            workload_from_layer(ReLU(), 8, PatternFamily.US)

    def test_rejects_bad_b_cols(self):
        model = make_mlp(16, 24, 4, depth=3, seed=2)
        with pytest.raises(ValueError):
            workload_from_layer(prunable_layers(model)[0], 0, PatternFamily.US)


class TestWorkloadsFromModel:
    def test_one_per_prunable_layer(self):
        model = _trained_sparse_model(seed=3)
        workloads = workloads_from_model(model, PatternFamily.TBS, batch=16)
        assert len(workloads) == len(prunable_layers(model))
        assert all(wl.b_cols == 16 for wl in workloads)

    def test_simulatable(self):
        model = _trained_sparse_model(seed=4)
        workloads = workloads_from_model(model, PatternFamily.TBS, batch=16)
        for wl in workloads:
            result = simulate(tb_stc(), wl)
            assert result.cycles > 0

    def test_functionally_exact(self):
        """The trained masks run exactly through the datapath."""
        model = _trained_sparse_model(seed=5)
        for wl in workloads_from_model(model, PatternFamily.TBS, batch=8):
            assert verify_workload(wl) < 1e-9

    def test_sparser_model_runs_faster(self):
        results = {}
        for sparsity in (0.5, 0.875):
            model = _trained_sparse_model(sparsity=sparsity, seed=6)
            workloads = workloads_from_model(model, PatternFamily.TBS, batch=64)
            results[sparsity] = sum(simulate(tb_stc(), wl).compute_cycles for wl in workloads)
        assert results[0.875] < results[0.5]

    def test_us_model_has_no_tbs_metadata(self):
        model = _trained_sparse_model(family=PatternFamily.US, seed=7)
        workloads = workloads_from_model(model, PatternFamily.US, batch=8)
        assert all(wl.tbs is None for wl in workloads)
