"""Tests for layer specs, synthetic weights and workload building."""

import numpy as np
import pytest

from repro.core.patterns import PatternFamily
from repro.workloads import (
    ISO_ACCURACY_SPARSITY,
    LayerSpec,
    MODEL_LAYERS,
    bert_layers,
    build_model_workload,
    build_workload,
    opt_6_7b_layers,
    resnet50_layers,
    synthetic_weights,
)


class TestLayerSpec:
    def test_macs(self):
        assert LayerSpec("x", 4, 5, 6).macs == 120

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            LayerSpec("x", 0, 5, 6)

    def test_scaled_preserves_alignment(self):
        spec = LayerSpec("x", 256, 2304, 196).scaled(4)
        assert spec.rows % 8 == 0 and spec.cols % 8 == 0
        assert spec.rows == 64

    def test_scaled_floors_at_m(self):
        spec = LayerSpec("x", 16, 16, 16).scaled(100)
        assert spec.rows == 8 and spec.cols == 8

    def test_scale_one_identity(self):
        spec = LayerSpec("x", 64, 64, 64)
        assert spec.scaled(1) == spec

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            LayerSpec("x", 8, 8, 8).scaled(0)


class TestModelLayers:
    def test_bert_shapes(self):
        layers = bert_layers(seq_len=128)
        qkv = layers[0]
        assert (qkv.rows, qkv.cols, qkv.b_cols) == (2304, 768, 128)

    def test_opt_shapes(self):
        ffn = opt_6_7b_layers()[2]
        assert ffn.rows == 16384 and ffn.cols == 4096

    def test_resnet50_im2col(self):
        conv3x3 = next(l for l in resnet50_layers() if "conv4_3x3" in l.name)
        assert conv3x3.cols == 256 * 9

    def test_registry_aligned(self):
        for name, (layer_fn, repeats) in MODEL_LAYERS.items():
            assert len(layer_fn()) == len(repeats), name


class TestSyntheticWeights:
    def test_shape_and_determinism(self):
        a = synthetic_weights(32, 16, seed=1)
        b = synthetic_weights(32, 16, seed=1)
        assert a.shape == (32, 16)
        np.testing.assert_array_equal(a, b)

    def test_row_scale_variation(self):
        w = synthetic_weights(128, 64, seed=2, row_scale_sigma=1.0)
        row_norms = np.abs(w).mean(axis=1)
        assert row_norms.max() / row_norms.min() > 3.0

    def test_dead_rows_present(self):
        w = synthetic_weights(256, 64, seed=3, dead_row_fraction=0.2)
        row_norms = np.abs(w).mean(axis=1)
        assert (row_norms < 0.1 * np.median(row_norms)).any()

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            synthetic_weights(0, 4)


class TestBuildWorkload:
    def test_tbs_carries_metadata(self):
        layer = LayerSpec("t", 64, 64, 32)
        wl = build_workload(layer, PatternFamily.TBS, 0.75, seed=0)
        assert wl.tbs is not None
        assert wl.sparsity == pytest.approx(0.75, abs=0.08)

    def test_ts_saturates_at_half(self):
        """The paper's footnote: STC runs 4:8 whatever the target."""
        layer = LayerSpec("t", 64, 64, 32)
        wl = build_workload(layer, PatternFamily.TS, 0.875, seed=0)
        assert wl.sparsity == pytest.approx(0.5, abs=0.02)

    def test_scaling_applied(self):
        layer = LayerSpec("t", 256, 256, 128)
        wl = build_workload(layer, PatternFamily.US, 0.5, seed=0, scale=4)
        assert wl.shape == (64, 64)

    def test_macs_properties(self):
        layer = LayerSpec("t", 32, 32, 16)
        wl = build_workload(layer, PatternFamily.US, 0.5, seed=0)
        assert wl.dense_macs == 32 * 32 * 16
        assert wl.macs == wl.nnz * 16

    def test_all_families(self):
        layer = LayerSpec("t", 64, 64, 32)
        for family in PatternFamily:
            wl = build_workload(layer, family, 0.5, seed=1)
            assert wl.mask.shape == (64, 64)

    def test_shape_mismatch_rejected(self):
        from repro.workloads.generator import GEMMWorkload

        with pytest.raises(ValueError):
            GEMMWorkload("x", np.ones((4, 4)), np.ones((2, 2), dtype=bool), 4)


class TestGEMMWorkloadMaskDtype:
    """Regression: non-boolean masks used to pass through silently."""

    def test_int_01_mask_coerced_to_bool(self):
        from repro.workloads.generator import GEMMWorkload

        wl = GEMMWorkload("x", np.ones((4, 4)), np.eye(4, dtype=np.int64), 4)
        assert wl.mask.dtype == np.bool_
        assert wl.nnz == 4

    def test_float_01_mask_coerced_to_bool(self):
        from repro.workloads.generator import GEMMWorkload

        wl = GEMMWorkload("x", np.ones((4, 4)), np.eye(4), 4)
        assert wl.mask.dtype == np.bool_
        assert wl.sparsity == 0.75

    def test_non_binary_mask_rejected(self):
        from repro.workloads.generator import GEMMWorkload

        with pytest.raises(ValueError, match="mask must be boolean"):
            GEMMWorkload("x", np.ones((4, 4)), np.full((4, 4), 0.5), 4)


class TestModelWorkloads:
    def test_iso_accuracy_lookup(self):
        bundle = build_model_workload("resnet50", PatternFamily.TBS, scale=8)
        assert bundle.sparsity == ISO_ACCURACY_SPARSITY["resnet50"][PatternFamily.TBS]

    def test_explicit_sparsity(self):
        bundle = build_model_workload("bert", PatternFamily.US, sparsity=0.6, scale=8)
        assert bundle.sparsity == 0.6

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_model_workload("alexnet", PatternFamily.TBS)

    def test_layers_and_repeats_align(self):
        bundle = build_model_workload("bert", PatternFamily.TBS, scale=8)
        assert len(bundle.layers) == len(bundle.repeats)
        assert bundle.total_macs > 0

    def test_tbs_runs_sparser_than_ts_iso_accuracy(self):
        """The Fig. 13 mechanism: flexible patterns earn higher sparsity."""
        for model in ("resnet50", "bert"):
            degrees = ISO_ACCURACY_SPARSITY[model]
            assert degrees[PatternFamily.TBS] >= degrees[PatternFamily.RS_V]
            assert degrees[PatternFamily.RS_V] >= degrees[PatternFamily.TS]
