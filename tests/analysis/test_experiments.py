"""Structure/sanity tests for the experiment drivers.

These run at toy sizes so the full suite stays fast; the paper-shape
assertions (orderings, claimed ratios) live in ``benchmarks/`` where
they run at proper sizes.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ACCURACY_FAMILIES,
    capture_layer_inputs,
    restore_params,
    run_fig1_pareto,
    run_fig4_maskspace,
    run_fig6_datapath_power,
    run_fig7_bandwidth,
    run_fig12_layerwise,
    run_fig13_end2end,
    run_fig14_breakdown,
    run_fig15_bandwidth,
    run_fig15_block_size,
    run_fig15_quantization,
    run_fig15_sparsity_sweep,
    run_fig16_codec_ablation,
    run_fig16_scheduling_ablation,
    run_fig17_distribution,
    run_fig18_convergence,
    run_table1,
    run_table2,
    run_table3,
    snapshot_params,
)
from repro.nn.models import make_mlp, prunable_layers
from repro.workloads.layers import LayerSpec


class TestStateHelpers:
    def test_snapshot_restore_roundtrip(self):
        model = make_mlp(8, 16, 4, depth=2, seed=0)
        snap = snapshot_params(model)
        for layer in prunable_layers(model):
            layer.params["weight"] += 1.0
        restore_params(model, snap)
        for mod in model.modules():
            for name, value in mod.params.items():
                np.testing.assert_array_equal(value, snap[id(mod)][name])

    def test_capture_layer_inputs(self):
        model = make_mlp(8, 16, 4, depth=3, seed=1)
        acts = capture_layer_inputs(model, np.random.default_rng(0).normal(size=(10, 8)))
        layers = prunable_layers(model)
        assert set(acts) == {id(l) for l in layers}
        for layer in layers:
            assert acts[id(layer)].shape == (10, layer.in_features)


class TestAccuracyDrivers:
    def test_table1_structure(self):
        res = run_table1(tasks=(("mlp", 0.75),), seeds=(0,), epochs=2)
        assert set(res) == {"mlp"}
        assert set(res["mlp"]) == {"Dense"} | {f.name for f in ACCURACY_FAMILIES}
        assert all(0.0 <= v <= 1.0 for v in res["mlp"].values())

    def test_table2_structure(self):
        res = run_table2(tasks=(("mlp", 0.5),), criteria=("wanda",), seeds=(0,), epochs=2)
        assert set(res) == {"mlp/wanda"}
        assert "TBS" in res["mlp/wanda"]

    def test_table2_magnitude_criterion(self):
        res = run_table2(tasks=(("mlp", 0.5),), criteria=("magnitude",), seeds=(0,), epochs=2)
        assert "mlp/magnitude" in res

    def test_fig18_curves(self):
        curves = run_fig18_convergence(epochs=3, seed=0)
        assert set(curves) == {"dense", "US", "TBS", "TBS_sparsity"}
        assert len(curves["dense"]) == 3


class TestPatternDrivers:
    def test_fig4(self):
        res = run_fig4_maskspace()
        assert res["similarity"]["TBS"] > 0.7
        assert res["log2_maskspace"]["TBS"] > res["log2_maskspace"]["TS"]

    def test_fig17(self):
        res = run_fig17_distribution(sparsities=(0.75,), seed=0)
        total = res["Total"]
        assert sum(total.values()) == pytest.approx(1.0)
        assert set(total) == {"row", "col", "other"}


class TestHardwareDrivers:
    def test_table3(self):
        res = run_table3()
        assert res["area_mm2"]["Total"] == pytest.approx(1.47, rel=0.01)
        assert res["power_mw"]["Total"] == pytest.approx(200.59, rel=0.01)

    def test_fig6(self):
        res = run_fig6_datapath_power()
        assert res["ratio"] > 1.5

    def test_fig7(self):
        res = run_fig7_bandwidth(sparsities=(0.75,), size=64)
        row = res["sparsity=75%"]
        assert row["ddc"] > row["sdc"] and row["ddc"] > row["csr"]

    def test_fig12_structure(self):
        layer = LayerSpec("t", 256, 128, 32)
        res = run_fig12_layerwise(layers=[layer], sparsities=(0.75,), scale=1)
        assert "speedup@75%" in res["t"]
        assert res["t"]["speedup@75%"]["TC"] == pytest.approx(1.0)

    def test_fig13_structure(self):
        res = run_fig13_end2end(models=("bert",), arch_names=("TC", "TB-STC"), scale=16)
        assert res["bert"]["speedup"]["TB-STC"] > 1.0

    def test_fig14(self):
        res = run_fig14_breakdown(scale=8)
        for shares in res.values():
            assert shares["codec_fraction"] < 0.25


class TestSensitivityDrivers:
    def test_fig15_block_size(self):
        res = run_fig15_block_size(block_sizes=(8, 16), scale=8, with_accuracy=False)
        assert set(res) == {8, 16}
        assert all(v["speedup"] > 0 for v in res.values())

    def test_fig15_quantization(self):
        res = run_fig15_quantization(epochs=3, scale=8)
        assert res["extra_speedup"] >= 1.0
        assert res["accuracy_drop"] < 0.3

    def test_fig15_bandwidth_monotone(self):
        res = run_fig15_bandwidth(bandwidths=(32, 128, 512), scale=8)
        values = list(res.values())
        assert values == sorted(values)
        assert res[32] == pytest.approx(1.0)

    def test_fig15_sparsity_sweep(self):
        # scale=4 keeps the layer big enough that the architectures are
        # not latency-dominated (tinier scales make SGCN's 4x bandwidth
        # win everything outright).
        res = run_fig15_sparsity_sweep(sparsities=(0.5, 0.95), scale=4)
        assert set(res) == {0.5, 0.95}
        # SGCN catches up as sparsity rises (the Fig. 15(d) crossover).
        assert res[0.95]["tb_over_sgcn"] < res[0.5]["tb_over_sgcn"]


class TestAblationDrivers:
    def test_fig16_codec(self):
        res = run_fig16_codec_ablation(scale=4)
        assert res["TB-STC (DDC+codec)"] == pytest.approx(1.0)
        assert all(v >= 1.0 for v in res.values())

    def test_fig16_scheduling(self):
        res = run_fig16_scheduling_ablation(scale=4)
        assert res["utilization"]["gain"] > 1.0
        assert res["fan_edp"]["normalized"] > 1.0


class TestParetoDriver:
    def test_fig1_structure(self):
        res = run_fig1_pareto(seeds=(0,), sparsities=(0.5,), epochs=2, scale=8)
        assert res["points"] and res["frontier"]
        labels = {p.label for p in res["points"]}
        assert any(l.startswith("TB-STC") for l in labels)
