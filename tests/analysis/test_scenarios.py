"""Tests for the ``run_scenarios`` workload-family win/loss driver.

The golden pin lives in ``tests/golden``; here we check the driver's
structure, its family filtering/validation contract, and the sweep-layer
guarantee the report stands on: the aggregated table is byte-identical
whether the cells run serially or across a worker pool.
"""

import json

import pytest

from repro.analysis.experiments import run_scenarios
from repro.formats import ORIENTATIONS, available_formats
from repro.workloads.scenarios import SCENARIO_FAMILIES, SCENARIO_PATTERNS


def _canon(obj) -> str:
    return json.dumps(obj, sort_keys=True, default=repr)


class TestRunScenarios:
    def test_structure_covers_the_grid(self):
        res = run_scenarios(scale=64, workers=1)
        assert sorted(res) == sorted(SCENARIO_FAMILIES)
        for family, entry in res.items():
            assert sorted(entry["patterns"]) == sorted(SCENARIO_PATTERNS), family
            assert sorted(entry["formats"]) == sorted(available_formats()), family
            for fmt, rows in entry["formats"].items():
                assert sorted(rows) == sorted(ORIENTATIONS), (family, fmt)

    def test_families_filtering(self):
        res = run_scenarios(families=("inference24",), scale=64, workers=1)
        assert sorted(res) == ["inference24"]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown workload family 'bogus'"):
            run_scenarios(families=("bogus",), scale=64, workers=1)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario pattern"):
            run_scenarios(patterns=("8:8",), scale=64, workers=1)

    def test_speedup_vs_dense_normalised(self):
        res = run_scenarios(scale=64, workers=1)
        for family, entry in res.items():
            assert entry["speedup_vs_dense"]["dense"] == pytest.approx(1.0), family


class TestScenariosDeterminism:
    def test_workers_do_not_change_the_bytes(self):
        """Serial and 4-worker runs must agree byte-for-byte: the cells
        are pure functions of their keys and the aggregation folds in
        spec order, not completion order."""
        serial = run_scenarios(scale=64, workers=1)
        pooled = run_scenarios(scale=64, workers=4)
        assert _canon(serial) == _canon(pooled)
