"""Tests for roofline analysis and energy breakdowns."""

import pytest

from repro.analysis.energy_breakdown import compare_energy_breakdown, energy_fractions
from repro.analysis.roofline import (
    RooflinePoint,
    attainable_macs_per_cycle,
    ridge_intensity,
    roofline_point,
)
from repro.core.patterns import PatternFamily
from repro.hw.config import tb_stc, tensor_core
from repro.sim.engine import simulate
from repro.workloads.generator import build_workload
from repro.workloads.layers import LayerSpec, bert_layers


def _run(config, sparsity=0.75, family=PatternFamily.TBS, seed=0):
    layer = LayerSpec("probe", 512, 256, 64)
    workload = build_workload(layer, family, sparsity, seed=seed)
    return workload, simulate(config, workload)


class TestRoofline:
    def test_ridge_point(self):
        # 1024 MACs/cycle over 64 B/cycle -> ridge at 16 MACs/byte.
        assert ridge_intensity(tb_stc()) == pytest.approx(16.0)

    def test_attainable_clamps_at_peak(self):
        cfg = tb_stc()
        assert attainable_macs_per_cycle(1000.0, cfg) == cfg.peak_macs_per_cycle
        assert attainable_macs_per_cycle(1.0, cfg) == pytest.approx(64.0)

    def test_rejects_negative_intensity(self):
        with pytest.raises(ValueError):
            attainable_macs_per_cycle(-1.0, tb_stc())

    def test_point_consistency(self):
        cfg = tb_stc()
        workload, result = _run(cfg)
        point = roofline_point(workload, cfg, result)
        assert point.arch == "TB-STC"
        assert 0 < point.roofline_efficiency <= 1.0
        assert point.achieved_macs_per_cycle <= cfg.peak_macs_per_cycle

    def test_sparsity_lowers_intensity(self):
        """Fewer MACs over similar activation bytes -> lower intensity
        (the Fig. 15(c) mechanism)."""
        cfg = tb_stc()
        wl_lo, res_lo = _run(cfg, sparsity=0.5, seed=1)
        wl_hi, res_hi = _run(cfg, sparsity=0.875, seed=1)
        p_lo = roofline_point(wl_lo, cfg, res_lo)
        p_hi = roofline_point(wl_hi, cfg, res_hi)
        assert p_hi.intensity < p_lo.intensity

    def test_bandwidth_moves_ridge(self):
        assert ridge_intensity(tb_stc(dram_bandwidth_gbs=256.0)) == pytest.approx(4.0)

    def test_memory_bound_flag(self):
        point = RooflinePoint("w", "a", intensity=1.0, attainable_macs_per_cycle=64,
                              peak_macs_per_cycle=1024, achieved_macs_per_cycle=50)
        assert point.memory_bound


class TestEnergyBreakdown:
    def test_fractions_sum_to_one(self):
        _, result = _run(tb_stc())
        fractions = energy_fractions(result)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_components_present(self):
        _, result = _run(tb_stc())
        fractions = energy_fractions(result)
        assert {"compute", "dram", "sram", "static"} <= set(fractions)

    def test_dense_tc_compute_heavy(self):
        _, result = _run(tensor_core(), family=PatternFamily.US, sparsity=0.0)
        fractions = energy_fractions(result)
        assert fractions["compute"] > 0.3

    def test_compare_across_archs(self):
        table = compare_energy_breakdown(bert_layers()[2], scale=4)
        assert set(table) == {"TC", "STC", "VEGETA", "HighLight", "RM-STC", "TB-STC"}
        # The RM-STC compute share exceeds TB-STC's (Fig. 6(d) story).
        assert table["RM-STC"]["compute"] > table["TB-STC"]["compute"]
        # ...and its total energy is higher.
        assert table["RM-STC"]["total_uJ"] > table["TB-STC"]["total_uJ"]
