"""Tests for Pareto utilities and table rendering."""

import pytest

from repro.analysis.pareto import ParetoPoint, dominates, hypervolume_2d, pareto_frontier
from repro.analysis.tables import render_dict_table, render_table


class TestDominance:
    def test_strict_dominance(self):
        a = ParetoPoint(cost=1.0, quality=0.9)
        b = ParetoPoint(cost=2.0, quality=0.8)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_equal_points_do_not_dominate(self):
        a = ParetoPoint(1.0, 0.9)
        b = ParetoPoint(1.0, 0.9)
        assert not dominates(a, b)

    def test_tradeoff_points_incomparable(self):
        a = ParetoPoint(1.0, 0.7)
        b = ParetoPoint(2.0, 0.9)
        assert not dominates(a, b) and not dominates(b, a)


class TestFrontier:
    def test_filters_dominated(self):
        pts = [ParetoPoint(1, 0.9, "a"), ParetoPoint(2, 0.8, "b"), ParetoPoint(0.5, 0.95, "c")]
        frontier = pareto_frontier(pts)
        assert [p.label for p in frontier] == ["c"]

    def test_keeps_tradeoffs_sorted(self):
        pts = [ParetoPoint(2, 0.95, "hi"), ParetoPoint(1, 0.8, "lo")]
        frontier = pareto_frontier(pts)
        assert [p.label for p in frontier] == ["lo", "hi"]

    def test_empty(self):
        assert pareto_frontier([]) == []


class TestHypervolume:
    def test_single_point(self):
        hv = hypervolume_2d([ParetoPoint(1.0, 0.5)], ref_cost=2.0)
        assert hv == pytest.approx(0.5)

    def test_better_frontier_larger(self):
        good = [ParetoPoint(0.5, 0.9)]
        bad = [ParetoPoint(1.5, 0.7)]
        assert hypervolume_2d(good, 2.0) > hypervolume_2d(bad, 2.0)

    def test_out_of_reference_excluded(self):
        assert hypervolume_2d([ParetoPoint(3.0, 0.9)], ref_cost=2.0) == 0.0

    def test_staircase(self):
        pts = [ParetoPoint(1.0, 0.9), ParetoPoint(0.5, 0.6)]
        hv = hypervolume_2d(pts, ref_cost=2.0)
        assert hv == pytest.approx((2.0 - 0.5) * 0.6 + (2.0 - 1.0) * 0.3)


class TestTables:
    def test_render_table(self):
        out = render_table(["a", "bb"], [[1, 2.34567], ["x", "y"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.346" in out

    def test_render_dict_table(self):
        out = render_dict_table({"r1": {"c1": 1.0}, "r2": {"c2": 2.0}}, key_header="row")
        assert "r1" in out and "c2" in out
