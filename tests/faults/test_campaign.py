"""Tests for the Monte-Carlo fault campaign and its classification."""

import pytest

from repro.faults import (
    CLASSES,
    FAULT_MODELS,
    CampaignSpec,
    ECCConfig,
    render_campaign,
    run_campaign,
    run_cell,
    run_trial,
)
from repro.runtime.runner import ExperimentRunner

SMALL = dict(trials=6, rows=16, cols=16, m=8, sparsity=0.75)


class TestSpec:
    def test_defaults_cover_everything(self):
        from repro.formats import available_formats

        spec = CampaignSpec()
        assert set(spec.models) == set(FAULT_MODELS)
        assert spec.formats == available_formats()
        assert len(spec.formats) == 6

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            CampaignSpec(formats=("coo",))

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            CampaignSpec(models=("row_hammer",))

    def test_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            CampaignSpec(trials=0)


class TestClassification:
    def test_every_trial_lands_in_a_class(self):
        spec = CampaignSpec(**SMALL)
        for fmt in spec.formats:
            for model in spec.models:
                for trial in range(spec.trials):
                    result = run_trial(spec, fmt, model, trial)
                    assert result is None or result in CLASSES

    def test_index_models_skip_formats_without_indices(self):
        spec = CampaignSpec(**SMALL)
        assert run_trial(spec, "dense", "index_flip", 0) is None
        assert run_trial(spec, "bitmap", "index_flip", 0) is None

    def test_dram_drop_is_always_loud(self):
        """Missing bytes always trip the DMA byte counter."""
        spec = CampaignSpec(**SMALL)
        for fmt in spec.formats:
            cell = run_cell(spec, fmt, "dram_drop")
            assert cell.counts["detected"] == cell.trials

    def test_dram_duplicate_is_benign(self):
        spec = CampaignSpec(**SMALL)
        cell = run_cell(spec, "ddc", "dram_dup")
        assert cell.counts["benign"] == cell.trials

    def test_checks_off_reduces_coverage(self):
        """The invariant layer is where most non-crash detection comes
        from: turning it off must not *increase* coverage anywhere."""
        on = CampaignSpec(models=("meta_flip",), check_level="warn", **SMALL)
        off = CampaignSpec(models=("meta_flip",), check_level="off", **SMALL)
        for fmt in ("csr", "sdc", "bitmap"):
            assert run_cell(off, fmt, "meta_flip").coverage <= run_cell(on, fmt, "meta_flip").coverage


class TestECC:
    def test_secded_corrects_all_single_metadata_flips(self):
        """The acceptance criterion: with SECDED, single-bit metadata
        flips must show zero uncorrected and zero silent outcomes."""
        spec = CampaignSpec(
            models=("meta_flip",), ecc=ECCConfig(mode="secded"), trials=12,
            rows=16, cols=16, m=8, sparsity=0.75,
        )
        for fmt in ("csr", "sdc", "ddc", "bitmap"):
            cell = run_cell(spec, fmt, "meta_flip")
            assert cell.counts["uncorrected"] == 0, fmt
            assert cell.counts["silent"] == 0, fmt
            assert cell.counts["corrected"] == cell.trials, fmt

    def test_secded_detects_double_flips_in_one_word(self):
        spec = CampaignSpec(
            models=("meta_flip_x2",), ecc=ECCConfig(mode="secded"), trials=8,
            rows=16, cols=16, m=8, sparsity=0.75,
        )
        cell = run_cell(spec, "csr", "meta_flip_x2")
        assert cell.counts["uncorrected"] == cell.trials
        assert cell.coverage == 1.0

    def test_parity_detects_but_never_corrects(self):
        spec = CampaignSpec(
            models=("meta_flip",), ecc=ECCConfig(mode="parity"), trials=8,
            rows=16, cols=16, m=8, sparsity=0.75,
        )
        cell = run_cell(spec, "csr", "meta_flip")
        assert cell.counts["corrected"] == 0
        assert cell.counts["uncorrected"] == cell.trials

    def test_ecc_does_not_shield_values(self):
        """ECC covers metadata only: value flips classify identically."""
        base = CampaignSpec(models=("value_flip",), **SMALL)
        protected = CampaignSpec(
            models=("value_flip",), ecc=ECCConfig(mode="secded"), **SMALL
        )
        assert run_cell(base, "csr", "value_flip").counts == \
            run_cell(protected, "csr", "value_flip").counts


class TestReproducibility:
    def test_same_seed_same_table(self):
        spec = CampaignSpec(formats=("ddc", "csr"), **SMALL)
        a = render_campaign(run_campaign(spec))
        b = render_campaign(run_campaign(spec))
        assert a == b

    def test_different_seed_may_differ_but_stays_classified(self):
        spec = CampaignSpec(formats=("ddc",), seed=1, **SMALL)
        result = run_campaign(spec)
        for cell in result.cells:
            assert cell.trials + cell.skipped == spec.trials

    def test_trial_isolation(self):
        """Trial k's outcome must not depend on which trials ran before."""
        spec = CampaignSpec(**SMALL)
        direct = run_trial(spec, "ddc", "meta_flip", 4)
        _ = [run_trial(spec, "ddc", "meta_flip", t) for t in range(4)]
        assert run_trial(spec, "ddc", "meta_flip", 4) == direct


class TestRunnerIntegration:
    def test_campaign_through_runner_caches_cells(self, tmp_path):
        spec = CampaignSpec(formats=("csr",), models=("meta_flip",), **SMALL)
        runner = ExperimentRunner(cache_dir=tmp_path, retries=0, resume=False)
        first = run_campaign(spec, runner=runner)
        runner2 = ExperimentRunner(cache_dir=tmp_path, retries=0, resume=True)
        second = run_campaign(spec, runner=runner2)
        assert first.cells[0].counts == second.cells[0].counts


class TestRendering:
    def test_table_has_all_classes_and_rates(self):
        spec = CampaignSpec(formats=("sdc",), models=("meta_flip",), **SMALL)
        text = render_campaign(run_campaign(spec))
        for cls in CLASSES:
            assert cls in text
        assert "SDC rate" in text and "coverage" in text
        assert "ecc=none" in text

    def test_ecc_footer_names_the_mode(self):
        spec = CampaignSpec(
            formats=("sdc",), models=("meta_flip",), ecc=ECCConfig(mode="secded"), **SMALL
        )
        text = render_campaign(run_campaign(spec))
        assert "ecc=secded" in text and "+6 check bits" in text
