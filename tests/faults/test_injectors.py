"""Tests for the deterministic payload / mask / file fault injectors."""

import numpy as np
import pytest

from repro.core.sparsify import tbs_sparsify
from repro.faults.injectors import (
    FAULT_TARGETS,
    corrupt_file,
    inject_mask_stuck_at,
    inject_payload_bitflips,
    payload_targets,
)
from repro.formats import (
    BCSRCOOFormat,
    BitmapFormat,
    CSRFormat,
    DDCFormat,
    DenseFormat,
    EncodeSpec,
    SDCFormat,
)

FORMATS = {
    "dense": DenseFormat,
    "csr": CSRFormat,
    "sdc": SDCFormat,
    "ddc": DDCFormat,
    "bitmap": BitmapFormat,
    "bcsrcoo": BCSRCOOFormat,
}


def _case(seed=0, rows=16, cols=16, m=8, sparsity=0.75):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(rows, cols))
    values[values == 0] = 1.0
    tbs = tbs_sparsify(values, m=m, sparsity=sparsity)
    return np.where(tbs.mask, values, 0.0), tbs


def _encode(fmt_name, expected, tbs, m=8):
    fmt = SDCFormat(group_rows=m) if fmt_name == "sdc" else FORMATS[fmt_name]()
    spec = EncodeSpec(tbs=tbs if fmt_name in ("ddc", "bcsrcoo") else None, block_size=m)
    return fmt, fmt.encode(expected, spec)


class TestTargets:
    def test_dense_has_only_values(self):
        assert payload_targets("dense") == ("values",)

    def test_csr_covers_everything(self):
        assert payload_targets("csr") == FAULT_TARGETS

    def test_bitmap_has_no_indices(self):
        assert payload_targets("bitmap") == ("values", "metadata")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            payload_targets("cuckoo")


class TestPayloadFlips:
    @pytest.mark.parametrize("fmt_name", sorted(FORMATS))
    def test_flip_changes_then_revert_restores(self, fmt_name):
        expected, tbs = _case()
        for target in payload_targets(fmt_name):
            fmt, encoded = _encode(fmt_name, expected, tbs)
            _, pristine = _encode(fmt_name, expected, tbs)
            record = inject_payload_bitflips(encoded, target, np.random.default_rng(7))
            assert record.injected, f"{fmt_name}/{target} should be injectable"
            record.revert(encoded)
            decoded = fmt.decode(encoded)
            np.testing.assert_array_equal(decoded, fmt.decode(pristine))

    def test_same_seed_same_flips(self):
        expected, tbs = _case()
        records = []
        for _ in range(2):
            _, encoded = _encode("csr", expected, tbs)
            records.append(inject_payload_bitflips(encoded, "indices", np.random.default_rng(11)))
        assert records[0].flips == records[1].flips

    def test_nbits_flips_that_many(self):
        expected, tbs = _case()
        _, encoded = _encode("csr", expected, tbs)
        record = inject_payload_bitflips(encoded, "values", np.random.default_rng(0), nbits=3)
        assert len(record.flips) == 3
        assert len({(f.element, f.bit) for f in record.flips}) == 3  # distinct

    def test_same_word_confines_metadata_flips(self):
        expected, tbs = _case()
        _, encoded = _encode("csr", expected, tbs)
        record = inject_payload_bitflips(
            encoded, "metadata", np.random.default_rng(0), nbits=2, same_word=True
        )
        assert len(record.meta_word_flips) == 1
        assert list(record.meta_word_flips.values()) == [2]

    def test_metadata_flips_carry_word_indices(self):
        expected, tbs = _case()
        _, encoded = _encode("bitmap", expected, tbs)
        record = inject_payload_bitflips(encoded, "metadata", np.random.default_rng(0))
        assert all(f.word >= 0 for f in record.flips)

    def test_value_flips_do_not(self):
        expected, tbs = _case()
        _, encoded = _encode("bitmap", expected, tbs)
        record = inject_payload_bitflips(encoded, "values", np.random.default_rng(0))
        assert all(f.word == -1 for f in record.flips)

    def test_ddc_metadata_flip_hits_one_info_word(self):
        expected, tbs = _case()
        fmt, encoded = _encode("ddc", expected, tbs)
        _, pristine = _encode("ddc", expected, tbs)
        record = inject_payload_bitflips(encoded, "metadata", np.random.default_rng(0))
        assert record.injected
        assert list(record.meta_word_flips.values()) == [1]
        # Revert must restore the Info table exactly (XOR involution on
        # the direction/n/offset fields).
        record.revert(encoded)
        np.testing.assert_array_equal(fmt.decode(encoded), fmt.decode(pristine))

    def test_ddc_payload_flip_targets_nonempty_block(self):
        expected, tbs = _case()
        _, encoded = _encode("ddc", expected, tbs)
        record = inject_payload_bitflips(encoded, "values", np.random.default_rng(0))
        assert record.injected
        assert all(f.block >= 0 for f in record.flips)

    def test_unknown_target_rejected(self):
        expected, tbs = _case()
        _, encoded = _encode("csr", expected, tbs)
        with pytest.raises(ValueError):
            inject_payload_bitflips(encoded, "parity", np.random.default_rng(0))

    def test_missing_target_returns_empty_record(self):
        expected, tbs = _case()
        _, encoded = _encode("dense", expected, tbs)
        record = inject_payload_bitflips(encoded, "indices", np.random.default_rng(0))
        assert not record.injected


class TestMaskStuckAt:
    def test_stuck_at_zero_clears_a_set_bit(self):
        mask = np.ones((4, 4), dtype=bool)
        faulty, (r, c), changed = inject_mask_stuck_at(mask, np.random.default_rng(0), 0)
        assert changed and not faulty[r, c]
        assert faulty.sum() == 15
        assert mask.all()  # input untouched

    def test_stuck_at_same_value_is_latent(self):
        mask = np.ones((4, 4), dtype=bool)
        _, _, changed = inject_mask_stuck_at(mask, np.random.default_rng(0), 1)
        assert not changed

    def test_rejects_bad_stuck_value(self):
        with pytest.raises(ValueError):
            inject_mask_stuck_at(np.ones((2, 2), dtype=bool), np.random.default_rng(0), 2)

    def test_rejects_empty_mask(self):
        with pytest.raises(ValueError):
            inject_mask_stuck_at(np.zeros((0, 2), dtype=bool), np.random.default_rng(0), 0)


class TestCorruptFile:
    def test_flip_changes_bytes_keeps_length(self, tmp_path):
        p = tmp_path / "ckpt.bin"
        p.write_bytes(bytes(range(64)))
        desc = corrupt_file(p, np.random.default_rng(0), mode="flip", nbytes=4)
        assert "flipped 4 bytes" in desc
        data = p.read_bytes()
        assert len(data) == 64 and data != bytes(range(64))

    def test_truncate_shortens(self, tmp_path):
        p = tmp_path / "ckpt.bin"
        p.write_bytes(bytes(64))
        corrupt_file(p, np.random.default_rng(0), mode="truncate")
        assert len(p.read_bytes()) < 64

    def test_rejects_unknown_mode(self, tmp_path):
        p = tmp_path / "f.bin"
        p.write_bytes(b"x")
        with pytest.raises(ValueError):
            corrupt_file(p, np.random.default_rng(0), mode="shred")

    def test_rejects_empty_file(self, tmp_path):
        p = tmp_path / "empty.bin"
        p.write_bytes(b"")
        with pytest.raises(ValueError):
            corrupt_file(p, np.random.default_rng(0))
