"""Tests for the chaos-injection harness and its engine integration.

The harness's two contracts (see :mod:`repro.faults.chaos`): a chaos
sweep with retries is byte-identical to a clean serial run, and the cell
cache is chaos-transparent (``--resume`` after killing a chaos sweep
recomputes only missing cells).
"""

import json
import pickle

import pytest

from repro.faults.chaos import (
    CHAOS_MODES,
    ChaosConfig,
    ChaosError,
    attempt_count,
    chaos_from_env,
    chaotic,
    wrap_payload,
)
from repro.runtime.cellcache import CellCache
from repro.sweep import SweepCell, SweepOptions, SweepSpec, fn_ref, run_sweep

from ..sweep import _cells


def _square_spec(n=4, name="chaos-squares"):
    return SweepSpec(name, tuple(
        SweepCell(key=f"x={i}", fn=_cells.square, kwargs={"x": i}) for i in range(n)
    ))


class TestChaosConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one mode"):
            ChaosConfig(modes=())
        with pytest.raises(ValueError, match="unknown chaos modes"):
            ChaosConfig(modes=("crash", "meltdown"))
        with pytest.raises(ValueError, match="first_n"):
            ChaosConfig(first_n=0)
        with pytest.raises(ValueError, match="fraction"):
            ChaosConfig(fraction=0.0)
        with pytest.raises(ValueError, match="hang_s"):
            ChaosConfig(hang_s=-1.0)

    def test_mode_for_is_deterministic(self):
        config = ChaosConfig(modes=("crash", "hang", "raise"), seed=3)
        picks = {key: config.mode_for(key) for key in ("a", "b", "c", "d")}
        assert picks == {key: config.mode_for(key) for key in picks}
        assert set(picks.values()) <= set(CHAOS_MODES)

    def test_fraction_spares_a_deterministic_share(self):
        keys = [f"cell-{i}" for i in range(200)]
        config = ChaosConfig(fraction=0.3, seed=1)
        victims = [k for k in keys if config.mode_for(k) is not None]
        assert 0 < len(victims) < len(keys)
        assert victims == [k for k in keys if config.mode_for(k) is not None]
        # fraction=1 afflicts everyone.
        assert all(ChaosConfig().mode_for(k) is not None for k in keys)


class TestChaosFromEnv:
    def test_absent_or_blank_means_no_chaos(self):
        assert chaos_from_env({}) is None
        assert chaos_from_env({"REPRO_SWEEP_CHAOS": "  "}) is None

    def test_modes_and_first_n_parse(self):
        config = chaos_from_env({"REPRO_SWEEP_CHAOS": "crash+hang:3"})
        assert config.modes == ("crash", "hang")
        assert config.first_n == 3

    def test_default_first_n_is_one(self):
        assert chaos_from_env({"REPRO_SWEEP_CHAOS": "raise"}).first_n == 1

    def test_companion_vars(self):
        config = chaos_from_env({
            "REPRO_SWEEP_CHAOS": "corrupt:2",
            "REPRO_SWEEP_CHAOS_SEED": "9",
            "REPRO_SWEEP_CHAOS_FRACTION": "0.5",
            "REPRO_SWEEP_CHAOS_HANG_S": "12.5",
            "REPRO_SWEEP_CHAOS_DIR": "/tmp/ledger",
        })
        assert config.seed == 9
        assert config.fraction == 0.5
        assert config.hang_s == 12.5
        assert config.ledger_dir == "/tmp/ledger"

    def test_malformed_spec_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            chaos_from_env({"REPRO_SWEEP_CHAOS": "crash:lots"})
        with pytest.raises(ValueError, match="unknown chaos modes"):
            chaos_from_env({"REPRO_SWEEP_CHAOS": "meltdown"})


class TestLedger:
    def test_attempts_start_at_zero_and_survive(self, tmp_path):
        assert attempt_count(tmp_path, "cell") == 0
        with pytest.raises(ChaosError):
            chaotic(
                fn=fn_ref(_cells.square), kwargs={"x": 2}, mode="raise",
                first_n=1, ledger_dir=str(tmp_path), key="cell",
            )
        assert attempt_count(tmp_path, "cell") == 1
        # Second attempt is past first_n: runs the real cell.
        value = chaotic(
            fn=fn_ref(_cells.square), kwargs={"x": 2}, mode="raise",
            first_n=1, ledger_dir=str(tmp_path), key="cell",
        )
        assert value == 4
        assert attempt_count(tmp_path, "cell") == 2

    def test_keys_do_not_collide(self, tmp_path):
        with pytest.raises(ChaosError):
            chaotic(
                fn=fn_ref(_cells.square), kwargs={"x": 1}, mode="raise",
                first_n=1, ledger_dir=str(tmp_path), key="a",
            )
        assert attempt_count(tmp_path, "a") == 1
        assert attempt_count(tmp_path, "b") == 0


class TestChaotic:
    def test_corrupt_returns_marker_then_real_value(self, tmp_path):
        kwargs = dict(
            fn=fn_ref(_cells.square), kwargs={"x": 3}, mode="corrupt",
            first_n=1, ledger_dir=str(tmp_path), key="cell",
        )
        first = chaotic(**kwargs)
        assert first != 9 and first.get("__chaos_corrupt__")
        assert chaotic(**kwargs) == 9


class TestWrapPayload:
    def _payload(self):
        return {"key": "x=1", "fn": fn_ref(_cells.square), "kwargs": {"x": 1},
                "seed": None, "check_level": "off", "obs": False}

    def test_wrapped_fn_is_the_trampoline(self, tmp_path):
        config = ChaosConfig(modes=("raise",))
        wrapped = wrap_payload(self._payload(), config, tmp_path)
        assert wrapped["fn"] == "repro.faults.chaos:chaotic"
        assert wrapped["kwargs"]["fn"] == fn_ref(_cells.square)
        assert wrapped["kwargs"]["mode"] == "raise"
        assert wrapped["key"] == "x=1"  # identity fields untouched

    def test_spared_cells_come_back_unchanged(self, tmp_path):
        config = ChaosConfig(fraction=1e-6, seed=0)
        payload = self._payload()
        assert wrap_payload(payload, config, tmp_path) is payload


def _canon(result):
    return json.dumps(result.values(), sort_keys=True, default=repr)


class TestChaosSweeps:
    """Engine integration: the invariants the harness exists to pin."""

    def test_crash_chaos_with_retries_matches_clean_serial(self, tmp_path):
        clean = run_sweep(_square_spec(), workers=1)
        chaos = ChaosConfig(modes=("crash",), ledger_dir=str(tmp_path / "ledger"))
        chaotic_run = run_sweep(
            _square_spec(), workers=2, retries=2,
            options=SweepOptions(chaos=chaos),
        )
        assert chaotic_run.ok
        assert _canon(chaotic_run) == _canon(clean)
        assert pickle.dumps(chaotic_run.values()) == pickle.dumps(clean.values())
        assert chaotic_run.supervision["retries"] == 4
        assert chaotic_run.supervision["crashes"] == 4
        assert all(c.attempts == 2 for c in chaotic_run.cells)

    def test_chaos_byte_identical_at_any_worker_count(self, tmp_path):
        clean = run_sweep(_square_spec(6), workers=1)
        runs = {}
        for workers in (1, 4):
            chaos = ChaosConfig(
                modes=("crash", "raise"), seed=2, fraction=0.7,
                ledger_dir=str(tmp_path / f"ledger-{workers}"),
            )
            runs[workers] = run_sweep(
                _square_spec(6), workers=workers, retries=2,
                options=SweepOptions(chaos=chaos),
            )
        # "raise" victims fail deterministically in both runs; crash
        # victims recover -- and the *outcomes* are worker-count-invariant.
        for workers, result in runs.items():
            assert [c.status for c in result.cells] == \
                [c.status for c in runs[1].cells]
        assert _canon_statuses(runs[4]) == _canon_statuses(runs[1])
        assert runs[1].supervision == runs[4].supervision
        # Every non-raise cell carries the clean value.
        for cell, clean_cell in zip(runs[4].cells, clean.cells):
            if cell.status == "ok":
                assert cell.value == clean_cell.value

    def test_raise_mode_is_deterministic_failure(self, tmp_path):
        chaos = ChaosConfig(modes=("raise",), ledger_dir=str(tmp_path))
        result = run_sweep(
            _square_spec(2), workers=1, retries=3,
            options=SweepOptions(chaos=chaos),
        )
        assert [c.status for c in result.cells] == ["failed", "failed"]
        assert all(c.attempts == 1 for c in result.cells)
        assert all("ChaosError" in c.error for c in result.cells)
        assert "retries" not in result.supervision

    def test_chaos_runs_share_cache_with_clean_runs(self, tmp_path):
        cache_dir = tmp_path / "cache"
        chaos = ChaosConfig(modes=("crash",), ledger_dir=str(tmp_path / "ledger"))
        first = run_sweep(
            _square_spec(), workers=2, retries=1, cache_dir=cache_dir,
            options=SweepOptions(chaos=chaos),
        )
        assert first.ok
        # A clean resume serves every cell from the chaos run's cache.
        resumed = run_sweep(_square_spec(), workers=1, cache_dir=cache_dir, resume=True)
        assert all(c.status == "cached" for c in resumed.cells)
        assert resumed.values() == first.values()

    def test_resume_after_kill_recomputes_only_missing_cells(self, tmp_path):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        cache_dir = tmp_path / "cache"

        def spec():
            return SweepSpec("resume", tuple(
                SweepCell(
                    key=f"x={i}", fn=_cells.record_run,
                    kwargs={"marker_dir": str(marker_dir), "x": i},
                )
                for i in range(5)
            ))

        full = run_sweep(spec(), workers=1, cache_dir=cache_dir)
        assert full.ok
        # Simulate a kill that lost two cells' cache entries.
        victims = {"x=1", "x=3"}
        removed = 0
        for cell in spec().cells:
            if cell.key in victims:
                CellCache(cache_dir).path(cell.key, cell.payload()).unlink()
                removed += 1
        assert removed == 2
        for marker in marker_dir.iterdir():
            marker.unlink()

        resumed = run_sweep(spec(), workers=2, cache_dir=cache_dir, resume=True)
        assert resumed.ok
        assert resumed.values() == full.values()
        recomputed = {m.name for m in marker_dir.iterdir()}
        assert recomputed == {"ran-1", "ran-3"}
        statuses = {c.key: c.status for c in resumed.cells}
        assert statuses == {
            "x=0": "cached", "x=1": "ok", "x=2": "cached",
            "x=3": "ok", "x=4": "cached",
        }

    def test_env_activation_reaches_run_sweep(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CHAOS", "raise:1")
        monkeypatch.setenv("REPRO_SWEEP_CHAOS_DIR", str(tmp_path))
        result = run_sweep(_square_spec(2), workers=1, retries=0)
        assert [c.status for c in result.cells] == ["failed", "failed"]
        assert all("ChaosError" in c.error for c in result.cells)


def _canon_statuses(result):
    return json.dumps(
        [(c.key, c.status, repr(c.value), c.attempts) for c in result.cells],
        sort_keys=True,
    )
