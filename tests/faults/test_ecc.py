"""Tests for the parity / SECDED metadata-protection model."""

import pytest

from repro.faults.ecc import ECCConfig, adjudicate, ecc_overhead_bytes, ecc_words


class TestConfig:
    def test_none_is_free(self):
        cfg = ECCConfig()
        assert not cfg.enabled
        assert cfg.check_bits == 0
        assert cfg.overhead_ratio == 0.0

    def test_parity_is_one_bit(self):
        assert ECCConfig(mode="parity").check_bits == 1

    def test_secded_16_bit_words_need_6_bits(self):
        # Hamming: r=5 covers 16 data bits (2^5 >= 16+5+1), +1 for SECDED.
        assert ECCConfig(mode="secded", word_bits=16).check_bits == 6

    def test_secded_8_bit_words_need_5_bits(self):
        assert ECCConfig(mode="secded", word_bits=8).check_bits == 5

    def test_secded_64_bit_words_need_8_bits(self):
        assert ECCConfig(mode="secded", word_bits=64).check_bits == 8

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ECCConfig(mode="chipkill")

    def test_rejects_bad_word_bits(self):
        with pytest.raises(ValueError):
            ECCConfig(word_bits=0)


class TestOverheads:
    def test_disabled_costs_nothing(self):
        assert ecc_overhead_bytes(1024, ECCConfig()) == 0
        assert ecc_words(1024, ECCConfig()) == 0

    def test_secded_overhead_scales_with_words(self):
        cfg = ECCConfig(mode="secded", word_bits=16)
        # 32 B = 16 words x 6 check bits = 96 bits = 12 B.
        assert ecc_words(32, cfg) == 16
        assert ecc_overhead_bytes(32, cfg) == 12

    def test_partial_word_rounds_up(self):
        cfg = ECCConfig(mode="parity", word_bits=16)
        assert ecc_words(1, cfg) == 1  # 8 bits still occupy one word
        assert ecc_overhead_bytes(1, cfg) == 1

    def test_zero_metadata_means_zero_overhead(self):
        assert ecc_overhead_bytes(0, ECCConfig(mode="secded")) == 0


class TestAdjudication:
    SECDED = ECCConfig(mode="secded")
    PARITY = ECCConfig(mode="parity")

    def test_disabled_never_sees_anything(self):
        assert adjudicate({0: 1}, ECCConfig()) == "undetected"

    def test_secded_corrects_single(self):
        assert adjudicate({3: 1}, self.SECDED) == "corrected"

    def test_secded_detects_double(self):
        assert adjudicate({3: 2}, self.SECDED) == "detected"

    def test_secded_misses_triple(self):
        assert adjudicate({3: 3}, self.SECDED) == "undetected"

    def test_parity_detects_odd_misses_even(self):
        assert adjudicate({0: 1}, self.PARITY) == "detected"
        assert adjudicate({0: 2}, self.PARITY) == "undetected"
        assert adjudicate({0: 3}, self.PARITY) == "detected"

    def test_aggregate_is_pessimistic(self):
        # One corrected word + one detected word -> detected overall.
        assert adjudicate({0: 1, 1: 2}, self.SECDED) == "detected"
        # Any undetected word poisons the access.
        assert adjudicate({0: 1, 1: 3}, self.SECDED) == "undetected"

    def test_clean_words_pass(self):
        assert adjudicate({}, self.SECDED) == "corrected"
        assert adjudicate({0: 0}, self.SECDED) == "corrected"
