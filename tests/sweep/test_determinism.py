"""Parallelism must not change numbers: workers N == workers 1, byte for byte.

This is the contract the whole sweep engine exists to uphold -- cells
are pure functions of their kwargs and aggregation folds in spec order,
so the worker count can only affect wall-clock, never output.  These
tests pin that down on a real experiment driver (Table 1) and on the
fault-injection campaign, comparing serialized JSON for byte equality.
"""

import json

import pytest

from repro.analysis.experiments import run_table1
from repro.faults.campaign import CampaignSpec, render_campaign, run_campaign
from repro.sweep import SweepCell, SweepSpec, run_sweep

from . import _cells


def _canon(obj):
    return json.dumps(obj, sort_keys=True, default=repr)


class TestTable1Determinism:
    GRID = dict(tasks=(("mlp", 0.75),), seeds=(0, 1), epochs=1)

    def test_parallel_table1_is_byte_identical(self):
        serial = run_table1(workers=1, **self.GRID)
        parallel = run_table1(workers=4, **self.GRID)
        assert _canon(parallel) == _canon(serial)

    def test_env_selected_workers_are_byte_identical(self, monkeypatch):
        serial = run_table1(workers=1, **self.GRID)
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        via_env = run_table1(**self.GRID)
        assert _canon(via_env) == _canon(serial)


class TestCampaignDeterminism:
    SPEC = CampaignSpec(
        formats=("sdc", "ddc"),
        models=("value_flip", "meta_flip"),
        trials=5,
        seed=0,
    )

    def test_parallel_campaign_is_byte_identical(self):
        serial = run_campaign(self.SPEC, workers=1)
        parallel = run_campaign(self.SPEC, workers=2)
        assert render_campaign(parallel) == render_campaign(serial)
        serial_cells = [
            (c.format_name, c.model, c.counts, c.sdc_rate, c.coverage)
            for c in serial.cells
        ]
        parallel_cells = [
            (c.format_name, c.model, c.counts, c.sdc_rate, c.coverage)
            for c in parallel.cells
        ]
        assert _canon(parallel_cells) == _canon(serial_cells)

    def test_campaign_cells_stay_in_spec_order(self):
        result = run_campaign(self.SPEC, workers=2)
        assert [(c.format_name, c.model) for c in result.cells] == [
            (fmt, model) for fmt in self.SPEC.formats for model in self.SPEC.models
        ]


class TestMidSweepFailure:
    def test_worker_raising_mid_cell_yields_structured_error(self):
        """A cell that blows up in a worker must not take the sweep down."""
        spec = SweepSpec(
            "with-failure",
            tuple(
                SweepCell(key=f"x={i}", fn=_cells.boom_on, kwargs={"x": i, "bad": 3})
                for i in range(6)
            ),
        )
        result = run_sweep(spec, workers=2)
        assert len(result.cells) == 6  # completed sweep
        assert not result.ok
        (failure,) = result.failures
        assert failure.key == "x=3"
        assert failure.status == "failed"
        assert failure.error == "RuntimeError: cell 3 exploded"
        assert "RuntimeError" in failure.traceback
        assert [c.value for c in result.cells if c.ok] == [0, 10, 20, 40, 50]
