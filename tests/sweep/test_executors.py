"""Tests for the supervision layer: executors, retries, circuit breaker.

Worker-death and hang scenarios run real child processes (SIGKILL,
``os._exit``, ``time.sleep`` past a deadline) -- the point is that the
supervisor observes them instead of hanging or unwinding.  Timings are
kept small but generous: assertions are on *outcomes* (status, attempt
counts, byte-equal values), never on wall-clock except for coarse
"finished well before the hang duration" bounds.
"""

import time

import pytest

from repro.sweep import (
    RetryPolicy,
    SerialExecutor,
    SupervisedProcessExecutor,
    Supervisor,
    SweepCell,
    SweepSpec,
    fn_ref,
    run_sweep,
)
from repro.sweep.executors import make_executor, resolve_executor_name

from . import _cells


def _payload(key, fn, **kwargs):
    return {"key": key, "fn": fn_ref(fn), "kwargs": kwargs, "seed": None,
            "check_level": "off", "obs": False}


def _drain(supervisor, payloads):
    """Run the supervisor to completion; ``{key: (status, attempts)}``."""
    out = {}
    for raw, attempts in supervisor.run(payloads):
        out[raw[0]] = (raw[1], attempts, raw[2])
    return out


class TestRetryPolicy:
    def test_only_transient_statuses_retry(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry("crashed", 1)
        assert policy.should_retry("timeout", 2)
        assert not policy.should_retry("failed", 1)
        assert not policy.should_retry("ok", 1)

    def test_max_attempts_bounds_retries(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry("crashed", 1)
        assert not policy.should_retry("crashed", 2)

    def test_default_never_retries(self):
        assert not RetryPolicy().should_retry("crashed", 1)

    def test_delay_deterministic_and_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1, backoff_factor=2.0, seed=7)
        d1 = policy.delay_s("cell-a", 1)
        assert d1 == policy.delay_s("cell-a", 1)  # pure function of (key, n)
        # Base doubles per attempt; jitter stretches by at most 10%.
        assert 0.1 <= d1 <= 0.1 * 1.1
        assert 0.2 <= policy.delay_s("cell-a", 2) <= 0.2 * 1.1
        assert 0.4 <= policy.delay_s("cell-a", 3) <= 0.4 * 1.1

    def test_jitter_varies_by_key(self):
        policy = RetryPolicy(max_attempts=2, backoff_s=1.0, jitter=0.5)
        delays = {policy.delay_s(f"cell-{i}", 1) for i in range(16)}
        assert len(delays) > 1

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="transient"):
            RetryPolicy(retry_statuses=("failed",))


class TestResolveExecutorName:
    def test_auto_is_serial_at_one_worker(self):
        assert resolve_executor_name(None, 1) == "serial"
        assert resolve_executor_name("auto", 1) == "serial"

    def test_auto_is_supervised_when_parallel(self):
        assert resolve_executor_name(None, 4) == "supervised"

    def test_chaos_forces_supervised(self):
        assert resolve_executor_name("auto", 1, force_supervised=True) == "supervised"

    def test_explicit_serial_honoured_even_under_force(self):
        assert resolve_executor_name("serial", 1, force_supervised=True) == "serial"

    def test_explicit_supervised_at_one_worker(self):
        assert resolve_executor_name("supervised", 1) == "supervised"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor_name("threads", 2)
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("threads", 2)


class TestSerialExecutor:
    def test_submit_then_poll_settles_inline(self):
        ex = SerialExecutor()
        ex.submit(_payload("k", _cells.square, x=5))
        assert ex.free_slots() == 0  # settled result must be drained first
        (raw,) = ex.poll(0.0)
        assert raw[0] == "k" and raw[1] == "ok" and raw[2] == 25
        assert ex.free_slots() == 1

    def test_timeout_warned_and_ignored(self, caplog):
        with caplog.at_level("WARNING", logger="repro.sweep"):
            SerialExecutor(timeout_s=1.0)
        assert "cannot enforce" in caplog.text


class TestSupervisedExecutor:
    def test_worker_exit_classified_crashed(self):
        ex = SupervisedProcessExecutor(1)
        try:
            ex.submit(_payload("k", _cells.crash_self, code=23))
            settled = []
            deadline = time.monotonic() + 30
            while not settled and time.monotonic() < deadline:
                settled = ex.poll(0.2)
            (raw,) = settled
            assert raw[1] == "crashed"
            assert "exitcode 23" in raw[2]["error"]
        finally:
            ex.close()

    def test_sigkilled_worker_never_hangs_the_sweep(self, tmp_path):
        spec = SweepSpec("sigkill", (
            SweepCell(key="victim", fn=_cells.sigkill_self),
            SweepCell(key="x=3", fn=_cells.square, kwargs={"x": 3}),
        ))
        result = run_sweep(spec, workers=2, executor="supervised")
        assert result.value("x=3") == 9  # sibling unaffected
        victim = result.cells[0]
        assert victim.status == "crashed" and "died without a result" in victim.error
        assert not result.ok

    def test_hung_cell_times_out_without_stalling_siblings(self):
        spec = SweepSpec("hangs", (
            SweepCell(key="hung", fn=_cells.hang, kwargs={"seconds": 600.0}),
            SweepCell(key="x=2", fn=_cells.square, kwargs={"x": 2}),
            SweepCell(key="x=4", fn=_cells.square, kwargs={"x": 4}),
        ))
        start = time.monotonic()
        result = run_sweep(spec, workers=2, executor="supervised", timeout=2.0)
        elapsed = time.monotonic() - start
        assert elapsed < 60  # nowhere near the 600 s sleep
        hung = result.cells[0]
        assert hung.status == "timeout"
        assert "timeout" in hung.error
        assert result.value("x=2") == 4 and result.value("x=4") == 16

    def test_deterministic_raise_never_retried(self):
        spec = SweepSpec("boom", (
            SweepCell(key="bad", fn=_cells.boom, kwargs={"x": 1}),
        ))
        result = run_sweep(spec, workers=1, executor="supervised", retries=3)
        cell = result.cells[0]
        assert cell.status == "failed"
        assert cell.attempts == 1  # retry budget untouched
        assert result.supervision == {}


class TestRetries:
    def test_crashed_cell_retried_to_success(self, tmp_path):
        spec = SweepSpec("crash-once", tuple(
            SweepCell(
                key=f"x={i}", fn=_cells.crash_first,
                kwargs={"marker_dir": str(tmp_path), "x": i},
            )
            for i in range(3)
        ))
        result = run_sweep(spec, workers=2, executor="supervised", retries=1)
        assert result.ok
        assert [c.value for c in result.cells] == [0, 7, 14]
        assert all(c.attempts == 2 for c in result.cells)
        assert result.supervision["retries"] == 3
        assert result.supervision["crashes"] == 3

    def test_hung_cell_retried_after_timeout(self, tmp_path):
        spec = SweepSpec("hang-once", (
            SweepCell(
                key="x=5", fn=_cells.hang_first,
                kwargs={"marker_dir": str(tmp_path), "x": 5, "seconds": 600.0},
            ),
        ))
        result = run_sweep(
            spec, workers=1, executor="supervised", timeout=2.0, retries=1
        )
        assert result.ok
        assert result.value("x=5") == 105
        assert result.cells[0].attempts == 2
        assert result.supervision["timeouts"] == 1
        assert result.supervision["retries"] == 1

    def test_exhausted_retries_surface_transient_status(self):
        spec = SweepSpec("crash-always", (
            SweepCell(key="doomed", fn=_cells.crash_self),
            SweepCell(key="x=6", fn=_cells.square, kwargs={"x": 6}),
        ))
        result = run_sweep(spec, workers=2, executor="supervised", retries=1)
        doomed = result.cells[0]
        assert doomed.status == "crashed"
        assert doomed.attempts == 2  # initial + one retry, both crashed
        assert result.value("x=6") == 36
        assert not result.ok

    def test_summary_and_metrics_report_supervision(self, tmp_path):
        from repro import obs

        spec = SweepSpec("crash-once", (
            SweepCell(
                key="x=1", fn=_cells.crash_first,
                kwargs={"marker_dir": str(tmp_path), "x": 1},
            ),
        ))
        obs.reset()
        with obs.enabled_scope():
            result = run_sweep(spec, workers=1, executor="supervised", retries=1)
            counters = obs.metrics_dict(deterministic_only=True)["counters"]
        assert "1 retries" in result.summary()
        assert result.supervision == {"retries": 1, "crashes": 1}
        assert counters["sweep.retries"] == 1
        assert counters["sweep.crashes"] == 1
        assert counters["sweep.cells_ok"] == 1


class TestCircuitBreaker:
    def _crashy_then_clean(self, n_crash, n_clean):
        cells = [
            SweepCell(key=f"crash-{i}", fn=_cells.crash_self) for i in range(n_crash)
        ] + [
            SweepCell(key=f"x={i}", fn=_cells.square, kwargs={"x": i})
            for i in range(n_clean)
        ]
        return [
            {"key": c.key, "fn": c.fn, "kwargs": c.kwargs, "seed": None,
             "check_level": "off", "obs": False}
            for c in cells
        ]

    def test_consecutive_crashes_degrade_to_inline(self):
        ex = SupervisedProcessExecutor(1)
        sup = Supervisor(ex, RetryPolicy(max_attempts=1), breaker_threshold=2)
        try:
            out = _drain(sup, self._crashy_then_clean(2, 3))
        finally:
            ex.close()
        assert sup.degraded
        assert sup.stats.degraded == 1
        assert sup.stats.crashes == 2
        assert out["crash-0"][0] == "crashed" and out["crash-1"][0] == "crashed"
        # Clean cells completed inline after the trip.
        assert [out[f"x={i}"][0] for i in range(3)] == ["ok", "ok", "ok"]
        assert [out[f"x={i}"][2] for i in range(3)] == [0, 1, 4]

    def test_success_resets_consecutive_counter(self):
        ex = SupervisedProcessExecutor(1)
        sup = Supervisor(ex, RetryPolicy(max_attempts=1), breaker_threshold=2)
        # Interleave: crash, ok, crash, ok -- never two consecutive crashes.
        payloads = self._crashy_then_clean(1, 1)
        extra = [
            {"key": "crash-b", "fn": fn_ref(_cells.crash_self), "kwargs": {},
             "seed": None, "check_level": "off", "obs": False},
            {"key": "x=9", "fn": fn_ref(_cells.square), "kwargs": {"x": 9},
             "seed": None, "check_level": "off", "obs": False},
        ]
        try:
            out = _drain(sup, payloads + extra)
        finally:
            ex.close()
        assert not sup.degraded
        assert sup.stats.crashes == 2
        assert out["x=9"][0] == "ok"

    def test_breaker_disabled_with_none_threshold(self):
        ex = SupervisedProcessExecutor(1)
        sup = Supervisor(ex, RetryPolicy(max_attempts=1), breaker_threshold=None)
        try:
            out = _drain(sup, self._crashy_then_clean(6, 1))
        finally:
            ex.close()
        assert not sup.degraded
        assert sup.stats.crashes == 6
        assert out["x=0"][0] == "ok"

    def test_rejects_bad_threshold(self):
        ex = SerialExecutor()
        with pytest.raises(ValueError, match="breaker_threshold"):
            Supervisor(ex, breaker_threshold=0)
