"""Tests for the sweep execution engine (sharding, caching, isolation)."""

import os

import pytest

from repro.runtime.checks import check_level
from repro.sweep import (
    SweepCancelled,
    SweepCell,
    SweepError,
    SweepOptions,
    SweepSpec,
    configured_workers,
    default_workers,
    run_sweep,
)

from . import _cells


def _square_spec(n=4, name="squares"):
    return SweepSpec(
        name,
        tuple(SweepCell(key=f"x={i}", fn=_cells.square, kwargs={"x": i}) for i in range(n)),
    )


class TestConfiguredWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert configured_workers() == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "8")
        assert configured_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "5")
        assert configured_workers() == 5

    def test_malformed_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "many")
        assert configured_workers() == 1

    def test_rejects_non_positive(self):
        with pytest.raises(SweepError, match="workers"):
            configured_workers(0)

    def test_default_workers_uses_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert default_workers() >= 1


class TestRunSweepInline:
    def test_results_in_spec_order(self):
        result = run_sweep(_square_spec())
        assert [c.key for c in result.cells] == ["x=0", "x=1", "x=2", "x=3"]
        assert [c.value for c in result.cells] == [0, 1, 4, 9]
        assert result.ok and result.workers == 1

    def test_value_lookup(self):
        result = run_sweep(_square_spec())
        assert result.value("x=3") == 9
        with pytest.raises(KeyError):
            result.value("x=99")
        assert result.values() == {"x=0": 0, "x=1": 1, "x=2": 4, "x=3": 9}

    def test_rejects_bad_worker_count(self):
        with pytest.raises(SweepError, match="workers"):
            run_sweep(_square_spec(), workers=0)

    def test_progress_called_per_cell(self):
        seen = []
        run_sweep(_square_spec(), progress=lambda cell, done, total: seen.append((cell.key, done, total)))
        assert len(seen) == 4
        assert seen[-1][1:] == (4, 4)


class TestFaultIsolation:
    def _failing_spec(self):
        return SweepSpec(
            "mixed",
            tuple(
                SweepCell(key=f"x={i}", fn=_cells.boom_on, kwargs={"x": i, "bad": 2})
                for i in range(4)
            ),
        )

    def test_failed_cell_is_structured_and_sweep_completes(self):
        result = run_sweep(self._failing_spec())
        assert not result.ok
        assert len(result.cells) == 4  # the sweep ran to the end
        bad = result.cells[2]
        assert bad.status == "failed"
        assert bad.error == "RuntimeError: cell 2 exploded"
        assert "boom_on" in bad.traceback
        assert [c.value for c in result.cells if c.ok] == [0, 10, 30]

    def test_value_raises_for_failed_cell(self):
        result = run_sweep(self._failing_spec())
        with pytest.raises(SweepError, match="cell 2 exploded"):
            result.value("x=2")

    def test_strict_raises_after_completion(self):
        with pytest.raises(SweepError, match="1 cell\\(s\\) failed"):
            run_sweep(self._failing_spec(), strict=True)

    def test_unpicklable_value_is_a_failed_cell(self):
        spec = SweepSpec(
            "lam", (SweepCell(key="k", fn=_cells.unpicklable, kwargs={"x": 1}),)
        )
        result = run_sweep(spec)
        assert result.cells[0].status == "failed"
        assert "pickle" in result.cells[0].error.lower()


class TestParallel:
    def test_parallel_matches_inline(self):
        inline = run_sweep(_square_spec(8))
        parallel = run_sweep(_square_spec(8), workers=4)
        assert [c.value for c in parallel.cells] == [c.value for c in inline.cells]
        assert parallel.workers == 4

    def test_work_happens_in_worker_processes(self):
        spec = SweepSpec(
            "pids",
            tuple(SweepCell(key=f"c{i}", fn=_cells.pid_of_worker) for i in range(4)),
        )
        result = run_sweep(spec, workers=2)
        assert all(c.worker != os.getpid() for c in result.cells)

    def test_worker_failure_is_isolated(self):
        spec = SweepSpec(
            "mixed",
            tuple(
                SweepCell(key=f"x={i}", fn=_cells.boom_on, kwargs={"x": i, "bad": 1})
                for i in range(4)
            ),
        )
        result = run_sweep(spec, workers=2)
        assert [c.status for c in result.cells] == ["ok", "failed", "ok", "ok"]
        assert result.cells[1].error == "RuntimeError: cell 1 exploded"
        assert result.cells[1].traceback

    def test_check_level_propagates_to_workers(self):
        spec = SweepSpec(
            "lvl", (SweepCell(key="k", fn=_cells.ambient_check_level),)
        )
        with check_level("strict"):
            result = run_sweep(spec, workers=2)
        assert result.value("k") == "strict"


class TestCellCache:
    def test_resume_serves_cached_cells(self, tmp_path):
        first = run_sweep(_square_spec(), cache_dir=tmp_path)
        assert all(c.status == "ok" for c in first.cells)
        assert len(list(tmp_path.glob("*.pkl"))) == 4

        second = run_sweep(_square_spec(), cache_dir=tmp_path, resume=True)
        assert all(c.status == "cached" for c in second.cells)
        assert [c.value for c in second.cells] == [c.value for c in first.cells]
        assert "4 from cache" in second.summary()

    def test_without_resume_cache_is_ignored(self, tmp_path):
        run_sweep(_square_spec(), cache_dir=tmp_path)
        again = run_sweep(_square_spec(), cache_dir=tmp_path)
        assert all(c.status == "ok" for c in again.cells)

    def test_cache_keys_on_kwargs(self, tmp_path):
        run_sweep(_square_spec(), cache_dir=tmp_path)
        changed = SweepSpec(
            "squares",
            tuple(
                SweepCell(key=f"x={i}", fn=_cells.square, kwargs={"x": i + 10})
                for i in range(4)
            ),
        )
        result = run_sweep(changed, cache_dir=tmp_path, resume=True)
        # same keys, different kwargs -> different hashes -> recompute
        assert all(c.status == "ok" for c in result.cells)
        assert result.value("x=0") == 100

    def test_failed_cells_are_not_cached(self, tmp_path):
        spec = SweepSpec(
            "mixed",
            tuple(
                SweepCell(key=f"x={i}", fn=_cells.boom_on, kwargs={"x": i, "bad": 0})
                for i in range(2)
            ),
        )
        run_sweep(spec, cache_dir=tmp_path)
        resumed = run_sweep(spec, cache_dir=tmp_path, resume=True)
        assert resumed.cells[0].status == "failed"  # recomputed, not served
        assert resumed.cells[1].status == "cached"

    def test_resume_after_partial_sweep_only_computes_missing(self, tmp_path):
        partial = SweepSpec("squares", _square_spec().cells[:2])
        run_sweep(partial, cache_dir=tmp_path)
        full = run_sweep(_square_spec(), cache_dir=tmp_path, resume=True)
        statuses = [c.status for c in full.cells]
        assert statuses == ["cached", "cached", "ok", "ok"]

    def test_none_valued_cell_is_cached_and_served(self, tmp_path):
        spec = SweepSpec("nones", (SweepCell(key="n", fn=_cells.none_value),))
        first = run_sweep(spec, cache_dir=tmp_path)
        assert first.cells[0].status == "ok" and first.cells[0].value is None

        resumed = run_sweep(spec, cache_dir=tmp_path, resume=True)
        # A legitimate None result is a cache *hit*, not a miss.
        assert resumed.cells[0].status == "cached"
        assert resumed.cells[0].value is None


class TestRngHygiene:
    def test_inline_sweep_does_not_perturb_global_rng(self):
        import numpy as np

        np.random.seed(123)
        expected = np.random.random()

        np.random.seed(123)
        spec = SweepSpec("rng", (
            SweepCell(key="draw", fn=_cells.np_draw, seed=7),
            SweepCell(key="draw2", fn=_cells.np_draw, seed=8),
        ))
        result = run_sweep(spec, workers=1)
        assert result.ok
        # The cells drew from their own seeded streams...
        assert result.value("draw") != result.value("draw2")
        # ...and the caller's global stream is exactly where it was.
        assert np.random.random() == expected


class _Flag:
    """Minimal event-like cancel token (anything with is_set())."""

    def __init__(self):
        self._set = False

    def set(self):
        self._set = True

    def is_set(self):
        return self._set


class TestCancellation:
    def test_cancel_mid_sweep_raises_with_pending_keys(self, tmp_path):
        token = _Flag()

        def stop_after_two(cell, done, total):
            if done >= 2:
                token.set()

        with pytest.raises(SweepCancelled) as excinfo:
            run_sweep(
                _square_spec(6), cache_dir=tmp_path, progress=stop_after_two,
                cancel=token,
            )
        exc = excinfo.value
        assert exc.done < exc.total == 6
        assert exc.pending_keys  # the unsettled remainder is reported

    def test_cancelled_sweep_resumes_from_cache(self, tmp_path):
        token = _Flag()

        def stop_immediately(cell, done, total):
            token.set()

        with pytest.raises(SweepCancelled):
            run_sweep(
                _square_spec(6), cache_dir=tmp_path, progress=stop_immediately,
                cancel=token,
            )
        # second run, no cancel: settled cells replay from cache
        result = run_sweep(_square_spec(6), cache_dir=tmp_path, resume=True)
        assert result.ok
        assert result.values() == {f"x={i}": i * i for i in range(6)}
        assert any(c.status == "cached" for c in result.cells)

    def test_cancel_via_options_matches_explicit_kwarg(self, tmp_path):
        token = _Flag()
        token.set()  # pre-set: nothing may run
        options = SweepOptions(cancel=token)
        with pytest.raises(SweepCancelled) as excinfo:
            run_sweep(_square_spec(3), options=options)
        assert excinfo.value.done == 0

    def test_unset_token_changes_nothing(self):
        result = run_sweep(_square_spec(3), cancel=_Flag())
        assert result.ok and len(result.cells) == 3

    def test_unsettled_cells_without_cancel_are_an_error(self, monkeypatch):
        # A supervisor that silently drops cells is a bug, not a
        # resumable stop: with no cancel token set, the engine must
        # raise plain SweepError, never SweepCancelled.
        from repro.sweep import engine

        class _DroppingSupervisor(engine.Supervisor):
            def run(self, payloads, cancel=None):
                return iter(())

        monkeypatch.setattr(engine, "Supervisor", _DroppingSupervisor)
        with pytest.raises(SweepError) as excinfo:
            run_sweep(_square_spec(3), cancel=_Flag())
        assert not isinstance(excinfo.value, SweepCancelled)
        assert "never settled" in str(excinfo.value)

    def test_options_progress_callback_is_used(self):
        seen = []
        options = SweepOptions(progress=lambda cell, done, total: seen.append(cell.key))
        result = run_sweep(_square_spec(3), options=options)
        assert result.ok and sorted(seen) == ["x=0", "x=1", "x=2"]
