"""Module-level cell bodies for the sweep tests.

Worker processes re-import cell callables by ``module:qualname``
reference, so everything a sweep runs must live at module level --
hence this helper module rather than closures inside the tests.
"""

import os


def add(a, b):
    return a + b


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"injected failure on {x}")


def boom_on(x, bad):
    if x == bad:
        raise RuntimeError(f"cell {x} exploded")
    return x * 10


def unpicklable(x):
    return lambda: x  # lambdas cannot cross the process boundary


def pid_of_worker():
    return os.getpid()


def ambient_check_level():
    from repro.runtime.checks import get_check_level

    return get_check_level()
