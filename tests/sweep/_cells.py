"""Module-level cell bodies for the sweep tests.

Worker processes re-import cell callables by ``module:qualname``
reference, so everything a sweep runs must live at module level --
hence this helper module rather than closures inside the tests.
"""

import os
import signal
import time


def add(a, b):
    return a + b


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"injected failure on {x}")


def boom_on(x, bad):
    if x == bad:
        raise RuntimeError(f"cell {x} exploded")
    return x * 10


def unpicklable(x):
    return lambda: x  # lambdas cannot cross the process boundary


def pid_of_worker():
    return os.getpid()


def ambient_check_level():
    from repro.runtime.checks import get_check_level

    return get_check_level()


def none_value():
    return None


def np_draw():
    import numpy as np

    return float(np.random.random())


def crash_self(code=21):
    os._exit(code)


def sigkill_self():
    os.kill(os.getpid(), signal.SIGKILL)


def hang(seconds=3600.0):
    time.sleep(seconds)
    return "woke"


def sleep_then(x, seconds=0.0):
    time.sleep(seconds)
    return x


def _marker(marker_dir, name):
    return os.path.join(marker_dir, name)


def crash_first(marker_dir, x, code=21):
    """SIGKILL itself on the first run, return ``x * 7`` afterwards."""
    marker = _marker(marker_dir, f"crashed-{x}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 7


def hang_first(marker_dir, x, seconds=3600.0):
    """Hang past any deadline on the first run, return ``x + 100`` after."""
    marker = _marker(marker_dir, f"hung-{x}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(seconds)
    return x + 100


def record_run(marker_dir, x):
    """Leave a marker per execution (for resume-recomputes-only-missing)."""
    with open(_marker(marker_dir, f"ran-{x}"), "a") as fh:
        fh.write("1")
    return x * 3
