"""Tests for sweep specifications (cells, refs, seeds)."""

import pytest

from repro.sweep import SweepCell, SweepSpec, derive_seed, fn_ref, resolve_fn

from . import _cells


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "a", 1) == derive_seed(0, "a", 1)

    def test_varies_with_parts_and_base(self):
        seeds = {derive_seed(0, "a"), derive_seed(0, "b"), derive_seed(1, "a")}
        assert len(seeds) == 3

    def test_fits_32_bits(self):
        for part in range(50):
            assert 0 <= derive_seed(7, part) < 2**32


class TestFnRef:
    def test_roundtrip(self):
        ref = fn_ref(_cells.add)
        assert ref == "tests.sweep._cells:add"
        assert resolve_fn(ref) is _cells.add

    def test_accepts_existing_ref_string(self):
        assert fn_ref("tests.sweep._cells:add") == "tests.sweep._cells:add"

    def test_rejects_lambda(self):
        with pytest.raises(ValueError, match="module-level"):
            fn_ref(lambda x: x)

    def test_rejects_malformed_ref(self):
        with pytest.raises(ValueError, match="malformed"):
            resolve_fn("no-colon-here")

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError, match="non-callable"):
            resolve_fn("tests.sweep._cells:__doc__")


class TestSweepCell:
    def test_normalizes_fn_to_ref(self):
        cell = SweepCell(key="k", fn=_cells.square, kwargs={"x": 3})
        assert cell.fn == "tests.sweep._cells:square"

    def test_payload_is_logical_identity(self):
        cell = SweepCell(key="k", fn=_cells.square, kwargs={"x": 3}, seed=5)
        assert cell.payload() == {
            "fn": "tests.sweep._cells:square",
            "kwargs": {"x": 3},
            "seed": 5,
        }


class TestSweepSpec:
    def test_rejects_duplicate_keys(self):
        cells = (
            SweepCell(key="k", fn=_cells.square, kwargs={"x": 1}),
            SweepCell(key="k", fn=_cells.square, kwargs={"x": 2}),
        )
        with pytest.raises(ValueError, match="duplicate cell key"):
            SweepSpec("s", cells)

    def test_len(self):
        cells = tuple(
            SweepCell(key=f"k{i}", fn=_cells.square, kwargs={"x": i}) for i in range(4)
        )
        assert len(SweepSpec("s", cells)) == 4

    def test_build_without_base_seed(self):
        spec = SweepSpec.build("s", _cells.add, [("a", {"a": 1, "b": 2})])
        assert spec.cells[0].seed is None

    def test_build_derives_seeds_per_key(self):
        grid = [("a", {"a": 1, "b": 2}), ("b", {"a": 3, "b": 4})]
        spec = SweepSpec.build("s", _cells.add, grid, base_seed=0)
        assert spec.cells[0].seed == derive_seed(0, "a")
        assert spec.cells[1].seed == derive_seed(0, "b")
        assert spec.cells[0].seed != spec.cells[1].seed
