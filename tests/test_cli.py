"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import _EXPERIMENTS, build_parser, main


class TestParser:
    def test_report_defaults(self):
        args = build_parser().parse_args(["report", "table3"])
        assert args.experiment == "table3"
        assert args.seeds == 1
        assert args.checkpoint_dir is None and not args.resume

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "table9"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_list_matches_analysis(self):
        """The parser's local copy must track the analysis registry."""
        from repro.analysis import EXPERIMENTS

        assert _EXPERIMENTS == EXPERIMENTS

    def test_format_names_match_registry(self):
        """The parser's local copy must track the format registry."""
        from repro.cli import _FORMAT_NAMES
        from repro.formats import available_formats

        assert _FORMAT_NAMES == available_formats()

    def test_orientations_match_formats(self):
        from repro.cli import _ORIENTATIONS
        from repro.formats import ORIENTATIONS

        assert _ORIENTATIONS == ORIENTATIONS

    def test_scenario_families_match_workloads(self):
        """The parser's local copy must track the scenario registry."""
        from repro.cli import _SCENARIO_FAMILIES
        from repro.workloads.scenarios import SCENARIO_FAMILIES

        assert _SCENARIO_FAMILIES == SCENARIO_FAMILIES


class TestReport:
    def test_table3(self, capsys):
        assert main(["report", "table3"]) == 0
        out = capsys.readouterr().out
        assert "DVPE Array" in out and "1.47" in out

    def test_fig4(self, capsys):
        assert main(["report", "fig4"]) == 0
        assert "similarity_vs_US" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["report", "fig6"]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_fig17(self, capsys):
        assert main(["report", "fig17"]) == 0
        assert "col" in capsys.readouterr().out

    def test_wide(self, capsys):
        assert main(["report", "wide", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "tsenor_vs_exact" in out and "wide64" in out

    def test_rejects_bad_seed_count(self, capsys):
        assert main(["report", "table3", "--seeds", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "seeds" in err

    def test_rejects_negative_retries(self, capsys):
        assert main(["report", "table3", "--retries", "-1"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_cache_and_resume(self, tmp_path, capsys):
        assert main(["report", "table3", "--checkpoint-dir", str(tmp_path)]) == 0
        first = capsys.readouterr().out
        assert "(cached)" not in first
        assert list(tmp_path.glob("table3-*.pkl"))

        assert main([
            "report", "table3", "--checkpoint-dir", str(tmp_path), "--resume",
        ]) == 0
        second = capsys.readouterr().out
        assert "--- table3 (cached) ---" in second
        assert "DVPE Array" in second  # cached cells still render

    def test_failed_cell_reports_one_line(self, capsys, monkeypatch):
        import repro.analysis.experiments as experiments

        def boom(**kwargs):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(experiments, "run_experiment", boom)
        assert main(["report", "table3", "--retries", "0"]) == 1
        captured = capsys.readouterr()
        assert "error: table3 failed after 1 attempt(s)" in captured.err
        assert "Traceback" not in captured.err

    def test_strict_checks_flag(self, capsys):
        from repro.runtime.checks import get_check_level

        assert main(["report", "fig4", "--strict-checks"]) == 0
        assert get_check_level() == "off"  # flag must not leak globally


class TestScenariosCli:
    """The ``report scenarios`` win/loss table and its family filtering."""

    def test_renders_both_tables(self, capsys):
        assert main(["report", "scenarios", "--scale", "64"]) == 0
        out = capsys.readouterr().out
        assert "family/format/orientation" in out
        for family in ("stencil", "moe", "inference24"):
            assert family in out
        assert "winner" in out

    def test_json_round_trips_the_driver_output(self, capsys):
        from repro.analysis.experiments import run_scenarios

        assert main(["report", "scenarios", "--scale", "64", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        expected = json.loads(
            json.dumps(run_scenarios(scale=64, workers=1), sort_keys=True, default=repr)
        )
        assert payload == expected

    def test_families_filtering(self, capsys):
        assert main([
            "report", "scenarios", "--scale", "64", "--families", "inference24", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == ["inference24"]

    def test_unknown_family_fails_with_one_line(self, capsys):
        assert main([
            "report", "scenarios", "--scale", "64", "--families", "bogus", "--retries", "0",
        ]) == 1
        err = capsys.readouterr().err
        assert "unknown workload family 'bogus'" in err
        assert "Traceback" not in err

    def test_sweep_unknown_family_fails_with_one_line(self, capsys):
        assert main(["sweep", "scenarios", "--families", "bogus"]) == 1
        captured = capsys.readouterr()
        error_lines = [l for l in captured.err.splitlines() if l.startswith("error:")]
        assert error_lines == [
            "error: unknown workload family 'bogus'; known: stencil, moe, inference24"
        ]
        assert "Traceback" not in captured.err


class TestPrune:
    def test_prunes_and_saves(self, tmp_path, capsys):
        path = tmp_path / "w.npy"
        np.save(path, np.random.default_rng(0).normal(size=(32, 32)))
        assert main(["prune", str(path), "--pattern", "TBS", "--sparsity", "0.75"]) == 0
        mask = np.load(tmp_path / "w.mask.npy")
        assert mask.dtype == bool
        assert abs((1 - mask.mean()) - 0.75) < 0.1

    def test_other_patterns(self, tmp_path):
        path = tmp_path / "w.npy"
        np.save(path, np.random.default_rng(1).normal(size=(16, 16)))
        for pattern in ("US", "TS", "RS_V"):
            assert main(["prune", str(path), "--pattern", pattern]) == 0

    def test_rejects_non_2d(self, tmp_path, capsys):
        path = tmp_path / "w.npy"
        np.save(path, np.ones(8))
        assert main(["prune", str(path)]) == 2

    def test_custom_output_path(self, tmp_path):
        path = tmp_path / "w.npy"
        out = tmp_path / "custom.npy"
        np.save(path, np.random.default_rng(2).normal(size=(16, 16)))
        assert main(["prune", str(path), "--out", str(out)]) == 0
        assert out.exists()

    def test_missing_weights_file(self, tmp_path, capsys):
        assert main(["prune", str(tmp_path / "nope.npy")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "cannot read weights" in err
        assert "Traceback" not in err

    def test_unreadable_weights_file(self, tmp_path, capsys):
        path = tmp_path / "corrupt.npy"
        path.write_text("this is not a numpy file")
        assert main(["prune", str(path)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    @pytest.mark.parametrize("sparsity", ["1.5", "-0.25", "1.0"])
    def test_invalid_sparsity(self, tmp_path, capsys, sparsity):
        path = tmp_path / "w.npy"
        np.save(path, np.ones((8, 8)))
        assert main(["prune", str(path), "--sparsity", sparsity]) == 2
        assert "sparsity must be in [0, 1)" in capsys.readouterr().err

    def test_invalid_m(self, tmp_path, capsys):
        path = tmp_path / "w.npy"
        np.save(path, np.ones((8, 8)))
        assert main(["prune", str(path), "--m", "0"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_unwritable_output(self, tmp_path, capsys):
        path = tmp_path / "w.npy"
        np.save(path, np.ones((8, 8)))
        out = tmp_path / "no" / "such" / "dir" / "mask.npy"
        assert main(["prune", str(path), "--out", str(out)]) == 2
        assert "cannot write mask" in capsys.readouterr().err

    def test_strict_checks_pass_on_valid_mask(self, tmp_path):
        path = tmp_path / "w.npy"
        np.save(path, np.random.default_rng(3).normal(size=(32, 32)))
        assert main(["prune", str(path), "--strict-checks"]) == 0

    def test_nmt_pattern_with_tsolver(self, tmp_path, capsys):
        from repro.core.patterns import PatternFamily, PatternSpec
        from repro.core.validate import validate_mask

        path = tmp_path / "w.npy"
        np.save(path, np.random.default_rng(4).normal(size=(32, 32)))
        assert main([
            "prune", str(path), "--pattern", "NMT", "--sparsity", "0.75",
            "--tsolver", "tsenor",
        ]) == 0
        assert "solver tsenor" in capsys.readouterr().out
        mask = np.load(tmp_path / "w.mask.npy")
        spec = PatternSpec(PatternFamily.NMT, m=8, sparsity=0.75)
        assert validate_mask(mask, spec).ok

    def test_nmt_default_solver_is_greedy(self, tmp_path, capsys):
        path = tmp_path / "w.npy"
        np.save(path, np.random.default_rng(5).normal(size=(16, 16)))
        assert main(["prune", str(path), "--pattern", "NMT"]) == 0
        assert "solver greedy" in capsys.readouterr().out

    def test_rejects_unknown_tsolver(self, tmp_path):
        path = tmp_path / "w.npy"
        np.save(path, np.ones((8, 8)))
        with pytest.raises(SystemExit):
            main(["prune", str(path), "--pattern", "NMT", "--tsolver", "simplex"])


class TestSimulate:
    def test_basic(self, capsys):
        rc = main(["simulate", "--rows", "128", "--cols", "128", "--b-cols", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "EDP" in out

    def test_all_archs(self, capsys):
        for arch in ("TC", "STC", "VEGETA", "RM-STC", "TB-STC"):
            rc = main([
                "simulate", "--rows", "64", "--cols", "64", "--b-cols", "16", "--arch", arch,
            ])
            assert rc == 0

    def test_unknown_arch(self, capsys):
        rc = main(["simulate", "--rows", "64", "--cols", "64", "--b-cols", "16", "--arch", "TPU"])
        assert rc == 2

    def test_invalid_sparsity(self, capsys):
        rc = main([
            "simulate", "--rows", "64", "--cols", "64", "--b-cols", "16",
            "--sparsity", "-0.1",
        ])
        assert rc == 2
        assert "sparsity must be in [0, 1)" in capsys.readouterr().err

    def test_invalid_dims(self, capsys):
        rc = main(["simulate", "--rows", "0", "--cols", "64", "--b-cols", "16"])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_strict_checks(self, capsys):
        rc = main([
            "simulate", "--rows", "64", "--cols", "64", "--b-cols", "16",
            "--strict-checks",
        ])
        assert rc == 0
        assert "cycles" in capsys.readouterr().out

    def test_orientation_flag(self, capsys):
        rc = main([
            "simulate", "--rows", "64", "--cols", "64", "--b-cols", "16",
            "--orientation", "transposed",
        ])
        assert rc == 0
        assert "cycles" in capsys.readouterr().out

    def test_rejects_unknown_orientation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "simulate", "--rows", "64", "--cols", "64", "--b-cols", "16",
                "--orientation", "diagonal",
            ])


class TestFaults:
    SMALL = ["--trials", "4", "--rows", "16", "--cols", "16",
             "--formats", "ddc", "csr", "--models", "meta_flip", "value_flip"]

    def test_small_campaign_prints_table(self, capsys):
        assert main(["faults", "--seed", "0", *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "SDC rate" in out and "coverage" in out
        assert "ddc" in out and "csr" in out
        assert "ecc=none" in out

    def test_seed_zero_is_bit_reproducible(self, capsys):
        assert main(["faults", "--seed", "0", *self.SMALL]) == 0
        first = capsys.readouterr().out
        assert main(["faults", "--seed", "0", *self.SMALL]) == 0
        assert capsys.readouterr().out == first

    def test_secded_prints_overhead_line(self, capsys):
        assert main(["faults", "--seed", "0", "--ecc", "secded", *self.SMALL]) == 0
        out = capsys.readouterr().out
        assert "ecc=secded" in out
        assert "ecc overhead" in out and "check bits" in out and "pJ" in out

    def test_secded_metadata_column_has_no_silent(self, capsys):
        assert main([
            "faults", "--seed", "0", "--ecc", "secded", "--trials", "6",
            "--rows", "16", "--cols", "16", "--models", "meta_flip",
        ]) == 0
        for line in capsys.readouterr().out.splitlines():
            if "meta_flip" in line:
                assert "0.0%" in line  # SDC-rate column

    def test_campaign_cells_cache_and_resume(self, tmp_path, capsys):
        argv = ["faults", "--seed", "1", *self.SMALL, "--checkpoint-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert list(tmp_path.glob("faults-*.pkl"))
        assert main([*argv, "--resume"]) == 0
        second = capsys.readouterr().out
        assert second.splitlines()[1:4] == first.splitlines()[1:4]  # same table
        assert "4 from cache" in second

    def test_rejects_unknown_format(self, capsys):
        """--formats choices derive from the registry, so argparse
        rejects unknown names before the campaign ever builds."""
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "--formats", "coo"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_formats_flag_accepts_bcsrcoo(self, capsys):
        assert main([
            "faults", "--trials", "2", "--rows", "16", "--cols", "16",
            "--formats", "bcsrcoo", "--models", "value_flip",
        ]) == 0
        assert "bcsrcoo" in capsys.readouterr().out

    def test_rejects_unknown_model(self, capsys):
        assert main(["faults", "--models", "row_hammer"]) == 2
        assert "unknown fault model" in capsys.readouterr().err

    def test_rejects_zero_trials(self, capsys):
        assert main(["faults", "--trials", "0"]) == 2
        assert "--trials" in capsys.readouterr().err

    def test_rejects_bad_sparsity(self, capsys):
        assert main(["faults", "--sparsity", "1.0"]) == 2
        assert "sparsity" in capsys.readouterr().err


class TestJsonOutputs:
    """The machine-readable paths: --json payloads, --metrics files, trace."""

    def test_simulate_json_round_trips(self, capsys):
        from repro.sim.metrics import SIM_RESULT_SCHEMA, SimResult

        rc = main([
            "simulate", "--rows", "64", "--cols", "64", "--b-cols", "16", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SIM_RESULT_SCHEMA
        assert payload["metrics"] is None  # obs off by default
        back = SimResult.from_dict(payload)
        assert back.to_dict() == payload

    def test_sweep_json_is_loadable(self, capsys):
        assert main(["sweep", "fig17"]) is not None  # warm any caches
        capsys.readouterr()
        assert main(["sweep", "fig17", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload  # {layer-kind: {direction: share}}
        for table in payload.values():
            assert isinstance(table, dict)

    def test_faults_json_schema(self, capsys):
        rc = main([
            "faults", "--trials", "4", "--rows", "16", "--cols", "16",
            "--formats", "ddc", "--models", "meta_flip", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert sorted(payload) == ["cells", "spec"]
        (cell,) = payload["cells"]
        assert sorted(cell) == [
            "counts", "coverage", "format", "model", "sdc_rate", "skipped",
        ]
        assert sum(cell["counts"].values()) == payload["spec"]["trials"]

    def test_trace_writes_perfetto_loadable_file(self, tmp_path, capsys):
        from repro.obs import METRICS_SCHEMA
        from repro.obs.state import enabled

        out = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        rc = main([
            "trace", "fig17", "--out", str(out), "--metrics", str(metrics_path),
        ])
        assert rc == 0
        assert not enabled()  # the scope must not leak obs globally
        assert "events ->" in capsys.readouterr().out

        trace = json.loads(out.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events
        # balanced spans and monotonic per-track timestamps
        depth, last_ts = {}, {}
        for event in events:
            if event["ph"] == "M":
                continue
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last_ts.get(key, float("-inf"))
            last_ts[key] = event["ts"]
            if event["ph"] == "B":
                depth[event["name"]] = depth.get(event["name"], 0) + 1
            elif event["ph"] == "E":
                depth[event["name"]] -= 1
        assert all(v == 0 for v in depth.values())

        metrics = json.loads(metrics_path.read_text())
        assert metrics["schema_version"] == METRICS_SCHEMA
        assert metrics["counters"]["sweep.cells_ok"] >= 1
        assert "timers" not in metrics

    def test_report_metrics_flag_writes_file(self, tmp_path, capsys):
        from repro.obs import METRICS_SCHEMA
        from repro.obs.state import enabled

        path = tmp_path / "metrics.json"
        assert main(["report", "fig17", "--metrics", str(path)]) == 0
        assert not enabled()
        metrics = json.loads(path.read_text())
        assert metrics["schema_version"] == METRICS_SCHEMA
        assert metrics["counters"]["runner.cells_ok"] == 1

    def test_sweep_metrics_identical_across_workers(self, tmp_path):
        """The acceptance contract: --metrics bytes don't depend on N."""
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(["sweep", "fig17", "--metrics", str(serial)]) == 0
        assert main([
            "sweep", "fig17", "--metrics", str(parallel), "--workers", "2",
        ]) == 0
        assert serial.read_bytes() == parallel.read_bytes()


class TestCellFailureExitCodes:
    """sweep/faults exit 1 on cell failures (2 stays for usage errors),
    and --allow-partial downgrades them to a warning + exit 0."""

    @pytest.fixture
    def chaos(self, monkeypatch):
        # deterministically fail every cell's first 5 attempts
        monkeypatch.setenv("REPRO_SWEEP_CHAOS", "raise:5")

    def test_sweep_cell_failures_exit_1(self, chaos, capsys):
        assert main(["sweep", "fig17", "--json"]) == 1
        captured = capsys.readouterr()
        assert "error: cell" in captured.err
        assert "ChaosError" in captured.err

    def test_sweep_allow_partial_exits_0(self, chaos, capsys):
        assert main(["sweep", "fig17", "--json", "--allow-partial"]) == 0
        captured = capsys.readouterr()
        assert "--allow-partial" in captured.err
        assert json.loads(captured.out.splitlines()[-1]) == {}

    def test_sweep_usage_error_still_exits_2(self, capsys):
        assert main(["sweep", "fig17", "--resume"]) == 2

    def test_sweep_clean_run_still_exits_0(self, capsys):
        assert main(["sweep", "fig17", "--json"]) == 0

    def test_faults_cell_failures_exit_1(self, chaos, capsys):
        rc = main([
            "faults", "--trials", "1", "--formats", "dense",
            "--models", "value_flip",
        ])
        assert rc == 1
        assert "error: cell faults-dense-value_flip" in capsys.readouterr().err

    def test_faults_allow_partial_exits_0(self, chaos, capsys):
        rc = main([
            "faults", "--trials", "1", "--formats", "dense",
            "--models", "value_flip", "--allow-partial",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "warning: skipped failed cell faults-dense-value_flip" in captured.err
        assert "ecc=none" in captured.out  # table still rendered (empty)


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve", "--data-dir", "/tmp/x"])
        assert args.port == 8765 and args.host == "127.0.0.1"
        assert args.job_workers == 1 and args.queue_size == 64
        assert args.rate == 10.0 and args.burst == 20.0
        assert args.allow_fn_prefix is None

    def test_data_dir_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_invalid_config_exits_2(self, capsys):
        assert main([
            "serve", "--data-dir", "/tmp/x", "--job-workers", "0",
        ]) == 2
        assert "job_workers" in capsys.readouterr().err
