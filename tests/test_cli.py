"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_report_defaults(self):
        args = build_parser().parse_args(["report", "table3"])
        assert args.experiment == "table3"
        assert args.seeds == 1

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "table9"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestReport:
    def test_table3(self, capsys):
        assert main(["report", "table3"]) == 0
        out = capsys.readouterr().out
        assert "DVPE Array" in out and "1.47" in out

    def test_fig4(self, capsys):
        assert main(["report", "fig4"]) == 0
        assert "similarity_vs_US" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["report", "fig6"]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_fig17(self, capsys):
        assert main(["report", "fig17"]) == 0
        assert "col" in capsys.readouterr().out


class TestPrune:
    def test_prunes_and_saves(self, tmp_path, capsys):
        path = tmp_path / "w.npy"
        np.save(path, np.random.default_rng(0).normal(size=(32, 32)))
        assert main(["prune", str(path), "--pattern", "TBS", "--sparsity", "0.75"]) == 0
        mask = np.load(tmp_path / "w.mask.npy")
        assert mask.dtype == bool
        assert abs((1 - mask.mean()) - 0.75) < 0.1

    def test_other_patterns(self, tmp_path):
        path = tmp_path / "w.npy"
        np.save(path, np.random.default_rng(1).normal(size=(16, 16)))
        for pattern in ("US", "TS", "RS_V"):
            assert main(["prune", str(path), "--pattern", pattern]) == 0

    def test_rejects_non_2d(self, tmp_path, capsys):
        path = tmp_path / "w.npy"
        np.save(path, np.ones(8))
        assert main(["prune", str(path)]) == 2

    def test_custom_output_path(self, tmp_path):
        path = tmp_path / "w.npy"
        out = tmp_path / "custom.npy"
        np.save(path, np.random.default_rng(2).normal(size=(16, 16)))
        assert main(["prune", str(path), "--out", str(out)]) == 0
        assert out.exists()


class TestSimulate:
    def test_basic(self, capsys):
        rc = main(["simulate", "--rows", "128", "--cols", "128", "--b-cols", "32"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "EDP" in out

    def test_all_archs(self, capsys):
        for arch in ("TC", "STC", "VEGETA", "RM-STC", "TB-STC"):
            rc = main([
                "simulate", "--rows", "64", "--cols", "64", "--b-cols", "16", "--arch", arch,
            ])
            assert rc == 0

    def test_unknown_arch(self, capsys):
        rc = main(["simulate", "--rows", "64", "--cols", "64", "--b-cols", "16", "--arch", "TPU"])
        assert rc == 2
