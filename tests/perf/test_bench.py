"""Benchmark harness: suite runs, JSON round-trip, gate, trajectory."""

from __future__ import annotations

import json

import pytest

from repro.perf import bench


@pytest.fixture(scope="module")
def smoke_run():
    return bench.run_suite(profile="smoke", seed=0, name="unit")


def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="unknown profile"):
        bench.run_suite(profile="nope")


def test_suite_covers_micro_and_macro(smoke_run):
    names = set(smoke_run["benches"])
    assert {
        "block_segments",
        "dvpe_costs",
        "schedule_direct",
        "schedule_sparsity_aware",
        "codec_batch",
        "encode_ddc",
        "encode_sdc",
        "encode_csr",
        "encode_bitmap",
        "simulate_layer",
        "sweep_fig13_mini",
    } <= names


def test_bench_entries_have_required_fields(smoke_run):
    for name, entry in smoke_run["benches"].items():
        assert entry["wall_s"] > 0, name
        assert entry["cells"] > 0, name
        assert entry["cells_per_s"] > 0, name
        assert entry["normalized"] == pytest.approx(
            entry["wall_s"] / smoke_run["calibration_s"]
        ), name
        assert isinstance(entry["stages"], dict), name
    assert smoke_run["schema"] == bench.SCHEMA_VERSION
    assert smoke_run["peak_rss_kb"] > 0
    assert smoke_run["total_wall_s"] > 0
    assert smoke_run["reference_impl"] is False


def test_macro_benches_capture_stage_splits(smoke_run):
    stages = smoke_run["benches"]["simulate_layer"]["stages"]
    assert "sim.engine.simulate" in stages
    assert "sim.schedule" in stages


def test_json_roundtrip(tmp_path, smoke_run):
    path = str(tmp_path / "BENCH_unit.json")
    bench.write_bench_json(path, smoke_run)
    loaded = bench.load_bench_json(path)
    assert loaded == json.loads(json.dumps(smoke_run))


def test_load_rejects_wrong_schema(tmp_path):
    path = str(tmp_path / "BENCH_bad.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"schema": 99, "benches": {}}, fh)
    with pytest.raises(ValueError, match="schema"):
        bench.load_bench_json(path)


def _mini_report(**normalized):
    return {
        "schema": bench.SCHEMA_VERSION,
        "benches": {
            name: {"normalized": norm, "wall_s": norm * 0.1}
            for name, norm in normalized.items()
        },
    }


def test_compare_passes_within_tolerance():
    base = _mini_report(a=1.0, b=2.0)
    cur = _mini_report(a=1.2, b=1.0)  # +20% and a speed-up
    failures, lines = bench.compare(cur, base, tolerance=0.25)
    assert failures == []
    assert len(lines) == 2


def test_compare_fails_beyond_tolerance():
    base = _mini_report(a=1.0)
    cur = _mini_report(a=1.3)
    failures, _ = bench.compare(cur, base, tolerance=0.25)
    assert len(failures) == 1
    assert "a" in failures[0]


def test_compare_is_one_sided():
    # A 10x speed-up must never fail the gate.
    failures, _ = bench.compare(_mini_report(a=0.1), _mini_report(a=1.0), tolerance=0.0)
    assert failures == []


def test_compare_reports_added_and_removed_benches_without_failing():
    failures, lines = bench.compare(_mini_report(new=1.0), _mini_report(old=1.0))
    assert failures == []
    assert any("new" in line for line in lines)
    assert any("only in baseline" in line for line in lines)


def test_compare_rejects_negative_tolerance():
    with pytest.raises(ValueError, match="tolerance"):
        bench.compare(_mini_report(), _mini_report(), tolerance=-0.1)


def test_trajectory_appends_json_lines(tmp_path):
    path = str(tmp_path / "traj.jsonl")
    bench.append_trajectory(path, {"step": 1})
    bench.append_trajectory(path, {"step": 2})
    with open(path, encoding="utf-8") as fh:
        entries = [json.loads(line) for line in fh]
    assert entries == [{"step": 1}, {"step": 2}]


def test_calibration_is_positive_and_stable():
    a = bench.calibrate(reps=2)
    assert a > 0


def test_merge_best_keeps_faster_record_per_bench():
    slow = _mini_report(a=2.0, b=0.5)
    fast = _mini_report(a=1.0, b=1.5)
    for rep in (slow, fast):
        rep["calibration_s"] = 0.1
        rep["total_wall_s"] = 1.0
        rep["peak_rss_kb"] = 100
    fast["peak_rss_kb"] = 200
    merged = bench.merge_best(slow, fast)
    assert merged["benches"]["a"]["normalized"] == 1.0
    assert merged["benches"]["b"]["normalized"] == 0.5
    assert merged["total_wall_s"] == pytest.approx(2.0)
    assert merged["peak_rss_kb"] == 200


def test_run_suite_best_takes_per_bench_minimum(smoke_run):
    merged = bench.run_suite_best("smoke", seed=0, name="best", rounds=2)
    single = smoke_run
    assert set(merged["benches"]) == set(single["benches"])
    for rec in merged["benches"].values():
        assert rec["normalized"] > 0


def test_cli_perf_smoke_and_gate(tmp_path, capsys):
    from repro.cli import main

    out = str(tmp_path)
    assert main(["perf", "--profile", "smoke", "--name", "b0", "--out-dir", out]) == 0
    baseline = str(tmp_path / "BENCH_b0.json")
    # Self-comparison with a generous tolerance must pass the gate.
    rc = main([
        "perf", "--profile", "smoke", "--name", "b1", "--out-dir", out,
        "--compare", baseline, "--tolerance", "50.0",
        "--trajectory", str(tmp_path / "traj.jsonl"),
    ])
    assert rc == 0
    captured = capsys.readouterr()
    assert "perf gate passed" in captured.out
    with open(tmp_path / "traj.jsonl", encoding="utf-8") as fh:
        entry = json.loads(fh.readline())
    assert entry["profile"] == "smoke"
    assert entry["normalized"]


def test_cli_perf_gate_fails_on_fabricated_regression(tmp_path, capsys):
    from repro.cli import main
    from repro.perf.bench import load_bench_json, write_bench_json

    out = str(tmp_path)
    assert main(["perf", "--profile", "smoke", "--name", "base", "--out-dir", out]) == 0
    path = str(tmp_path / "BENCH_base.json")
    doctored = load_bench_json(path)
    for entry in doctored["benches"].values():
        entry["normalized"] /= 1000.0  # make the baseline impossibly fast
    write_bench_json(path, doctored)
    rc = main([
        "perf", "--profile", "smoke", "--name", "cur", "--out-dir", out,
        "--compare", path, "--tolerance", "0.25",
    ])
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().out
