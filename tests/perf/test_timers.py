"""Stage-timer semantics: zero overhead when off, nesting, capture deltas."""

from __future__ import annotations

import time

import pytest

from repro.perf import timers


@pytest.fixture(autouse=True)
def _clean_registry():
    timers.disable()
    timers.reset()
    yield
    timers.disable()
    timers.reset()


def test_disabled_records_nothing():
    assert not timers.enabled()
    with timers.stage("off.outer"):
        with timers.stage("off.inner"):
            pass
    assert timers.snapshot() == {}


def test_disabled_stage_is_shared_null_object():
    # The disabled fast path must not allocate per call.
    assert timers.stage("a") is timers.stage("b")


def test_enable_disable_roundtrip():
    timers.enable()
    assert timers.enabled()
    timers.disable()
    assert not timers.enabled()


def test_stage_records_calls_and_seconds():
    timers.enable()
    for _ in range(3):
        with timers.stage("unit.work"):
            time.sleep(0.001)
    snap = timers.snapshot()
    assert snap["unit.work"]["calls"] == 3
    assert snap["unit.work"]["seconds"] >= 0.003


def test_nested_stages_both_accumulate():
    timers.enable()
    with timers.stage("outer"):
        with timers.stage("inner"):
            time.sleep(0.001)
    snap = timers.snapshot()
    assert snap["outer"]["calls"] == 1
    assert snap["inner"]["calls"] == 1
    # Parent total includes the child's time.
    assert snap["outer"]["seconds"] >= snap["inner"]["seconds"]


def test_timed_decorator_counts_only_when_enabled():
    @timers.timed("deco.fn")
    def fn(x):
        return x + 1

    assert fn(1) == 2
    assert timers.snapshot() == {}
    timers.enable()
    assert fn(2) == 3
    assert timers.snapshot()["deco.fn"]["calls"] == 1


def test_timed_preserves_function_metadata():
    @timers.timed("deco.named")
    def documented():
        """doc."""

    assert documented.__name__ == "documented"
    assert documented.__doc__ == "doc."


def test_capture_yields_only_the_delta():
    timers.enable()
    with timers.stage("pre.existing"):
        pass
    cap = timers.capture()
    with cap as stages:
        assert stages == {}  # filled at exit, not during
        with timers.stage("inside"):
            pass
    assert "inside" in stages
    assert stages["inside"]["calls"] == 1
    assert "pre.existing" not in stages
    # Re-entry of a pre-existing stage shows only the new calls.
    cap2 = timers.capture()
    with cap2 as stages2:
        with timers.stage("pre.existing"):
            pass
    assert stages2["pre.existing"]["calls"] == 1


def test_enabled_scope_restores_previous_state():
    assert not timers.enabled()
    with timers.enabled_scope():
        assert timers.enabled()
        with timers.enabled_scope():
            assert timers.enabled()
        assert timers.enabled()  # inner exit restores "enabled", not "off"
    assert not timers.enabled()


def test_reset_clears_records():
    timers.enable()
    with timers.stage("gone"):
        pass
    timers.reset()
    assert timers.snapshot() == {}


def test_stage_records_survive_exceptions():
    timers.enable()
    with pytest.raises(ValueError):
        with timers.stage("raises"):
            raise ValueError("boom")
    assert timers.snapshot()["raises"]["calls"] == 1


def test_simulate_attaches_perf_breakdown_only_when_enabled():
    from repro.core.patterns import PatternFamily
    from repro.hw.config import tb_stc
    from repro.sim.engine import simulate
    from repro.workloads.generator import build_workload
    from repro.workloads.layers import LayerSpec

    workload = build_workload(
        LayerSpec("t", 32, 32, 8), PatternFamily.TBS, sparsity=0.5, m=8, seed=0
    )
    config = tb_stc()

    off = simulate(config, workload)
    assert off.perf_breakdown is None

    with timers.enabled_scope():
        on = simulate(config, workload)
    assert on.perf_breakdown
    assert "sim.engine.simulate" in on.perf_breakdown
    assert "sim.schedule" in on.perf_breakdown
    # The timing split must not perturb the simulation itself.
    assert on.cycles == off.cycles
    assert on.dram_bytes == off.dram_bytes
