"""Divergence watchdog: policy unit tests + training-loop integration."""

import numpy as np
import pytest

from repro.core.patterns import PatternFamily
from repro.nn.data import cluster_dataset
from repro.nn.losses import softmax_cross_entropy
from repro.nn.models import make_mlp
from repro.nn.optim import SGD
from repro.nn.train import train
from repro.runtime.watchdog import DivergenceWatchdog, WatchdogConfig


class TestConfig:
    def test_defaults_valid(self):
        cfg = WatchdogConfig()
        assert cfg.enabled and cfg.max_retries == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"spike_factor": 1.0},
            {"spike_factor": 0.5},
            {"lr_backoff": 0.0},
            {"lr_backoff": 1.0},
            {"max_retries": -1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            WatchdogConfig(**kwargs)


class TestClassify:
    def test_healthy_loss(self):
        wd = DivergenceWatchdog()
        assert wd.classify(1.0) is None

    @pytest.mark.parametrize("loss", [float("nan"), float("inf"), float("-inf")])
    def test_nonfinite(self, loss):
        assert DivergenceWatchdog().classify(loss) == "nan"

    def test_spike_needs_baseline(self):
        wd = DivergenceWatchdog()
        assert wd.classify(1e9) is None  # no last-good yet: can't be a spike
        wd.record_good(1.0)
        assert wd.classify(11.0) == "spike"
        assert wd.classify(9.0) is None

    def test_disabled_sees_nothing(self):
        wd = DivergenceWatchdog(WatchdogConfig(enabled=False))
        assert wd.classify(float("nan")) is None


class TestPolicy:
    def test_rollback_then_degrade(self):
        wd = DivergenceWatchdog(WatchdogConfig(max_retries=2))
        assert wd.diverged(0, float("nan"), "nan") == "rollback"
        assert wd.diverged(0, float("nan"), "nan") == "rollback"
        assert wd.diverged(0, float("nan"), "nan") == "degrade"
        assert [e.action for e in wd.events] == ["rollback", "rollback", "degrade"]

    def test_lr_backoff_compounds(self):
        wd = DivergenceWatchdog(WatchdogConfig(lr_backoff=0.5, max_retries=3))
        wd.diverged(0, 1.0, "spike")
        wd.diverged(1, 1.0, "spike")
        assert wd.lr_scale == pytest.approx(0.25)

    def test_state_dict_roundtrip(self):
        wd = DivergenceWatchdog()
        wd.record_good(0.7)
        wd.diverged(3, float("inf"), "nan")
        fresh = DivergenceWatchdog()
        fresh.load_state_dict(wd.state_dict())
        assert fresh.retries == 1
        assert fresh.lr_scale == wd.lr_scale
        assert fresh.last_good_loss == 0.7
        assert [e.as_dict() for e in fresh.events] == [e.as_dict() for e in wd.events]


# ---------------------------------------------------------------------------
# Training-loop integration
# ---------------------------------------------------------------------------


def _setup(seed=5):
    data = cluster_dataset(n_samples=128, n_features=16, n_classes=4, seed=seed)
    model = make_mlp(16, 32, 4, depth=3, seed=seed)
    return model, data


def _loss_fn_nan_at(call_number):
    """Wrap the criterion so exactly one call reports a NaN loss."""
    state = {"n": 0}

    def loss_fn(logits, labels):
        state["n"] += 1
        loss, dlogits = softmax_cross_entropy(logits, labels)
        if state["n"] == call_number:
            return float("nan"), dlogits
        return loss, dlogits

    return loss_fn


class TestTrainingIntegration:
    def test_nan_triggers_rollback_and_run_completes(self):
        model, data = _setup()
        opt = SGD(model, lr=0.05)
        res = train(
            model, data, family=PatternFamily.TBS, sparsity=0.5,
            epochs=4, batch=48, seed=5, optimizer=opt,
            loss_fn=_loss_fn_nan_at(5),  # 2 steps/epoch: NaN in epoch 2
        )
        assert not res.degraded
        assert len(res.loss_history) == 4
        assert res.completed_epochs == 4
        assert len(res.watchdog_events) == 1
        event = res.watchdog_events[0]
        assert event["kind"] == "nan" and event["action"] == "rollback"
        assert event["epoch"] == 2
        # One rollback at backoff 0.5 halves the effective LR.
        assert opt.lr == pytest.approx(0.025)

    def test_persistent_divergence_degrades(self):
        model, data = _setup()

        def always_nan(logits, labels):
            _, dlogits = softmax_cross_entropy(logits, labels)
            return float("nan"), dlogits

        res = train(
            model, data, family=PatternFamily.TBS, sparsity=0.5,
            epochs=4, batch=48, seed=5, loss_fn=always_nan,
            watchdog=WatchdogConfig(max_retries=1),
        )
        assert res.degraded
        assert res.loss_history == []
        assert res.completed_epochs == 0
        assert [e["action"] for e in res.watchdog_events] == ["rollback", "degrade"]
        # Degraded runs still come back with finite parameters.
        assert all(
            np.isfinite(p).all()
            for mod in model.modules()
            for p in mod.params.values()
        )

    def test_spike_detected_on_epoch_mean(self):
        model, data = _setup()
        state = {"n": 0}

        def spiky(logits, labels):
            state["n"] += 1
            loss, dlogits = softmax_cross_entropy(logits, labels)
            if state["n"] in (3, 4):  # all of epoch 1 reports a huge loss
                return loss * 1e4, dlogits
            return loss, dlogits

        res = train(
            model, data, family=PatternFamily.TBS, sparsity=0.5,
            epochs=3, batch=48, seed=5, loss_fn=spiky,
        )
        assert not res.degraded
        assert len(res.loss_history) == 3
        assert res.watchdog_events[0]["kind"] == "spike"

    def test_disabled_watchdog_lets_nan_through(self):
        model, data = _setup()
        res = train(
            model, data, family=PatternFamily.TBS, sparsity=0.5,
            epochs=2, batch=48, seed=5,
            loss_fn=_loss_fn_nan_at(1), watchdog=False,
        )
        assert res.watchdog_events == []
        assert any(not np.isfinite(l) for l in res.loss_history)
