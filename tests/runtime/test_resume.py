"""Checkpoint/resume: bit-exact restart, including a SIGKILL mid-run.

The acceptance property: a run killed partway through and resumed from
its checkpoint directory produces *exactly* the histories and accuracies
of an uninterrupted run -- same RNG stream position, parameter bytes,
optimizer slots, masks and LR schedule.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.patterns import PatternFamily
from repro.nn.data import cluster_dataset
from repro.nn.models import make_mlp
from repro.nn.optim import Adam
from repro.nn.schedulers import CosineLR
from repro.nn.train import train

REPO_ROOT = Path(__file__).resolve().parents[2]

SEED = 3


def _data():
    return cluster_dataset(n_samples=128, n_features=16, n_classes=4, seed=SEED)


def _model():
    return make_mlp(16, 32, 4, depth=3, seed=SEED)


def _run(model, data, epochs, **kwargs):
    return train(
        model, data, family=PatternFamily.TBS, sparsity=0.5,
        epochs=epochs, batch=48, seed=SEED, **kwargs,
    )


class TestInProcessResume:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        data = _data()
        baseline = _run(_model(), data, epochs=6)

        _run(_model(), data, epochs=3, checkpoint_dir=tmp_path)
        resumed = _run(_model(), data, epochs=6, checkpoint_dir=tmp_path, resume=True)

        assert resumed.resumed_from == 2
        assert resumed.loss_history == baseline.loss_history
        assert resumed.sparsity_history == baseline.sparsity_history
        assert resumed.train_accuracy == baseline.train_accuracy
        assert resumed.test_accuracy == baseline.test_accuracy

    def test_resume_with_scheduler_and_adam(self, tmp_path):
        data = _data()

        def fresh():
            model = _model()
            opt = Adam(model, lr=5e-3)
            return model, opt, CosineLR(opt, total=6)

        model, opt, sched = fresh()
        baseline = _run(model, data, epochs=6, optimizer=opt, scheduler=sched)

        model, opt, sched = fresh()
        _run(model, data, epochs=3, optimizer=opt, scheduler=sched, checkpoint_dir=tmp_path)
        model, opt, sched = fresh()
        resumed = _run(
            model, data, epochs=6, optimizer=opt, scheduler=sched,
            checkpoint_dir=tmp_path, resume=True,
        )
        assert resumed.resumed_from == 2
        assert resumed.loss_history == baseline.loss_history
        assert resumed.test_accuracy == baseline.test_accuracy

    def test_resume_preserves_stale_masks(self, tmp_path):
        """mask_refresh=False epochs must reuse the *restored* mask."""
        data = _data()
        refresh = lambda epoch: epoch % 2 == 0  # noqa: E731
        baseline = _run(_model(), data, epochs=6, mask_refresh=refresh)

        _run(_model(), data, epochs=4, mask_refresh=refresh, checkpoint_dir=tmp_path)
        resumed = _run(
            _model(), data, epochs=6, mask_refresh=refresh,
            checkpoint_dir=tmp_path, resume=True,
        )
        assert resumed.loss_history == baseline.loss_history
        assert resumed.sparsity_history == baseline.sparsity_history

    def test_resume_on_empty_dir_starts_fresh(self, tmp_path):
        data = _data()
        res = _run(_model(), data, epochs=2, checkpoint_dir=tmp_path, resume=True)
        assert res.resumed_from is None
        assert len(res.loss_history) == 2

    def test_checkpoint_every_thins_saves(self, tmp_path):
        from repro.runtime.checkpoint import CheckpointStore

        data = _data()
        _run(_model(), data, epochs=5, checkpoint_dir=tmp_path, checkpoint_every=2)
        store = CheckpointStore(tmp_path)
        epochs = [store.load(p).epoch for p in store.list()]
        assert epochs == [0, 2, 4]

    def test_completed_run_resume_is_a_noop(self, tmp_path):
        data = _data()
        first = _run(_model(), data, epochs=4, checkpoint_dir=tmp_path)
        again = _run(_model(), data, epochs=4, checkpoint_dir=tmp_path, resume=True)
        assert again.resumed_from == 3
        assert again.loss_history == first.loss_history
        assert again.test_accuracy == first.test_accuracy


# ---------------------------------------------------------------------------
# SIGKILL acceptance test
# ---------------------------------------------------------------------------

# The child mirrors _run() above exactly, except its criterion stalls
# after 3 epochs (2 optimizer steps per epoch) so the parent can SIGKILL
# it mid-epoch-3 -- after checkpoints for epochs 0-2 hit disk.
_CHILD_SCRIPT = """
import sys, time
from repro.core.patterns import PatternFamily
from repro.nn.data import cluster_dataset
from repro.nn.losses import softmax_cross_entropy
from repro.nn.models import make_mlp
from repro.nn.train import train

ckpt_dir, marker = sys.argv[1], sys.argv[2]
calls = {"n": 0}

def stalling_loss(logits, labels):
    calls["n"] += 1
    if calls["n"] > 6:  # 2 steps/epoch * 3 epochs
        open(marker, "w").close()
        time.sleep(300)
    return softmax_cross_entropy(logits, labels)

data = cluster_dataset(n_samples=128, n_features=16, n_classes=4, seed=3)
model = make_mlp(16, 32, 4, depth=3, seed=3)
train(model, data, family=PatternFamily.TBS, sparsity=0.5, epochs=6,
      batch=48, seed=3, checkpoint_dir=ckpt_dir, loss_fn=stalling_loss)
"""


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"), reason="needs SIGKILL")
def test_sigkill_mid_epoch_resumes_bit_exact(tmp_path):
    ckpt_dir = tmp_path / "ckpts"
    ckpt_dir.mkdir()
    marker = tmp_path / "epoch3.started"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")

    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, str(ckpt_dir), str(marker)],
        env=env, cwd=REPO_ROOT,
    )
    try:
        deadline = time.monotonic() + 120
        while not marker.exists():
            assert proc.poll() is None, "child training run exited prematurely"
            assert time.monotonic() < deadline, "child never reached epoch 3"
            time.sleep(0.05)
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on assert failure
            proc.kill()
        proc.wait()

    data = _data()
    baseline = _run(_model(), data, epochs=6)
    resumed = _run(_model(), data, epochs=6, checkpoint_dir=ckpt_dir, resume=True)

    assert resumed.resumed_from == 2  # epochs 0-2 were checkpointed pre-kill
    assert resumed.loss_history == baseline.loss_history
    assert resumed.sparsity_history == baseline.sparsity_history
    assert resumed.train_accuracy == baseline.train_accuracy
    assert resumed.test_accuracy == baseline.test_accuracy
