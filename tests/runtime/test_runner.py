"""Fault-tolerant experiment runner: isolation, retries, disk cache."""

import pytest

from repro.runtime.runner import CellResult, ExperimentRunner


class _Flaky:
    """Callable that fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"transient #{self.calls}")
        return {"kwargs": kwargs, "calls": self.calls}


class TestIsolationAndRetries:
    def test_success_first_try(self):
        runner = ExperimentRunner()
        cell = runner.run("a", lambda **kw: 42)
        assert cell.ok and cell.status == "ok" and cell.value == 42
        assert cell.attempts == 1

    def test_retry_recovers_transient_failure(self):
        fn = _Flaky(failures=1)
        runner = ExperimentRunner(retries=1)
        cell = runner.run("a", fn)
        assert cell.status == "ok" and cell.attempts == 2
        assert fn.calls == 2

    def test_exhausted_retries_fail_without_raising(self):
        runner = ExperimentRunner(retries=2)
        cell = runner.run("a", _Flaky(failures=10))
        assert cell.status == "failed" and not cell.ok
        assert cell.attempts == 3
        assert "RuntimeError" in cell.error and "transient" in cell.error

    def test_failure_does_not_stop_later_cells(self):
        runner = ExperimentRunner(retries=0)
        runner.run("bad", _Flaky(failures=10))
        good = runner.run("good", lambda **kw: "fine")
        assert good.ok
        assert [r.name for r in runner.failed] == ["bad"]

    def test_keyboard_interrupt_propagates(self):
        def interrupted(**kwargs):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            ExperimentRunner(retries=5).run("a", interrupted)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            ExperimentRunner(retries=-1)


class TestCache:
    def test_resume_serves_cache_without_calling(self, tmp_path):
        first = ExperimentRunner(cache_dir=tmp_path)
        first.run("cell", lambda **kw: {"answer": 7}, x=1)

        fn = _Flaky(failures=10)  # would fail if ever called
        second = ExperimentRunner(cache_dir=tmp_path, resume=True)
        cell = second.run("cell", fn, x=1)
        assert cell.status == "cached" and cell.ok
        assert cell.value == {"answer": 7}
        assert fn.calls == 0

    def test_cache_key_includes_kwargs(self, tmp_path):
        first = ExperimentRunner(cache_dir=tmp_path)
        first.run("cell", lambda **kw: kw["x"], x=1)

        calls = []
        second = ExperimentRunner(cache_dir=tmp_path, resume=True)
        cell = second.run("cell", lambda **kw: calls.append(1) or kw["x"], x=2)
        assert cell.status == "ok" and cell.value == 2
        assert calls  # different kwargs: the cache entry must not match

    def test_without_resume_cache_is_ignored_but_written(self, tmp_path):
        ExperimentRunner(cache_dir=tmp_path).run("cell", lambda **kw: 1)
        runner = ExperimentRunner(cache_dir=tmp_path, resume=False)
        cell = runner.run("cell", lambda **kw: 2)
        assert cell.status == "ok" and cell.value == 2

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        ExperimentRunner(cache_dir=tmp_path).run("cell", lambda **kw: 1)
        for entry in tmp_path.glob("cell-*.pkl"):
            entry.write_bytes(b"not a pickle")
        cell = ExperimentRunner(cache_dir=tmp_path, resume=True).run(
            "cell", lambda **kw: "recomputed"
        )
        assert cell.status == "ok" and cell.value == "recomputed"

    def test_failed_cells_are_not_cached(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path, retries=0)
        runner.run("cell", _Flaky(failures=10))
        assert list(tmp_path.glob("*.pkl")) == []

    def test_none_result_is_cached_and_served(self, tmp_path):
        ExperimentRunner(cache_dir=tmp_path).run("cell", lambda **kw: None)

        fn = _Flaky(failures=10)  # would fail if the hit read as a miss
        cell = ExperimentRunner(cache_dir=tmp_path, resume=True).run("cell", fn)
        assert cell.status == "cached" and cell.value is None
        assert fn.calls == 0

    def test_no_tmp_litter(self, tmp_path):
        ExperimentRunner(cache_dir=tmp_path).run("cell", lambda **kw: 1)
        assert [p for p in tmp_path.iterdir() if p.name.startswith(".tmp-")] == []


class TestReporting:
    def test_summary_counts(self, tmp_path):
        ExperimentRunner(cache_dir=tmp_path).run("a", lambda **kw: 1)
        runner = ExperimentRunner(cache_dir=tmp_path, resume=True, retries=0)
        runner.run("a", lambda **kw: 1)
        runner.run("b", lambda **kw: 2)
        runner.run("c", _Flaky(failures=10))
        assert runner.summary() == "1 computed, 1 from cache, 1 failed"

    def test_cellresult_ok_statuses(self):
        assert CellResult("x", "ok").ok
        assert CellResult("x", "cached").ok
        assert not CellResult("x", "failed").ok
