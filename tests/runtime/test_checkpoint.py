"""Tests for the content-addressed atomic checkpoint store."""

import json

import numpy as np
import pytest

from repro.runtime.checkpoint import CheckpointError, CheckpointStore
from repro.runtime.state import TrainState


def _state(epoch=0, value=1.0):
    return TrainState(
        epoch=epoch,
        arrays={"param.0.weight": np.full((4, 4), value), "mask.0": np.eye(4, dtype=bool)},
        meta={
            "epoch": epoch,
            "rng_state": {"bit_generator": "PCG64", "state": {"state": 123, "inc": 5}},
            "loss_history": [0.5, 0.25],
            "sparsity_history": [0.75, 0.75],
            "optimizer": {"lr": 0.05},
        },
    )


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(_state(epoch=3))
        assert path.exists() and path.name.startswith("ckpt-00003-")
        loaded = store.load(path)
        assert loaded.epoch == 3
        np.testing.assert_array_equal(
            loaded.arrays["param.0.weight"], np.full((4, 4), 1.0)
        )
        assert loaded.arrays["mask.0"].dtype == bool
        assert loaded.meta["loss_history"] == [0.5, 0.25]
        assert loaded.meta["rng_state"]["state"]["state"] == 123

    def test_content_addressing_dedupes(self, tmp_path):
        store = CheckpointStore(tmp_path)
        p1 = store.save(_state(epoch=2))
        p2 = store.save(_state(epoch=2))
        assert p1 == p2
        assert len(store.list()) == 1

    def test_different_content_different_name(self, tmp_path):
        store = CheckpointStore(tmp_path)
        p1 = store.save(_state(epoch=2, value=1.0))
        p2 = store.save(_state(epoch=2, value=2.0))
        assert p1 != p2

    def test_no_tmp_litter(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(_state())
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_big_rng_ints_survive(self, tmp_path):
        state = _state()
        state.meta["rng_state"]["state"]["state"] = 2**127 + 17  # PCG64 is 128-bit
        store = CheckpointStore(tmp_path)
        loaded = store.load(store.save(state))
        assert loaded.meta["rng_state"]["state"]["state"] == 2**127 + 17


class TestLatest:
    def test_empty_store(self, tmp_path):
        assert CheckpointStore(tmp_path).latest() is None

    def test_picks_highest_epoch(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for epoch in (0, 4, 2):
            store.save(_state(epoch=epoch, value=float(epoch)))
        assert store.latest().epoch == 4

    def test_skips_corrupt_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(_state(epoch=1))
        newest = store.save(_state(epoch=2, value=9.0))
        newest.write_bytes(b"not a zip at all")
        latest = store.latest()
        assert latest is not None and latest.epoch == 1

    def test_bit_rot_in_newest_falls_back_to_previous(self, tmp_path):
        """Seeded byte flips mid-file (still a plausible zip!) must raise
        CheckpointError on load and make latest() serve the prior epoch."""
        from repro.faults.injectors import corrupt_file

        store = CheckpointStore(tmp_path)
        store.save(_state(epoch=1))
        newest = store.save(_state(epoch=2, value=9.0))
        corrupt_file(newest, np.random.default_rng(0), mode="flip", nbytes=16)
        with pytest.raises(CheckpointError):
            store.load(newest)
        latest = store.latest()
        assert latest is not None and latest.epoch == 1

    def test_truncated_newest_falls_back(self, tmp_path):
        from repro.faults.injectors import corrupt_file

        store = CheckpointStore(tmp_path)
        store.save(_state(epoch=3))
        newest = store.save(_state(epoch=5, value=2.0))
        corrupt_file(newest, np.random.default_rng(1), mode="truncate")
        latest = store.latest()
        assert latest is not None and latest.epoch == 3

    def test_ignores_foreign_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        store = CheckpointStore(tmp_path)
        store.save(_state(epoch=0))
        assert len(store.list()) == 1


class TestTruncationFallback:
    """A checkpoint byte-truncated mid-write (crash between write and
    rename on a non-atomic filesystem) must read as unusable at *any*
    truncation point, and ``latest()`` must deterministically serve the
    previous good snapshot, bit-exactly."""

    def test_every_truncation_point_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(_state(epoch=1, value=3.5))
        newest = store.save(_state(epoch=2, value=9.0))
        data = newest.read_bytes()
        # representative prefixes: empty file, torn zip magic, mid-member,
        # half file, missing central directory, one byte short
        cuts = sorted({0, 1, 3, 10, len(data) // 4, len(data) // 2,
                       len(data) - 30, len(data) - 1})
        for cut in cuts:
            newest.write_bytes(data[:cut])
            with pytest.raises(CheckpointError):
                store.load(newest)
            latest = store.latest()
            assert latest is not None and latest.epoch == 1, (
                f"truncation at {cut}/{len(data)} bytes did not fall back"
            )

    def test_fallback_is_bit_exact_and_repeatable(self, tmp_path):
        store = CheckpointStore(tmp_path)
        good = store.save(_state(epoch=1, value=3.5))
        baseline = store.load(good)
        newest = store.save(_state(epoch=2, value=9.0))
        newest.write_bytes(newest.read_bytes()[: newest.stat().st_size // 2])
        for _ in range(3):  # repeat reads must agree byte-for-byte
            latest = store.latest()
            assert latest.epoch == baseline.epoch
            assert set(latest.arrays) == set(baseline.arrays)
            for name, array in baseline.arrays.items():
                assert latest.arrays[name].dtype == array.dtype
                np.testing.assert_array_equal(latest.arrays[name], array)
            assert latest.meta == baseline.meta

    def test_truncated_middle_is_skipped_not_fatal(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(_state(epoch=1))
        middle = store.save(_state(epoch=2, value=9.0))
        store.save(_state(epoch=3, value=4.0))
        middle.write_bytes(middle.read_bytes()[:16])
        assert store.latest().epoch == 3

    def test_all_checkpoints_truncated_yields_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for epoch in (1, 2):
            path = store.save(_state(epoch=epoch, value=float(epoch)))
            path.write_bytes(path.read_bytes()[:8])
        assert store.latest() is None


class TestIntegrity:
    def test_digest_mismatch_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save(_state(epoch=1))
        # Rename to claim a different digest: load must notice.
        impostor = path.with_name("ckpt-00001-" + "0" * 12 + ".npz")
        path.rename(impostor)
        with pytest.raises(CheckpointError):
            store.load(impostor)

    def test_unreadable_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        bad = tmp_path / ("ckpt-00001-" + "a" * 12 + ".npz")
        bad.write_bytes(b"garbage")
        with pytest.raises(CheckpointError):
            store.load(bad)

    def test_meta_json_is_stable(self, tmp_path):
        """Digest must survive a save -> load -> save cycle."""
        store = CheckpointStore(tmp_path)
        path = store.save(_state(epoch=1))
        loaded = store.load(path)
        again = store.save(loaded)
        assert again == path


class TestRetention:
    def test_max_keep_prunes_oldest(self, tmp_path):
        store = CheckpointStore(tmp_path, max_keep=2)
        for epoch in range(5):
            store.save(_state(epoch=epoch, value=float(epoch)))
        kept = store.list()
        assert len(kept) == 2
        assert [store.load(p).epoch for p in kept] == [3, 4]

    def test_rejects_bad_max_keep(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, max_keep=0)


class TestMetaEncoding:
    def test_meta_is_plain_json(self, tmp_path):
        """The __meta__ entry must stay readable without pickle."""
        store = CheckpointStore(tmp_path)
        path = store.save(_state(epoch=1))
        with np.load(path, allow_pickle=False) as npz:
            meta = json.loads(str(npz["__meta__"]))
        assert meta["epoch"] == 1
