"""Tests for the cell cache's envelope format, hit/miss semantics, and
the inter-process write lock."""

import multiprocessing
import pickle
import time

import pytest

from repro.runtime.cellcache import CellCache, cache_key


class TestReadHit:
    def test_miss_on_absent_entry(self, tmp_path):
        cache = CellCache(tmp_path)
        assert cache.read_hit(tmp_path / "nope.pkl") == (False, None)
        assert cache.read_hit(None) == (False, None)

    def test_cached_none_is_a_hit(self, tmp_path):
        cache = CellCache(tmp_path)
        path = cache.path("cell", {"x": 1})
        cache.write(path, None)
        assert cache.read_hit(path) == (True, None)
        # The legacy value-only reader cannot tell this hit from a miss;
        # that ambiguity is exactly why read_hit exists.
        assert cache.read(path) is None

    def test_round_trip_through_envelope(self, tmp_path):
        cache = CellCache(tmp_path)
        path = cache.path("cell", {"x": 2})
        cache.write(path, {"answer": 42})
        assert cache.read_hit(path) == (True, {"answer": 42})

    def test_legacy_raw_pickle_still_reads_as_hit(self, tmp_path):
        cache = CellCache(tmp_path)
        path = cache.path("cell", {"x": 3})
        path.write_bytes(pickle.dumps({"pre": "envelope"}))
        assert cache.read_hit(path) == (True, {"pre": "envelope"})

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        path = cache.path("cell", {"x": 4})
        path.write_bytes(b"definitely not a pickle")
        assert cache.read_hit(path) == (False, None)


def _locked_increment_worker(cache_dir, counter_path, iterations):
    """Read-modify-write a counter file inside the cache's write lock.

    Without real inter-process mutual exclusion the two workers lose
    updates (classic RMW race); with ``fcntl.flock`` doing its job the
    final counter equals the total iteration count.
    """
    cache = CellCache(cache_dir)
    entry = cache.path("contended", {"k": 1})
    for _ in range(iterations):
        with cache.write_lock(entry):
            with open(counter_path) as fh:
                value = int(fh.read())
            time.sleep(0.001)  # widen the race window
            with open(counter_path, "w") as fh:
                fh.write(str(value + 1))


def _hammer_writer(cache_dir, idx, iterations):
    cache = CellCache(cache_dir)
    path = cache.path("hammered", {"k": 2})
    for i in range(iterations):
        cache.write(path, {"writer": idx, "i": i})


class TestWriteLock:
    """Satellite regression test: two processes hammering one key."""

    def test_two_processes_serialize_on_one_key(self, tmp_path):
        counter = tmp_path / "counter"
        counter.write_text("0")
        iterations = 25
        procs = [
            multiprocessing.Process(
                target=_locked_increment_worker,
                args=(str(tmp_path), str(counter), iterations),
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        # no lost updates <=> the flock really excludes across processes
        assert counter.read_text() == str(2 * iterations)

    def test_concurrent_writers_never_corrupt_reads(self, tmp_path):
        cache = CellCache(tmp_path)
        path = cache.path("hammered", {"k": 2})
        iterations = 50
        procs = [
            multiprocessing.Process(
                target=_hammer_writer, args=(str(tmp_path), idx, iterations)
            )
            for idx in range(2)
        ]
        for p in procs:
            p.start()
        # read continuously while both writers hammer the same entry:
        # every read must be a miss (not yet published) or a well-formed
        # envelope hit -- never an exception, never a torn value
        while any(p.is_alive() for p in procs):
            hit, value = cache.read_hit(path)
            if hit:
                assert set(value) == {"writer", "i"}
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        hit, value = cache.read_hit(path)
        assert hit and value["i"] == iterations - 1
        # the lock file is left behind deliberately (unlink would race)
        assert path.with_name(path.name + ".lock").exists()

    def test_nested_keys_create_parent_directories(self, tmp_path):
        cache = CellCache(tmp_path)
        path = cache.path("cnn@0.75/seed0/Dense", {"k": 3})
        cache.write(path, {"ok": True})
        assert cache.read_hit(path) == (True, {"ok": True})

    def test_traversal_keys_cannot_escape_the_cache_dir(self, tmp_path):
        cache = CellCache(tmp_path / "cells")
        for key in ("../evil", "a/../../evil", "/abs/evil"):
            with pytest.raises(ValueError, match="escapes"):
                cache.path(key, {"k": 1})
        # ".." that stays inside the directory is contained, not an escape
        inside = cache.path("a/../b", {"k": 1})
        assert str(inside).startswith(str(tmp_path / "cells"))


class TestCacheKey:
    def test_key_depends_on_payload(self):
        base = cache_key("cell", {"x": 1})
        assert cache_key("cell", {"x": 1}) == base
        assert cache_key("cell", {"x": 2}) != base
        assert cache_key("other", {"x": 1}) != base
