"""Tests for the cell cache's envelope format and hit/miss semantics."""

import pickle

from repro.runtime.cellcache import CellCache, cache_key


class TestReadHit:
    def test_miss_on_absent_entry(self, tmp_path):
        cache = CellCache(tmp_path)
        assert cache.read_hit(tmp_path / "nope.pkl") == (False, None)
        assert cache.read_hit(None) == (False, None)

    def test_cached_none_is_a_hit(self, tmp_path):
        cache = CellCache(tmp_path)
        path = cache.path("cell", {"x": 1})
        cache.write(path, None)
        assert cache.read_hit(path) == (True, None)
        # The legacy value-only reader cannot tell this hit from a miss;
        # that ambiguity is exactly why read_hit exists.
        assert cache.read(path) is None

    def test_round_trip_through_envelope(self, tmp_path):
        cache = CellCache(tmp_path)
        path = cache.path("cell", {"x": 2})
        cache.write(path, {"answer": 42})
        assert cache.read_hit(path) == (True, {"answer": 42})

    def test_legacy_raw_pickle_still_reads_as_hit(self, tmp_path):
        cache = CellCache(tmp_path)
        path = cache.path("cell", {"x": 3})
        path.write_bytes(pickle.dumps({"pre": "envelope"}))
        assert cache.read_hit(path) == (True, {"pre": "envelope"})

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        path = cache.path("cell", {"x": 4})
        path.write_bytes(b"definitely not a pickle")
        assert cache.read_hit(path) == (False, None)


class TestCacheKey:
    def test_key_depends_on_payload(self):
        base = cache_key("cell", {"x": 1})
        assert cache_key("cell", {"x": 1}) == base
        assert cache_key("cell", {"x": 2}) != base
        assert cache_key("other", {"x": 1}) != base
