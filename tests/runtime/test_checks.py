"""Invariant-check layer: levels, mask validity, format round-trips."""

import numpy as np
import pytest

from repro.core.patterns import PatternFamily, PatternSpec
from repro.formats import SDCFormat
from repro.runtime.checks import (
    InvariantError,
    InvariantWarning,
    check_format_roundtrip,
    check_level,
    check_mask,
    check_workload,
    get_check_level,
    reset_warning_counts,
    set_check_level,
    warning_counts,
)

# Lower-triangular 4x4: row counts {1,2,3,4}, col counts {1,2,3,4} --
# valid N:M in neither dimension, so a guaranteed TBS violation.
BAD_TBS = np.tril(np.ones((4, 4), dtype=bool))
# Every row keeps the same 2 of 4: uniform 2:4 along rows.
GOOD_TBS = np.tile(np.array([True, True, False, False]), (4, 1))
SPEC = PatternSpec(PatternFamily.TBS, m=4, sparsity=0.5)


@pytest.fixture(autouse=True)
def _reset_level(monkeypatch):
    monkeypatch.delenv("REPRO_CHECKS", raising=False)
    set_check_level(None)
    yield
    set_check_level(None)


class TestLevels:
    def test_default_is_off(self):
        assert get_check_level() == "off"

    def test_global_setting(self):
        set_check_level("warn")
        assert get_check_level() == "warn"

    def test_explicit_override_wins(self):
        set_check_level("strict")
        assert get_check_level("off") == "off"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKS", "strict")
        assert get_check_level() == "strict"
        monkeypatch.setenv("REPRO_CHECKS", "nonsense")
        assert get_check_level() == "off"

    def test_context_manager_restores(self):
        set_check_level("warn")
        with check_level("strict"):
            assert get_check_level() == "strict"
        assert get_check_level() == "warn"

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            set_check_level("loud")
        with pytest.raises(ValueError):
            get_check_level("loud")


class TestCheckMask:
    def test_off_never_inspects(self):
        assert check_mask(BAD_TBS, SPEC) is True

    def test_strict_raises(self):
        with pytest.raises(InvariantError, match="mask invariant"):
            check_mask(BAD_TBS, SPEC, level="strict")

    def test_warn_warns_and_continues(self):
        with pytest.warns(InvariantWarning):
            assert check_mask(BAD_TBS, SPEC, level="warn") is False

    def test_valid_mask_passes_strict(self):
        assert check_mask(GOOD_TBS, SPEC, level="strict") is True

    def test_context_includes_call_site(self):
        with pytest.raises(InvariantError, match="layer 7"):
            check_mask(BAD_TBS, SPEC, context="layer 7", level="strict")

    def test_global_strict_applies(self):
        set_check_level("strict")
        with pytest.raises(InvariantError):
            check_mask(BAD_TBS, SPEC)


class TestWarnDedup:
    def test_repeat_violations_warn_once_per_site(self):
        """A sweep tripping the same invariant at the same call site
        emits ONE warning; the rest are tallied."""
        with pytest.warns(InvariantWarning) as caught:
            for _ in range(5):
                check_mask(BAD_TBS, SPEC, context="layer 3", level="warn")
        assert len(caught) == 1
        assert warning_counts() == {"mask:layer 3": 5}

    def test_distinct_sites_each_warn(self):
        with pytest.warns(InvariantWarning) as caught:
            check_mask(BAD_TBS, SPEC, context="layer 1", level="warn")
            check_mask(BAD_TBS, SPEC, context="layer 2", level="warn")
        assert len(caught) == 2
        assert set(warning_counts()) == {"mask:layer 1", "mask:layer 2"}

    def test_contextless_calls_always_warn(self):
        """No call-site key -> no dedup (nothing sane to key on)."""
        with pytest.warns(InvariantWarning) as caught:
            check_mask(BAD_TBS, SPEC, level="warn")
            check_mask(BAD_TBS, SPEC, level="warn")
        assert len(caught) == 2
        assert warning_counts() == {}

    def test_first_warning_mentions_suppression(self):
        with pytest.warns(InvariantWarning, match="counted, not re-warned"):
            check_mask(BAD_TBS, SPEC, context="layer 9", level="warn")

    def test_reset_reopens_the_site(self):
        with pytest.warns(InvariantWarning):
            check_mask(BAD_TBS, SPEC, context="site", level="warn")
        reset_warning_counts()
        assert warning_counts() == {}
        with pytest.warns(InvariantWarning):
            check_mask(BAD_TBS, SPEC, context="site", level="warn")

    def test_set_check_level_resets_dedup(self):
        with pytest.warns(InvariantWarning):
            check_mask(BAD_TBS, SPEC, context="site", level="warn")
        set_check_level("warn")
        assert warning_counts() == {}

    def test_strict_still_raises_every_time(self):
        for _ in range(2):
            with pytest.raises(InvariantError):
                check_mask(BAD_TBS, SPEC, context="site", level="strict")

    def test_roundtrip_sites_dedupe_too(self):
        with pytest.warns(InvariantWarning) as caught:
            for _ in range(3):
                check_format_roundtrip(
                    _LossyFormat(), np.ones((4, 4)), context="sweep", level="warn"
                )
        assert len(caught) == 1
        assert warning_counts() == {"roundtrip:lossy:sweep": 3}


class _FakeWorkload:
    name = "fake"
    family = PatternFamily.TBS
    m = 4
    sparsity = 0.5
    mask = BAD_TBS
    tbs = None


class TestCheckWorkload:
    def test_bad_workload_mask_caught(self):
        with pytest.raises(InvariantError):
            check_workload(_FakeWorkload(), level="strict")

    def test_us_workload_always_passes(self):
        wl = _FakeWorkload()
        wl.family = PatternFamily.US
        assert check_workload(wl, level="strict") is True

    def test_real_workload_passes(self):
        from repro.workloads.generator import build_workload
        from repro.workloads.layers import LayerSpec

        wl = build_workload(LayerSpec("t", 16, 16, 8), PatternFamily.TBS, 0.5, seed=0)
        assert check_workload(wl, level="strict") is True


class _LossyFormat:
    name = "lossy"

    def encode(self, values, mask=None, tbs=None, block_size=8):
        return np.where(mask, values, 0.0) if mask is not None else np.asarray(values, float)

    def decode(self, encoded):
        return encoded + 1.0


class _CrashingFormat:
    name = "crashy"

    def encode(self, values, mask=None, tbs=None, block_size=8):
        raise RuntimeError("boom")

    def decode(self, encoded):  # pragma: no cover - encode already raised
        return encoded


class TestFormatRoundtrip:
    def test_real_format_passes_strict(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(16, 16))
        mask = rng.random((16, 16)) < 0.5
        assert check_format_roundtrip(SDCFormat(), values, mask=mask, level="strict")

    def test_lossy_format_caught(self):
        with pytest.raises(InvariantError, match="round-trip mismatch"):
            check_format_roundtrip(_LossyFormat(), np.ones((4, 4)), level="strict")

    def test_crash_becomes_invariant_report(self):
        with pytest.raises(InvariantError, match="round-trip crashed"):
            check_format_roundtrip(_CrashingFormat(), np.ones((4, 4)), level="strict")

    def test_off_skips_the_encode(self):
        # Would crash if executed: "off" must not even attempt it.
        assert check_format_roundtrip(_CrashingFormat(), np.ones((4, 4))) is True
