"""Golden-file regression tests for the serialized result schemas.

Pins the exact JSON a consumer sees: the versioned ``SimResult
.to_dict`` payload for one reference workload, and the aggregated
sweep JSON for a small Table 1 grid (mlp task, seed 0, one epoch).
Values are rounded to :data:`_PLACES` decimals before comparison, so
the files survive last-bit float drift while still catching any real
change to the numbers, the key set, or the schema version.

A mismatch here means one of two things:

* an **accidental** output change -- a bug; fix the code; or
* an **intentional** schema/metric change -- bump the relevant
  ``*_SCHEMA`` constant, then regenerate the golden files with::

      PYTHONPATH=src python -m tests.golden.test_golden

  and review the diff like any other contract change.
"""

import json
from pathlib import Path

from repro.core.patterns import PatternFamily
from repro.hw.config import tb_stc
from repro.sim.engine import simulate
from repro.sim.metrics import SIM_RESULT_SCHEMA
from repro.workloads.generator import build_workload
from repro.workloads.layers import LayerSpec

_GOLDEN_DIR = Path(__file__).parent
_SIMRESULT_GOLDEN = _GOLDEN_DIR / "simresult_tbstc_64x64.json"
_TABLE1_GOLDEN = _GOLDEN_DIR / "table1_mlp_seed0.json"
_FIG7BOTH_GOLDEN = _GOLDEN_DIR / "fig7both_64.json"
_SCENARIOS_GOLDEN = _GOLDEN_DIR / "scenarios_64.json"
_PLACES = 6


def _rounded(obj):
    """Round every float in a JSON-shaped object to ``_PLACES`` decimals."""
    if isinstance(obj, float):
        return round(obj, _PLACES)
    if isinstance(obj, dict):
        return {k: _rounded(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_rounded(v) for v in obj]
    return obj


def _canon(obj) -> str:
    return json.dumps(_rounded(obj), sort_keys=True, indent=2) + "\n"


def _simresult_payload():
    layer = LayerSpec("golden", 64, 64, 64)
    workload = build_workload(layer, PatternFamily.TBS, 0.75, seed=0)
    return simulate(tb_stc(), workload).to_dict()


def _table1_payload():
    from repro.analysis.experiments import run_table1

    return run_table1(tasks=(("mlp", 0.75),), seeds=(0,), epochs=1, workers=1)


def _fig7both_payload():
    from repro.analysis.experiments import run_fig7_both_passes

    return run_fig7_both_passes(sparsities=(0.5, 0.75, 0.875), seed=0, size=64, workers=1)


def _scenarios_payload():
    from repro.analysis.experiments import run_scenarios

    return run_scenarios(scale=64, workers=1)


class TestSimResultGolden:
    def test_matches_golden_file(self):
        expected = json.loads(_SIMRESULT_GOLDEN.read_text())
        actual = json.loads(_canon(_simresult_payload()))
        assert actual["schema_version"] == SIM_RESULT_SCHEMA
        assert sorted(actual) == sorted(expected), "SimResult.to_dict key set changed"
        assert actual == expected

    def test_golden_schema_version_tracks_code(self):
        """The checked-in file must be regenerated when the schema bumps."""
        expected = json.loads(_SIMRESULT_GOLDEN.read_text())
        assert expected["schema_version"] == SIM_RESULT_SCHEMA


class TestTable1Golden:
    def test_matches_golden_file(self):
        expected = json.loads(_TABLE1_GOLDEN.read_text())
        actual = json.loads(_canon(_table1_payload()))
        assert sorted(actual) == sorted(expected), "table1 task set changed"
        for task in expected:
            assert sorted(actual[task]) == sorted(expected[task]), (
                f"table1[{task!r}] family set changed"
            )
        assert actual == expected


class TestFig7BothGolden:
    """Pins the both-passes format-comparison table (Fig. 7 analogue
    with a backward-pass column)."""

    def test_matches_golden_file(self):
        expected = json.loads(_FIG7BOTH_GOLDEN.read_text())
        actual = json.loads(_canon(_fig7both_payload()))
        assert sorted(actual) == sorted(expected), "fig7both row set changed"
        assert actual == expected

    def test_bcsrcoo_beats_csr_on_the_backward_pass(self):
        """The committed table itself must witness the acceptance
        criterion: lower transposed-pass traffic than CSR at the
        paper's 75% sparsity."""
        table = json.loads(_FIG7BOTH_GOLDEN.read_text())
        bcsrcoo = table["sparsity=75% bcsrcoo"]
        csr = table["sparsity=75% csr"]
        assert bcsrcoo["backward_traced_bytes"] < csr["backward_traced_bytes"]

    def test_single_encode_formats_trace_equal_bytes_both_ways(self):
        table = json.loads(_FIG7BOTH_GOLDEN.read_text())
        for key, row in table.items():
            if key.endswith(" bcsrcoo"):
                assert row["backward_traced_bytes"] == row["forward_traced_bytes"], key


class TestScenariosGolden:
    """Pins the scale-64 win/loss table of ``run_scenarios``: every
    workload family x pattern regime, simulated cycles plus the full
    format x orientation traffic grid."""

    def test_matches_golden_file(self):
        expected = json.loads(_SCENARIOS_GOLDEN.read_text())
        actual = json.loads(_canon(_scenarios_payload()))
        assert sorted(actual) == sorted(expected), "scenario family set changed"
        for family in expected:
            assert sorted(actual[family]["formats"]) == sorted(expected[family]["formats"]), (
                f"scenarios[{family!r}] format set changed"
            )
        assert actual == expected

    def test_covers_the_full_grid(self):
        """>= 3 families x >= 5 formats x both orientations, every
        pattern regime scored per cell (the acceptance floor)."""
        from repro.formats import ORIENTATIONS, available_formats
        from repro.workloads.scenarios import SCENARIO_FAMILIES, SCENARIO_PATTERNS

        table = json.loads(_SCENARIOS_GOLDEN.read_text())
        assert sorted(table) == sorted(SCENARIO_FAMILIES)
        for family, entry in table.items():
            assert sorted(entry["patterns"]) == sorted(SCENARIO_PATTERNS), family
            assert sorted(entry["formats"]) == sorted(available_formats()), family
            for fmt, rows in entry["formats"].items():
                assert sorted(rows) == sorted(ORIENTATIONS), (family, fmt)
                for orientation, row in rows.items():
                    assert set(SCENARIO_PATTERNS) <= set(row), (family, fmt, orientation)
                    assert row["winner"] in set(SCENARIO_PATTERNS) | {"tie"}

    def test_inference24_is_the_baselines_home_game(self):
        """One-shot 2:4 pruning is STC's native regime: the committed
        table must show the 2:4 pattern winning its cycle race there
        while TBS takes the stencil family."""
        table = json.loads(_SCENARIOS_GOLDEN.read_text())
        assert table["inference24"]["cycle_winner"] == "2:4"
        assert table["stencil"]["cycle_winner"] == "TBS"

    def test_tbs_never_fetches_more_than_dense_on_structured_families(self):
        """Stencil structure and MoE block-diagonal zeros are exactly
        what TBS's per-block N=0 skipping absorbs: across every format
        and orientation its traffic must not exceed the dense regime's."""
        table = json.loads(_SCENARIOS_GOLDEN.read_text())
        for family in ("stencil", "moe"):
            for fmt, rows in table[family]["formats"].items():
                for orientation, row in rows.items():
                    assert row["TBS"] <= row["dense"], (family, fmt, orientation)

    def test_dense_speedup_is_unity(self):
        table = json.loads(_SCENARIOS_GOLDEN.read_text())
        for family, entry in table.items():
            assert entry["speedup_vs_dense"]["dense"] == 1.0, family


def _regenerate() -> None:  # pragma: no cover - maintenance entry point
    _SIMRESULT_GOLDEN.write_text(_canon(_simresult_payload()))
    print(f"wrote {_SIMRESULT_GOLDEN}")
    _TABLE1_GOLDEN.write_text(_canon(_table1_payload()))
    print(f"wrote {_TABLE1_GOLDEN}")
    _FIG7BOTH_GOLDEN.write_text(_canon(_fig7both_payload()))
    print(f"wrote {_FIG7BOTH_GOLDEN}")
    _SCENARIOS_GOLDEN.write_text(_canon(_scenarios_payload()))
    print(f"wrote {_SCENARIOS_GOLDEN}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
