"""Tests for the codec's storage->computation format conversion (Fig. 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import Direction
from repro.formats.conversion import (
    StorageElement,
    block_storage_stream,
    convert_block,
)


def _col_block_2_4():
    """The Fig. 9(b) shape: a 4x4 block, 2:4 sparse in the independent
    dimension (each column keeps 2)."""
    block = np.zeros((4, 4))
    # column j keeps rows (j % 4) and ((j + 1) % 4), values distinct.
    labels = iter(range(1, 9))
    for j in range(4):
        block[j % 4, j] = next(labels)
        block[(j + 1) % 4, j] = next(labels)
    return block


class TestStorageStream:
    def test_row_block_row_major(self):
        block = np.array([[1.0, 0.0], [0.0, 2.0]])
        stream = block_storage_stream(block, Direction.ROW)
        assert [e.value for e in stream] == [1.0, 2.0]
        assert [(e.iid, e.rid) for e in stream] == [(0, 0), (1, 1)]

    def test_col_block_column_major(self):
        block = np.array([[1.0, 3.0], [2.0, 0.0]])
        stream = block_storage_stream(block, Direction.COL)
        assert [e.value for e in stream] == [1.0, 2.0, 3.0]

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            block_storage_stream(np.ones((2, 3)), Direction.ROW)

    def test_empty_block(self):
        assert block_storage_stream(np.zeros((4, 4)), Direction.COL) == []


class TestConvertBlock:
    def test_all_elements_preserved(self):
        stream = block_storage_stream(_col_block_2_4(), Direction.COL)
        schedule = convert_block(stream, n_queues=4)
        out = [e for beat in schedule.outputs for e in beat]
        assert sorted(e.value for e in out) == sorted(e.value for e in stream)

    def test_output_beats_bounded_by_width(self):
        stream = block_storage_stream(_col_block_2_4(), Direction.COL)
        schedule = convert_block(stream, n_queues=4, out_width=2)
        assert all(len(beat) <= 2 for beat in schedule.outputs)

    def test_row_grouping_in_outputs(self):
        """Non-flush beats contain elements of a single output row --
        the queue-per-Iid structure guarantees it."""
        stream = block_storage_stream(_col_block_2_4(), Direction.COL)
        schedule = convert_block(stream, n_queues=4, threshold=2)
        regular = schedule.outputs[: len(schedule.outputs) - schedule.flush_cycles]
        for beat in regular:
            assert len({e.iid for e in beat}) == 1

    def test_cycle_count_near_optimal(self):
        """Conversion throughput ~ nnz / in_width, plus a short flush --
        this is why Fig. 14 shows only ~3.57% codec overhead."""
        stream = block_storage_stream(_col_block_2_4(), Direction.COL)
        schedule = convert_block(stream, n_queues=4)
        assert schedule.input_cycles == 4  # 8 elements / width 2
        assert schedule.cycles <= 6

    def test_empty_stream(self):
        schedule = convert_block([])
        assert schedule.cycles == 0
        assert schedule.outputs == []

    def test_rejects_bad_widths(self):
        with pytest.raises(ValueError):
            convert_block([], in_width=0)

    def test_queue_depth_tracked(self):
        stream = [StorageElement(float(i), rid=i % 4, iid=0) for i in range(8)]
        schedule = convert_block(stream, n_queues=4, threshold=2)
        assert schedule.max_queue_depth >= 2

    def test_single_element(self):
        schedule = convert_block([StorageElement(1.0, 0, 0)])
        assert schedule.elements_out == 1
        assert schedule.flush_cycles == 1  # below threshold -> flushed

    @given(
        seed=st.integers(0, 100),
        m=st.sampled_from([4, 8]),
        n=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_conservation_property(self, seed, m, n):
        """Every stored element leaves the codec exactly once."""
        rng = np.random.default_rng(seed)
        block = np.zeros((m, m))
        for j in range(m):
            rows = rng.choice(m, size=n, replace=False)
            block[rows, j] = rng.normal() + 10.0
        stream = block_storage_stream(block, Direction.COL)
        schedule = convert_block(stream, n_queues=m)
        out_vals = sorted(e.value for beat in schedule.outputs for e in beat)
        assert out_vals == sorted(e.value for e in stream)
        assert schedule.elements_out == m * n
