"""Tests for the storage-format registry."""

import pytest

from repro.formats import (
    BCSRCOOFormat,
    CSRFormat,
    SparseFormat,
    available_formats,
    format_class,
    get_format,
    register_format,
)
from repro.formats.registry import _REGISTRY, format_index


class TestRegistry:
    def test_registration_order_is_stable(self):
        """Fault-campaign RNG seeds depend on these exact indices."""
        assert available_formats() == ("dense", "csr", "sdc", "ddc", "bitmap", "bcsrcoo")

    def test_format_index_matches_order(self):
        for i, name in enumerate(available_formats()):
            assert format_index(name) == i

    def test_get_format_returns_fresh_instances(self):
        assert get_format("csr") is not get_format("csr")
        assert isinstance(get_format("bcsrcoo"), BCSRCOOFormat)

    def test_get_format_passes_constructor_kwargs(self):
        assert get_format("sdc", group_rows=4).group_rows == 4

    def test_unknown_name_rejected_everywhere(self):
        for fn in (format_class, get_format, format_index):
            with pytest.raises(ValueError, match="unknown storage format"):
                fn("coo")

    def test_reregistering_same_class_is_idempotent(self):
        assert register_format(CSRFormat) is CSRFormat
        assert format_class("csr") is CSRFormat

    def test_name_conflict_rejected(self):
        class ImpostorCSR(SparseFormat):
            name = "csr"

            def _encode(self, values, spec):  # pragma: no cover
                raise NotImplementedError

            def decode(self, encoded):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            register_format(ImpostorCSR)

    def test_unnamed_class_rejected(self):
        class Nameless(SparseFormat):
            def _encode(self, values, spec):  # pragma: no cover
                raise NotImplementedError

            def decode(self, encoded):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="no usable name"):
            register_format(Nameless)

    def test_decorator_registration(self):
        try:

            @register_format
            class TestOnlyFormat(SparseFormat):
                name = "test-only"

                def _encode(self, values, spec):  # pragma: no cover
                    raise NotImplementedError

                def decode(self, encoded):  # pragma: no cover
                    raise NotImplementedError

            assert "test-only" in available_formats()
            assert format_class("test-only") is TestOnlyFormat
        finally:
            _REGISTRY.pop("test-only", None)
        assert "test-only" not in available_formats()
