"""Tests for EncodeSpec and the legacy encode-kwargs deprecation shim."""

import warnings

import numpy as np
import pytest

from repro.core import tbs_sparsify
from repro.formats import CSRFormat, DenseFormat, EncodeSpec
from repro.formats.base import _LEGACY_ENCODE_WARNED_SITES


class TestEncodeSpec:
    def test_defaults(self):
        spec = EncodeSpec()
        assert spec.mask is None
        assert spec.tbs is None
        assert spec.block_size == 8
        assert spec.orientation == "forward"

    def test_frozen(self):
        with pytest.raises(Exception):
            EncodeSpec().block_size = 4  # type: ignore[misc]

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError, match="block_size"):
            EncodeSpec(block_size=0)

    def test_rejects_bad_orientation(self):
        with pytest.raises(ValueError, match="orientation"):
            EncodeSpec(orientation="diagonal")

    def test_effective_block_size_prefers_tbs(self):
        res = tbs_sparsify(np.random.default_rng(0).normal(size=(16, 16)), m=8)
        assert EncodeSpec(tbs=res, block_size=4).effective_block_size == 8
        assert EncodeSpec(block_size=4).effective_block_size == 4

    def test_encode_stamps_orientation_and_block_size(self):
        enc = DenseFormat().encode(
            np.ones((8, 8)), EncodeSpec(block_size=4, orientation="transposed")
        )
        assert enc.orientation == "transposed"
        assert enc.block_size == 4
        assert enc.trace() == enc.trace("transposed")  # default follows the spec


class TestLegacyShim:
    def test_legacy_kwargs_still_encode_identically(self):
        values = np.random.default_rng(1).normal(size=(16, 16))
        mask = np.random.default_rng(2).random((16, 16)) < 0.5
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = CSRFormat().encode(values, mask=mask, block_size=8)
        new = CSRFormat().encode(values, EncodeSpec(mask=mask, block_size=8))
        assert np.array_equal(CSRFormat().decode(legacy), CSRFormat().decode(new))
        assert legacy.segments == new.segments

    def test_warns_once_per_call_site(self):
        values = np.ones((8, 8))
        _LEGACY_ENCODE_WARNED_SITES.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                CSRFormat().encode(values, block_size=8)  # one site, three calls
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "EncodeSpec" in str(deprecations[0].message)

    def test_distinct_call_sites_each_warn(self):
        values = np.ones((8, 8))
        _LEGACY_ENCODE_WARNED_SITES.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            CSRFormat().encode(values, block_size=8)
            CSRFormat().encode(values, block_size=8)  # a different line -> warns again
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 2

    def test_positional_mask_still_works(self):
        values = np.random.default_rng(3).normal(size=(8, 8))
        mask = np.random.default_rng(4).random((8, 8)) < 0.5
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            enc = CSRFormat().encode(values, mask)
        assert np.array_equal(CSRFormat().decode(enc), np.where(mask, values, 0.0))

    def test_rejects_unknown_kwarg(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            CSRFormat().encode(np.ones((8, 8)), turbo=True)

    def test_rejects_duplicate_mask(self):
        mask = np.ones((8, 8), dtype=bool)
        with pytest.raises(TypeError, match="multiple values"):
            CSRFormat().encode(np.ones((8, 8)), mask, mask=mask)
