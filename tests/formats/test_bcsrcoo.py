"""Tests for the BCSR-COO hybrid format and its single-encode contract."""

import numpy as np
import pytest

from repro.core import tbs_sparsify
from repro.formats import BCSRCOOFormat, CSRFormat, EncodeSpec
from repro.formats.bcsrcoo import BCSRCOO_BLOCK_META_BYTES


def _tbs_case(shape=(64, 64), sparsity=0.75, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=shape)
    w[w == 0] = 1.0
    res = tbs_sparsify(w, m=8, sparsity=sparsity)
    return np.where(res.mask, w, 0.0), res


class TestLayout:
    def test_meta_bytes_formula(self):
        sparse, res = _tbs_case()
        enc = BCSRCOOFormat().encode(sparse, EncodeSpec(tbs=res))
        n_block_rows = 64 // 8
        n_blocks = len(enc.arrays["row_idx"])
        assert enc.meta_bytes == (n_block_rows + 1) * 4 + n_blocks * BCSRCOO_BLOCK_META_BYTES

    def test_t_order_is_col_major_permutation(self):
        sparse, res = _tbs_case(seed=1)
        enc = BCSRCOOFormat().encode(sparse, EncodeSpec(tbs=res))
        t_order = enc.arrays["t_order"]
        n_blocks = len(enc.arrays["row_idx"])
        assert sorted(t_order.tolist()) == list(range(n_blocks))
        keys = [
            (int(enc.arrays["col_idx"][i]), int(enc.arrays["row_idx"][i]))
            for i in t_order
        ]
        assert keys == sorted(keys)

    def test_row_ptr_is_block_csr(self):
        sparse, res = _tbs_case(seed=2)
        enc = BCSRCOOFormat().encode(sparse, EncodeSpec(tbs=res))
        row_ptr = enc.arrays["row_ptr"]
        assert (np.diff(row_ptr) >= 0).all()
        assert int(row_ptr[-1]) == len(enc.arrays["row_idx"])

    def test_empty_blocks_are_not_stored(self):
        sparse = np.zeros((32, 32))
        sparse[0, 0] = 1.0  # exactly one non-empty tile
        enc = BCSRCOOFormat().encode(sparse)
        assert len(enc.arrays["row_idx"]) == 1
        assert enc.nnz == 1


class TestSingleEncodeBothOrientations:
    def test_transposed_path_never_re_encodes(self, monkeypatch):
        """The tentpole contract: one encode serves both passes."""
        sparse, res = _tbs_case()
        fmt = BCSRCOOFormat()
        enc = fmt.encode(sparse, EncodeSpec(tbs=res))
        expected_t = fmt.decode(enc).T

        def boom(self, values, spec):
            raise AssertionError("transposed path re-encoded the matrix")

        monkeypatch.setattr(BCSRCOOFormat, "_encode", boom)
        assert enc.trace("transposed")  # derived, not re-encoded
        assert enc.traced_bytes_for("transposed") > 0
        assert np.array_equal(fmt.decode_transposed(enc), expected_t)

    def test_transposed_trace_is_cached(self):
        sparse, res = _tbs_case(seed=3)
        enc = BCSRCOOFormat().encode(sparse, EncodeSpec(tbs=res))
        first = enc.trace("transposed")
        assert enc.trace("transposed") is first

    def test_same_bytes_both_orientations(self):
        """BCSR-COO walks the same blocks either way: equal traffic."""
        sparse, res = _tbs_case(seed=4)
        enc = BCSRCOOFormat().encode(sparse, EncodeSpec(tbs=res))
        assert enc.traced_bytes_for("transposed") == enc.traced_bytes_for("forward")

    def test_beats_csr_on_the_backward_pass(self):
        """Fig. 7 backward-pass analogue at the paper's 75% sparsity."""
        sparse, res = _tbs_case(sparsity=0.75)
        bcsrcoo = BCSRCOOFormat().encode(sparse, EncodeSpec(tbs=res))
        csr = CSRFormat().encode(sparse)
        assert (
            bcsrcoo.traced_bytes_for("transposed")
            < csr.traced_bytes_for("transposed")
        )


class TestDecode:
    def test_ragged_shape(self):
        sparse, res = _tbs_case(shape=(30, 44), seed=5)
        fmt = BCSRCOOFormat()
        enc = fmt.encode(sparse, EncodeSpec(tbs=res))
        np.testing.assert_array_equal(fmt.decode(enc), sparse)
        np.testing.assert_array_equal(fmt.decode_transposed(enc), sparse.T)

    def test_without_tbs_metadata(self):
        """TBS metadata is optional: tiling falls back to block_size."""
        rng = np.random.default_rng(6)
        sparse = rng.normal(size=(16, 16)) * (rng.random((16, 16)) < 0.4)
        fmt = BCSRCOOFormat()
        enc = fmt.encode(sparse)
        np.testing.assert_array_equal(fmt.decode(enc), sparse)

    def test_compression_beats_dense_on_sparse(self):
        sparse, res = _tbs_case(sparsity=0.75, seed=7)
        enc = BCSRCOOFormat().encode(sparse, EncodeSpec(tbs=res))
        assert enc.total_bytes < sparse.size * 2
