"""Unit tests for the trace-vs-footprint validator."""

import numpy as np
import pytest

from repro.core import tbs_sparsify
from repro.formats import (
    EncodedMatrix,
    EncodeSpec,
    Segment,
    TraceValidationError,
    available_formats,
    get_format,
    trace_violations,
    validate_trace,
)

#: Formats whose encoder consumes the TBS metadata directly.
_TBS_AWARE = ("ddc", "bcsrcoo")


def _synthetic(segments, total_bytes=32):
    """A hand-built EncodedMatrix whose footprint is all value bytes."""
    return EncodedMatrix(
        format_name="dense",
        shape=(4, 4),
        nnz=total_bytes // 2,
        value_bytes=total_bytes,
        index_bytes=0,
        meta_bytes=0,
        segments=list(segments),
    )


class TestViolations:
    def test_clean_trace_has_none(self):
        enc = _synthetic([Segment(0, 16), Segment(16, 16)])
        assert trace_violations(enc, "forward") == []

    def test_segment_past_footprint_flagged(self):
        enc = _synthetic([Segment(0, 16), Segment(24, 16)])
        (problem,) = trace_violations(enc, "forward")
        assert "past the declared footprint" in problem

    def test_partial_overlap_flagged(self):
        enc = _synthetic([Segment(0, 16), Segment(8, 16)])
        (problem,) = trace_violations(enc, "forward")
        assert "partially overlap" in problem

    def test_exact_duplicate_is_legal(self):
        """Whole-segment re-fetch (SDC's transposed walk) is real traffic,
        not a layout inconsistency."""
        enc = _synthetic([Segment(0, 16), Segment(0, 16), Segment(16, 16)])
        assert trace_violations(enc, "forward") == []

    def test_zero_length_segments_ignored(self):
        enc = _synthetic([Segment(0, 16), Segment(8, 0), Segment(16, 16)])
        assert trace_violations(enc, "forward") == []

    def test_contained_segment_flagged(self):
        enc = _synthetic([Segment(0, 32), Segment(8, 8)])
        assert trace_violations(enc, "forward")


class TestValidateTrace:
    def test_raises_with_format_and_orientation(self):
        enc = _synthetic([Segment(24, 16)])
        with pytest.raises(TraceValidationError, match="dense forward"):
            validate_trace(enc, "forward")

    def test_passes_on_clean_trace(self):
        validate_trace(_synthetic([Segment(0, 32)]), "forward")

    def test_default_checks_both_orientations(self):
        """orientation=None must also derive and check the transposed
        trace (smoke-testing that the format can serve it)."""
        rng = np.random.default_rng(0)
        w = rng.normal(size=(32, 32))
        res = tbs_sparsify(w, m=8, sparsity=0.75)
        sparse = np.where(res.mask, w, 0.0)
        for name in available_formats():
            fmt = get_format(name)
            enc = fmt.encode(sparse, EncodeSpec(tbs=res if name in _TBS_AWARE else None))
            validate_trace(enc)
            assert enc.transposed_segments is not None, name

    def test_bad_orientation_rejected(self):
        with pytest.raises(ValueError, match="orientation"):
            trace_violations(_synthetic([Segment(0, 32)]), "sideways")
