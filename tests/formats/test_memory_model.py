"""Tests for the bandwidth-utilization model (Fig. 7 / the 1.47x claim)."""

import numpy as np
import pytest

from repro.core import tbs_sparsify
from repro.formats import (
    CSRFormat,
    EncodeSpec,
    DDCFormat,
    DenseFormat,
    SDCFormat,
    Segment,
    compare_formats,
    merge_contiguous,
    traffic_report,
    useful_bytes_floor,
)


def _tbs_case(shape=(128, 128), sparsity=0.75, seed=0, row_scale=0.8):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=shape) * np.exp(rng.normal(0, row_scale, size=(shape[0], 1)))
    res = tbs_sparsify(w, m=8, sparsity=sparsity)
    return w * res.mask, res


class TestMergeContiguous:
    def test_adjacent_merge(self):
        segs = [Segment(0, 8), Segment(8, 8), Segment(32, 4)]
        merged = merge_contiguous(segs)
        assert merged == [Segment(0, 16), Segment(32, 4)]

    def test_non_adjacent_kept(self):
        segs = [Segment(0, 4), Segment(8, 4)]
        assert merge_contiguous(segs) == segs

    def test_empty(self):
        assert merge_contiguous([]) == []


class TestTrafficReport:
    def test_burst_roundup(self):
        enc = DenseFormat().encode(np.ones((4, 4)))
        rep = traffic_report(enc, burst_bytes=32)
        assert rep.fetched_bytes == 32  # 32 useful bytes, 1 burst

    def test_unaligned_segment_costs_extra_burst(self):
        enc = DenseFormat().encode(np.ones((4, 4)))
        enc.segments = [Segment(16, 32)]  # straddles two 32B bursts
        rep = traffic_report(enc, burst_bytes=32)
        assert rep.fetched_bytes == 64

    def test_rejects_bad_burst(self):
        enc = DenseFormat().encode(np.ones((4, 4)))
        with pytest.raises(ValueError):
            traffic_report(enc, burst_bytes=0)

    def test_utilization_bounds(self):
        sparse, res = _tbs_case(seed=1)
        for fmt in (DenseFormat(), CSRFormat(), SDCFormat(), DDCFormat()):
            enc = fmt.encode(sparse, EncodeSpec(tbs=res if fmt.name == "ddc" else None))
            rep = traffic_report(enc)
            assert 0.0 <= rep.bandwidth_utilization <= 1.0
            assert rep.redundancy_ratio == pytest.approx(1 - rep.bandwidth_utilization)

    def test_empty_matrix_full_utilization(self):
        enc = CSRFormat().encode(np.zeros((8, 8)))
        assert traffic_report(enc).bandwidth_utilization == 1.0


class TestUsefulFloor:
    def test_dense_floor_is_values_only(self):
        enc = DenseFormat().encode(np.ones((8, 8)))
        assert useful_bytes_floor(enc) == 64 * 2

    def test_sparse_floor_includes_indices_and_info(self):
        sparse, res = _tbs_case(shape=(8, 8), seed=2)
        enc = DDCFormat().encode(sparse, EncodeSpec(tbs=res))
        floor = useful_bytes_floor(enc, m=8)
        assert floor >= enc.nnz * 2
        assert floor <= enc.nnz * 2 + enc.nnz + 2  # 3-bit idx + one info entry


class TestChallengeTwoClaims:
    """The paper's Fig. 7 narrative, measured on our model."""

    def test_ddc_beats_all_baselines(self):
        sparse, res = _tbs_case(seed=3)
        reports = compare_formats(sparse, tbs=res)
        ddc = reports["ddc"].bandwidth_utilization
        for name in ("dense", "csr", "sdc"):
            assert ddc > reports[name].bandwidth_utilization

    def test_gain_at_least_paper_level(self):
        """Paper: 1.47x average bandwidth-utilization improvement."""
        gains = []
        for seed, sparsity in [(4, 0.5), (5, 0.75), (6, 0.875)]:
            sparse, res = _tbs_case(seed=seed, sparsity=sparsity)
            reports = compare_formats(sparse, tbs=res)
            best_other = max(
                reports["sdc"].bandwidth_utilization, reports["csr"].bandwidth_utilization
            )
            gains.append(reports["ddc"].bandwidth_utilization / best_other)
        assert np.mean(gains) > 1.47

    def test_csr_fragmentation_hurts_at_any_sparsity(self):
        for sparsity in (0.5, 0.75):
            sparse, res = _tbs_case(seed=7, sparsity=sparsity)
            reports = compare_formats(sparse, tbs=res)
            assert reports["csr"].bandwidth_utilization < 0.5

    def test_sdc_degrades_with_row_variance(self):
        """More per-row occupancy variance -> more SDC padding traffic."""
        low_var, res_lo = _tbs_case(seed=8, row_scale=0.1)
        high_var, res_hi = _tbs_case(seed=8, row_scale=1.5)
        lo = compare_formats(low_var, tbs=res_lo)["sdc"].bandwidth_utilization
        hi = compare_formats(high_var, tbs=res_hi)["sdc"].bandwidth_utilization
        assert hi < lo

    def test_dense_utilization_tracks_density(self):
        sparse, res = _tbs_case(seed=9, sparsity=0.75)
        rep = compare_formats(sparse, tbs=res)["dense"]
        density = np.count_nonzero(sparse) / sparse.size
        assert rep.bandwidth_utilization == pytest.approx(density, abs=0.02)
