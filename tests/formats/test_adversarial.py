"""Adversarial mask round-trips: degenerate shapes and pathological masks.

The storage formats must reconstruct the matrix exactly even for inputs
the TBS generator would never emit on its own: rows with zero survivors,
fully-dense blocks, single-row/single-column matrices, and ragged shapes
that don't divide the block size.
"""

import numpy as np
import pytest

from repro.core import tbs_sparsify
from repro.formats import (
    BCSRCOOFormat,
    BitmapFormat,
    CSRFormat,
    DDCFormat,
    DenseFormat,
    EncodeSpec,
    SDCFormat,
)

ALL_FORMATS = [
    DenseFormat(), CSRFormat(), SDCFormat(), DDCFormat(), BitmapFormat(), BCSRCOOFormat(),
]


def _roundtrip(fmt, values, mask):
    enc = fmt.encode(values, EncodeSpec(mask=mask))
    expected = np.where(mask, values, 0.0)
    np.testing.assert_allclose(fmt.decode(enc), expected)
    assert enc.nnz == np.count_nonzero(expected)


def _values(shape, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=shape)
    values[values == 0] = 1.0  # keep nnz accounting unambiguous
    return values


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
class TestAdversarialMasks:
    def test_empty_rows(self, fmt):
        """Rows that keep nothing at all (SDC's worst padding case)."""
        mask = np.zeros((8, 8), dtype=bool)
        mask[4:] = True
        _roundtrip(fmt, _values((8, 8)), mask)

    def test_interleaved_empty_rows(self, fmt):
        mask = np.zeros((16, 8), dtype=bool)
        mask[::2, ::2] = True
        _roundtrip(fmt, _values((16, 8), seed=1), mask)

    def test_empty_columns(self, fmt):
        mask = np.zeros((8, 16), dtype=bool)
        mask[:, 8:] = True
        _roundtrip(fmt, _values((8, 16), seed=2), mask)

    def test_all_dense_blocks(self, fmt):
        _roundtrip(fmt, _values((16, 16), seed=3), np.ones((16, 16), dtype=bool))

    def test_all_empty(self, fmt):
        mask = np.zeros((8, 8), dtype=bool)
        enc = fmt.encode(_values((8, 8), seed=4), EncodeSpec(mask=mask))
        np.testing.assert_array_equal(fmt.decode(enc), np.zeros((8, 8)))
        assert enc.nnz == 0

    def test_single_row(self, fmt):
        """1 x M degenerate shape."""
        mask = np.array([[True, False, True, False, True, False, True, False]])
        _roundtrip(fmt, _values((1, 8), seed=5), mask)

    def test_single_column(self, fmt):
        """M x 1 degenerate shape."""
        mask = np.array([[True], [False], [True], [False], [True], [False], [True], [False]])
        _roundtrip(fmt, _values((8, 1), seed=6), mask)

    def test_single_element_matrix(self, fmt):
        _roundtrip(fmt, _values((1, 1), seed=7), np.ones((1, 1), dtype=bool))

    def test_ragged_shape_with_empty_tail(self, fmt):
        """Shape that divides the block size in neither dimension, with
        the entire ragged tail masked out."""
        mask = np.ones((13, 11), dtype=bool)
        mask[8:, :] = False
        mask[:, 8:] = False
        _roundtrip(fmt, _values((13, 11), seed=8), mask)

    def test_checkerboard(self, fmt):
        rows, cols = np.indices((12, 12))
        mask = (rows + cols) % 2 == 0
        _roundtrip(fmt, _values((12, 12), seed=9), mask)

    def test_tbs_mask_at_extreme_sparsity(self, fmt):
        values = _values((32, 32), seed=10)
        res = tbs_sparsify(values, m=8, sparsity=0.97)
        enc = fmt.encode(
            values * res.mask,
            EncodeSpec(tbs=res if fmt.name in ("ddc", "bcsrcoo") else None),
        )
        np.testing.assert_allclose(fmt.decode(enc), values * res.mask)


class TestBitflipFuzz:
    """Seeded fuzz sweep: random masks x all formats x single-bit flips.

    Every flipped encoding must land in exactly one of the campaign's
    outcome classes -- round-trip bit-exactly after revert (the flip is
    involutive), decode to the truth (benign), be caught (detected /
    uncorrected), or differ knowingly (silent).  What is *never* allowed
    is an encoding that decodes to a different matrix while the
    classifier calls it benign or corrected: that would be an
    unclassified silent corruption, the exact bug class this sweep
    exists to catch.
    """

    SWEEP_SEEDS = range(8)

    def _sweep_case(self, seed):
        rng = np.random.default_rng([2024, seed])
        rows = int(rng.integers(2, 5)) * 8
        cols = int(rng.integers(2, 5)) * 8
        values = rng.normal(size=(rows, cols))
        values[values == 0] = 1.0
        mask = rng.random((rows, cols)) < float(rng.uniform(0.1, 0.9))
        return values, mask, rng

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_flips_never_decode_unclassified(self, seed):
        from repro.faults import classify_decode, inject_payload_bitflips, payload_targets

        values, mask, rng = self._sweep_case(seed)
        expected = np.where(mask, values, 0.0)
        for fmt in ALL_FORMATS:
            for target in payload_targets(fmt.name):
                encoded = fmt.encode(values, EncodeSpec(mask=mask))
                record = inject_payload_bitflips(encoded, target, rng)
                if not record.injected:
                    continue
                outcome = classify_decode(fmt, encoded, expected, record, level="warn")
                try:
                    decoded = fmt.decode(encoded)
                except Exception:
                    decoded = None  # crash: must have been classified loud
                if decoded is not None and decoded.shape == expected.shape and np.array_equal(
                    decoded, expected
                ):
                    # Decode matches the truth: only clean classes allowed.
                    assert outcome in ("benign", "corrected"), (fmt.name, target, outcome)
                else:
                    # Decode differs (or crashed): never a clean class.
                    assert outcome in ("detected", "uncorrected", "silent"), (
                        fmt.name, target, outcome,
                    )

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_revert_restores_roundtrip(self, seed):
        from repro.faults import inject_payload_bitflips, payload_targets

        values, mask, rng = self._sweep_case(seed)
        expected = np.where(mask, values, 0.0)
        for fmt in ALL_FORMATS:
            for target in payload_targets(fmt.name):
                encoded = fmt.encode(values, EncodeSpec(mask=mask))
                record = inject_payload_bitflips(encoded, target, rng, nbits=2)
                record.revert(encoded)
                np.testing.assert_array_equal(fmt.decode(encoded), expected)

    def test_sweep_is_deterministic(self):
        from repro.faults import inject_payload_bitflips

        flips = []
        for _ in range(2):
            values, mask, rng = self._sweep_case(0)
            encoded = CSRFormat().encode(values, EncodeSpec(mask=mask))
            flips.append(inject_payload_bitflips(encoded, "indices", rng).flips)
        assert flips[0] == flips[1]
