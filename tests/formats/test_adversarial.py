"""Adversarial mask round-trips: degenerate shapes and pathological masks.

The storage formats must reconstruct the matrix exactly even for inputs
the TBS generator would never emit on its own: rows with zero survivors,
fully-dense blocks, single-row/single-column matrices, and ragged shapes
that don't divide the block size.
"""

import numpy as np
import pytest

from repro.core import tbs_sparsify
from repro.formats import BitmapFormat, CSRFormat, DDCFormat, DenseFormat, SDCFormat

ALL_FORMATS = [DenseFormat(), CSRFormat(), SDCFormat(), DDCFormat(), BitmapFormat()]


def _roundtrip(fmt, values, mask):
    enc = fmt.encode(values, mask=mask)
    expected = np.where(mask, values, 0.0)
    np.testing.assert_allclose(fmt.decode(enc), expected)
    assert enc.nnz == np.count_nonzero(expected)


def _values(shape, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=shape)
    values[values == 0] = 1.0  # keep nnz accounting unambiguous
    return values


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
class TestAdversarialMasks:
    def test_empty_rows(self, fmt):
        """Rows that keep nothing at all (SDC's worst padding case)."""
        mask = np.zeros((8, 8), dtype=bool)
        mask[4:] = True
        _roundtrip(fmt, _values((8, 8)), mask)

    def test_interleaved_empty_rows(self, fmt):
        mask = np.zeros((16, 8), dtype=bool)
        mask[::2, ::2] = True
        _roundtrip(fmt, _values((16, 8), seed=1), mask)

    def test_empty_columns(self, fmt):
        mask = np.zeros((8, 16), dtype=bool)
        mask[:, 8:] = True
        _roundtrip(fmt, _values((8, 16), seed=2), mask)

    def test_all_dense_blocks(self, fmt):
        _roundtrip(fmt, _values((16, 16), seed=3), np.ones((16, 16), dtype=bool))

    def test_all_empty(self, fmt):
        mask = np.zeros((8, 8), dtype=bool)
        enc = fmt.encode(_values((8, 8), seed=4), mask=mask)
        np.testing.assert_array_equal(fmt.decode(enc), np.zeros((8, 8)))
        assert enc.nnz == 0

    def test_single_row(self, fmt):
        """1 x M degenerate shape."""
        mask = np.array([[True, False, True, False, True, False, True, False]])
        _roundtrip(fmt, _values((1, 8), seed=5), mask)

    def test_single_column(self, fmt):
        """M x 1 degenerate shape."""
        mask = np.array([[True], [False], [True], [False], [True], [False], [True], [False]])
        _roundtrip(fmt, _values((8, 1), seed=6), mask)

    def test_single_element_matrix(self, fmt):
        _roundtrip(fmt, _values((1, 1), seed=7), np.ones((1, 1), dtype=bool))

    def test_ragged_shape_with_empty_tail(self, fmt):
        """Shape that divides the block size in neither dimension, with
        the entire ragged tail masked out."""
        mask = np.ones((13, 11), dtype=bool)
        mask[8:, :] = False
        mask[:, 8:] = False
        _roundtrip(fmt, _values((13, 11), seed=8), mask)

    def test_checkerboard(self, fmt):
        rows, cols = np.indices((12, 12))
        mask = (rows + cols) % 2 == 0
        _roundtrip(fmt, _values((12, 12), seed=9), mask)

    def test_tbs_mask_at_extreme_sparsity(self, fmt):
        values = _values((32, 32), seed=10)
        res = tbs_sparsify(values, m=8, sparsity=0.97)
        enc = fmt.encode(values * res.mask, tbs=res if fmt.name == "ddc" else None)
        np.testing.assert_allclose(fmt.decode(enc), values * res.mask)
