"""Property-based tests for DDC inference and format invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import Direction
from repro.core.sparsify import tbs_sparsify
from repro.formats import CSRFormat, DDCFormat, EncodeSpec, SDCFormat
from repro.formats.ddc import infer_block_pattern


class TestInferBlockPattern:
    def test_row_uniform(self):
        block = np.zeros((8, 8))
        block[:, :2] = 1.0  # every row keeps 2
        n, direction, exact = infer_block_pattern(block)
        assert (n, direction, exact) == (2, Direction.ROW, True)

    def test_col_uniform_only(self):
        block = np.zeros((8, 8))
        block[:3, 0] = 1.0
        block[2:5, 1] = 1.0
        block[4:7, 2] = 1.0  # columns 0-2 keep 3 each; rows vary
        n, direction, exact = infer_block_pattern(block)
        assert direction is Direction.COL and n == 3 and exact

    def test_empty_block_is_row_zero(self):
        n, direction, exact = infer_block_pattern(np.zeros((8, 8)))
        assert n == 0 and exact

    def test_irregular_block_not_exact(self):
        rng = np.random.default_rng(0)
        block = rng.normal(size=(8, 8)) * (rng.random((8, 8)) < 0.4)
        # Unless the random block is accidentally uniform, expect repair.
        n, direction, exact = infer_block_pattern(block)
        assert 0 <= n <= 8

    @given(seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_inferred_n_covers_all_lanes(self, seed):
        """The inferred (n, direction) never under-provisions storage."""
        rng = np.random.default_rng(seed)
        block = rng.normal(size=(8, 8)) * (rng.random((8, 8)) < 0.35)
        n, direction, _ = infer_block_pattern(block)
        counts = (
            np.count_nonzero(block, axis=1)
            if direction is Direction.ROW
            else np.count_nonzero(block, axis=0)
        )
        assert counts.max(initial=0) <= n


class TestFootprintInvariants:
    @given(seed=st.integers(0, 60), sparsity=st.sampled_from([0.5, 0.75, 0.875]))
    @settings(max_examples=15, deadline=None)
    def test_ddc_never_larger_than_groupwise_sdc(self, seed, sparsity):
        """DDC's per-block compression beats row-group-aligned SDC on
        every TBS matrix (no padding, tighter indices)."""
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(64, 64))
        res = tbs_sparsify(w, m=8, sparsity=sparsity)
        sparse = w * res.mask
        ddc = DDCFormat().encode(sparse, EncodeSpec(tbs=res))
        sdc = SDCFormat(group_rows=8).encode(sparse)
        assert ddc.total_bytes <= sdc.total_bytes + 2 * 64  # info table slack

    @given(seed=st.integers(0, 60))
    @settings(max_examples=15, deadline=None)
    def test_csr_value_bytes_exact(self, seed):
        rng = np.random.default_rng(seed)
        sparse = rng.normal(size=(32, 32)) * (rng.random((32, 32)) < 0.3)
        enc = CSRFormat().encode(sparse)
        assert enc.value_bytes == np.count_nonzero(sparse) * 2

    @given(seed=st.integers(0, 60))
    @settings(max_examples=15, deadline=None)
    def test_segments_within_footprint(self, seed):
        """No format's trace reads past its own storage footprint."""
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(40, 40))
        res = tbs_sparsify(w, m=8, sparsity=0.75)
        sparse = w * res.mask
        for fmt in (DDCFormat(), SDCFormat(group_rows=8)):
            enc = fmt.encode(sparse, EncodeSpec(tbs=res if fmt.name == "ddc" else None))
            if enc.segments:
                assert max(s.end for s in enc.segments) <= enc.total_bytes + 8
