"""Property suite: every registered format, both consumption orientations.

These are the orientation axis's structural guarantees, checked across
the whole registry so a new format cannot ship without them:

* encode -> decode is bit-exact;
* ``decode_transposed`` equals ``decode(...).T`` (however the format
  implements its transposed path natively);
* each orientation's trace moves at least the payload bytes (no format
  can claim to consume the matrix while fetching less than its values);
* both traces stay within the declared footprint and never partially
  overlap (:mod:`repro.formats.validate`).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import tbs_sparsify
from repro.formats import (
    ORIENTATIONS,
    EncodeSpec,
    available_formats,
    get_format,
    validate_trace,
)

#: Formats whose encoder consumes the TBS metadata directly.
_TBS_AWARE = ("ddc", "bcsrcoo")


def _tbs_case(seed, shape=(32, 40), sparsity=0.75):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=shape)
    w[w == 0] = 1.0
    res = tbs_sparsify(w, m=8, sparsity=sparsity)
    return np.where(res.mask, w, 0.0), res


def _encode(name, sparse, res):
    fmt = get_format(name)
    return fmt, fmt.encode(sparse, EncodeSpec(tbs=res if name in _TBS_AWARE else None))


@pytest.mark.parametrize("name", available_formats())
class TestFormatProperties:
    @given(seed=st.integers(0, 100), sparsity=st.sampled_from([0.5, 0.75, 0.875]))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_exact(self, name, seed, sparsity):
        sparse, res = _tbs_case(seed, sparsity=sparsity)
        fmt, enc = _encode(name, sparse, res)
        assert np.array_equal(fmt.decode(enc), sparse)

    @given(seed=st.integers(0, 100), sparsity=st.sampled_from([0.5, 0.75, 0.875]))
    @settings(max_examples=15, deadline=None)
    def test_transposed_decode_matches_decode_T(self, name, seed, sparsity):
        sparse, res = _tbs_case(seed, sparsity=sparsity)
        fmt, enc = _encode(name, sparse, res)
        assert np.array_equal(fmt.decode_transposed(enc), fmt.decode(enc).T)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_traced_bytes_cover_payload(self, name, seed):
        sparse, res = _tbs_case(seed)
        _, enc = _encode(name, sparse, res)
        for orientation in ORIENTATIONS:
            assert enc.traced_bytes_for(orientation) >= enc.payload_bytes, orientation

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_both_traces_validate(self, name, seed):
        sparse, res = _tbs_case(seed)
        _, enc = _encode(name, sparse, res)
        validate_trace(enc)  # checks both orientations

    def test_empty_matrix_serves_both_orientations(self, name):
        fmt = get_format(name)
        enc = fmt.encode(np.zeros((16, 16)))
        for orientation in ORIENTATIONS:
            assert enc.traced_bytes_for(orientation) >= 0
        assert np.array_equal(fmt.decode_transposed(enc), np.zeros((16, 16)))

    def test_ragged_shape_transposed(self, name):
        """Shapes that divide the block size in neither dimension."""
        sparse, res = _tbs_case(seed=3, shape=(30, 44))
        fmt, enc = _encode(name, sparse, res)
        assert np.array_equal(fmt.decode_transposed(enc), sparse.T)
        validate_trace(enc)
