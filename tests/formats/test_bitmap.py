"""Tests for the bitmap format (RM-STC's storage)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import BitmapFormat, traffic_report


class TestRoundTrip:
    def test_random_matrix(self):
        rng = np.random.default_rng(0)
        sparse = rng.normal(size=(32, 32)) * (rng.random((32, 32)) < 0.3)
        fmt = BitmapFormat()
        np.testing.assert_allclose(fmt.decode(fmt.encode(sparse)), sparse)

    def test_empty(self):
        fmt = BitmapFormat()
        enc = fmt.encode(np.zeros((8, 8)))
        assert enc.nnz == 0
        np.testing.assert_array_equal(fmt.decode(enc), np.zeros((8, 8)))

    @given(seed=st.integers(0, 50), density=st.sampled_from([0.1, 0.5, 0.9]))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, seed, density):
        rng = np.random.default_rng(seed)
        sparse = rng.normal(size=(17, 23)) * (rng.random((17, 23)) < density)
        fmt = BitmapFormat()
        np.testing.assert_allclose(fmt.decode(fmt.encode(sparse)), sparse)


class TestFootprint:
    def test_bitmap_is_fixed_cost(self):
        """The bitmap costs rows*cols/8 bytes regardless of sparsity."""
        fmt = BitmapFormat()
        rng = np.random.default_rng(1)
        for density in (0.1, 0.9):
            sparse = rng.normal(size=(64, 64)) * (rng.random((64, 64)) < density)
            assert fmt.encode(sparse).meta_bytes == 64 * 64 // 8

    def test_values_scale_with_nnz(self):
        fmt = BitmapFormat()
        sparse = np.zeros((16, 16))
        sparse[0, :4] = 1.0
        assert fmt.encode(sparse).value_bytes == 4 * 2

    def test_streams_contiguously(self):
        rng = np.random.default_rng(2)
        sparse = rng.normal(size=(64, 64)) * (rng.random((64, 64)) < 0.25)
        report = traffic_report(BitmapFormat().encode(sparse))
        assert report.num_segments <= 2  # bitmap + values, both streamed
