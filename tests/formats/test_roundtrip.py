"""Round-trip (encode -> decode) tests for every storage format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import tbs_sparsify
from repro.formats import (
    BCSRCOOFormat,
    BitmapFormat,
    CSRFormat,
    DDCFormat,
    DenseFormat,
    EncodeSpec,
    SDCFormat,
)

ALL_FORMATS = [
    DenseFormat(), CSRFormat(), SDCFormat(), DDCFormat(), BitmapFormat(), BCSRCOOFormat(),
]

#: Formats whose encoding consumes the TBS metadata directly.
_TBS_AWARE = ("ddc", "bcsrcoo")


def _tbs_matrix(shape=(64, 64), sparsity=0.75, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=shape)
    res = tbs_sparsify(w, m=8, sparsity=sparsity)
    return w * res.mask, res


@pytest.mark.parametrize("fmt", ALL_FORMATS, ids=lambda f: f.name)
class TestRoundTrip:
    def test_tbs_matrix(self, fmt):
        sparse, res = _tbs_matrix()
        enc = fmt.encode(sparse, EncodeSpec(tbs=res if fmt.name in _TBS_AWARE else None))
        np.testing.assert_allclose(fmt.decode(enc), sparse)

    def test_empty_matrix(self, fmt):
        sparse = np.zeros((16, 16))
        enc = fmt.encode(sparse)
        np.testing.assert_allclose(fmt.decode(enc), sparse)
        assert enc.nnz == 0

    def test_dense_matrix(self, fmt):
        rng = np.random.default_rng(1)
        dense = rng.normal(size=(16, 16))
        dense[dense == 0] = 1.0
        enc = fmt.encode(dense)
        np.testing.assert_allclose(fmt.decode(enc), dense)

    def test_mask_argument(self, fmt):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(16, 16))
        mask = rng.random((16, 16)) < 0.5
        enc = fmt.encode(w, EncodeSpec(mask=mask))
        np.testing.assert_allclose(fmt.decode(enc), np.where(mask, w, 0.0))

    def test_single_element(self, fmt):
        sparse = np.zeros((8, 8))
        sparse[3, 5] = 2.5
        enc = fmt.encode(sparse)
        np.testing.assert_allclose(fmt.decode(enc), sparse)

    def test_nnz_recorded(self, fmt):
        sparse, res = _tbs_matrix(seed=3)
        enc = fmt.encode(sparse, EncodeSpec(tbs=res if fmt.name in _TBS_AWARE else None))
        assert enc.nnz == np.count_nonzero(sparse)

    def test_rejects_mask_shape_mismatch(self, fmt):
        with pytest.raises(ValueError):
            fmt.encode(np.ones((4, 4)), EncodeSpec(mask=np.ones((2, 2), dtype=bool)))

    @given(seed=st.integers(0, 50), sparsity=st.sampled_from([0.5, 0.75, 0.875]))
    @settings(max_examples=12, deadline=None)
    def test_roundtrip_property(self, fmt, seed, sparsity):
        sparse, res = _tbs_matrix(shape=(32, 40), sparsity=sparsity, seed=seed)
        enc = fmt.encode(sparse, EncodeSpec(tbs=res if fmt.name in _TBS_AWARE else None))
        np.testing.assert_allclose(fmt.decode(enc), sparse)


class TestDDCSpecifics:
    def test_ragged_shape(self):
        sparse, res = _tbs_matrix(shape=(30, 44), seed=4)
        enc = DDCFormat().encode(sparse, EncodeSpec(tbs=res))
        np.testing.assert_allclose(DDCFormat().decode(enc), sparse)

    def test_without_tbs_metadata_infers(self):
        """DDC can infer per-block (N, direction) from a valid TBS mask."""
        sparse, res = _tbs_matrix(seed=5)
        enc = DDCFormat().encode(sparse)  # no tbs passed
        np.testing.assert_allclose(DDCFormat().decode(enc), sparse)

    def test_info_table_size(self):
        sparse, res = _tbs_matrix(shape=(64, 64), seed=6)
        enc = DDCFormat().encode(sparse, EncodeSpec(tbs=res))
        assert enc.meta_bytes == 8 * 8 * 2  # 64 blocks x 16 bits

    def test_compression_beats_dense_on_sparse(self):
        sparse, res = _tbs_matrix(sparsity=0.75, seed=7)
        enc = DDCFormat().encode(sparse, EncodeSpec(tbs=res))
        assert DDCFormat.compression_ratio(enc) > 2.0

    def test_value_bytes_match_block_n(self):
        sparse, res = _tbs_matrix(seed=8)
        enc = DDCFormat().encode(sparse, EncodeSpec(tbs=res))
        expected = int(res.block_n.sum()) * res.m * 2
        assert enc.value_bytes == expected

    def test_non_tbs_matrix_still_roundtrips(self):
        """Graceful handling of inputs that violate strict TBS."""
        rng = np.random.default_rng(9)
        sparse = rng.normal(size=(16, 16)) * (rng.random((16, 16)) < 0.4)
        enc = DDCFormat().encode(sparse)
        np.testing.assert_allclose(DDCFormat().decode(enc), sparse)


class TestSDCSpecifics:
    def test_padding_ratio(self):
        sparse = np.zeros((4, 8))
        sparse[0, :4] = 1.0  # one row with 4 nnz, rest empty
        enc = SDCFormat().encode(sparse)
        assert SDCFormat.padding_ratio(enc) == pytest.approx(0.75)

    def test_uniform_rows_have_no_padding(self):
        rng = np.random.default_rng(10)
        from repro.core import tile_mask
        from repro.core.patterns import NMConfig

        w = rng.normal(size=(16, 32))
        mask = tile_mask(w, NMConfig(2, 4))
        enc = SDCFormat().encode(w * mask)
        assert SDCFormat.padding_ratio(enc) == pytest.approx(0.0)

    def test_tbs_padding_exceeds_half_at_high_variance(self):
        """The paper's >61.54% redundancy claim arises from per-row
        occupancy variance under TBS."""
        rng = np.random.default_rng(11)
        w = rng.normal(size=(128, 128)) * np.exp(rng.normal(0, 1.2, size=(128, 1)))
        res = tbs_sparsify(w, m=8, sparsity=0.75)
        enc = SDCFormat().encode(w * res.mask)
        assert SDCFormat.padding_ratio(enc) > 0.5


class TestCSRSpecifics:
    def test_row_ptr_monotone(self):
        sparse, _ = _tbs_matrix(seed=12)
        enc = CSRFormat().encode(sparse)
        assert (np.diff(enc.arrays["row_ptr"]) >= 0).all()

    def test_fragmented_trace(self):
        """CSR's block-major consumption produces many short segments."""
        sparse, res = _tbs_matrix(shape=(64, 64), seed=13)
        csr = CSRFormat().encode(sparse)
        ddc = DDCFormat().encode(sparse, EncodeSpec(tbs=res))
        assert len(csr.segments) > 4 * len(ddc.segments)
