"""Tests for DRAM transaction-level fault perturbation."""

import numpy as np
import pytest

from repro.formats.base import Segment
from repro.hw.dram import TransactionFaultModel, perturb_trace


def _segments(n=8, size=32):
    return [Segment(addr=i * size, nbytes=size) for i in range(n)]


class TestModel:
    def test_rejects_negative_probability(self):
        with pytest.raises(ValueError):
            TransactionFaultModel(p_drop=-0.1)

    def test_rejects_probability_above_one(self):
        with pytest.raises(ValueError):
            TransactionFaultModel(p_corrupt=1.5)

    def test_rejects_sum_above_one(self):
        with pytest.raises(ValueError):
            perturb_trace(_segments(), TransactionFaultModel(0.6, 0.6, 0.0),
                          np.random.default_rng(0))


class TestPerturb:
    def test_clean_model_passes_everything(self):
        segs = _segments()
        out = perturb_trace(segs, TransactionFaultModel(), np.random.default_rng(0))
        assert out.segments == list(segs)
        assert not out.dropped and not out.duplicated and not out.corrupted
        assert out.delivered_bytes == sum(s.nbytes for s in segs)

    def test_certain_drop_loses_all_bytes(self):
        segs = _segments(4)
        out = perturb_trace(segs, TransactionFaultModel(p_drop=1.0), np.random.default_rng(0))
        assert len(out.dropped) == 4
        assert out.segments == []
        assert out.missing_bytes == sum(s.nbytes for s in segs)
        assert out.length_check_fails(sum(s.nbytes for s in segs))

    def test_certain_duplicate_does_not_fail_length_check(self):
        """Duplicates overwrite the same buffer region: the DMA byte
        counter sees the expected total, so only bandwidth is wasted."""
        segs = _segments(4)
        out = perturb_trace(segs, TransactionFaultModel(p_duplicate=1.0),
                            np.random.default_rng(0))
        assert len(out.duplicated) == 4
        assert len(out.segments) == 8
        assert not out.length_check_fails(sum(s.nbytes for s in segs))

    def test_corrupt_keeps_the_segment(self):
        segs = _segments(4)
        out = perturb_trace(segs, TransactionFaultModel(p_corrupt=1.0),
                            np.random.default_rng(0))
        assert len(out.corrupted) == 4
        assert len(out.segments) == 4
        assert not out.length_check_fails(sum(s.nbytes for s in segs))

    def test_seeded_reproducibility(self):
        model = TransactionFaultModel(p_drop=0.3, p_duplicate=0.2, p_corrupt=0.2)
        a = perturb_trace(_segments(32), model, np.random.default_rng(5))
        b = perturb_trace(_segments(32), model, np.random.default_rng(5))
        assert (a.dropped, a.duplicated, a.corrupted) == (b.dropped, b.duplicated, b.corrupted)

    def test_mixed_faults_partition_the_trace(self):
        model = TransactionFaultModel(p_drop=0.3, p_duplicate=0.3, p_corrupt=0.3)
        segs = _segments(64)
        out = perturb_trace(segs, model, np.random.default_rng(1))
        # Every original segment is accounted for exactly once.
        assert len(out.dropped) + (len(out.segments) - len(out.duplicated)) == 64
