"""Tests for the energy/power and area models against Table III."""

import pytest

from repro.hw.area import a100_overhead_percent, area_breakdown
from repro.hw.config import rm_stc, tb_stc, tensor_core
from repro.hw.energy import EnergyModel, EnergyReport, scale_energy_between_nodes


class TestTableIIIPower:
    """Table III: DVPE 197.71 mW (98.57%), codec 2.19 mW, MBD 0.69 mW."""

    def test_component_power(self):
        power = EnergyModel(tb_stc()).peak_dynamic_power_mw()
        assert power["DVPE Array"] == pytest.approx(197.71, rel=0.01)
        assert power["Codec Unit"] == pytest.approx(2.19, rel=0.01)
        assert power["MBD Unit"] == pytest.approx(0.69, rel=0.01)
        assert power["Total"] == pytest.approx(200.59, rel=0.01)

    def test_dvpe_dominates(self):
        power = EnergyModel(tb_stc()).peak_dynamic_power_mw()
        assert power["DVPE Array"] / power["Total"] > 0.97

    def test_tc_has_no_codec_power(self):
        power = EnergyModel(tensor_core()).peak_dynamic_power_mw()
        assert power["Codec Unit"] == 0.0


class TestTableIIIArea:
    """Table III: DVPE 1.43 mm^2 (97.28%), codec 0.03, MBD 0.01, total 1.47."""

    def test_component_area(self):
        area = area_breakdown(tb_stc())
        assert area["DVPE Array"] == pytest.approx(1.43, rel=0.01)
        assert area["Codec Unit"] == pytest.approx(0.03, rel=0.01)
        assert area["MBD Unit"] == pytest.approx(0.01, rel=0.01)
        assert area["Total"] == pytest.approx(1.47, rel=0.01)

    def test_a100_overhead(self):
        """Sec. VII-C4: 0.12 x 108 = 12.96 mm^2 -> 1.57% of 826 mm^2."""
        assert a100_overhead_percent(tb_stc()) == pytest.approx(1.57, rel=0.01)

    def test_tc_smaller_than_tb_stc(self):
        assert area_breakdown(tensor_core())["Total"] < area_breakdown(tb_stc())["Total"]


class TestEnergyReport:
    def test_components_accumulate(self):
        report = EnergyReport(cycles=100, frequency_ghz=1.0)
        report.add("compute", 50.0)
        report.add("compute", 25.0)
        assert report.components["compute"] == 75.0
        assert report.total_pj == 75.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EnergyReport().add("x", -1.0)

    def test_edp(self):
        report = EnergyReport(cycles=1000, frequency_ghz=1.0)
        report.add("compute", 1e12)  # 1 J
        assert report.time_s == pytest.approx(1e-6)
        assert report.edp == pytest.approx(1e-6)

    def test_power(self):
        report = EnergyReport(cycles=1_000_000_000, frequency_ghz=1.0)  # 1 s
        report.add("compute", 1e12)  # 1 J
        assert report.average_power_w == pytest.approx(1.0)


class TestEnergyModel:
    def test_workload_report_components(self):
        model = EnergyModel(tb_stc())
        report = model.report(
            cycles=1000, macs=10_000, dram_bytes=4096, sram_bytes=8192,
            codec_elements=500, mbd_elements=500,
        )
        assert set(report.components) == {"compute", "dram", "sram", "codec", "mbd", "static"}
        assert report.total_pj > 0

    def test_dram_dominates_memory_bound(self):
        model = EnergyModel(tb_stc())
        report = model.report(cycles=100, macs=10, dram_bytes=1e6, sram_bytes=0)
        assert report.components["dram"] > report.components["compute"]

    def test_rm_stc_pays_datapath_premium(self):
        macs = 1_000_000
        ours = EnergyModel(tb_stc()).report(1000, macs, 0, 0)
        theirs = EnergyModel(rm_stc()).report(1000, macs, 0, 0)
        ratio = theirs.components["compute"] / ours.components["compute"]
        assert ratio == pytest.approx(2.0, rel=0.01)  # Fig. 6(d) gather/union

    def test_rejects_negative_activity(self):
        with pytest.raises(ValueError):
            EnergyModel(tb_stc()).report(-1, 0, 0, 0)

    def test_codec_energy_gated_by_config(self):
        report = EnergyModel(tensor_core()).report(100, 100, 0, 0, codec_elements=100)
        assert "codec" not in report.components


class TestNodeScaling:
    def test_identity(self):
        assert scale_energy_between_nodes(1.0, 7, 7) == 1.0

    def test_bigger_node_costs_more(self):
        assert scale_energy_between_nodes(1.0, 7, 28) > 1.0

    def test_scaling_down(self):
        assert scale_energy_between_nodes(3.6, 28, 7) == pytest.approx(1.0)

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            scale_energy_between_nodes(1.0, 5, 7)
