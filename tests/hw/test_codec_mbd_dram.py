"""Tests for the codec unit, MBD unit and DRAM model."""

import numpy as np
import pytest

from repro.core.patterns import Direction
from repro.formats import CSRFormat, DDCFormat, EncodeSpec, traffic_report
from repro.core.sparsify import tbs_sparsify
from repro.hw.codec import CodecStats, CodecUnit
from repro.hw.dram import DRAMModel
from repro.hw.mbd import MBDUnit


def _col_block(seed=0, m=8, n=2):
    rng = np.random.default_rng(seed)
    block = np.zeros((m, m))
    for j in range(m):
        rows = rng.choice(m, size=n, replace=False)
        block[rows, j] = rng.normal() + 5.0
    return block


class TestCodecUnit:
    def test_row_block_passthrough(self):
        stats = CodecUnit().process_block(_col_block(), Direction.ROW, pe_cycles=4)
        assert stats.passthrough_blocks == 1
        assert stats.conversion_cycles == 0

    def test_col_block_converted(self):
        stats = CodecUnit().process_block(_col_block(), Direction.COL, pe_cycles=4)
        assert stats.converted_blocks == 1
        assert stats.conversion_cycles > 0

    def test_conversion_mostly_hidden(self):
        """Fig. 14: visible codec overhead ~3.57% of execution."""
        block = _col_block(n=2)
        pe_cycles = 16  # the PE processes the block against many B columns
        stats = CodecUnit().process_block(block, Direction.COL, pe_cycles=pe_cycles)
        assert stats.visible_cycles < 0.25 * pe_cycles

    def test_empty_block(self):
        stats = CodecUnit().process_block(np.zeros((8, 8)), Direction.COL, pe_cycles=0)
        assert stats.elements == 0
        assert stats.passthrough_blocks == 1

    def test_workload_aggregation(self):
        blocks = [_col_block(seed=s) for s in range(4)]
        dirs = [Direction.COL, Direction.ROW, Direction.COL, Direction.ROW]
        stats = CodecUnit().process_workload(blocks, dirs, [8, 8, 8, 8])
        assert stats.converted_blocks == 2
        assert stats.passthrough_blocks == 2
        assert stats.elements == sum(np.count_nonzero(b) for b in blocks)

    def test_workload_length_mismatch(self):
        with pytest.raises(ValueError):
            CodecUnit().process_workload([np.zeros((8, 8))], [], [])

    def test_merge(self):
        a = CodecStats(converted_blocks=1, elements=10, conversion_cycles=5)
        b = CodecStats(passthrough_blocks=2, elements=4)
        a.merge(b)
        assert a.converted_blocks == 1 and a.passthrough_blocks == 2
        assert a.elements == 14


class TestMBDUnit:
    def test_gather_selects_rows(self):
        b_tile = np.arange(32).reshape(8, 4).astype(float)
        gathered, stats = MBDUnit().gather(b_tile, [1, 3, 1], Direction.ROW)
        np.testing.assert_array_equal(gathered, b_tile[[1, 3, 1]])
        assert stats.mux_selections == 3
        assert stats.transposed_tiles == 0

    def test_col_direction_uses_transpose_array(self):
        b_tile = np.ones((8, 4))
        _, stats = MBDUnit().gather(b_tile, [0], Direction.COL)
        assert stats.transposed_tiles == 1

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            MBDUnit().gather(np.ones((4, 4)), [7], Direction.ROW)

    def test_empty_indices(self):
        gathered, stats = MBDUnit().gather(np.ones((4, 4)), [], Direction.ROW)
        assert gathered.shape == (0, 4)
        assert stats.mux_selections == 0

    def test_selection_count(self):
        assert MBDUnit().selection_count(nnz=16, b_cols=64) == 1024

    def test_selection_count_rejects_negative(self):
        with pytest.raises(ValueError):
            MBDUnit().selection_count(-1, 4)


class TestDRAMModel:
    def test_streaming_cycles(self):
        dram = DRAMModel(bandwidth_gbs=64.0, frequency_ghz=1.0, first_access_latency=0)
        result = dram.transfer(6400, num_bursts=1, contiguous=True)
        assert result.cycles == 100

    def test_scattered_slower_than_contiguous(self):
        dram = DRAMModel()
        stream = dram.transfer(32_768, num_bursts=1, contiguous=True)
        scattered = dram.transfer(32_768, num_bursts=1024, contiguous=False)
        assert scattered.cycles > stream.cycles

    def test_zero_bytes(self):
        result = DRAMModel().transfer(0)
        assert result.cycles == 0 and result.energy_pj == 0.0

    def test_energy_scales_with_bytes(self):
        dram = DRAMModel()
        small = dram.transfer(1000, 10, True)
        big = dram.transfer(10_000, 10, True)
        assert big.energy_pj > small.energy_pj

    def test_bandwidth_sweep_monotone(self):
        cycles = [
            DRAMModel(bandwidth_gbs=bw).transfer(1_000_000, 100, True).cycles
            for bw in (32, 64, 128, 256)
        ]
        assert cycles == sorted(cycles, reverse=True)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            DRAMModel(bandwidth_gbs=-1)

    def test_transfer_report_integration(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(64, 64))
        res = tbs_sparsify(w, m=8, sparsity=0.75)
        ddc_rep = traffic_report(DDCFormat().encode(w * res.mask, EncodeSpec(tbs=res)))
        csr_rep = traffic_report(CSRFormat().encode(w * res.mask))
        dram = DRAMModel()
        ddc = dram.transfer_report(ddc_rep)
        csr = dram.transfer_report(csr_rep)
        assert ddc.cycles < csr.cycles  # DDC moves less and streams better
