"""Tests for inter-block sparsity-aware scheduling (Fig. 11(a)/(b))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.scheduler import SimStallError, schedule_direct, schedule_sparsity_aware


class TestDirect:
    def test_round_robin(self):
        res = schedule_direct([4, 1, 4, 1], num_pes=2)
        assert res.per_pe_busy == (8, 2)
        assert res.makespan == 8
        assert res.utilization == pytest.approx(10 / 16)

    def test_empty(self):
        res = schedule_direct([], 4)
        assert res.makespan == 0 and res.utilization == 1.0

    def test_rejects_no_pes(self):
        with pytest.raises(ValueError):
            schedule_direct([1], 0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            schedule_direct([-1], 1)


class TestSparsityAware:
    def test_fig11a_example(self):
        """Fig. 11(a): direct mapping needs 10 PE-cycles at 50% utilization;
        the sparsity-aware schedule needs 5.

        Block costs chosen to reproduce the pathology: heavy/light blocks
        alternate so round-robin piles the heavy ones onto one PE.
        """
        costs = [4, 1, 4, 1]  # a, b, c, d on 2 PEs
        direct = schedule_direct(costs, 2)
        aware = schedule_sparsity_aware(costs, 2)
        assert direct.utilization <= 0.7
        assert aware.utilization == pytest.approx(1.0)
        assert aware.makespan == 5

    def test_balanced_input_stays_balanced(self):
        res = schedule_sparsity_aware([2] * 8, 4)
        assert res.makespan == 4
        assert res.utilization == 1.0

    def test_never_worse_than_direct(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            costs = [int(c) for c in rng.integers(0, 9, size=rng.integers(1, 40))]
            direct = schedule_direct(costs, 8)
            aware = schedule_sparsity_aware(costs, 8)
            assert aware.makespan <= direct.makespan

    def test_window_limits_quality(self):
        """A tiny window cannot reorder past its horizon; a large one can."""
        costs = [1] * 14 + [8, 8]
        small = schedule_sparsity_aware(costs, 2, window=2)
        large = schedule_sparsity_aware(costs, 2, window=16)
        assert large.makespan <= small.makespan

    def test_total_work_conserved(self):
        costs = [3, 5, 2, 8, 1]
        res = schedule_sparsity_aware(costs, 3)
        assert res.total_work == sum(costs)
        assert sum(res.per_pe_busy) == sum(costs)

    def test_utilization_improvement_on_tbs_distribution(self):
        """Paper claim (Sec. VI / Fig. 16(b)): 1.57x computation-utilization
        improvement over direct mapping on realistic block-cost mixes."""
        rng = np.random.default_rng(1)
        gains = []
        for _ in range(10):
            # TBS block costs are the block N values: {0,1,2,4,8}, with a
            # long-tailed mix (mostly light blocks, a few dense ones).
            costs = rng.choice([0, 1, 2, 4, 8], size=256, p=[0.1, 0.35, 0.3, 0.15, 0.1]).tolist()
            direct = schedule_direct(costs, 16)
            aware = schedule_sparsity_aware(costs, 16)
            gains.append(aware.utilization / max(1e-9, direct.utilization))
        assert np.mean(gains) > 1.2

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            schedule_sparsity_aware([1], 1, window=0)

    @given(st.lists(st.integers(0, 8), min_size=0, max_size=64), st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds_property(self, costs, pes):
        """Makespan is at least the critical path and the average load,
        and at most direct mapping's."""
        aware = schedule_sparsity_aware(costs, pes)
        total = sum(costs)
        assert aware.makespan >= max(costs, default=0)
        assert aware.makespan >= -(-total // pes)
        assert aware.makespan <= schedule_direct(costs, pes).makespan


class _GrowingStream:
    """A corrupted block list whose claimed length keeps growing.

    Models a garbled descriptor stream: ``__len__`` always reports more
    blocks than have been read, so any loop trusting it live would never
    terminate.  The no-progress guard must turn this into a loud
    SimStallError instead of a hang.
    """

    def __init__(self, real=4):
        self.real = real
        self.reads = 0

    def __len__(self):
        return self.real + self.reads + 1  # always claims one more

    def __getitem__(self, i):
        self.reads += 1
        return 1


class TestStallGuards:
    def test_growing_stream_raises_instead_of_hanging(self):
        # The fetch stage stops at its length snapshot, the stream still
        # claims more blocks, the buffer drains: a detected stall, not a
        # spin.
        with pytest.raises(SimStallError, match="no progress"):
            schedule_sparsity_aware(_GrowingStream(real=4), 2)

    def test_stall_error_carries_diagnostic_state(self):
        with pytest.raises(SimStallError) as excinfo:
            schedule_sparsity_aware(_GrowingStream(real=4), 2)
        state = excinfo.value.state
        # The snapshot names the cursors a post-mortem needs.
        assert state["dispatched"] == state["n_blocks"]
        assert state["claimed_len"] > state["n_blocks"]
        assert "fetch_cursor" in state and "buffer" in state
        # And the message embeds it for bare tracebacks.
        assert "n_blocks=" in str(excinfo.value)

    def test_nan_cost_rejected_before_scheduling(self):
        with pytest.raises(ValueError, match="not finite"):
            schedule_sparsity_aware([1, float("nan"), 2], 2)
        with pytest.raises(ValueError, match="not finite"):
            schedule_direct([float("inf")], 1)

    def test_honest_sequences_unaffected(self):
        """The guards must not change any well-formed schedule."""
        res = schedule_sparsity_aware([4, 1, 4, 1], 2)
        assert res.makespan == 5 and res.total_work == 10
