"""Tests for intra-block mapping and the DVPE cycle model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import Direction
from repro.core.sparsify import tbs_sparsify
from repro.hw.dvpe import DVPE
from repro.hw.mapping import (
    BlockWork,
    block_work_from_mask,
    map_balanced,
    map_naive,
    mapping_cycles,
)


class TestBlockWork:
    def test_from_mask_row_counts(self):
        mask = np.array([[1, 1, 0, 0], [1, 0, 0, 0], [0, 0, 0, 0], [1, 1, 1, 0]], dtype=bool)
        work = block_work_from_mask(mask, Direction.COL, m=4)
        assert work.segments == (2, 1, 0, 3)
        assert work.nnz == 6

    def test_rejects_negative_segments(self):
        with pytest.raises(ValueError):
            BlockWork((-1, 2), m=4)

    def test_rejects_non_2d_mask(self):
        with pytest.raises(ValueError):
            block_work_from_mask(np.ones(4, dtype=bool), Direction.ROW, m=4)


class TestNaiveMapping:
    def test_fig11c_example(self):
        """Fig. 11(c): segments (3,1,2,2) on a 4-lane PE -> 4 naive cycles."""
        work = BlockWork((3, 1, 2, 2), m=4)
        sched = map_naive(work, lanes=4)
        assert sched.num_cycles == 4
        assert sched.utilization(4) == pytest.approx(0.5)

    def test_empty_segments_skipped(self):
        work = BlockWork((0, 2, 0), m=4)
        assert map_naive(work, lanes=4).num_cycles == 1

    def test_long_segment_splits(self):
        work = BlockWork((10,), m=8)
        sched = map_naive(work, lanes=4)
        assert sched.num_cycles == 3  # 4 + 4 + 2

    def test_macs_conserved(self):
        work = BlockWork((3, 1, 2, 2), m=4)
        assert map_naive(work, lanes=4).macs == 8


class TestBalancedMapping:
    def test_fig11c_example(self):
        """Fig. 11(c): intra-block mapping packs (3,1,2,2) into 2 cycles."""
        work = BlockWork((3, 1, 2, 2), m=4)
        sched = map_balanced(work, lanes=4)
        assert sched.num_cycles == 2
        assert sched.utilization(4) == pytest.approx(1.0)

    def test_perfect_packing_from_balance_property(self):
        """nnz is a multiple of M for TBS blocks -> zero wasted lanes."""
        res = tbs_sparsify(np.random.default_rng(0).normal(size=(64, 64)), m=8, sparsity=0.75)
        for br in range(8):
            for bc in range(8):
                block = res.mask[br * 8 : (br + 1) * 8, bc * 8 : (bc + 1) * 8]
                direction = Direction(int(res.block_direction[br, bc]))
                work = block_work_from_mask(block, direction, m=8)
                sched = map_balanced(work, lanes=8)
                if work.nnz:
                    assert sched.utilization(8) == pytest.approx(1.0)

    def test_outputs_per_cycle_sums_to_nonempty_segments(self):
        work = BlockWork((3, 1, 2, 2), m=4)
        sched = map_balanced(work, lanes=4)
        assert sum(sched.outputs_per_cycle) == 4

    def test_never_slower_than_naive(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            segs = tuple(int(x) for x in rng.integers(0, 9, size=8))
            work = BlockWork(segs, m=8)
            assert mapping_cycles(work, 8, balanced=True) <= mapping_cycles(work, 8, balanced=False)

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=16), st.sampled_from([4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_macs_conserved_property(self, segs, lanes):
        work = BlockWork(tuple(segs), m=8)
        assert map_balanced(work, lanes).macs == work.nnz
        assert map_naive(work, lanes).macs == work.nnz

    def test_fast_path_matches_schedule(self):
        work = BlockWork((5, 0, 3, 8), m=8)
        assert mapping_cycles(work, 8, True) == map_balanced(work, 8).num_cycles
        assert mapping_cycles(work, 8, False) == map_naive(work, 8).num_cycles


class TestDVPE:
    def test_balanced_beats_naive(self):
        work = BlockWork((3, 1, 2, 2), m=4)
        fast = DVPE(lanes=4).execute(work)
        slow = DVPE(lanes=4, intra_block_mapping=False).execute(work)
        assert fast.total_cycles < slow.total_cycles

    def test_alternate_unit_absorbs_bursts(self):
        """Many short segments complete simultaneously when packed; the
        alternate unit buffers them while the port drains."""
        work = BlockWork((1,) * 8, m=8)  # 8 results in one packed cycle
        with_alt = DVPE(lanes=8, output_port_width=2, alternate_unit=True).execute(work)
        without = DVPE(lanes=8, output_port_width=2, alternate_unit=False).execute(work)
        assert with_alt.total_cycles <= without.total_cycles
        assert without.stall_cycles > 0

    def test_row_uniform_block_no_stalls(self):
        work = BlockWork((2,) * 8, m=8)
        result = DVPE(lanes=8).execute(work)
        assert result.stall_cycles == 0

    def test_utilization_bounds(self):
        work = BlockWork((3, 1, 2, 2, 0, 0, 4, 4), m=8)
        result = DVPE(lanes=8).execute(work)
        assert 0 < result.utilization(8) <= 1.0

    def test_empty_block(self):
        result = DVPE().execute(BlockWork((0,) * 8, m=8))
        assert result.total_cycles == 0
        assert result.utilization(8) == 1.0

    def test_block_cost_is_total_cycles(self):
        work = BlockWork((4,) * 8, m=8)
        pe = DVPE()
        assert pe.block_cost(work) == pe.execute(work).total_cycles

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DVPE(lanes=0)
