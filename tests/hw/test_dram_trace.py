"""Tests for the banked DRAM trace simulator."""

import numpy as np
import pytest

from repro.core.sparsify import tbs_sparsify
from repro.formats import CSRFormat, DDCFormat, EncodeSpec, Segment
from repro.hw.dram_trace import BankedDRAM


def _tbs_encodings(seed=0, shape=(128, 128), sparsity=0.75):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=shape)
    res = tbs_sparsify(w, m=8, sparsity=sparsity)
    sparse = w * res.mask
    return DDCFormat().encode(sparse, EncodeSpec(tbs=res)), CSRFormat().encode(sparse)


class TestGeometry:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BankedDRAM(num_banks=0)
        with pytest.raises(ValueError):
            BankedDRAM(row_bytes=16, burst_bytes=32)

    def test_locate_interleaves_rows(self):
        dram = BankedDRAM(num_banks=4, row_bytes=1024)
        banks = [dram._locate(row * 1024)[0] for row in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]


class TestReplay:
    def test_empty_trace(self):
        res = BankedDRAM().replay([])
        assert res.cycles == 0 and res.accesses == 0
        assert res.row_hit_rate == 1.0

    def test_sequential_stream_mostly_hits(self):
        dram = BankedDRAM(row_bytes=1024, burst_bytes=32)
        res = dram.replay([Segment(0, 8192)])
        # 8 KB sequential -> 8 row activations, 248 hits.
        assert res.accesses == 256
        assert res.row_misses == 8
        assert res.row_hit_rate > 0.9

    def test_random_scatter_mostly_misses(self):
        rng = np.random.default_rng(0)
        segments = [Segment(int(a) * 4096, 8) for a in rng.integers(0, 4096, size=128)]
        res = BankedDRAM().replay(segments)
        assert res.row_hit_rate < 0.3

    def test_scatter_slower_than_stream(self):
        nbytes = 8192
        stream = BankedDRAM().replay([Segment(0, nbytes)])
        rng = np.random.default_rng(1)
        scattered = BankedDRAM().replay(
            [Segment(int(a) * 4096, 32) for a in rng.integers(0, 1 << 16, size=nbytes // 32)]
        )
        assert scattered.cycles > stream.cycles

    def test_energy_counts_activations(self):
        dram = BankedDRAM()
        one_row = dram.replay([Segment(0, 64)])
        many_rows = dram.replay([Segment(i * 8192, 64) for i in range(8)])
        assert many_rows.energy_pj > one_row.energy_pj

    def test_zero_length_segments_ignored(self):
        res = BankedDRAM().replay([Segment(0, 0), Segment(64, 32)])
        assert res.accesses == 1


class TestFormatContrast:
    """The trace model validates the analytical model's format ratios.

    At these matrix sizes CSR's scattered fragments still enjoy row
    locality (a weight matrix spans few DRAM rows), so its penalty is
    burst *overfetch* -- roughly 4x the accesses for the same payload --
    rather than row thrash; DDC wins decisively on cycles either way.
    """

    def test_ddc_streams_with_high_hit_rate(self):
        ddc, _ = _tbs_encodings()
        assert BankedDRAM().replay_encoded(ddc).row_hit_rate > 0.9

    def test_csr_overfetches(self):
        ddc, csr = _tbs_encodings()
        dram = BankedDRAM()
        assert dram.replay_encoded(csr).accesses > 2 * dram.replay_encoded(ddc).accesses

    def test_ddc_cycles_beat_csr(self):
        ddc, csr = _tbs_encodings(seed=1)
        dram = BankedDRAM()
        assert dram.replay_encoded(ddc).cycles < dram.replay_encoded(csr).cycles

    def test_trend_stable_across_sparsity(self):
        for sparsity in (0.5, 0.875):
            ddc, csr = _tbs_encodings(seed=2, sparsity=sparsity)
            dram = BankedDRAM()
            assert dram.replay_encoded(ddc).cycles < dram.replay_encoded(csr).cycles
