"""Unit tests for the architecture configurations."""

import pytest

from repro.core.patterns import PatternFamily
from repro.hw.config import (
    ArchConfig,
    all_baselines,
    dvpe_fan,
    highlight,
    rm_stc,
    sgcn,
    stc,
    tb_stc,
    tensor_core,
    vegeta,
)


class TestPaperConfiguration:
    def test_tb_stc_fabric(self):
        """Sec. VII-A1: 8 DVPE arrays x (2x8) DVPEs x 8 FP16 multipliers."""
        cfg = tb_stc()
        assert cfg.num_pe_arrays == 8
        assert cfg.pes_per_array == 16
        assert cfg.lanes_per_pe == 8
        assert cfg.num_pes == 128
        assert cfg.peak_macs_per_cycle == 1024

    def test_tb_stc_memory(self):
        cfg = tb_stc()
        assert cfg.dram_bandwidth_gbs == 64.0
        assert cfg.frequency_ghz == 1.0
        assert cfg.dram_bytes_per_cycle == 64.0

    def test_tb_stc_features(self):
        cfg = tb_stc()
        assert cfg.pattern is PatternFamily.TBS
        assert cfg.storage_format == "ddc"
        assert cfg.inter_block_scheduling and cfg.intra_block_mapping
        assert cfg.has_codec and cfg.has_mbd and cfg.alternate_unit

    def test_peak_tops(self):
        assert tb_stc().peak_tops == pytest.approx(2.048)


class TestBaselines:
    def test_tc_is_dense(self):
        cfg = tensor_core()
        assert cfg.storage_format == "dense"
        assert not cfg.has_codec and not cfg.inter_block_scheduling

    def test_stc_is_tilewise(self):
        assert stc().pattern is PatternFamily.TS

    def test_vegeta_rowwise(self):
        assert vegeta().pattern is PatternFamily.RS_V

    def test_highlight_hierarchical(self):
        assert highlight().pattern is PatternFamily.RS_H

    def test_rm_stc_unstructured_and_power_hungry(self):
        cfg = rm_stc()
        assert cfg.pattern is PatternFamily.US
        assert cfg.datapath_energy_scale > 1.4  # Fig. 6(d) gather/union cost

    def test_sgcn_high_bandwidth(self):
        assert sgcn().dram_bandwidth_gbs == 256.0

    def test_fan_energy_penalty(self):
        assert dvpe_fan().datapath_energy_scale > tb_stc().datapath_energy_scale

    def test_all_baselines_same_fabric(self):
        """Fair comparison: identical peak compute everywhere."""
        peak = tb_stc().peak_macs_per_cycle
        for cfg in all_baselines():
            assert cfg.peak_macs_per_cycle == peak

    def test_names_unique(self):
        names = [cfg.name for cfg in all_baselines()]
        assert len(names) == len(set(names))


class TestValidation:
    def test_rejects_zero_pes(self):
        with pytest.raises(ValueError):
            ArchConfig(name="bad", num_pe_arrays=0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            ArchConfig(name="bad", dram_bandwidth_gbs=0)

    def test_with_bandwidth(self):
        cfg = tb_stc().with_bandwidth(256.0)
        assert cfg.dram_bandwidth_gbs == 256.0
        assert cfg.name == "TB-STC"
