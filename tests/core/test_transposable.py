"""Tests for strictly-transposable N:M masks (the NM-T baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.masks import unstructured_mask
from repro.core.similarity import mask_agreement
from repro.core.sparsify import tbs_sparsify
from repro.core.transposable import (
    is_transposable,
    transposable_block_mask,
    transposable_mask,
    transposable_sparsify,
)


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestIsTransposable:
    def test_identity_block(self):
        assert is_transposable(np.eye(8, dtype=bool), 1)

    def test_dense_row_violates(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0] = True
        assert not is_transposable(mask, 2)
        assert is_transposable(mask, 8)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            is_transposable(np.ones(4, dtype=bool), 2)

    def test_block_size_check(self):
        with pytest.raises(ValueError):
            is_transposable(np.ones((4, 4), dtype=bool), 2, m=8)


class TestBlockMask:
    def test_constraint_satisfied(self):
        mask = transposable_block_mask(_rand((8, 8), 1), 2)
        assert is_transposable(mask, 2)

    def test_transpose_also_valid(self):
        """The defining property: the mask works for W and W.T."""
        mask = transposable_block_mask(_rand((8, 8), 2), 2)
        assert is_transposable(mask.T, 2)

    def test_full_and_empty(self):
        assert transposable_block_mask(_rand((8, 8)), 0).sum() == 0
        assert transposable_block_mask(_rand((8, 8)), 8).all()

    def test_keeps_high_scores_first(self):
        scores = np.zeros((4, 4))
        scores[0, 0] = 10.0
        scores[1, 1] = 9.0
        mask = transposable_block_mask(scores, 1)
        assert mask[0, 0] and mask[1, 1]

    def test_diagonal_conflict_resolved(self):
        # Two huge scores in the same row: only one survives at N=1,
        # and the quota frees a different column for another row.
        scores = np.ones((4, 4)) * 0.1
        scores[0, 0] = 10.0
        scores[0, 1] = 9.0
        mask = transposable_block_mask(scores, 1)
        assert is_transposable(mask, 1)
        assert mask[0, 0] and not mask[0, 1]

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            transposable_block_mask(_rand((8, 8)), 9)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            transposable_block_mask(_rand((4, 8)), 2)

    @given(seed=st.integers(0, 100), n=st.integers(0, 8))
    @settings(max_examples=40, deadline=None)
    def test_property_both_directions(self, seed, n):
        mask = transposable_block_mask(_rand((8, 8), seed), n)
        assert is_transposable(mask, n)
        assert is_transposable(mask.T, n)


class TestMatrixMask:
    def test_every_block_transposable(self):
        mask = transposable_mask(_rand((32, 32), 3), n=2, m=8)
        for br in range(4):
            for bc in range(4):
                block = mask[br * 8 : (br + 1) * 8, bc * 8 : (bc + 1) * 8]
                assert is_transposable(block, 2)

    def test_sparsity_close_to_ratio(self):
        mask = transposable_mask(_rand((64, 64), 4), n=2, m=8)
        # N=2, M=8 -> at most 25% density (quota stranding may lose a little).
        assert 0.18 <= mask.mean() <= 0.25

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            transposable_mask(np.ones(8), 2)


class TestSparsify:
    def test_adaptive_n(self):
        scores = _rand((32, 32), 5)
        mask, block_n = transposable_sparsify(scores, m=8, sparsity=0.75)
        assert block_n.shape == (4, 4)
        assert set(np.unique(block_n)).issubset({0, 1, 2, 4, 8})

    def test_overall_sparsity(self):
        scores = _rand((128, 128), 6)
        mask, _ = transposable_sparsify(scores, m=8, sparsity=0.75)
        assert abs((1 - mask.mean()) - 0.75) < 0.1

    def test_subset_of_tbs_expressiveness(self):
        """NM-T masks are valid TBS masks; the converse is false -- so
        TBS tracks the unstructured optimum at least as well."""
        scores = _rand((64, 64), 7)
        us = unstructured_mask(scores, 0.75)
        nmt_mask, _ = transposable_sparsify(scores, m=8, sparsity=0.75)
        tbs = tbs_sparsify(scores, m=8, sparsity=0.75)
        assert mask_agreement(tbs.mask, us) >= mask_agreement(nmt_mask, us)


class TestBackendSelection:
    """``backend=`` threads through every transposable entry point."""

    def test_default_is_greedy_bit_identical(self):
        scores = _rand((32, 32), 8)
        default_mask, default_n = transposable_sparsify(scores, m=8, sparsity=0.75)
        greedy_mask, greedy_n = transposable_sparsify(
            scores, m=8, sparsity=0.75, backend="greedy"
        )
        assert np.array_equal(default_mask, greedy_mask)
        assert np.array_equal(default_n, greedy_n)

    @pytest.mark.parametrize("backend", ["greedy", "exact", "tsenor"])
    def test_all_backends_valid(self, backend):
        scores = _rand((32, 32), 9)
        mask = transposable_mask(scores, n=2, m=8, backend=backend)
        for br in range(4):
            for bc in range(4):
                block = mask[br * 8 : (br + 1) * 8, bc * 8 : (bc + 1) * 8]
                assert is_transposable(block, 2)
        block_mask = transposable_block_mask(scores[:8, :8], 3, backend=backend)
        assert is_transposable(block_mask, 3)

    @pytest.mark.parametrize("backend", ["greedy", "exact", "tsenor"])
    def test_sparsify_backends_share_block_n(self, backend):
        """Per-block N comes from the density heuristic, not the solver:
        every backend prunes to the same block-N grid."""
        scores = _rand((32, 32), 10)
        _, default_n = transposable_sparsify(scores, m=8, sparsity=0.75)
        mask, block_n = transposable_sparsify(
            scores, m=8, sparsity=0.75, backend=backend
        )
        assert np.array_equal(block_n, default_n)
        for br in range(4):
            for bc in range(4):
                block = mask[br * 8 : (br + 1) * 8, bc * 8 : (bc + 1) * 8]
                assert is_transposable(block, int(block_n[br, bc]))

    def test_env_var_selects_backend(self, monkeypatch):
        scores = _rand((16, 16), 11)
        monkeypatch.setenv("REPRO_TSOLVER", "exact")
        via_env = transposable_mask(scores, n=2, m=8)
        monkeypatch.delenv("REPRO_TSOLVER")
        explicit = transposable_mask(scores, n=2, m=8, backend="exact")
        assert np.array_equal(via_env, explicit)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown tsolver"):
            transposable_mask(_rand((8, 8), 12), n=2, m=8, backend="hungarian")
