"""Tests for mask validation."""

import numpy as np
import pytest

from repro.core.masks import make_mask, tile_mask, vegeta_mask
from repro.core.patterns import NMConfig, PatternFamily, PatternSpec
from repro.core.sparsify import tbs_sparsify
from repro.core.validate import validate_mask, validate_tbs_result


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestValidGeneratorsPass:
    @pytest.mark.parametrize(
        "family", [PatternFamily.US, PatternFamily.TS, PatternFamily.RS_V, PatternFamily.RS_H, PatternFamily.TBS]
    )
    def test_own_generator_validates(self, family):
        spec = PatternSpec(family, m=8, sparsity=0.5)
        mask = make_mask(_rand((64, 64), 1), spec)
        report = validate_mask(mask, spec)
        assert report.ok, report.summary()

    def test_tbs_result_self_validates(self):
        res = tbs_sparsify(_rand((64, 64), 2), m=8, sparsity=0.75)
        assert validate_tbs_result(res).ok

    def test_transposed_tbs_validates(self):
        res = tbs_sparsify(_rand((64, 64), 3), m=8, sparsity=0.75)
        assert validate_tbs_result(res.transposed()).ok


class TestViolationsDetected:
    def test_ts_overfull_group(self):
        mask = np.zeros((1, 8), dtype=bool)
        mask[0, :5] = True  # 5 > N=4 in a 4:8 tile
        spec = PatternSpec(PatternFamily.TS, m=8, sparsity=0.5)
        report = validate_mask(mask, spec)
        assert not report.ok
        assert "group keeps 5" in str(report.violations[0])

    def test_rs_v_non_uniform_row(self):
        mask = np.zeros((1, 16), dtype=bool)
        mask[0, :3] = True  # group 0 keeps 3
        mask[0, 8] = True  # group 1 keeps 1
        spec = PatternSpec(PatternFamily.RS_V, m=8, sparsity=0.5)
        report = validate_mask(mask, spec)
        assert not report.ok
        assert "non-uniform" in str(report.violations[0])

    def test_tbs_invalid_block(self):
        # Max occupancy 3 in both dimensions: 3 is not a candidate N,
        # so the block is valid in neither direction.
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, :3] = True
        mask[1, 0] = mask[2, 0] = True
        spec = PatternSpec(PatternFamily.TBS, m=8, sparsity=0.5)
        report = validate_mask(mask, spec)
        assert not report.ok

    def test_tbs_metadata_mismatch(self):
        res = tbs_sparsify(_rand((16, 16), 4), m=8, sparsity=0.5)
        res.mask[0, :8] = True  # force a row beyond its declared N
        report = validate_tbs_result(res)
        assert not report.ok

    def test_us_always_valid(self):
        mask = np.random.default_rng(5).random((8, 8)) < 0.5
        assert validate_mask(mask, PatternSpec(PatternFamily.US)).ok


class TestReport:
    def test_summary_ok(self):
        spec = PatternSpec(PatternFamily.TS, m=8, sparsity=0.5)
        mask = tile_mask(_rand((8, 16), 6), NMConfig(4, 8))
        assert "valid" in validate_mask(mask, spec).summary()

    def test_summary_truncates(self):
        mask = np.ones((16, 8), dtype=bool)  # every 4:8 group overfull
        spec = PatternSpec(PatternFamily.TS, m=8, sparsity=0.5)
        report = validate_mask(mask, spec)
        assert "+11 more" in report.summary(limit=5)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            validate_mask(np.ones(8, dtype=bool), PatternSpec(PatternFamily.TS, sparsity=0.5))


class TestCrossFamily:
    def test_vegeta_mask_fails_ts_check(self):
        """A variable-N row-wise mask usually violates fixed-N tiles."""
        mask = vegeta_mask(_rand((64, 64), 7), m=8, sparsity=0.75)
        ts_spec = PatternSpec(PatternFamily.TS, m=8, sparsity=0.75)
        # fixed_n = 2; rows that chose N > 2 violate.
        report = validate_mask(mask, ts_spec)
        assert not report.ok

    def test_tile_mask_passes_rs_checks(self):
        """Fixed-N masks are a special case of row-wise variable N."""
        mask = tile_mask(_rand((32, 64), 8), NMConfig(2, 8))
        assert validate_mask(mask, PatternSpec(PatternFamily.RS_V, m=8, sparsity=0.75)).ok
