"""Unit tests for the pruning criteria (magnitude / Wanda / SparseGPT)."""

import numpy as np
import pytest

from repro.core.criteria import (
    calibration_hessian,
    magnitude_scores,
    sparsegpt_prune,
    sparsegpt_scores,
    wanda_scores,
)
from repro.core.masks import unstructured_mask


def _layer(seed=0, out_f=16, in_f=24, samples=64):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(out_f, in_f))
    activations = rng.normal(size=(samples, in_f)) * np.exp(rng.normal(0, 0.5, size=in_f))
    return weights, activations


class TestMagnitude:
    def test_absolute_value(self):
        w = np.array([[-2.0, 1.0], [0.5, -3.0]])
        np.testing.assert_array_equal(magnitude_scores(w), [[2.0, 1.0], [0.5, 3.0]])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            magnitude_scores(np.ones(4))


class TestWanda:
    def test_scales_by_activation_norm(self):
        w = np.ones((2, 3))
        x = np.zeros((4, 3))
        x[:, 0] = 1.0  # channel 0 loud, others silent
        scores = wanda_scores(w, x)
        assert scores[0, 0] > 0
        assert scores[0, 1] == 0.0

    def test_silent_channels_pruned_first(self):
        w, x = _layer(seed=1)
        x[:, 0] = 0.0
        scores = wanda_scores(w, x)
        mask = unstructured_mask(scores, 0.5)
        assert not mask[:, 0].any()

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            wanda_scores(np.ones((2, 3)), np.ones((4, 5)))

    def test_rejects_non_2d_activations(self):
        with pytest.raises(ValueError):
            wanda_scores(np.ones((2, 3)), np.ones(3))


class TestHessian:
    def test_symmetric_positive_definite(self):
        _, x = _layer(seed=2)
        h = calibration_hessian(x)
        np.testing.assert_allclose(h, h.T)
        eigvals = np.linalg.eigvalsh(h)
        assert (eigvals > 0).all()

    def test_damping_regularises_rank_deficient(self):
        x = np.zeros((8, 4))
        x[:, 0] = 1.0  # rank 1
        h = calibration_hessian(x, damping=0.1)
        assert np.linalg.matrix_rank(h) == 4


class TestSparseGPTScores:
    def test_shape(self):
        w, x = _layer(seed=3)
        assert sparsegpt_scores(w, x).shape == w.shape

    def test_nonnegative(self):
        w, x = _layer(seed=4)
        assert (sparsegpt_scores(w, x) >= 0).all()

    def test_larger_weight_larger_score(self):
        w, x = _layer(seed=5)
        w2 = w.copy()
        w2[0, 0] = w[0, 0] * 10
        s1 = sparsegpt_scores(w, x)
        s2 = sparsegpt_scores(w2, x)
        assert s2[0, 0] > s1[0, 0]


class TestSparseGPTPrune:
    def test_mask_applied(self):
        w, x = _layer(seed=6)
        pruned, mask = sparsegpt_prune(w, x, lambda s: unstructured_mask(s, 0.5))
        assert not pruned[~mask].any()

    def test_compensation_beats_naive_zeroing(self):
        """OBS weight update must reduce reconstruction error vs plain
        masking -- the reason SparseGPT outperforms magnitude one-shot."""
        w, x = _layer(seed=7, out_f=24, in_f=32, samples=256)
        mask_fn = lambda s: unstructured_mask(s, 0.6)
        pruned, mask = sparsegpt_prune(w, x, mask_fn)
        naive = w * mask
        ref = x @ w.T
        err_obs = np.linalg.norm(ref - x @ pruned.T)
        err_naive = np.linalg.norm(ref - x @ naive.T)
        assert err_obs < err_naive

    def test_mask_shape_check(self):
        w, x = _layer(seed=8)
        with pytest.raises(ValueError):
            sparsegpt_prune(w, x, lambda s: np.ones((2, 2), dtype=bool))

    def test_full_density_keeps_weights(self):
        w, x = _layer(seed=9)
        pruned, mask = sparsegpt_prune(w, x, lambda s: np.ones_like(s, dtype=bool))
        np.testing.assert_allclose(pruned, w)

    def test_works_with_structured_masks(self):
        from repro.core.sparsify import tbs_sparsify

        w, x = _layer(seed=10, out_f=32, in_f=32)
        pruned, mask = sparsegpt_prune(w, x, lambda s: tbs_sparsify(s, m=8, sparsity=0.5).mask)
        assert not pruned[~mask].any()
        assert 0.3 < 1 - mask.mean() < 0.7
