"""Unit tests for repro.core.similarity."""

import numpy as np
import pytest

from repro.core.masks import unstructured_mask
from repro.core.similarity import (
    direction_distribution,
    kept_overlap,
    mask_agreement,
    pattern_similarity_sweep,
)
from repro.core.sparsify import tbs_sparsify


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestAgreement:
    def test_identical_masks(self):
        mask = unstructured_mask(_rand((16, 16)), 0.5)
        assert mask_agreement(mask, mask) == 1.0

    def test_complement_masks(self):
        mask = unstructured_mask(_rand((16, 16)), 0.5)
        assert mask_agreement(mask, ~mask) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mask_agreement(np.ones((2, 2), dtype=bool), np.ones((3, 3), dtype=bool))

    def test_empty_masks(self):
        empty = np.zeros((0, 0), dtype=bool)
        assert mask_agreement(empty, empty) == 1.0

    def test_agreement_is_one_minus_normalised_l1(self):
        a = unstructured_mask(_rand((16, 16), 1), 0.5)
        b = unstructured_mask(_rand((16, 16), 2), 0.5)
        l1 = np.abs(a.astype(int) - b.astype(int)).sum()
        assert mask_agreement(a, b) == pytest.approx(1 - l1 / a.size)


class TestOverlap:
    def test_identical(self):
        mask = unstructured_mask(_rand((8, 8)), 0.5)
        assert kept_overlap(mask, mask) == 1.0

    def test_disjoint(self):
        a = np.zeros((2, 2), dtype=bool)
        b = np.zeros((2, 2), dtype=bool)
        a[0, 0] = True
        b[1, 1] = True
        assert kept_overlap(a, b) == 0.0

    def test_both_empty(self):
        assert kept_overlap(np.zeros((4, 4), dtype=bool), np.zeros((4, 4), dtype=bool)) == 1.0


class TestSweep:
    def test_tbs_most_similar_to_us(self):
        """Fig. 4(b): TBS similarity with US exceeds the other patterns."""
        scores = _rand((128, 128), seed=3)
        sims = pattern_similarity_sweep(scores, sparsity=0.75, m=8)
        assert sims["TBS"] == max(sims.values())

    def test_similarity_range(self):
        sims = pattern_similarity_sweep(_rand((64, 64), seed=4), sparsity=0.5)
        assert all(0.0 <= v <= 1.0 for v in sims.values())

    def test_tbs_in_paper_band_on_structured_weights(self):
        """On weights with realistic block structure TBS reaches the
        paper's 85-92% similarity band (Fig. 4(b))."""
        rng = np.random.default_rng(5)
        # Per-row scale variation mimics trained-layer statistics.
        scale = np.exp(rng.normal(0, 0.8, size=(128, 1)))
        scores = rng.normal(size=(128, 128)) * scale
        sims = pattern_similarity_sweep(scores, sparsity=0.75, m=8)
        assert sims["TBS"] > 0.85


class TestDirectionDistribution:
    def test_fractions_sum_to_one(self):
        res = tbs_sparsify(_rand((64, 64), seed=6), m=8, sparsity=0.75)
        dist = direction_distribution(res)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_accepts_list(self):
        res1 = tbs_sparsify(_rand((64, 64), seed=7), m=8, sparsity=0.75)
        res2 = tbs_sparsify(_rand((64, 64), seed=8), m=8, sparsity=0.5)
        dist = direction_distribution([res1, res2])
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_empty_input(self):
        dist = direction_distribution([])
        assert dist == {"row": 0.0, "col": 0.0, "other": 0.0}
