"""Unit tests for repro.core.masks -- every pattern generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.masks import (
    global_threshold,
    highlight_mask,
    make_mask,
    tile_mask,
    topn_along_last,
    unstructured_mask,
    vegeta_mask,
)
from repro.core.patterns import NMConfig, PatternFamily, PatternSpec


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestUnstructured:
    def test_exact_sparsity(self):
        mask = unstructured_mask(_rand((32, 32)), 0.75)
        assert mask.sum() == 32 * 32 // 4

    def test_keeps_largest(self):
        scores = np.array([[1.0, 5.0, 2.0, 4.0]])
        mask = unstructured_mask(scores, 0.5)
        np.testing.assert_array_equal(mask, [[False, True, False, True]])

    def test_uses_magnitude(self):
        scores = np.array([[-9.0, 1.0, 2.0, 3.0]])
        mask = unstructured_mask(scores, 0.75)
        np.testing.assert_array_equal(mask, [[True, False, False, False]])

    def test_sparsity_zero_keeps_all(self):
        assert unstructured_mask(_rand((8, 8)), 0.0).all()

    def test_sparsity_one_prunes_all(self):
        assert not unstructured_mask(_rand((8, 8)), 1.0).any()

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError):
            unstructured_mask(_rand((4, 4)), 1.2)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            unstructured_mask(np.ones(8), 0.5)

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_sparsity_within_one_element(self, sparsity):
        scores = _rand((16, 16), seed=3)
        mask = unstructured_mask(scores, sparsity)
        expected_kept = 256 - round(sparsity * 256)
        assert mask.sum() == expected_kept


class TestGlobalThreshold:
    def test_threshold_separates(self):
        scores = _rand((32, 32), seed=1)
        thr = global_threshold(scores, 0.75)
        frac_below = (np.abs(scores) <= thr).mean()
        assert abs(frac_below - 0.75) < 0.01

    def test_zero_sparsity(self):
        assert global_threshold(_rand((4, 4)), 0.0) == 0.0

    def test_full_sparsity_above_max(self):
        scores = _rand((4, 4))
        assert global_threshold(scores, 1.0) > np.abs(scores).max()


class TestTopN:
    def test_scalar_n(self):
        scores = np.array([[3.0, 1.0, 4.0, 1.5]])
        mask = topn_along_last(scores, 2)
        np.testing.assert_array_equal(mask, [[True, False, True, False]])

    def test_per_row_n(self):
        # N broadcasts over the leading axes: one N per row here.
        scores = np.ones((2, 4))
        mask = topn_along_last(scores, np.array([1, 3]))
        assert mask[0].sum() == 1 and mask[1].sum() == 3

    def test_n_zero(self):
        assert not topn_along_last(np.ones((3, 4)), 0).any()

    def test_n_full(self):
        assert topn_along_last(np.ones((3, 4)), 4).all()

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            topn_along_last(np.ones((2, 4)), 5)

    def test_stable_on_ties(self):
        # Equal scores: earlier elements win (stable sort).
        mask = topn_along_last(np.zeros((1, 4)), 2)
        np.testing.assert_array_equal(mask, [[True, True, False, False]])


class TestTileMask:
    def test_nm_constraint_holds(self):
        scores = _rand((16, 32), seed=2)
        mask = tile_mask(scores, NMConfig(2, 4))
        groups = mask.reshape(16, 8, 4)
        assert (groups.sum(axis=-1) <= 2).all()
        assert (groups.sum(axis=-1) == 2).all()  # dense scores fill every group

    def test_4_8_sparsity_is_half(self):
        mask = tile_mask(_rand((8, 64)), NMConfig(4, 8))
        assert mask.mean() == pytest.approx(0.5)

    def test_ragged_columns(self):
        scores = _rand((4, 10), seed=5)
        mask = tile_mask(scores, NMConfig(2, 4))
        assert mask.shape == (4, 10)
        # Last partial group has only 2 real elements; both may be kept.
        assert mask[:, 8:].sum(axis=1).max() <= 2

    def test_keeps_top_magnitudes_per_tile(self):
        scores = np.array([[1.0, -8.0, 2.0, -9.0, 1.0, 2.0, 3.0, 4.0]])
        mask = tile_mask(scores, NMConfig(2, 4))
        np.testing.assert_array_equal(mask, [[False, True, False, True, False, False, True, True]])


class TestVegetaMask:
    def test_rowwise_nm_constraint(self):
        scores = _rand((16, 64), seed=7)
        mask = vegeta_mask(scores, m=8, sparsity=0.5)
        groups = mask.reshape(16, 8, 8)
        per_row_n = groups.sum(axis=-1)
        # Every group in one row keeps the same candidate N.
        for r in range(16):
            assert len(set(per_row_n[r])) == 1
            assert 0 <= per_row_n[r][0] <= 8

    def test_overall_sparsity_near_target(self):
        scores = _rand((64, 64), seed=8)
        mask = vegeta_mask(scores, m=8, sparsity=0.75)
        assert abs((1 - mask.mean()) - 0.75) < 0.1

    def test_adapts_to_row_importance(self):
        # One loud row, seven quiet rows: the loud row keeps more.
        rng = np.random.default_rng(0)
        scores = rng.normal(size=(8, 64)) * 0.01
        scores[0] = rng.normal(size=64) * 10
        mask = vegeta_mask(scores, m=8, sparsity=0.5)
        assert mask[0].sum() > mask[1:].sum(axis=1).mean()


class TestHighlightMask:
    def test_overall_sparsity_near_target(self):
        scores = _rand((64, 64), seed=9)
        mask = highlight_mask(scores, m=8, sparsity=0.5)
        assert abs((1 - mask.mean()) - 0.5) < 0.15

    def test_fine_level_nm_holds(self):
        scores = _rand((16, 64), seed=10)
        mask = highlight_mask(scores, m=8, sparsity=0.5)
        groups = mask.reshape(16, 8, 8)
        assert (groups.sum(axis=-1) <= 8).all()

    def test_hierarchical_structure(self):
        # With target sparsity high, some tiles must be entirely empty
        # (coarse level) while kept tiles obey the fine N:M.
        scores = _rand((32, 64), seed=11)
        mask = highlight_mask(scores, m=8, sparsity=0.875)
        tiles = mask.reshape(32, 8, 8).sum(axis=-1)
        assert (tiles == 0).any()


class TestMakeMask:
    @pytest.mark.parametrize(
        "family",
        [PatternFamily.US, PatternFamily.TS, PatternFamily.RS_V, PatternFamily.RS_H, PatternFamily.TBS],
    )
    def test_dispatch_all_families(self, family):
        scores = _rand((32, 32), seed=12)
        spec = PatternSpec(family, m=8, sparsity=0.5)
        mask = make_mask(scores, spec)
        assert mask.shape == scores.shape
        assert mask.dtype == bool
        assert 0.3 < 1 - mask.mean() < 0.7  # near the target

    def test_unknown_family_rejected(self):
        with pytest.raises((ValueError, AttributeError)):
            make_mask(_rand((8, 8)), PatternSpec("bogus"))  # type: ignore[arg-type]
