"""Unit tests for repro.core.blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import (
    block_densities,
    block_grid_shape,
    block_nnz_counts,
    blocks_list,
    extract_block,
    iter_blocks,
    merge_from_blocks,
    pad_to_blocks,
    row_group_view,
    scatter_block,
    split_into_blocks,
)


class TestGrid:
    def test_exact_fit(self):
        assert block_grid_shape(16, 24, 8) == (2, 3)

    def test_ragged(self):
        assert block_grid_shape(17, 25, 8) == (3, 4)

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            block_grid_shape(8, 8, 0)

    def test_iter_covers_matrix(self):
        seen = np.zeros((20, 13), dtype=int)
        for idx in iter_blocks(20, 13, 8):
            seen[idx.slices] += 1
        assert np.all(seen == 1)

    def test_iter_row_major(self):
        idxs = list(iter_blocks(16, 16, 8))
        assert [(i.row, i.col) for i in idxs] == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestPadding:
    def test_no_copy_when_aligned(self):
        a = np.ones((8, 8))
        assert pad_to_blocks(a, 8) is a

    def test_pads_with_zeros(self):
        a = np.ones((5, 7))
        p = pad_to_blocks(a, 4)
        assert p.shape == (8, 8)
        assert p[:5, :7].sum() == 35
        assert p.sum() == 35

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pad_to_blocks(np.ones(8), 4)


class TestSplitMerge:
    def test_roundtrip_aligned(self):
        a = np.arange(64).reshape(8, 8).astype(float)
        blocks = split_into_blocks(a, 4)
        assert blocks.shape == (2, 2, 4, 4)
        back = merge_from_blocks(blocks, 8, 8)
        np.testing.assert_array_equal(a, back)

    def test_roundtrip_ragged(self):
        a = np.arange(5 * 7).reshape(5, 7).astype(float)
        blocks = split_into_blocks(a, 4)
        back = merge_from_blocks(blocks, 5, 7)
        np.testing.assert_array_equal(a, back)

    def test_block_contents(self):
        a = np.arange(16).reshape(4, 4)
        blocks = split_into_blocks(a, 2)
        np.testing.assert_array_equal(blocks[0, 1], [[2, 3], [6, 7]])

    def test_merge_rejects_non_square_blocks(self):
        with pytest.raises(ValueError):
            merge_from_blocks(np.zeros((1, 1, 2, 3)), 2, 3)

    @given(
        rows=st.integers(1, 40),
        cols=st.integers(1, 40),
        m=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, rows, cols, m):
        rng = np.random.default_rng(rows * 41 + cols)
        a = rng.normal(size=(rows, cols))
        back = merge_from_blocks(split_into_blocks(a, m), rows, cols)
        np.testing.assert_allclose(a, back)


class TestExtractScatter:
    def test_extract_interior(self):
        a = np.arange(64).reshape(8, 8).astype(float)
        idx = next(i for i in iter_blocks(8, 8, 4) if (i.row, i.col) == (1, 1))
        np.testing.assert_array_equal(extract_block(a, idx, 4), a[4:, 4:])

    def test_extract_pads_edge(self):
        a = np.ones((5, 5))
        idx = next(i for i in iter_blocks(5, 5, 4) if (i.row, i.col) == (1, 1))
        block = extract_block(a, idx, 4)
        assert block.shape == (4, 4)
        assert block.sum() == 1  # only the (4,4) corner element is real

    def test_scatter_roundtrip(self):
        a = np.zeros((5, 5))
        idx = next(i for i in iter_blocks(5, 5, 4) if (i.row, i.col) == (1, 1))
        scatter_block(a, idx, np.full((4, 4), 7.0))
        assert a[4, 4] == 7.0
        assert a.sum() == 7.0

    def test_blocks_list_count(self):
        a = np.zeros((10, 10))
        assert len(blocks_list(a, 4)) == 9


class TestCounts:
    def test_block_nnz_counts(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[0, 0] = mask[0, 1] = mask[4, 4] = True
        counts = block_nnz_counts(mask, 4)
        np.testing.assert_array_equal(counts, [[2, 0], [0, 1]])

    def test_block_densities(self):
        mask = np.ones((4, 4), dtype=bool)
        np.testing.assert_allclose(block_densities(mask, 4), [[1.0]])

    def test_row_group_view_shape(self):
        a = np.zeros((3, 16))
        v = row_group_view(a, 8)
        assert v.shape == (3, 2, 8)

    @given(st.integers(1, 30), st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_nnz_conserved(self, rows, cols):
        rng = np.random.default_rng(rows * 31 + cols)
        mask = rng.random((rows, cols)) < 0.3
        assert block_nnz_counts(mask, 8).sum() == mask.sum()
