"""Tests for the pluggable transposable-mask solver backends.

Covers the three backends' shared contract (valid 2-D N:M masks,
per-block N respected, determinism), the ``exact`` backend against a
brute-force oracle on tiny blocks, the quality gate CI runs for
``greedy``/``tsenor`` against ``exact``, and the augmenting-path repair
regression in ``greedy``.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transposable import is_transposable
from repro.core.tsolvers import (
    DEFAULT_TSOLVER,
    TSOLVER_NAMES,
    resolve_tsolver,
    solve_block,
    solve_blocks,
)


def _rand_blocks(b, m, seed=0):
    return np.abs(np.random.default_rng(seed).normal(size=(b, m, m)))


def _retained(scores, masks):
    return float((np.abs(scores) * masks).sum())


def _brute_force(scores, n):
    """Exhaustive max-score transposable mask of one tiny block."""
    m = scores.shape[0]
    best_score, best_mask = -1.0, np.zeros((m, m), dtype=bool)
    cells = list(itertools.product(range(m), range(m)))
    for bits in range(1 << len(cells)):
        mask = np.zeros((m, m), dtype=bool)
        for idx, (i, j) in enumerate(cells):
            if bits >> idx & 1:
                mask[i, j] = True
        if not is_transposable(mask, n):
            continue
        score = float((scores * mask).sum())
        if score > best_score:
            best_score, best_mask = score, mask
    return best_mask, best_score


class TestRegistry:
    def test_default_is_greedy(self):
        assert DEFAULT_TSOLVER == "greedy"
        assert resolve_tsolver(None) == "greedy"

    def test_explicit_name_wins(self):
        assert resolve_tsolver("tsenor") == "tsenor"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_TSOLVER", "exact")
        assert resolve_tsolver(None) == "exact"
        assert resolve_tsolver("greedy") == "greedy"

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown tsolver"):
            resolve_tsolver("simplex")
        monkeypatch.setenv("REPRO_TSOLVER", "simplex")
        with pytest.raises(ValueError, match="unknown tsolver"):
            resolve_tsolver(None)

    def test_solve_block_validates_shape(self):
        with pytest.raises(ValueError):
            solve_block(np.ones((4, 8)), 2)
        with pytest.raises(ValueError):
            solve_block(np.ones((4, 4)), 5)
        with pytest.raises(ValueError):
            solve_blocks(np.ones((4, 4)), 2)  # needs a batch dim

    def test_env_default_changes_behaviour(self, monkeypatch):
        scores = _rand_blocks(4, 8, seed=3)
        monkeypatch.setenv("REPRO_TSOLVER", "exact")
        via_env = solve_blocks(scores, 2)
        explicit = solve_blocks(scores, 2, backend="exact")
        assert np.array_equal(via_env, explicit)


class TestSharedContract:
    """Every backend returns valid, deterministic masks."""

    @pytest.mark.parametrize("backend", TSOLVER_NAMES)
    @given(seed=st.integers(0, 200), n=st.integers(0, 8))
    @settings(max_examples=25, deadline=None)
    def test_valid_transposable(self, backend, seed, n):
        scores = np.random.default_rng(seed).normal(size=(8, 8))
        mask = solve_block(scores, n, backend=backend)
        assert mask.dtype == bool
        assert is_transposable(mask, n)
        assert is_transposable(mask.T, n)

    @pytest.mark.parametrize("backend", TSOLVER_NAMES)
    def test_per_block_n_respected(self, backend):
        scores = _rand_blocks(6, 8, seed=11)
        n = np.array([0, 1, 2, 4, 8, 3])
        masks = solve_blocks(scores, n, backend=backend)
        for blk, blk_n in zip(masks, n):
            assert is_transposable(blk, int(blk_n))
        assert masks[0].sum() == 0
        assert masks[4].all()

    @pytest.mark.parametrize("backend", TSOLVER_NAMES)
    def test_deterministic_across_calls(self, backend):
        scores = _rand_blocks(8, 8, seed=5)
        first = solve_blocks(scores, 3, backend=backend)
        for _ in range(3):
            assert np.array_equal(solve_blocks(scores, 3, backend=backend), first)

    @pytest.mark.parametrize("backend", TSOLVER_NAMES)
    def test_batch_matches_single(self, backend):
        """Batching is a pure layout change, never a numeric one."""
        scores = _rand_blocks(5, 8, seed=7)
        batched = solve_blocks(scores, 2, backend=backend)
        for i in range(5):
            single = solve_block(scores[i], 2, backend=backend)
            assert np.array_equal(batched[i], single)

    @pytest.mark.parametrize("backend", TSOLVER_NAMES)
    def test_degenerate_blocks(self, backend):
        m = 8
        all_zero = np.zeros((m, m))
        ties = np.ones((m, m))
        for scores in (all_zero, ties):
            for n in (0, 1, 4, m):
                mask = solve_block(scores, n, backend=backend)
                assert is_transposable(mask, n)
                if n == 0:
                    assert mask.sum() == 0
                if n == m:
                    assert mask.all()
        # Mixed degenerate batch: zeros, ties and signal side by side.
        batch = np.stack([all_zero, ties, _rand_blocks(1, m, seed=1)[0]])
        masks = solve_blocks(batch, np.array([4, 4, 4]), backend=backend)
        for blk in masks:
            assert is_transposable(blk, 4)

    @pytest.mark.parametrize("backend", TSOLVER_NAMES)
    def test_ties_are_deterministic(self, backend):
        ties = np.ones((3, 8, 8))
        first = solve_blocks(ties, 2, backend=backend)
        assert np.array_equal(solve_blocks(ties, 2, backend=backend), first)
        # Identical blocks in one batch must get identical masks.
        assert np.array_equal(first[0], first[1])

    @pytest.mark.parametrize("backend", TSOLVER_NAMES)
    def test_negative_scores_use_magnitude(self, backend):
        scores = np.random.default_rng(9).normal(size=(8, 8))
        assert np.array_equal(
            solve_block(scores, 2, backend=backend),
            solve_block(np.abs(scores), 2, backend=backend),
        )


class TestExactOracle:
    @pytest.mark.parametrize("m,n", [(2, 1), (3, 1), (3, 2)])
    def test_matches_brute_force(self, m, n):
        rng = np.random.default_rng(42)
        for _ in range(10):
            scores = np.abs(rng.normal(size=(m, m)))
            mask = solve_block(scores, n, backend="exact")
            _, best = _brute_force(scores, n)
            assert is_transposable(mask, n)
            assert _retained(scores, mask) == pytest.approx(best, rel=1e-9)

    def test_never_below_greedy(self):
        scores = _rand_blocks(40, 8, seed=13)
        exact = solve_blocks(scores, 3, backend="exact")
        greedy = solve_blocks(scores, 3, backend="greedy")
        for i in range(len(scores)):
            assert _retained(scores[i], exact[i]) >= _retained(scores[i], greedy[i]) - 1e-9


class TestQualityGate:
    """The CI 'solver' job's gate: heuristics vs the exact oracle.

    The hard requirement is on ``tsenor`` (retained score within 1% of
    exact on seeded random blocks); ``greedy`` is held to a looser
    sanity floor -- it is the bit-compatible historical default, not the
    quality backend, and sits ~1.3% below exact at small M.
    """

    #: (backend, floor): tsenor carries the 1% CI gate.
    _GATES = {"tsenor": 0.99, "greedy": 0.97}

    @pytest.mark.parametrize("backend", ["greedy", "tsenor"])
    @pytest.mark.parametrize("m,n,b", [(4, 2, 64), (8, 3, 48), (16, 6, 16)])
    def test_retained_score_vs_exact(self, backend, m, n, b):
        scores = _rand_blocks(b, m, seed=m * 1000 + n)
        approx = solve_blocks(scores, n, backend=backend)
        exact = solve_blocks(scores, n, backend="exact")
        got = _retained(scores, approx)
        best = _retained(scores, exact)
        floor = self._GATES[backend]
        assert got >= floor * best, (
            f"{backend} retained {got:.6f} < {floor:.0%} of exact "
            f"{best:.6f} at m={m} n={n}"
        )


class TestGreedyAugmentRepair:
    def test_regression_pin(self):
        """A block where plain greedy strands quota: one row and one
        column stay under N, but filling them needs a swap.  The
        augmenting-path repair nets one extra entry and +4 score."""
        scores = np.array(
            [
                [5.0, 8.0, 5.0, 6.0],
                [8.0, 5.0, 8.0, 7.0],
                [9.0, 2.0, 8.0, 9.0],
                [10.0, 1.0, 9.0, 10.0],
            ]
        )
        mask = solve_block(scores, 3, backend="greedy")
        assert is_transposable(mask, 3)
        assert int(mask.sum()) == 11  # legacy greedy stranded at 10
        assert _retained(scores, mask) == pytest.approx(90.0)  # legacy: 86

    def test_repair_never_hurts(self):
        """Against exact, repaired greedy keeps cardinality maximal more
        often and never loses score to the pre-repair construction."""
        scores = _rand_blocks(60, 8, seed=21)
        greedy = solve_blocks(scores, 3, backend="greedy")
        exact = solve_blocks(scores, 3, backend="exact")
        # Exact fills to max cardinality; repaired greedy must match it
        # (the augmenting pass exists precisely to close the gap).
        assert int(greedy.sum()) == int(exact.sum())
