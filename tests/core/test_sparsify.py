"""Unit tests for Algorithm 1 (repro.core.sparsify)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.masks import unstructured_mask
from repro.core.patterns import Direction
from repro.core.similarity import mask_agreement
from repro.core.sparsify import block_pattern_grid, tbs_sparsify


def _rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestTBSSparsify:
    def test_mask_shape_and_dtype(self):
        res = tbs_sparsify(_rand((32, 32)), m=8, sparsity=0.5)
        assert res.mask.shape == (32, 32)
        assert res.mask.dtype == bool

    def test_block_nm_constraint_in_chosen_direction(self):
        res = tbs_sparsify(_rand((64, 64), seed=1), m=8, sparsity=0.75)
        n_br, n_bc = res.block_n.shape
        for br in range(n_br):
            for bc in range(n_bc):
                block = res.mask[br * 8 : (br + 1) * 8, bc * 8 : (bc + 1) * 8]
                n = res.block_n[br, bc]
                if res.block_direction[br, bc] == Direction.ROW.value:
                    assert (block.sum(axis=1) == n).all()
                else:
                    assert (block.sum(axis=0) == n).all()

    def test_block_nnz_is_multiple_of_m(self):
        # The balance property (Sec. VI-B2) the intra-block mapper relies on.
        res = tbs_sparsify(_rand((64, 64), seed=2), m=8, sparsity=0.5)
        blocks = res.mask.reshape(8, 8, 8, 8).swapaxes(1, 2)
        nnz = blocks.sum(axis=(2, 3))
        assert (nnz % 8 == 0).all()
        np.testing.assert_array_equal(nnz, res.block_n * 8)

    def test_overall_sparsity_near_target(self):
        for target in (0.5, 0.75, 0.875):
            res = tbs_sparsify(_rand((128, 128), seed=3), m=8, sparsity=target)
            assert abs(res.sparsity - target) < 0.08

    def test_closer_to_us_than_single_direction(self):
        """Choosing per-block direction can only improve L1 vs row-only."""
        scores = _rand((64, 64), seed=4)
        us = unstructured_mask(scores, 0.75)
        res = tbs_sparsify(scores, m=8, sparsity=0.75, us_mask=us)
        # Build the row-only variant with the same per-block N.
        from repro.core.masks import topn_along_last
        from repro.core.blocks import merge_from_blocks, split_into_blocks

        blocks = split_into_blocks(np.abs(scores), 8)
        row_only = merge_from_blocks(topn_along_last(blocks, res.block_n[:, :, None]), 64, 64)
        assert mask_agreement(res.mask, us) >= mask_agreement(row_only, us)

    def test_candidate_restriction_respected(self):
        res = tbs_sparsify(_rand((32, 32), seed=5), m=8, sparsity=0.5, candidates=(0, 4, 8))
        assert set(np.unique(res.block_n)).issubset({0, 4, 8})

    def test_dense_region_gets_full_block(self):
        scores = np.full((16, 16), 1e-6)
        scores[:8, :8] = 10.0 + _rand((8, 8), seed=6) * 0.1
        res = tbs_sparsify(scores, m=8, sparsity=0.75)
        assert res.block_n[0, 0] == 8
        assert res.block_n[1, 1] == 0

    def test_empty_and_dense_blocks_are_other(self):
        scores = np.full((16, 16), 1e-6)
        scores[:8, :8] = 10.0
        res = tbs_sparsify(scores, m=8, sparsity=0.75)
        hist = res.direction_histogram()
        assert hist["other"] >= 2

    def test_precomputed_us_mask(self):
        scores = _rand((32, 32), seed=7)
        us = unstructured_mask(scores, 0.5)
        res1 = tbs_sparsify(scores, m=8, sparsity=0.5, us_mask=us)
        res2 = tbs_sparsify(scores, m=8, sparsity=0.5)
        np.testing.assert_array_equal(res1.mask, res2.mask)

    def test_us_mask_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tbs_sparsify(_rand((32, 32)), m=8, us_mask=np.ones((8, 8), dtype=bool))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            tbs_sparsify(np.ones(16), m=8)

    def test_ragged_shapes_supported(self):
        res = tbs_sparsify(_rand((30, 50), seed=8), m=8, sparsity=0.5)
        assert res.mask.shape == (30, 50)
        assert res.block_n.shape == (4, 7)

    def test_block_patterns_accessor(self):
        res = tbs_sparsify(_rand((16, 16), seed=9), m=8, sparsity=0.5)
        patterns = res.block_patterns()
        assert len(patterns) == 2 and len(patterns[0]) == 2
        assert patterns[0][0].m == 8

    def test_block_pattern_grid(self):
        res = tbs_sparsify(_rand((16, 16), seed=10), m=8, sparsity=0.5)
        grid = block_pattern_grid(res)
        assert grid.shape == (2, 2)
        assert grid[0, 0].n == res.block_n[0, 0]

    @given(st.floats(0.3, 0.9), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_property_valid_tbs(self, sparsity, seed):
        """Every output block satisfies N:M in its declared direction."""
        scores = _rand((32, 32), seed=seed)
        res = tbs_sparsify(scores, m=8, sparsity=sparsity)
        for br in range(4):
            for bc in range(4):
                block = res.mask[br * 8 : (br + 1) * 8, bc * 8 : (bc + 1) * 8]
                n = res.block_n[br, bc]
                axis = 1 if res.block_direction[br, bc] == Direction.ROW.value else 0
                assert block.sum(axis=axis).max(initial=0) <= n


class TestDirectionChoice:
    def test_dense_rows_choose_col_direction(self):
        """Non-zeros concentrated in 2 dense rows: only the independent-dim
        (column-wise) N:M can keep whole rows -- each column retains its
        top-2 entries, which are exactly the two strong rows."""
        scores = np.full((8, 8), 0.01)
        scores[1, :] = 5.0
        scores[6, :] = 4.0
        res = tbs_sparsify(scores, m=8, sparsity=0.75)
        assert res.block_direction[0, 0] == Direction.COL.value
        assert res.mask[1].all() and res.mask[6].all()

    def test_dense_columns_choose_row_direction(self):
        """Non-zeros concentrated in 2 dense columns: the reduction-dim
        (row-wise) N:M keeps them -- each row retains its top-2 entries."""
        scores = np.full((8, 8), 0.01)
        scores[:, 1] = 5.0
        scores[:, 6] = 4.0
        res = tbs_sparsify(scores, m=8, sparsity=0.75)
        assert res.block_direction[0, 0] == Direction.ROW.value
        assert res.mask[:, 1].all() and res.mask[:, 6].all()

    def test_row_structured_scores_choose_row(self):
        scores = np.full((8, 8), 0.01)
        rng = np.random.default_rng(3)
        # each row has 2 distinct strong positions -> row-wise 2:8 fits.
        for r in range(8):
            cols = rng.choice(8, size=2, replace=False)
            scores[r, cols] = 5.0
        res = tbs_sparsify(scores, m=8, sparsity=0.75)
        assert res.block_direction[0, 0] == Direction.ROW.value
        assert res.mask.sum() == 16


class TestTransposition:
    """The paper's key insight: TBS masks transpose into TBS masks."""

    def test_transposed_mask_is_transpose(self):
        res = tbs_sparsify(_rand((32, 48), seed=20), m=8, sparsity=0.75)
        t = res.transposed()
        np.testing.assert_array_equal(t.mask, res.mask.T)
        assert t.shape == (48, 32)

    def test_directions_flip(self):
        res = tbs_sparsify(_rand((32, 32), seed=21), m=8, sparsity=0.75)
        t = res.transposed()
        np.testing.assert_array_equal(
            t.block_direction, 1 - res.block_direction.T
        )
        np.testing.assert_array_equal(t.block_n, res.block_n.T)

    def test_transposed_satisfies_tbs_constraint(self):
        """Every block of the transposed mask obeys N:M in its declared
        direction -- i.e. the backward-pass weights are valid TBS."""
        res = tbs_sparsify(_rand((64, 64), seed=22), m=8, sparsity=0.75)
        t = res.transposed()
        for br in range(t.block_n.shape[0]):
            for bc in range(t.block_n.shape[1]):
                block = t.mask[br * 8 : (br + 1) * 8, bc * 8 : (bc + 1) * 8]
                n = t.block_n[br, bc]
                axis = 1 if t.block_direction[br, bc] == Direction.ROW.value else 0
                assert block.sum(axis=axis).max(initial=0) <= n

    def test_double_transpose_identity(self):
        res = tbs_sparsify(_rand((32, 40), seed=23), m=8, sparsity=0.5)
        tt = res.transposed().transposed()
        np.testing.assert_array_equal(tt.mask, res.mask)
        np.testing.assert_array_equal(tt.block_direction, res.block_direction)

    def test_sparsity_preserved(self):
        res = tbs_sparsify(_rand((32, 32), seed=24), m=8, sparsity=0.75)
        assert res.transposed().sparsity == res.sparsity
