"""Unit tests for the mask-space formulas (Eqs. 1-4)."""

import math

import pytest

from repro.core.maskspace import (
    exact_maskspace_rs_v,
    exact_maskspace_tbs,
    exact_maskspace_ts,
    log2_maskspace_rs_h,
    log2_maskspace_rs_v,
    log2_maskspace_tbs,
    log2_maskspace_ts,
    log2_maskspace_us,
    maskspace_table,
)


class TestLogMatchesExact:
    @pytest.mark.parametrize("x,y,m", [(4, 4, 4), (8, 8, 4), (8, 8, 8), (16, 8, 8)])
    def test_ts(self, x, y, m):
        assert log2_maskspace_ts(x, y, m) == pytest.approx(math.log2(exact_maskspace_ts(x, y, m)), rel=1e-9)

    @pytest.mark.parametrize("x,y,m", [(4, 4, 4), (8, 8, 4), (8, 8, 8)])
    def test_rs_v(self, x, y, m):
        assert log2_maskspace_rs_v(x, y, m) == pytest.approx(
            math.log2(exact_maskspace_rs_v(x, y, m)), rel=1e-9
        )

    @pytest.mark.parametrize("x,y,m", [(4, 4, 4), (8, 8, 8), (16, 16, 8)])
    def test_tbs(self, x, y, m):
        assert log2_maskspace_tbs(x, y, m) == pytest.approx(
            math.log2(exact_maskspace_tbs(x, y, m)), rel=1e-9
        )


class TestOrdering:
    """The paper's Fig. 4(c) hierarchy: TS <= RS-V < TBS < US."""

    @pytest.mark.parametrize("x,m", [(64, 8), (128, 8), (256, 8), (64, 4)])
    def test_hierarchy(self, x, m):
        ts = log2_maskspace_ts(x, x, m)
        rs_v = log2_maskspace_rs_v(x, x, m)
        tbs = log2_maskspace_tbs(x, x, m)
        us = log2_maskspace_us(x, x)
        assert ts <= rs_v < tbs < us

    def test_rs_h_comparable_to_other_rowwise(self):
        # Eq. (3) as printed is dominated by its i = M term, which makes
        # RS-H land within a whisker of TS/RS-V; we assert it stays in the
        # structured band (>= 99.9% of TS, strictly below TBS).
        rs_h = log2_maskspace_rs_h(64, 64, 8)
        assert rs_h >= 0.999 * log2_maskspace_ts(64, 64, 8)
        assert rs_h < log2_maskspace_tbs(64, 64, 8)

    def test_tbs_dominates_rowwise(self):
        # TBS adds per-block N *and* direction freedom over row-wise.
        for x in (64, 128):
            assert log2_maskspace_tbs(x, x, 8) > log2_maskspace_rs_v(x, x, 8)


class TestValidation:
    def test_rejects_non_power_of_two_m(self):
        with pytest.raises(ValueError):
            log2_maskspace_ts(8, 8, 6)

    def test_rejects_unaligned_dims(self):
        with pytest.raises(ValueError):
            log2_maskspace_tbs(10, 8, 8)

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            log2_maskspace_rs_v(0, 8, 8)

    def test_us_at_half_sparsity(self):
        # C(4, 2) = 6 masks on a 2x2 matrix at 50%.
        assert log2_maskspace_us(2, 2, 0.5) == pytest.approx(math.log2(6))


class TestTable:
    def test_table_keys(self):
        table = maskspace_table(64, 64, 8)
        assert set(table) == {"TS", "RS-V", "RS-H", "TBS", "US"}

    def test_table_values_finite(self):
        table = maskspace_table(64, 64, 8)
        assert all(math.isfinite(v) and v > 0 for v in table.values())

    def test_scaling_with_matrix_size(self):
        small = maskspace_table(64, 64, 8)
        large = maskspace_table(128, 128, 8)
        # Mask-space grows ~4x in log domain when the area grows 4x.
        for key in ("TS", "RS-V", "TBS"):
            assert large[key] == pytest.approx(4 * small[key], rel=0.05)
