"""Unit tests for repro.core.patterns."""

import math

import pytest

from repro.core.patterns import (
    BlockPattern,
    Direction,
    NMConfig,
    PatternFamily,
    PatternSpec,
    default_candidates,
    is_power_of_two,
    log2_choose,
    nearest_candidate,
    sparsity_of,
)

import numpy as np


class TestNMConfig:
    def test_density_and_sparsity(self):
        nm = NMConfig(2, 4)
        assert nm.density == 0.5
        assert nm.sparsity == 0.5

    def test_str(self):
        assert str(NMConfig(4, 8)) == "4:8"

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            NMConfig(-1, 4)

    def test_rejects_n_above_m(self):
        with pytest.raises(ValueError):
            NMConfig(5, 4)

    def test_rejects_zero_m(self):
        with pytest.raises(ValueError):
            NMConfig(0, 0)

    def test_extreme_ratios(self):
        assert NMConfig(0, 8).density == 0.0
        assert NMConfig(8, 8).sparsity == 0.0


class TestDefaultCandidates:
    def test_paper_configuration(self):
        # Sec. VII-A3: M = 8, N in {0, 1, 2, 4, 8}.
        assert default_candidates(8) == (0, 1, 2, 4, 8)

    def test_m4(self):
        assert default_candidates(4) == (0, 1, 2, 4)

    def test_m16(self):
        assert default_candidates(16) == (0, 1, 2, 4, 8, 16)

    def test_non_power_of_two_m_includes_m(self):
        cands = default_candidates(6)
        assert 6 in cands and 0 in cands

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_candidates(0)


class TestNearestCandidate:
    def test_exact_match(self):
        assert nearest_candidate(0.25, 8, (0, 1, 2, 4, 8)) == 2

    def test_rounds_to_closest(self):
        assert nearest_candidate(0.3, 8, (0, 1, 2, 4, 8)) == 2
        assert nearest_candidate(0.45, 8, (0, 1, 2, 4, 8)) == 4

    def test_tie_prefers_smaller(self):
        # density 0.1875 is equidistant from 1/8 and 2/8.
        assert nearest_candidate(0.1875, 8, (0, 1, 2, 4, 8)) == 1

    def test_zero_density(self):
        assert nearest_candidate(0.0, 8, (0, 1, 2, 4, 8)) == 0

    def test_full_density(self):
        assert nearest_candidate(1.0, 8, (0, 1, 2, 4, 8)) == 8

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            nearest_candidate(0.5, 8, ())


class TestBlockPattern:
    def test_nnz_is_multiple_of_m(self):
        # The "balance property" exploited by intra-block scheduling.
        for n in (0, 1, 2, 4, 8):
            bp = BlockPattern(n, 8, Direction.ROW)
            assert bp.nnz == n * 8
            assert bp.nnz % 8 == 0

    def test_trivial_blocks(self):
        assert BlockPattern(0, 8, Direction.ROW).is_trivial
        assert BlockPattern(8, 8, Direction.COL).is_trivial
        assert not BlockPattern(2, 8, Direction.ROW).is_trivial

    def test_direction_transpose(self):
        assert Direction.ROW.transposed is Direction.COL
        assert Direction.COL.transposed is Direction.ROW


class TestPatternSpec:
    def test_default_candidates_injected(self):
        spec = PatternSpec(PatternFamily.TBS, m=8, sparsity=0.75)
        assert spec.candidates == (0, 1, 2, 4, 8)

    def test_ts_derives_fixed_n(self):
        spec = PatternSpec(PatternFamily.TS, m=8, sparsity=0.5)
        assert spec.fixed_n == 4  # the paper's 4:8 TS baseline

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError):
            PatternSpec(PatternFamily.US, sparsity=1.5)

    def test_rejects_bad_candidates(self):
        with pytest.raises(ValueError):
            PatternSpec(PatternFamily.TBS, m=4, candidates=(0, 9))

    def test_density(self):
        assert PatternSpec(PatternFamily.US, sparsity=0.75).density == 0.25

    def test_structured_flag(self):
        assert not PatternFamily.US.is_structured
        assert PatternFamily.TBS.is_structured


class TestHelpers:
    def test_sparsity_of(self):
        mask = np.array([[1, 0], [0, 0]], dtype=bool)
        assert sparsity_of(mask) == 0.75

    def test_sparsity_of_empty(self):
        assert sparsity_of(np.zeros((0, 0), dtype=bool)) == 0.0

    def test_is_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(8)
        assert not is_power_of_two(0) and not is_power_of_two(6)

    def test_log2_choose_matches_exact(self):
        for n in range(1, 20):
            for k in range(n + 1):
                assert log2_choose(n, k) == pytest.approx(math.log2(math.comb(n, k)), abs=1e-9)

    def test_log2_choose_out_of_range(self):
        assert log2_choose(4, 5) == float("-inf")
        assert log2_choose(4, -1) == float("-inf")
