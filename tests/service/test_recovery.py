"""Crash-recovery drills against a real ``repro serve`` subprocess.

These pin the service's headline invariant: **restart + resubmit is
byte-identical to an uninterrupted run**.  A job is submitted, the
server is SIGKILLed mid-sweep, a fresh process over the same data dir
reclaims the orphaned job, replays its settled cells from the shared
cell cache, and finishes -- and the stored result JSON is exactly what
a clean serial run produces.

The fast drills use controllable spec jobs (``tests/sweep/_cells``);
the expensive table1 drill runs only when ``REPRO_SERVICE_SMOKE=1``
(the CI service job sets it).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import RunStore, ServiceClient

CELLS = "tests.sweep._cells"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.pop("REPRO_SWEEP_CHAOS", None)
    return env


def start_server(data_dir, *extra):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--data-dir", str(data_dir),
         "--port", "0", "--rate", "0", "--allow-fn-prefix", "tests.", *extra],
        env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        cwd=str(REPO_ROOT),
    )
    endpoint = Path(data_dir) / "endpoint"
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server died on startup (rc={proc.returncode})")
        if endpoint.exists():
            url = endpoint.read_text().strip()
            try:
                client = ServiceClient(url, client_id="drill", timeout=5.0)
                client.healthz()
                return proc, client
            except Exception:
                pass
        time.sleep(0.1)
    proc.kill()
    raise RuntimeError("server did not come up within 30s")


def sleepy_job(n=30, seconds=0.3):
    return {"spec": {"name": "drill", "cells": [
        {"key": f"s{i}", "fn": f"{CELLS}:sleep_then",
         "kwargs": {"x": i, "seconds": seconds}}
        for i in range(n)
    ]}}


def wait_for_running(client, run_id, timeout=20):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = client.job(run_id)
        if job["state"] != "queued":
            return job
        time.sleep(0.05)
    raise TimeoutError(f"job {run_id} never left queued")


class TestKillNineRecovery:
    def test_sigkill_midrun_then_restart_completes_byte_identically(self, tmp_path):
        data_dir = tmp_path / "svc"
        proc, client = start_server(data_dir)
        try:
            r = client.submit(sleepy_job())
            run_id = r["run_id"]
            wait_for_running(client, run_id)
            time.sleep(1.0)  # let a few cells settle into the cell cache
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)

            # the store must read clean after the kill and still show
            # the job running (orphaned)
            store = RunStore(data_dir / "runs.sqlite3")
            assert store.job(run_id)["state"] == "running"
            pre_settled = len(store.cells(run_id))
            store.close()

            proc, client = start_server(data_dir)
            assert client.metrics()["service"]["jobs_recovered"] == 1
            job = client.wait(run_id, timeout=120, poll_s=0.2)
            assert job["state"] == "done"
            cached = [c for c in job["cells"] if c["status"] == "cached"]
            assert cached, "recovery recomputed every settled cell"
            assert len(cached) >= max(1, pre_settled - 1)

            text = client.result_text(run_id)
            expected = {f"s{i}": i for i in range(30)}
            assert text == json.dumps(expected, sort_keys=True, default=repr) + "\n"

            # resubmission dedupes to the finished job without recompute
            t0 = time.monotonic()
            r2 = client.submit(sleepy_job())
            assert r2 == {"run_id": run_id, "state": "done", "deduped": True}
            assert time.monotonic() - t0 < 2.0
        finally:
            proc.kill()
            proc.wait(timeout=10)

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        data_dir = tmp_path / "svc"
        proc, client = start_server(data_dir)
        try:
            r = client.submit(sleepy_job())
            wait_for_running(client, r["run_id"])
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
            assert rc == 0
            store = RunStore(data_dir / "runs.sqlite3")
            job = store.job(r["run_id"])
            assert job["state"] == "queued"  # resumable, not lost
            assert job["priority"] is True
            store.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


@pytest.mark.skipif(
    os.environ.get("REPRO_SERVICE_SMOKE") != "1",
    reason="expensive table1 drill; set REPRO_SERVICE_SMOKE=1 (CI service job)",
)
class TestTable1Smoke:
    def test_table1_survives_sigkill_and_matches_clean_serial_run(self, tmp_path):
        data_dir = tmp_path / "svc"
        payload = {"experiment": "table1", "seeds": [0], "epochs": 1, "scale": 4}
        proc, client = start_server(data_dir)
        try:
            r = client.submit(payload)
            wait_for_running(client, r["run_id"])
            time.sleep(2.5)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)

            proc, client = start_server(data_dir)
            job = client.wait(r["run_id"], timeout=300, poll_s=0.5)
            assert job["state"] == "done"
            service_text = client.result_text(r["run_id"])
        finally:
            proc.kill()
            proc.wait(timeout=10)

        clean = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "table1",
             "--epochs", "1", "--json"],
            env=_env(), cwd=str(REPO_ROOT), capture_output=True, text=True,
            timeout=600,
        )
        assert clean.returncode == 0, clean.stderr
        assert service_text == clean.stdout
