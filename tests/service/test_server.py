"""In-process tests for the HTTP job service (SimService).

Jobs here are raw sweep *specs* over the module-level cell bodies in
``tests/sweep/_cells.py`` (allowed via ``allow_fn_prefixes``), so the
tests control exactly how long cells take and whether they fail --
no paper experiment is computed except in the one smoke test.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.service import (
    RateLimitedError,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SimService,
)
from repro.service.server import normalize_payload, result_json

CELLS = "tests.sweep._cells"


def spec_job(name, cells):
    return {"spec": {"name": name, "cells": cells}}


def add_cells(n, prefix="c"):
    return [
        {"key": f"{prefix}{i}", "fn": f"{CELLS}:add", "kwargs": {"a": i, "b": 1}}
        for i in range(n)
    ]


@pytest.fixture
def service(tmp_path):
    """A running service on a free port; yields (service, client)."""
    config = ServiceConfig(
        data_dir=str(tmp_path / "svc"),
        port=0,
        rate=None,
        allow_fn_prefixes=("repro.", "tests."),
        drain_timeout_s=5.0,
    )
    svc = SimService(config)
    host, port = svc.start()
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://{host}:{port}", client_id="pytest")
    yield svc, client
    svc.shutdown()
    thread.join(timeout=5)


class TestNormalizePayload:
    def test_experiment_defaults_fill_in(self):
        assert normalize_payload({"experiment": "fig17"}) == {
            "kind": "experiment", "name": "fig17",
            "seeds": [0], "epochs": 8, "scale": 4,
        }

    def test_defaults_make_submission_idempotent(self):
        a = normalize_payload({"experiment": "fig17"})
        b = normalize_payload({"experiment": "fig17", "seeds": [0], "epochs": 8})
        assert a == b

    @pytest.mark.parametrize("bad", [
        {"experiment": "nope"},
        {"experiment": "fig17", "seeds": []},
        {"experiment": "fig17", "seeds": [0.5]},
        {"experiment": "fig17", "epochs": 0},
        {"spec": {"name": "x"}},
        {"spec": {"name": "x", "cells": [{"key": "a", "fn": "os:system"}]}},
        {"spec": {"name": "x", "cells": [
            {"key": "a", "fn": "repro.x:y"}, {"key": "a", "fn": "repro.x:y"},
        ]}},
        {"experiment": "fig17", "spec": {"name": "x", "cells": []}},
        {},
        [],
    ])
    def test_invalid_payloads_raise(self, bad):
        with pytest.raises(ValueError):
            normalize_payload(bad)

    @pytest.mark.parametrize("key", [
        "../evil", "a/../../evil", "/abs/evil", "a/./b", "a//b",
        "..", "back\\slash", "nul\x00byte",
    ])
    def test_traversal_keys_are_rejected(self, key):
        # Keys become cache filenames; anything that could address a
        # path outside the cache directory must die at validation.
        cells = [{"key": key, "fn": "repro.x:y", "kwargs": {}}]
        with pytest.raises(ValueError, match="relative path"):
            normalize_payload({"spec": {"name": "x", "cells": cells}})

    def test_nested_keys_remain_supported(self):
        cells = [{"key": "cnn@0.75/seed0/Dense", "fn": "repro.x:y", "kwargs": {}}]
        payload = normalize_payload({"spec": {"name": "x", "cells": cells}})
        assert payload["cells"][0]["key"] == "cnn@0.75/seed0/Dense"

    def test_fn_prefix_allowlist_is_configurable(self):
        cells = [{"key": "a", "fn": f"{CELLS}:add", "kwargs": {}}]
        with pytest.raises(ValueError, match="allowed prefixes"):
            normalize_payload({"spec": {"name": "x", "cells": cells}})
        normalize_payload(
            {"spec": {"name": "x", "cells": cells}},
            allow_fn_prefixes=("repro.", "tests."),
        )


class TestSubmitExecute:
    def test_spec_job_runs_to_done(self, service):
        svc, client = service
        r = client.submit(spec_job("adds", add_cells(3)))
        assert r["deduped"] is False
        job = client.wait(r["run_id"], timeout=30)
        assert job["state"] == "done"
        assert client.result(r["run_id"]) == {"c0": 1, "c1": 2, "c2": 3}

    def test_result_is_canonical_json_bytes(self, service):
        svc, client = service
        r = client.submit(spec_job("canon", add_cells(2)))
        client.wait(r["run_id"], timeout=30)
        text = client.result_text(r["run_id"])
        assert text == result_json({"c0": 1, "c1": 2}) + "\n"

    def test_repeat_submission_dedupes_without_recompute(self, service):
        svc, client = service
        payload = spec_job("dedupe", add_cells(2))
        r1 = client.submit(payload)
        client.wait(r1["run_id"], timeout=30)
        r2 = client.submit(payload)
        assert r2 == {"run_id": r1["run_id"], "state": "done", "deduped": True}
        assert svc.counters["jobs_deduped"] == 1

    def test_failing_cell_marks_job_failed(self, service):
        svc, client = service
        cells = [{"key": "bad", "fn": f"{CELLS}:boom", "kwargs": {"x": 1}}]
        r = client.submit(spec_job("fails", cells))
        job = client.wait(r["run_id"], timeout=30)
        assert job["state"] == "failed"
        assert "injected failure" in job["error"]
        with pytest.raises(ServiceError) as excinfo:
            client.result(r["run_id"])
        assert excinfo.value.status == 409

    def test_resubmitting_failed_job_requeues_it(self, service):
        svc, client = service
        cells = [{"key": "bad", "fn": f"{CELLS}:boom", "kwargs": {"x": 2}}]
        r1 = client.submit(spec_job("fails2", cells))
        client.wait(r1["run_id"], timeout=30)
        r2 = client.submit(spec_job("fails2", cells))
        assert r2["run_id"] == r1["run_id"]
        assert r2["deduped"] is False
        job = client.wait(r2["run_id"], timeout=30)
        assert job["state"] == "failed"
        assert job["attempts"] == 2

    def test_progress_rows_reach_the_store(self, service):
        svc, client = service
        r = client.submit(spec_job("progress", add_cells(4)))
        job = client.wait(r["run_id"], timeout=30)
        assert job["progress"] == {"settled": 4, "ok": 4}
        statuses = {c["status"] for c in job["cells"]}
        assert statuses <= {"ok", "cached"}

    def test_invalid_payload_is_400(self, service):
        svc, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"experiment": "not-a-figure"})
        assert excinfo.value.status == 400

    def test_unknown_routes_and_ids_are_404(self, service):
        svc, client = service
        for call in (
            lambda: client.job("job-doesnotexist"),
            lambda: client.result("job-doesnotexist"),
            lambda: client.cancel("job-doesnotexist"),
            lambda: client._json("GET", "/nope"),
        ):
            with pytest.raises(ServiceError) as excinfo:
                call()
            assert excinfo.value.status == 404


class TestCancellation:
    def test_cancel_running_job(self, service):
        svc, client = service
        cells = [
            {"key": f"s{i}", "fn": f"{CELLS}:sleep_then",
             "kwargs": {"x": i, "seconds": 0.4}}
            for i in range(20)
        ]
        r = client.submit(spec_job("slow", cells))
        deadline = time.monotonic() + 10
        while client.job(r["run_id"])["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.05)
        resp = client.cancel(r["run_id"])
        assert resp["state"] in ("cancelling", "cancelled")
        job = client.wait(r["run_id"], timeout=30)
        assert job["state"] == "cancelled"
        # cancellation must not burn the whole grid
        assert len(job["cells"]) < 20

    def test_cancel_terminal_job_conflicts(self, service):
        svc, client = service
        r = client.submit(spec_job("done-cancel", add_cells(1, prefix="d")))
        client.wait(r["run_id"], timeout=30)
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(r["run_id"])
        assert excinfo.value.status == 409


class TestHealthAndMetrics:
    def test_healthz_counts_jobs(self, service):
        svc, client = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {"queued", "running", "done", "failed", "cancelled"}

    def test_metrics_counters_track_lifecycle(self, service):
        svc, client = service
        r = client.submit(spec_job("metrics", add_cells(1, prefix="m")))
        client.wait(r["run_id"], timeout=30)
        client.submit(spec_job("metrics", add_cells(1, prefix="m")))
        metrics = client.metrics()
        assert metrics["service"]["jobs_submitted"] >= 1
        assert metrics["service"]["jobs_completed"] >= 1
        assert metrics["service"]["jobs_deduped"] >= 1

    def test_jobs_listing(self, service):
        svc, client = service
        r = client.submit(spec_job("list", add_cells(1, prefix="l")))
        client.wait(r["run_id"], timeout=30)
        listed = client.jobs()["jobs"]
        assert any(j["run_id"] == r["run_id"] for j in listed)


class TestRateLimiting:
    def test_flood_gets_429_with_retry_after(self, tmp_path):
        config = ServiceConfig(
            data_dir=str(tmp_path / "svc"), port=0, rate=1.0, burst=2.0,
            allow_fn_prefixes=("repro.", "tests."),
        )
        svc = SimService(config)
        host, port = svc.start()
        thread = threading.Thread(target=svc.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(f"http://{host}:{port}", client_id="flooder")
            rejected = None
            for i in range(5):
                try:
                    client.submit(spec_job(f"flood-{i}", add_cells(1)))
                except RateLimitedError as exc:
                    rejected = exc
                    break
            assert rejected is not None, "flood was never rate-limited"
            assert rejected.retry_after_s > 0
            # the HTTP header is present and parseable too
            request = urllib.request.Request(
                f"http://{host}:{port}/jobs",
                data=json.dumps(spec_job("flood-x", add_cells(1))).encode(),
                method="POST", headers={"X-Client": "flooder"},
            )
            try:
                urllib.request.urlopen(request)
            except urllib.error.HTTPError as exc:
                assert exc.code == 429
                assert float(exc.headers["Retry-After"]) >= 1
            assert svc.counters["jobs_rejected"] >= 1
        finally:
            svc.shutdown()
            thread.join(timeout=5)

    def test_rotating_x_client_cannot_dodge_the_bucket(self, tmp_path):
        # Buckets key on the remote address; the X-Client header is an
        # advisory label, so rotating it per request must still 429.
        config = ServiceConfig(
            data_dir=str(tmp_path / "svc"), port=0, rate=1.0, burst=2.0,
            allow_fn_prefixes=("repro.", "tests."),
        )
        svc = SimService(config)
        host, port = svc.start()
        thread = threading.Thread(target=svc.serve_forever, daemon=True)
        thread.start()
        try:
            rejected = False
            for i in range(6):
                client = ServiceClient(
                    f"http://{host}:{port}", client_id=f"rotator-{i}"
                )
                try:
                    client.submit(spec_job(f"rotate-{i}", add_cells(1)))
                except RateLimitedError:
                    rejected = True
                    break
            assert rejected, "rotating X-Client values dodged rate limiting"
        finally:
            svc.shutdown()
            thread.join(timeout=5)


class TestDrain:
    def test_drain_requeues_running_job_resumably(self, tmp_path):
        config = ServiceConfig(
            data_dir=str(tmp_path / "svc"), port=0, rate=None,
            allow_fn_prefixes=("repro.", "tests."), drain_timeout_s=10.0,
        )
        svc = SimService(config)
        host, port = svc.start()
        thread = threading.Thread(target=svc.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(f"http://{host}:{port}", client_id="drainer")
        cells = [
            {"key": f"s{i}", "fn": f"{CELLS}:sleep_then",
             "kwargs": {"x": i, "seconds": 0.3}}
            for i in range(30)
        ]
        r = client.submit(spec_job("drainee", cells))
        deadline = time.monotonic() + 10
        while client.job(r["run_id"])["state"] == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.05)
        time.sleep(0.5)  # let at least one cell settle into the cache
        svc.shutdown()
        thread.join(timeout=10)
        # drained, not cancelled: the job is queued again (resumable)
        job = svc.store.job(r["run_id"])
        assert job["state"] == "queued"
        assert job["priority"] is True
        svc.store.close()

        # a fresh service over the same data dir finishes it, replaying
        # the settled cells from the shared cache
        svc2 = SimService(config)
        host2, port2 = svc2.start()
        assert svc2.counters["jobs_recovered"] == 0  # queued, not orphaned
        thread2 = threading.Thread(target=svc2.serve_forever, daemon=True)
        thread2.start()
        try:
            client2 = ServiceClient(f"http://{host2}:{port2}", client_id="drainer")
            job = client2.wait(r["run_id"], timeout=60, poll_s=0.2)
            assert job["state"] == "done"
            cached = [c for c in job["cells"] if c["status"] == "cached"]
            assert cached, "resume recomputed every settled cell"
            assert client2.result(r["run_id"]) == {f"s{i}": i for i in range(30)}
        finally:
            svc2.shutdown()
            thread2.join(timeout=5)
