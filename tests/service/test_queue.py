"""Tests for admission control: token buckets, bounded lanes, priority."""

import pytest

from repro.service.queue import AdmissionQueue, QueueFull, RateLimited, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_burst_then_exhaustion(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.take() is None
        assert bucket.take() is None
        wait = bucket.take()
        assert wait == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.take() is None
        assert bucket.take() is not None
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.take() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestRateLimiting:
    def test_per_client_buckets_are_independent(self):
        clock = FakeClock()
        q = AdmissionQueue(rate=1.0, burst=1.0, clock=clock)
        q.check_rate("alice")
        with pytest.raises(RateLimited) as excinfo:
            q.check_rate("alice")
        assert excinfo.value.retry_after_s > 0
        q.check_rate("bob")  # unaffected by alice's exhaustion

    def test_rate_none_disables_limiting(self):
        q = AdmissionQueue(rate=None)
        for _ in range(100):
            q.check_rate("alice")

    def test_bucket_map_is_lru_bounded(self):
        clock = FakeClock()
        q = AdmissionQueue(rate=1.0, burst=1.0, clock=clock, max_clients=2)
        q.check_rate("alice")
        q.check_rate("bob")
        q.check_rate("carol")  # at the cap: evicts alice, the coldest
        assert set(q._buckets) == {"bob", "carol"}
        # an evicted client restarts from a full burst (no exception)
        # and its re-admission evicts the new coldest entry
        q.check_rate("alice")
        assert set(q._buckets) == {"carol", "alice"}


class TestBoundedLanes:
    def test_queue_full_raises_with_retry_after(self):
        q = AdmissionQueue(maxsize=2, rate=None)
        q.push("a")
        q.push("b")
        with pytest.raises(QueueFull) as excinfo:
            q.push("c")
        assert excinfo.value.retry_after_s >= 1.0

    def test_check_capacity_matches_push_bound(self):
        q = AdmissionQueue(maxsize=2, rate=None)
        q.check_capacity()  # empty: no raise
        q.push("a")
        q.push("b")
        with pytest.raises(QueueFull) as excinfo:
            q.check_capacity()
        assert excinfo.value.retry_after_s >= 1.0
        q.pop(timeout=0.1)
        q.check_capacity()  # back under the bound

    def test_force_bypasses_the_bound(self):
        q = AdmissionQueue(maxsize=1, rate=None)
        q.push("a")
        q.push("recovered", priority=True, force=True)
        assert len(q) == 2

    def test_duplicate_push_is_a_noop(self):
        q = AdmissionQueue(maxsize=2, rate=None)
        q.push("a")
        q.push("a")
        assert len(q) == 1

    def test_priority_lane_drains_first(self):
        q = AdmissionQueue(rate=None)
        q.push("fresh-1")
        q.push("fresh-2")
        q.push("recovered", priority=True)
        assert q.pop(timeout=0.1) == "recovered"
        assert q.pop(timeout=0.1) == "fresh-1"
        assert q.pop(timeout=0.1) == "fresh-2"

    def test_pop_times_out_empty(self):
        q = AdmissionQueue(rate=None)
        assert q.pop(timeout=0.05) is None

    def test_drop_removes_waiting_id(self):
        q = AdmissionQueue(rate=None)
        q.push("a")
        q.push("b")
        assert q.drop("a") is True
        assert q.drop("a") is False
        assert q.pop(timeout=0.1) == "b"
        # dropped ids can be pushed again (membership was cleared)
        q.push("a")
        assert q.pop(timeout=0.1) == "a"

    def test_depth_reports_both_lanes(self):
        q = AdmissionQueue(rate=None)
        q.push("a")
        q.push("p", priority=True)
        assert q.depth() == {"priority": 1, "normal": 1}
