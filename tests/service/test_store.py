"""Tests for the SQLite run store: state machine, idempotency, recovery."""

import sqlite3
import threading

import pytest

from repro.service.store import (
    JOB_STATES,
    SCHEMA_VERSION,
    _MIGRATIONS,
    RunStore,
    StoreError,
    canonical_job,
    job_run_id,
)

PAYLOAD = {"kind": "experiment", "name": "fig17", "seeds": [0], "epochs": 8, "scale": 4}


@pytest.fixture
def store(tmp_path):
    s = RunStore(tmp_path / "runs.sqlite3")
    yield s
    s.close()


class TestIdentity:
    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_job({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_run_id_is_content_addressed(self):
        assert job_run_id(PAYLOAD) == job_run_id(dict(PAYLOAD))
        other = dict(PAYLOAD, seeds=[1])
        assert job_run_id(other) != job_run_id(PAYLOAD)
        assert job_run_id(PAYLOAD).startswith("job-")


class TestSubmit:
    def test_first_submission_is_new(self, store):
        run_id, is_new, state = store.submit(PAYLOAD, client="t")
        assert is_new and state == "queued"
        assert run_id == job_run_id(PAYLOAD)

    def test_repeat_submission_dedupes(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        again, is_new, state = store.submit(PAYLOAD)
        assert again == run_id and not is_new and state == "queued"

    def test_done_job_dedupes_to_done(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        store.transition(run_id, "running")
        store.transition(run_id, "done", result="{}")
        _, is_new, state = store.submit(PAYLOAD)
        assert not is_new and state == "done"

    def test_failed_job_is_requeued_by_resubmission(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        store.transition(run_id, "running")
        store.transition(run_id, "failed", error="boom")
        _, is_new, state = store.submit(PAYLOAD)
        assert is_new and state == "queued"
        assert store.job(run_id)["error"] is None

    def test_cancelled_job_is_requeued_by_resubmission(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        store.transition(run_id, "cancelled")
        _, is_new, state = store.submit(PAYLOAD)
        assert is_new and state == "queued"


class TestStateMachine:
    def test_full_happy_path(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        assert store.transition(run_id, "running") == "queued"
        assert store.transition(run_id, "done", result="[1]") == "running"
        job = store.job(run_id)
        assert job["state"] == "done"
        assert job["started_at"] is not None and job["finished_at"] is not None
        assert store.result(run_id) == "[1]"

    def test_illegal_edges_raise(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        with pytest.raises(StoreError, match="illegal transition"):
            store.transition(run_id, "done")  # queued -> done skips running
        store.transition(run_id, "running")
        store.transition(run_id, "done")
        with pytest.raises(StoreError, match="illegal transition"):
            store.transition(run_id, "running")  # done is terminal

    def test_unknown_state_and_run_id_raise(self, store):
        with pytest.raises(StoreError, match="unknown job state"):
            store.transition("job-x", "napping")
        with pytest.raises(StoreError, match="unknown run id"):
            store.transition("job-x", "running")

    def test_unknown_fields_rejected(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        with pytest.raises(StoreError, match="cannot set fields"):
            store.transition(run_id, "running", hacker="yes")

    def test_running_to_queued_is_the_resumable_edge(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        store.transition(run_id, "running")
        assert store.transition(run_id, "queued", priority=True) == "running"
        assert store.job(run_id)["priority"] is True

    def test_attempts_count_each_running_entry(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        store.transition(run_id, "running")
        store.transition(run_id, "queued")
        store.transition(run_id, "running")
        assert store.job(run_id)["attempts"] == 2


class TestCells:
    def test_record_is_an_upsert(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        store.record_cell(run_id, "a", "ok", 0.5, 1)
        store.record_cell(run_id, "a", "cached", 0.0, 1)
        store.record_cell(run_id, "b", "failed", 0.1, 2)
        cells = {c["key"]: c for c in store.cells(run_id)}
        assert cells["a"]["status"] == "cached"
        assert cells["b"]["attempts"] == 2

    def test_clear_cells(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        store.record_cell(run_id, "a", "ok")
        store.clear_cells(run_id)
        assert store.cells(run_id) == []


class TestRecovery:
    def test_reclaim_running_requeues_with_priority(self, store):
        r1, _, _ = store.submit(PAYLOAD)
        r2, _, _ = store.submit(dict(PAYLOAD, seeds=[1]))
        store.transition(r1, "running")
        assert store.reclaim_running() == [r1]
        assert store.job(r1)["state"] == "queued"
        assert store.job(r1)["priority"] is True
        assert store.job(r2)["state"] == "queued"

    def test_counts_cover_every_state(self, store):
        run_id, _, _ = store.submit(PAYLOAD)
        counts = store.counts()
        assert counts["queued"] == 1
        assert set(counts) == set(JOB_STATES)

    def test_store_survives_reopen(self, tmp_path):
        path = tmp_path / "runs.sqlite3"
        s1 = RunStore(path)
        run_id, _, _ = s1.submit(PAYLOAD)
        s1.transition(run_id, "running")
        s1.record_cell(run_id, "a", "ok")
        s1.close()
        s2 = RunStore(path)
        assert s2.job(run_id)["state"] == "running"
        assert len(s2.cells(run_id)) == 1
        s2.close()


class TestSchema:
    def test_schema_version_recorded(self, store):
        assert store.schema_version == SCHEMA_VERSION

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "runs.sqlite3"
        RunStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="downgrade unsupported"):
            RunStore(path)

    def test_migration_hook_steps_old_database_forward(self, tmp_path):
        path = tmp_path / "runs.sqlite3"
        RunStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '0' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        ran = []
        _MIGRATIONS[0] = lambda c: ran.append(0)
        try:
            store = RunStore(path)
            assert ran == [0]
            assert store.schema_version == SCHEMA_VERSION
            store.close()
        finally:
            del _MIGRATIONS[0]

    def test_missing_migration_raises(self, tmp_path):
        path = tmp_path / "runs.sqlite3"
        RunStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '0' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="no migration registered"):
            RunStore(path)


class TestConcurrency:
    def test_parallel_cell_records_from_threads(self, store):
        run_id, _, _ = store.submit(PAYLOAD)

        def hammer(i):
            for j in range(25):
                store.record_cell(run_id, f"cell-{i}-{j}", "ok", 0.0, 1)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(store.cells(run_id)) == 100
