"""Property tests: registry merge is associative and order-insensitive.

This is the contract the sweep engine's metrics pipeline rests on --
worker payloads can be folded in any grouping (serial, sharded,
tree-reduced) and the result is byte-identical.  In-repo
instrumentation observes only integers, so histogram sums stay exact
Python ints and equality below is exact, not approximate (the module
docstring of :mod:`repro.obs.metrics` documents the float caveat).
"""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry

_NAMES = st.sampled_from(["alpha", "beta", "gamma"])
_VALUES = st.integers(min_value=0, max_value=2**48)

_OP = st.one_of(
    st.tuples(st.just("counter"), _NAMES, st.integers(min_value=-(2**32), max_value=2**32)),
    st.tuples(st.just("gauge"), _NAMES, _VALUES),
    st.tuples(st.just("observe"), _NAMES, _VALUES),
)
_OPS = st.lists(_OP, max_size=30)


def _build(ops) -> MetricsRegistry:
    reg = MetricsRegistry()
    for kind, name, value in ops:
        if kind == "counter":
            reg.counter_add(name, value)
        elif kind == "gauge":
            reg.gauge_max(name, value)
        else:
            reg.observe(name, value)
    return reg


def _canon(reg: MetricsRegistry) -> str:
    return json.dumps(reg.to_dict(deterministic_only=True), sort_keys=True)


@given(_OPS, _OPS, _OPS)
def test_merge_is_associative(ops_a, ops_b, ops_c):
    """(A + B) + C == A + (B + C), byte for byte."""
    left = _build(ops_a).merge(_build(ops_b)).merge(_build(ops_c))
    right = _build(ops_a).merge(_build(ops_b).merge(_build(ops_c)))
    assert _canon(left) == _canon(right)


@given(st.lists(_OPS, max_size=5), st.randoms(use_true_random=False))
def test_merge_is_order_insensitive(op_lists, rng):
    """Folding worker payloads in any order yields identical bytes."""
    payloads = [_build(ops).to_dict(deterministic_only=True) for ops in op_lists]
    shuffled = list(payloads)
    rng.shuffle(shuffled)
    in_order = MetricsRegistry.merged(payloads)
    permuted = MetricsRegistry.merged(shuffled)
    assert _canon(in_order) == _canon(permuted)


@given(_OPS)
def test_payload_round_trips_exactly(ops):
    """to_dict -> JSON -> from_dict -> to_dict is the identity."""
    payload = _build(ops).to_dict(deterministic_only=True)
    back = MetricsRegistry.from_dict(json.loads(json.dumps(payload)))
    assert json.dumps(back.to_dict(deterministic_only=True), sort_keys=True) == json.dumps(
        payload, sort_keys=True
    )


@given(_OPS, _OPS)
def test_empty_registry_is_merge_identity(ops_a, ops_b):
    """Merging an empty registry changes nothing (identity element)."""
    base = _build(ops_a).merge(_build(ops_b))
    with_identity = _build(ops_a).merge(MetricsRegistry()).merge(_build(ops_b))
    assert _canon(base) == _canon(with_identity)
