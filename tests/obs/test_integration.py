"""End-to-end observability: simulate() and the sweep engine.

Pins the two integration contracts of :mod:`repro.obs`:

* with obs **off** (the default) nothing changes -- ``SimResult
  .metrics`` stays None and results are identical to an uninstrumented
  run;
* with obs **on**, per-call / per-cell metrics are deterministic: the
  same work yields byte-identical payloads whichever process (or how
  many workers) ran it.
"""

import json

import pytest

from repro import obs
from repro.core.patterns import PatternFamily
from repro.hw.config import tb_stc
from repro.sim.engine import simulate
from repro.sweep import SweepCell, SweepSpec, run_sweep
from repro.workloads.generator import build_workload
from repro.workloads.layers import LayerSpec

from ..sweep import _cells


@pytest.fixture(autouse=True)
def _clean_obs():
    from repro.sim.engine import clear_cost_memo

    clear_cost_memo()  # memo warmth is process-history-dependent
    obs.reset()
    obs.disable()
    try:
        yield
    finally:
        obs.reset()
        obs.disable()


def _workload(seed=0):
    layer = LayerSpec("obs-test", 64, 64, 32)
    return build_workload(layer, PatternFamily.TBS, 0.75, seed=seed)


class TestSimulateMetrics:
    def test_metrics_none_when_disabled(self):
        result = simulate(tb_stc(), _workload())
        assert result.metrics is None
        assert result.to_dict()["metrics"] is None

    def test_disabled_results_match_enabled(self):
        """Turning obs on must not change the simulation numbers."""
        wl = _workload()
        off = simulate(tb_stc(), wl).to_dict()
        with obs.enabled_scope():
            on = simulate(tb_stc(), wl).to_dict()
        assert on.pop("metrics") is not None
        off.pop("metrics")
        assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)

    def test_metrics_payload_shape(self):
        with obs.enabled_scope():
            result = simulate(tb_stc(), _workload())
        metrics = result.metrics
        assert metrics["schema_version"] == obs.METRICS_SCHEMA
        assert "timers" not in metrics  # wall time never crosses into results
        counters = metrics["counters"]
        assert counters["sim.simulate_calls"] == 1
        assert counters["sim.blocks"] >= 1
        assert "hw.dvpe.blocks_costed" in counters

    def test_metrics_survive_result_round_trip(self):
        from repro.sim.metrics import SimResult

        with obs.enabled_scope():
            result = simulate(tb_stc(), _workload())
        back = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.metrics == result.metrics

    def test_nested_calls_accumulate_in_ambient_registry(self):
        with obs.enabled_scope():
            simulate(tb_stc(), _workload(seed=0))
            simulate(tb_stc(), _workload(seed=1))
            ambient = obs.metrics_dict(deterministic_only=True)
        assert ambient["counters"]["sim.simulate_calls"] == 2


class TestPerfTimerAdapter:
    """repro.perf.timers is now a thin adapter over the obs registry."""

    def test_stage_emits_trace_span_when_obs_on(self):
        from repro.perf import timers

        with obs.enabled_scope():
            with timers.stage("adapter.test"):
                pass
            phases = [(e["name"], e["ph"]) for e in obs.events()]
        assert ("adapter.test", "B") in phases and ("adapter.test", "E") in phases
        # obs alone records no wall time: timers need perf timing enabled
        assert "adapter.test" not in obs.metrics_dict().get("timers", {})

    def test_timing_lands_in_registry_timers_section(self):
        from repro.perf import timers

        with timers.enabled_scope():
            with timers.stage("adapter.timed"):
                pass
        payload = obs.metrics_dict()
        assert payload["timers"]["adapter.timed"]["calls"] == 1
        # ... but never in the deterministic export
        assert "timers" not in obs.metrics_dict(deterministic_only=True)


class TestSweepMetrics:
    SPEC = SweepSpec(
        "obs-sweep",
        tuple(
            SweepCell(key=f"sq{x}", fn=_cells.square, kwargs={"x": x}) for x in range(4)
        ),
    )

    def test_metrics_none_when_disabled(self):
        result = run_sweep(self.SPEC, workers=1)
        assert result.metrics() is None
        assert all(cell.metrics is None for cell in result.cells)

    def test_cells_carry_deterministic_payloads(self):
        with obs.enabled_scope():
            result = run_sweep(self.SPEC, workers=1)
        for cell in result.cells:
            assert cell.metrics["schema_version"] == obs.METRICS_SCHEMA
            assert "timers" not in cell.metrics

    def test_workers_do_not_change_metrics(self):
        """The headline contract: --workers N metrics == serial, byte for byte."""
        with obs.enabled_scope():
            serial = run_sweep(self.SPEC, workers=1).metrics()
        obs.reset()
        with obs.enabled_scope():
            parallel = run_sweep(self.SPEC, workers=2).metrics()
        assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)

    def test_sweep_counters_and_span_events(self):
        with obs.enabled_scope():
            result = run_sweep(self.SPEC, workers=1)
            merged = result.metrics()
            names = [e["name"] for e in obs.events()]
        assert merged["counters"]["sweep.cells_ok"] == 4
        assert sum(1 for n in names if n.startswith("sweep.cell.")) >= 4

    def test_failed_cell_keeps_metrics_and_closes_span(self):
        spec = SweepSpec(
            "obs-boom", (SweepCell(key="boom", fn=_cells.boom, kwargs={"x": 1}),)
        )
        with obs.enabled_scope():
            result = run_sweep(spec, workers=1)
            phases = [(e["name"], e["ph"]) for e in obs.events()]
        (cell,) = result.cells
        assert cell.status == "failed"
        assert cell.metrics is not None  # forensics survive the failure
        assert ("sweep.cell.boom", "B") in phases and ("sweep.cell.boom", "E") in phases
