"""Unit tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs import metrics
from repro.obs.metrics import METRICS_SCHEMA, MetricsRegistry, bucket_exponent


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Every test runs against its own module-level registry."""
    prev = metrics.swap_registry()
    try:
        yield
    finally:
        metrics.swap_registry(prev)


class TestBucketExponent:
    @pytest.mark.parametrize(
        "value, exponent",
        [
            (-5, 0),
            (0, 0),
            (1, 1),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (1024, 10),
            (1025, 11),
        ],
    )
    def test_integer_buckets(self, value, exponent):
        assert bucket_exponent(value) == exponent

    @pytest.mark.parametrize("value, exponent", [(0.5, 1), (1.5, 1), (2.5, 2), (7.9, 3)])
    def test_float_buckets(self, value, exponent):
        assert bucket_exponent(value) == exponent

    def test_bucket_covers_its_value(self):
        """Bucket e covers (2**(e-1), 2**e] for ints >= 2; 1 shares bucket 1."""
        assert bucket_exponent(1) == 1
        for value in range(2, 300):
            e = bucket_exponent(value)
            assert 2 ** (e - 1) < value <= 2**e


class TestRegistry:
    def test_counter_semantics(self):
        reg = MetricsRegistry()
        reg.counter_add("hits")
        reg.counter_add("hits", 4)
        assert reg.counters == {"hits": 5}

    def test_gauge_is_high_water_mark(self):
        reg = MetricsRegistry()
        reg.gauge_max("depth", 3)
        reg.gauge_max("depth", 1)
        reg.gauge_max("depth", 7)
        assert reg.gauges == {"depth": 7}

    def test_histogram_exact_summary(self):
        reg = MetricsRegistry()
        for v in (1, 2, 3, 100):
            reg.observe("cycles", v)
        hist = reg.to_dict()["histograms"]["cycles"]
        assert hist["count"] == 4
        assert hist["sum"] == 106
        assert hist["min"] == 1 and hist["max"] == 100
        # bucket keys are strings (JSON-safe) and sorted
        assert list(hist["buckets"]) == ["1", "2", "7"]
        assert hist["buckets"] == {"1": 2, "2": 1, "7": 1}

    def test_merge_all_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter_add("n", 2)
        b.counter_add("n", 3)
        a.gauge_max("g", 10)
        b.gauge_max("g", 4)
        a.observe("h", 8)
        b.observe("h", 16)
        a.timer_add("t", 100)
        b.timer_add("t", 200)
        a.merge(b)
        payload = a.to_dict()
        assert payload["counters"] == {"n": 5}
        assert payload["gauges"] == {"g": 10}
        assert payload["histograms"]["h"]["count"] == 2
        assert payload["histograms"]["h"]["sum"] == 24
        assert payload["timers"]["t"] == {"calls": 2, "seconds": 3e-7}

    def test_deterministic_export_drops_timers(self):
        reg = MetricsRegistry()
        reg.counter_add("n")
        reg.timer_add("stage", 12345)
        full = reg.to_dict()
        det = reg.to_dict(deterministic_only=True)
        assert "timers" in full
        assert "timers" not in det
        assert det["schema_version"] == METRICS_SCHEMA

    def test_round_trip_survives_json(self):
        reg = MetricsRegistry()
        reg.counter_add("n", 7)
        reg.gauge_max("g", 3)
        reg.observe("h", 5)
        payload = reg.to_dict(deterministic_only=True)
        back = MetricsRegistry.from_dict(json.loads(json.dumps(payload)))
        assert back.to_dict(deterministic_only=True) == payload

    def test_from_dict_rejects_wrong_schema(self):
        payload = MetricsRegistry().to_dict()
        payload["schema_version"] = METRICS_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            MetricsRegistry.from_dict(payload)
        with pytest.raises(ValueError, match="schema"):
            MetricsRegistry().merge_payload(payload)

    def test_merged_folds_payloads(self):
        payloads = []
        for value in (1, 2, 3):
            reg = MetricsRegistry()
            reg.counter_add("n", value)
            payloads.append(reg.to_dict(deterministic_only=True))
        merged = MetricsRegistry.merged(payloads)
        assert merged.counters == {"n": 6}

    def test_is_empty(self):
        reg = MetricsRegistry()
        assert reg.is_empty()
        reg.counter_add("n")
        assert not reg.is_empty()


class TestModuleRegistry:
    def test_module_functions_hit_installed_registry(self):
        metrics.counter_add("a", 2)
        metrics.gauge_max("b", 9)
        metrics.observe("c", 4)
        payload = metrics.metrics_dict(deterministic_only=True)
        assert payload["counters"] == {"a": 2}
        assert payload["gauges"] == {"b": 9}
        assert payload["histograms"]["c"]["count"] == 1

    def test_swap_registry_isolates(self):
        metrics.counter_add("outer")
        prev = metrics.swap_registry()
        metrics.counter_add("inner")
        inner = metrics.registry().to_dict()["counters"]
        metrics.swap_registry(prev)
        assert inner == {"inner": 1}
        assert metrics.registry().counters == {"outer": 1}

    def test_reset_clears_everything(self):
        metrics.counter_add("n")
        metrics.timer_add("t", 1)
        metrics.reset()
        assert metrics.registry().is_empty()

    def test_capture_yields_delta_and_merges_back(self):
        metrics.counter_add("n", 10)
        with metrics.capture() as delta:
            metrics.counter_add("n", 3)
            metrics.timer_add("t", 500)
        # the delta holds only what the block recorded, without timers
        assert delta["counters"] == {"n": 3}
        assert "timers" not in delta
        assert delta["schema_version"] == METRICS_SCHEMA
        # the parent registry now holds the total, timers included
        assert metrics.registry().counters == {"n": 13}
        assert metrics.registry().timers["t"] == [1, 500]

    def test_capture_merges_back_on_exception(self):
        with pytest.raises(RuntimeError):
            with metrics.capture() as delta:
                metrics.counter_add("n")
                raise RuntimeError("boom")
        assert delta["counters"] == {"n": 1}
        assert metrics.registry().counters == {"n": 1}
