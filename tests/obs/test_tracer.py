"""Trace-export conformance tests for repro.obs.tracer.

Pins the properties a Chrome ``trace_event`` consumer (Perfetto,
chrome://tracing) relies on: the export is valid JSON, timestamps never
go backwards within one track, and every ``B`` has a matching ``E`` --
including when the traced body raises mid-span.
"""

import json

import pytest

from repro.obs import state, tracer


@pytest.fixture(autouse=True)
def _fresh_buffer():
    """Each test gets its own event buffer and a clean off switch."""
    prev = tracer.swap_buffer()
    was_enabled = state.enabled()
    state.disable()
    try:
        yield
    finally:
        tracer.swap_buffer(prev)
        if was_enabled:
            state.enable()
        else:
            state.disable()


class TestDisabled:
    def test_span_returns_shared_null_object(self):
        assert tracer.span("a") is tracer.span("b")
        with tracer.span("a"):
            pass
        assert tracer.events() == []

    def test_instant_is_noop(self):
        tracer.instant("a", detail=1)
        assert tracer.events() == []


class TestEnabled:
    def test_span_emits_balanced_pair(self):
        with state.enabled_scope():
            with tracer.span("work", track="t0", size=3):
                pass
        begin, end = tracer.events()
        assert (begin["ph"], end["ph"]) == ("B", "E")
        assert begin["name"] == end["name"] == "work"
        assert begin["tid"] == end["tid"] == "t0"
        assert begin["args"] == {"size": 3}
        assert end["ts"] >= begin["ts"]

    def test_span_closes_on_exception(self):
        """A cell that raises mid-span still yields a balanced trace."""
        with state.enabled_scope():
            with pytest.raises(ValueError):
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        raise ValueError("boom")
        phases = [(e["name"], e["ph"]) for e in tracer.events()]
        assert phases == [
            ("outer", "B"), ("inner", "B"), ("inner", "E"), ("outer", "E"),
        ]

    def test_every_open_has_matching_close(self):
        with state.enabled_scope():
            for i in range(5):
                with tracer.span(f"s{i}"):
                    tracer.instant(f"i{i}")
        depth = {}
        for event in tracer.events():
            if event["ph"] == "B":
                depth[event["name"]] = depth.get(event["name"], 0) + 1
            elif event["ph"] == "E":
                depth[event["name"]] -= 1
        assert all(v == 0 for v in depth.values())

    def test_timestamps_monotonic_per_track(self):
        with state.enabled_scope():
            for _ in range(10):
                with tracer.span("a", track="x"):
                    tracer.instant("tick", track="y")
        last = {}
        for event in tracer.events():
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(key, float("-inf"))
            last[key] = event["ts"]

    def test_instant_shape(self):
        with state.enabled_scope():
            tracer.instant("rollback", epoch=3)
        (event,) = tracer.events()
        assert event["ph"] == "i"
        assert event["s"] == "t"  # thread-scoped instant
        assert event["args"] == {"epoch": 3}


class TestExport:
    def test_chrome_trace_is_json_with_metadata(self):
        with state.enabled_scope():
            with tracer.span("a", track="main"):
                pass
            tracer.instant("b", track="aux")
        trace = json.loads(json.dumps(tracer.to_chrome_trace()))
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        # one thread_name record per (pid, track)
        assert {e["args"]["name"] for e in meta} == {"main", "aux"}
        assert all(e["name"] == "thread_name" for e in meta)
        assert len(events) == len(meta) + 3  # B + E + i

    def test_write_chrome_trace(self, tmp_path):
        with state.enabled_scope():
            with tracer.span("a"):
                pass
        out = tmp_path / "trace.json"
        assert tracer.write_chrome_trace(str(out)) == str(out)
        trace = json.loads(out.read_text())
        assert [e["ph"] for e in trace["traceEvents"]] == ["M", "B", "E"]

    def test_ingest_keeps_worker_pid(self):
        """Worker events render as their own process group."""
        worker_events = [
            {"name": "cell", "ph": "B", "ts": 1.0, "pid": 99999, "tid": "main"},
            {"name": "cell", "ph": "E", "ts": 2.0, "pid": 99999, "tid": "main"},
        ]
        tracer.ingest(worker_events)
        trace = tracer.to_chrome_trace()
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert pids == {99999}

    def test_swap_buffer_isolates(self):
        with state.enabled_scope():
            tracer.instant("outer")
            prev = tracer.swap_buffer()
            tracer.instant("inner")
            inner = list(tracer.events())
            tracer.swap_buffer(prev)
        assert [e["name"] for e in inner] == ["inner"]
        assert [e["name"] for e in tracer.events()] == ["outer"]

    def test_reset_clears_buffer(self):
        with state.enabled_scope():
            tracer.instant("a")
        tracer.reset()
        assert tracer.events() == []
