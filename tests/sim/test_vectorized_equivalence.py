"""Vectorized hot paths agree bit-exactly with the loop references.

The perf subsystem's dual-implementation policy (DESIGN.md): every
vectorized path keeps its original loop implementation selectable with
``REPRO_REFERENCE_IMPL=1``.  This suite is the proof that the two
produce *identical* results -- not approximately equal: simulator cycle
counts and float energies are compared through ``float.hex`` so a
single-ulp divergence fails.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.base import EncodeSpec
from repro.perf import REFERENCE_ENV


@contextmanager
def reference_impl():
    prev = os.environ.get(REFERENCE_ENV)
    os.environ[REFERENCE_ENV] = "1"
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(REFERENCE_ENV, None)
        else:
            os.environ[REFERENCE_ENV] = prev


def _hexify(x):
    """Recursively map floats to their hex form so == means bit-equal."""
    if isinstance(x, float):
        return x.hex()
    if isinstance(x, dict):
        return {k: _hexify(v) for k, v in sorted(x.items())}
    if isinstance(x, (list, tuple)):
        return [_hexify(v) for v in x]
    return x


# ---------------------------------------------------------------------------
# DVPE cost model
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_blocks=st.integers(1, 24),
    m=st.sampled_from([4, 8]),
    lanes=st.sampled_from([2, 4, 8]),
    port=st.sampled_from([1, 2, 4]),
    alternate=st.booleans(),
    depth=st.sampled_from([0, 2, 8]),
    balanced=st.booleans(),
)
def test_dvpe_batch_matches_scalar(seed, n_blocks, m, lanes, port, alternate, depth, balanced):
    from repro.hw.dvpe import DVPE, BlockWork

    rng = np.random.default_rng(seed)
    counts = rng.integers(0, m + 1, size=(n_blocks, m)).astype(np.int64)
    pe = DVPE(
        lanes=lanes,
        output_port_width=port,
        alternate_unit=alternate,
        alternate_buffer_depth=depth,
        intra_block_mapping=balanced,
    )
    batch = pe.block_costs_batch(counts)
    scalar = [
        pe.block_cost(BlockWork(tuple(int(c) for c in row), m=m)) for row in counts
    ]
    assert batch.tolist() == scalar


# ---------------------------------------------------------------------------
# schedulers
# ---------------------------------------------------------------------------


_COST_LISTS = st.one_of(
    st.lists(st.integers(0, 40), min_size=0, max_size=64),
    st.lists(st.floats(0.0, 40.0, allow_nan=False, width=64), min_size=0, max_size=64),
)


def _schedule_fields(res):
    # Scalar *types* may legitimately differ (the reference initialises
    # per-PE busy time with int 0; float costs promote only touched
    # slots), so compare through float, which is exact for every cost
    # magnitude generated here, and hexify so equality means bit-equal.
    return (
        float(res.makespan).hex(),
        float(res.total_work).hex(),
        res.num_pes,
        [float(b).hex() for b in res.per_pe_busy],
        [
            (int(a.block), int(a.pe), float(a.start).hex(), float(a.end).hex())
            for a in res.assignments
        ],
    )


@settings(max_examples=40, deadline=None)
@given(costs=_COST_LISTS, num_pes=st.integers(1, 8), record=st.booleans())
def test_schedule_direct_matches_reference(costs, num_pes, record):
    from repro.hw.scheduler import schedule_direct

    fast = schedule_direct(costs, num_pes, record=record)
    with reference_impl():
        ref = schedule_direct(costs, num_pes, record=record)
    assert _schedule_fields(fast) == _schedule_fields(ref)


@settings(max_examples=40, deadline=None)
@given(
    costs=_COST_LISTS,
    num_pes=st.integers(1, 8),
    window=st.integers(1, 16),
    record=st.booleans(),
)
def test_schedule_sparsity_aware_matches_reference(costs, num_pes, window, record):
    from repro.hw.scheduler import schedule_sparsity_aware

    fast = schedule_sparsity_aware(costs, num_pes, window=window, record=record)
    with reference_impl():
        ref = schedule_sparsity_aware(costs, num_pes, window=window, record=record)
    assert _schedule_fields(fast) == _schedule_fields(ref)


# ---------------------------------------------------------------------------
# storage formats
# ---------------------------------------------------------------------------


def _random_sparse(seed, rows, cols, density):
    rng = np.random.default_rng(seed)
    keep = rng.random((rows, cols)) < density
    return np.where(keep, rng.normal(size=(rows, cols)), 0.0)


def _assert_encoded_equal(a, b):
    assert a.format_name == b.format_name
    assert a.shape == b.shape
    assert a.nnz == b.nnz
    assert a.value_bytes == b.value_bytes
    assert a.index_bytes == b.index_bytes
    assert a.meta_bytes == b.meta_bytes
    assert a.segments == b.segments
    assert sorted(a.arrays) == sorted(b.arrays)
    for key in a.arrays:
        left, right = a.arrays[key], b.arrays[key]
        if left.dtype == object:
            assert len(left) == len(right), key
            for i, (x, y) in enumerate(zip(left, right)):
                if isinstance(x, np.ndarray):
                    assert np.array_equal(x, y), (key, i)
                else:
                    assert x == y, (key, i)
        else:
            assert np.array_equal(left, right), key


def _make_format(name):
    from repro.formats.bitmap import BitmapFormat
    from repro.formats.csr import CSRFormat
    from repro.formats.ddc import DDCFormat
    from repro.formats.sdc import SDCFormat

    return {
        "ddc": DDCFormat,
        "sdc": lambda: SDCFormat(group_rows=8),
        "csr": CSRFormat,
        "bitmap": BitmapFormat,
    }[name]()


@settings(max_examples=25, deadline=None)
@given(
    fmt_name=st.sampled_from(["ddc", "sdc", "csr", "bitmap"]),
    seed=st.integers(0, 2**31 - 1),
    rows=st.sampled_from([8, 16, 24]),
    cols=st.sampled_from([8, 16, 32]),
    density=st.floats(0.0, 1.0),
)
def test_format_encode_matches_reference(fmt_name, seed, rows, cols, density):
    fmt = _make_format(fmt_name)
    dense = _random_sparse(seed, rows, cols, density)
    fast = fmt.encode(dense, EncodeSpec(block_size=8))
    with reference_impl():
        ref = fmt.encode(dense, EncodeSpec(block_size=8))
    _assert_encoded_equal(fast, ref)
    assert np.array_equal(fmt.decode(fast), dense)
    assert np.array_equal(fmt.decode(ref), dense)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.sampled_from([16, 32]),
    cols=st.sampled_from([16, 32]),
    sparsity=st.sampled_from([0.5, 0.75, 0.875]),
)
def test_ddc_encode_with_tbs_matches_reference(seed, rows, cols, sparsity):
    from repro.core.sparsify import tbs_sparsify
    from repro.formats.ddc import DDCFormat

    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(rows, cols))
    tbs = tbs_sparsify(weights, m=8, sparsity=sparsity)
    dense = np.where(tbs.mask, weights, 0.0)
    fmt = DDCFormat()
    fast = fmt.encode(dense, EncodeSpec(tbs=tbs, block_size=8))
    with reference_impl():
        ref = fmt.encode(dense, EncodeSpec(tbs=tbs, block_size=8))
    _assert_encoded_equal(fast, ref)
    assert np.array_equal(fmt.decode(fast), dense)


# ---------------------------------------------------------------------------
# full simulator
# ---------------------------------------------------------------------------


def _result_fingerprint(res):
    return _hexify(
        {
            "cycles": int(res.cycles),
            "compute_cycles": int(res.compute_cycles),
            "memory_cycles": int(res.memory_cycles),
            "codec_visible_cycles": int(res.codec_visible_cycles),
            "macs": int(res.macs),
            "dram_bytes": float(res.dram_bytes),
            "total_j": float(res.energy.total_j),
            "energy_components": {k: float(v) for k, v in res.energy.components.items()},
            "compute_utilization": float(res.compute_utilization),
            "bandwidth_utilization": float(res.bandwidth_utilization),
            "breakdown": {k: float(v) for k, v in res.breakdown.items()},
        }
    )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    arch=st.sampled_from(["TC", "STC", "VEGETA", "HighLight", "RM-STC", "TB-STC"]),
    sparsity=st.sampled_from([0.5, 0.75, 0.875]),
)
def test_simulate_bit_exact_vs_reference(seed, arch, sparsity):
    from repro.core.patterns import PatternFamily
    from repro.sim.baselines import ARCH_FAMILY, arch_by_name, simulate_arch
    from repro.workloads.generator import build_workload
    from repro.workloads.layers import LayerSpec

    config = arch_by_name(arch)
    family = ARCH_FAMILY.get(arch, PatternFamily.TBS)
    layer = LayerSpec("equiv", 32, 32, 16)
    workload = build_workload(layer, family, sparsity, m=8, seed=seed)

    fast = simulate_arch(config, workload)
    with reference_impl():
        ref = simulate_arch(config, workload)
    assert _result_fingerprint(fast) == _result_fingerprint(ref)
