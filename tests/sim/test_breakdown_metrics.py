"""Tests for cycle breakdown and derived metrics."""

import pytest

from repro.core.patterns import PatternFamily
from repro.hw.config import tb_stc
from repro.sim.breakdown import codec_overhead_fraction, cycle_breakdown
from repro.sim.engine import simulate
from repro.sim.metrics import SimResult, normalized_edp, speedup
from repro.hw.energy import EnergyReport
from repro.workloads.generator import build_workload
from repro.workloads.layers import bert_layers


def _result(sparsity=0.625, seed=0):
    wl = build_workload(bert_layers()[1], PatternFamily.TBS, sparsity, seed=seed, scale=4)
    return simulate(tb_stc(), wl)


class TestBreakdown:
    def test_shares_sum_to_one(self):
        shares = cycle_breakdown(_result())
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-6)

    def test_all_shares_nonnegative(self):
        shares = cycle_breakdown(_result())
        assert all(v >= 0 for v in shares.values())

    def test_codec_overhead_small(self):
        """Fig. 14: format conversion ~3.57% of execution on average."""
        fractions = []
        for layer in bert_layers():
            wl = build_workload(layer, PatternFamily.TBS, 0.625, seed=0, scale=4)
            fractions.append(codec_overhead_fraction(simulate(tb_stc(), wl)))
        assert sum(fractions) / len(fractions) < 0.10

    def test_memory_exposed_only_when_memory_bound(self):
        result = _result()
        shares = cycle_breakdown(result)
        if result.compute_cycles >= result.memory_cycles:
            assert shares["memory_exposed"] == 0.0
        else:
            assert shares["memory_exposed"] > 0.0


class TestMetrics:
    def _dummy(self, cycles, pj):
        energy = EnergyReport(cycles=cycles, frequency_ghz=1.0)
        energy.add("compute", pj)
        return SimResult(
            arch="X",
            workload="w",
            cycles=cycles,
            compute_cycles=cycles,
            memory_cycles=0,
            codec_visible_cycles=0,
            macs=1,
            dram_bytes=0,
            energy=energy,
            compute_utilization=1.0,
            bandwidth_utilization=1.0,
        )

    def test_speedup(self):
        fast = self._dummy(100, 1.0)
        slow = self._dummy(400, 1.0)
        assert speedup(fast, slow) == pytest.approx(4.0)

    def test_normalized_edp(self):
        a = self._dummy(100, 1e6)
        b = self._dummy(200, 2e6)  # 2x energy, 2x time -> 4x EDP
        assert normalized_edp(a, b) == pytest.approx(0.25)

    def test_edp_definition(self):
        r = self._dummy(1_000_000, 1e12)  # 1 ms, 1 J
        assert r.edp == pytest.approx(1e-3)
