"""Fault injection, ECC overheads and cycle budgets through simulate()."""

import pytest

from repro.core.patterns import PatternFamily
from repro.faults import CLASSES
from repro.faults.ecc import ECCConfig
from repro.hw.config import rm_stc, tb_stc, tensor_core
from repro.hw.scheduler import SimStallError
from repro.sim.engine import simulate
from repro.sim.options import SimOptions
from repro.workloads.generator import build_workload
from repro.workloads.layers import LayerSpec


def _workload(rows=32, cols=32, k=16, sparsity=0.75, seed=0):
    return build_workload(LayerSpec("t", rows, cols, k), PatternFamily.TBS, sparsity, seed=seed)


class TestFaultClassification:
    def test_no_fault_no_classification(self):
        assert simulate(tb_stc(), _workload()).fault_classification is None

    def test_fault_lands_in_a_class(self):
        for seed in range(5):
            res = simulate(tb_stc(), _workload(), options=SimOptions(fault="metadata", fault_seed=seed))
            assert res.fault_classification in CLASSES

    def test_fault_seed_is_deterministic(self):
        a = simulate(tb_stc(), _workload(), options=SimOptions(fault="values", fault_seed=3))
        b = simulate(tb_stc(), _workload(), options=SimOptions(fault="values", fault_seed=3))
        assert a.fault_classification == b.fault_classification

    def test_timing_reported_for_fault_free_run(self):
        clean = simulate(tb_stc(), _workload())
        faulted = simulate(tb_stc(), _workload(), options=SimOptions(fault="metadata", fault_seed=1))
        assert faulted.cycles == clean.cycles

    def test_inapplicable_target_returns_none(self):
        # Dense storage has no index arrays to flip.
        res = simulate(tensor_core(), _workload(), options=SimOptions(fault="indices"))
        assert res.fault_classification is None

    def test_secded_config_corrects_metadata_flips(self):
        """Architecture-axis acceptance: the +secded variant turns
        single-bit metadata flips into corrections."""
        for seed in range(5):
            res = simulate(
                tb_stc().with_ecc("secded"),
                _workload(),
                options=SimOptions(fault="metadata", fault_seed=seed),
            )
            assert res.fault_classification in ("corrected", "benign")


class TestECCOverheads:
    def test_unprotected_config_charges_nothing(self):
        res = simulate(tb_stc(), _workload())
        assert res.breakdown["ecc_bytes"] == 0.0
        assert "ecc" not in res.energy.components

    def test_protection_charges_traffic_and_energy(self):
        base = simulate(tb_stc(), _workload())
        prot = simulate(tb_stc().with_ecc("secded"), _workload())
        assert prot.breakdown["ecc_bytes"] > 0
        assert prot.energy.components["ecc"] > 0
        assert prot.dram_bytes >= base.dram_bytes
        assert prot.energy.total_j > base.energy.total_j

    def test_parity_cheaper_than_secded(self):
        parity = simulate(tb_stc().with_ecc("parity"), _workload())
        secded = simulate(tb_stc().with_ecc("secded"), _workload())
        assert parity.breakdown["ecc_bytes"] < secded.breakdown["ecc_bytes"]

    def test_explicit_ecc_argument_overrides_config(self):
        res = simulate(tb_stc(), _workload(), options=SimOptions(ecc=ECCConfig(mode="parity")))
        assert res.breakdown["ecc_bytes"] > 0

    def test_bitmap_format_also_pays(self):
        # RM-STC's occupancy bitmap is metadata too; SDC is exempt only
        # because its validity flags are folded into the index bytes.
        res = simulate(rm_stc().with_ecc("secded"), _workload())
        assert res.breakdown["ecc_bytes"] > 0


class TestCycleBudget:
    def test_generous_budget_passes(self):
        res = simulate(tb_stc(), _workload(), options=SimOptions(cycle_budget=10**9))
        assert res.cycles > 0

    def test_tight_budget_raises_with_diagnostics(self):
        with pytest.raises(SimStallError, match="cycle budget") as excinfo:
            simulate(tb_stc(), _workload(), options=SimOptions(cycle_budget=1))
        state = excinfo.value.state
        assert state["cycle_budget"] == 1
        assert state["total_cycles"] > 1
        assert {"compute_cycles", "memory_cycles", "n_blocks"} <= set(state)

    def test_budget_equal_to_cycles_passes(self):
        cycles = simulate(tb_stc(), _workload()).cycles
        assert simulate(tb_stc(), _workload(), options=SimOptions(cycle_budget=cycles)).cycles == cycles
