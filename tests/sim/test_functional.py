"""Integration tests: the functional datapath computes exact SpMM.

Running real arithmetic through DDC storage order -> codec conversion ->
MBD gather -> DVPE accumulation and matching ``A @ B`` exactly proves
the format/conversion/gather/reduction models are mutually consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import Direction, PatternFamily
from repro.core.sparsify import tbs_sparsify
from repro.sim.functional import functional_block_product, functional_spmm, verify_workload
from repro.workloads import LayerSpec, build_workload


def _case(shape=(48, 64), sparsity=0.75, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=shape)
    res = tbs_sparsify(w, m=8, sparsity=sparsity)
    return w * res.mask, res, rng


class TestBlockProduct:
    def test_row_block_exact(self):
        rng = np.random.default_rng(1)
        block = rng.normal(size=(8, 8)) * (rng.random((8, 8)) < 0.4)
        b_tile = rng.normal(size=(8, 5))
        out = functional_block_product(block, b_tile, Direction.ROW)
        np.testing.assert_allclose(out, block @ b_tile, atol=1e-12)

    def test_col_block_exact_through_codec(self):
        rng = np.random.default_rng(2)
        block = np.zeros((8, 8))
        for j in range(8):
            rows = rng.choice(8, size=2, replace=False)
            block[rows, j] = rng.normal(size=2)
        b_tile = rng.normal(size=(8, 4))
        out = functional_block_product(block, b_tile, Direction.COL)
        np.testing.assert_allclose(out, block @ b_tile, atol=1e-12)

    def test_empty_block(self):
        out = functional_block_product(np.zeros((8, 8)), np.ones((8, 3)), Direction.COL)
        assert not out.any()

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            functional_block_product(np.ones((4, 8)), np.ones((8, 2)), Direction.ROW)

    def test_rejects_b_mismatch(self):
        with pytest.raises(ValueError):
            functional_block_product(np.ones((8, 8)), np.ones((4, 2)), Direction.ROW)


class TestFunctionalSpMM:
    def test_tbs_matrix_exact(self):
        sparse, res, rng = _case()
        b = rng.normal(size=(64, 16))
        np.testing.assert_allclose(functional_spmm(sparse, b, tbs=res), sparse @ b, atol=1e-10)

    def test_ragged_shapes(self):
        sparse, res, rng = _case(shape=(30, 41), seed=3)
        b = rng.normal(size=(41, 7))
        np.testing.assert_allclose(functional_spmm(sparse, b, tbs=res), sparse @ b, atol=1e-10)

    def test_without_tbs_metadata(self):
        rng = np.random.default_rng(4)
        sparse = rng.normal(size=(24, 24)) * (rng.random((24, 24)) < 0.3)
        b = rng.normal(size=(24, 8))
        np.testing.assert_allclose(functional_spmm(sparse, b, m=8), sparse @ b, atol=1e-10)

    def test_dense_matrix(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(16, 16))
        b = rng.normal(size=(16, 16))
        np.testing.assert_allclose(functional_spmm(a, b, m=8), a @ b, atol=1e-10)

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            functional_spmm(np.ones((4, 4)), np.ones((5, 2)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            functional_spmm(np.ones(4), np.ones((4, 2)))

    @given(
        seed=st.integers(0, 200),
        sparsity=st.sampled_from([0.5, 0.75, 0.875]),
        rows=st.sampled_from([16, 24, 33]),
        cols=st.sampled_from([16, 40]),
    )
    @settings(max_examples=20, deadline=None)
    def test_exactness_property(self, seed, sparsity, rows, cols):
        """The datapath never loses or duplicates a contribution."""
        sparse, res, rng = _case(shape=(rows, cols), sparsity=sparsity, seed=seed)
        b = rng.normal(size=(cols, 5))
        np.testing.assert_allclose(functional_spmm(sparse, b, tbs=res), sparse @ b, atol=1e-9)


class TestVerifyWorkload:
    def test_tbs_workload(self):
        wl = build_workload(LayerSpec("t", 64, 64, 16), PatternFamily.TBS, 0.625, seed=0)
        assert verify_workload(wl) < 1e-10

    def test_us_workload(self):
        wl = build_workload(LayerSpec("t", 32, 48, 8), PatternFamily.US, 0.5, seed=1)
        assert verify_workload(wl) < 1e-10
