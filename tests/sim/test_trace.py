"""Tests for schedule tracing and timeline rendering."""

import pytest

from repro.sim.trace import occupancy_profile, render_timeline, trace_schedule


class TestTraceSchedule:
    def test_aware_records_all_blocks(self):
        costs = [4, 1, 4, 1, 2]
        trace = trace_schedule(costs, 2, policy="aware")
        assert len(trace.assignments) == len(costs)
        assert {a.block for a in trace.assignments} == set(range(len(costs)))

    def test_direct_records_all_blocks(self):
        trace = trace_schedule([3, 1, 2], 2, policy="direct")
        assert len(trace.assignments) == 3

    def test_durations_match_costs(self):
        costs = [4, 1, 4]
        trace = trace_schedule(costs, 2, policy="aware")
        by_block = {a.block: a for a in trace.assignments}
        for i, cost in enumerate(costs):
            assert by_block[i].end - by_block[i].start == cost

    def test_no_pe_overlap(self):
        """A PE never runs two blocks at once."""
        trace = trace_schedule([3, 5, 2, 8, 1, 4, 4], 3, policy="aware")
        per_pe = {}
        for a in trace.assignments:
            per_pe.setdefault(a.pe, []).append((a.start, a.end))
        for intervals in per_pe.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2

    def test_fig11_example_makespan(self):
        """Fig. 11(a)/(b): aware scheduling roughly halves the makespan."""
        direct = trace_schedule([4, 1, 4, 1], 2, policy="direct")
        aware = trace_schedule([4, 1, 4, 1], 2, policy="aware")
        assert aware.makespan == 5
        assert direct.makespan == 8

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            trace_schedule([1], 1, policy="magic")


class TestOccupancy:
    def test_profile_bounded_by_pes(self):
        trace = trace_schedule([2] * 10, 4, policy="aware")
        assert max(occupancy_profile(trace)) <= 4

    def test_profile_integrates_to_work(self):
        costs = [3, 1, 4, 1, 5]
        trace = trace_schedule(costs, 2, policy="aware")
        assert sum(occupancy_profile(trace)) == sum(costs)

    def test_rejects_bad_resolution(self):
        trace = trace_schedule([1], 1)
        with pytest.raises(ValueError):
            occupancy_profile(trace, resolution=0)


class TestRender:
    def test_contains_all_pe_rows(self):
        trace = trace_schedule([2, 3, 1], 3)
        out = render_timeline(trace)
        assert out.count("PE") == 3
        assert "utilization" in out

    def test_idle_shown_as_dots(self):
        trace = trace_schedule([4, 1], 2, policy="direct")
        out = render_timeline(trace)
        assert "." in out

    def test_compression_respects_width(self):
        trace = trace_schedule([100] * 4, 2)
        out = render_timeline(trace, width=20)
        longest = max(len(line) for line in out.splitlines()[1:])
        assert longest <= 20 + 8  # row label + bars
