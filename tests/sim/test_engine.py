"""Tests for the cycle-level simulation engine."""

import numpy as np
import pytest

from repro.core.patterns import Direction, PatternFamily
from repro.hw.config import tb_stc, tensor_core
from repro.sim.engine import PIPELINE_FILL_CYCLES, block_segments, simulate
from repro.sim.options import SimOptions
from repro.sim.baselines import arch_by_name, simulate_arch, simulate_layer_sweep
from repro.sim.metrics import aggregate, normalized_edp, speedup
from repro.workloads.generator import build_workload
from repro.workloads.layers import LayerSpec

LAYER = LayerSpec("test", 128, 128, 64)


def _wl(family=PatternFamily.TBS, sparsity=0.75, seed=0, layer=LAYER):
    return build_workload(layer, family, sparsity, seed=seed)


class TestBlockSegments:
    def test_dense_config_sees_full_blocks(self):
        counts, dirs = block_segments(_wl(), tensor_core())
        assert (counts == 8).all()

    def test_tbs_counts_match_mask(self):
        wl = _wl()
        counts, dirs = block_segments(wl, tb_stc())
        assert counts.sum() == wl.nnz

    def test_no_codec_pads_col_blocks(self):
        wl = _wl()
        with_codec, dirs = block_segments(wl, tb_stc())
        without, _ = block_segments(wl, tb_stc(has_codec=False))
        col = dirs == Direction.COL.value
        assert col.any()
        assert without[col].sum() >= with_codec[col].sum()
        # Row blocks are untouched.
        np.testing.assert_array_equal(without[~col], with_codec[~col])


class TestSimulate:
    def test_result_fields_sane(self):
        result = simulate(tb_stc(), _wl())
        assert result.cycles > 0
        assert result.cycles >= max(result.compute_cycles, result.memory_cycles)
        assert result.macs > 0
        assert result.energy.total_pj > 0
        assert 0 < result.compute_utilization <= 1.0

    def test_dense_tc_cycle_count(self):
        """TC compute = dense MACs / peak (plus fill)."""
        wl = _wl(PatternFamily.US, 0.0)
        result = simulate(tensor_core(), wl)
        expected = wl.dense_macs / tensor_core().peak_macs_per_cycle
        assert result.compute_cycles == pytest.approx(expected, rel=0.1)

    def test_sparsity_reduces_cycles(self):
        dense = simulate(tb_stc(), _wl(PatternFamily.TBS, 0.5, seed=1))
        sparse = simulate(tb_stc(), _wl(PatternFamily.TBS, 0.875, seed=1))
        assert sparse.cycles < dense.cycles

    def test_codec_only_counts_col_blocks(self):
        wl = _wl()
        result = simulate(tb_stc(), wl)
        counts, dirs = block_segments(wl, tb_stc())
        col_nnz = counts[dirs == Direction.COL.value].sum()
        assert result.breakdown["codec_visible"] >= 0
        assert result.energy.components.get("codec", 0) == pytest.approx(
            col_nnz * 0.137, rel=0.01
        )

    def test_bandwidth_scaling(self):
        slow = simulate(tb_stc(dram_bandwidth_gbs=16.0), _wl())
        fast = simulate(tb_stc(dram_bandwidth_gbs=512.0), _wl())
        assert fast.cycles < slow.cycles

    def test_weight_bits_speeds_memory(self):
        fp16 = simulate(tb_stc(), _wl())
        int8 = simulate(tb_stc(), _wl(), options=SimOptions(weight_bits=8))
        assert int8.memory_cycles < fp16.memory_cycles
        assert int8.cycles <= fp16.cycles

    def test_weight_bits_validation(self):
        with pytest.raises(ValueError):
            simulate(tb_stc(), _wl(), options=SimOptions(weight_bits=1))

    def test_row_overhead_slows(self):
        base = simulate(tb_stc(), _wl())
        loaded = simulate(tb_stc(), _wl(), options=SimOptions(row_overhead_cycles=1.0))
        assert loaded.compute_cycles > base.compute_cycles

    def test_pipeline_fill_included(self):
        result = simulate(tb_stc(), _wl())
        assert result.breakdown["pipeline_fill"] == PIPELINE_FILL_CYCLES


class TestOrderingClaims:
    """The qualitative Fig. 12 ordering on a weight-heavy layer."""

    @pytest.fixture(scope="class")
    def sweep(self):
        layer = LayerSpec("ffn", 512, 256, 96)
        return simulate_layer_sweep(layer, sparsity=0.75, scale=1)

    def test_tb_stc_fastest_structured(self, sweep):
        tb = sweep["TB-STC"]
        for name in ("TC", "STC", "VEGETA", "HighLight"):
            assert speedup(tb, sweep[name]) > 1.0

    def test_tb_stc_best_edp(self, sweep):
        tb = sweep["TB-STC"]
        for name, res in sweep.items():
            if name != "TB-STC":
                assert normalized_edp(tb, res) < 1.0

    def test_rm_stc_close_in_speed_worse_in_edp(self, sweep):
        """Paper: similar speedup (1.06x) but 1.75x worse EDP."""
        tb, rm = sweep["TB-STC"], sweep["RM-STC"]
        assert speedup(tb, rm) < 1.6
        assert rm.edp / tb.edp > 1.15

    def test_stc_capped_at_2x_compute(self, sweep):
        assert sweep["STC"].compute_cycles >= sweep["TC"].compute_cycles * 0.45


class TestAggregate:
    def test_aggregate_sums(self):
        r1 = simulate(tb_stc(), _wl(seed=1))
        r2 = simulate(tb_stc(), _wl(seed=2))
        total = aggregate([r1, r2])
        assert total.cycles == r1.cycles + r2.cycles
        assert total.energy.total_pj == pytest.approx(r1.energy.total_pj + r2.energy.total_pj)

    def test_aggregate_with_repeats(self):
        r1 = simulate(tb_stc(), _wl(seed=1))
        total = aggregate([r1], repeats=[3])
        assert total.cycles == 3 * r1.cycles

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_aggregate_rejects_misaligned(self):
        r1 = simulate(tb_stc(), _wl(seed=1))
        with pytest.raises(ValueError):
            aggregate([r1], repeats=[1, 2])

    def test_scaled_rejects_zero(self):
        r1 = simulate(tb_stc(), _wl(seed=1))
        with pytest.raises(ValueError):
            r1.scaled(0)


class TestArchLookup:
    def test_known_names(self):
        for name in ("TC", "STC", "VEGETA", "HighLight", "RM-STC", "SGCN", "TB-STC", "DVPE+FAN"):
            assert arch_by_name(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            arch_by_name("TPU")

    def test_overrides_forwarded(self):
        assert arch_by_name("TB-STC", dram_bandwidth_gbs=128.0).dram_bandwidth_gbs == 128.0

    def test_sgcn_row_overhead_applied(self):
        wl = _wl(PatternFamily.US, 0.5)
        plain = simulate(arch_by_name("SGCN"), wl)
        wrapped = simulate_arch(arch_by_name("SGCN"), wl)
        assert wrapped.compute_cycles > plain.compute_cycles
