"""Tests for simulator internals: replication, tiling, format plumbing."""

import numpy as np
import pytest

from repro.core.patterns import PatternFamily
from repro.hw.config import tb_stc, tensor_core
from repro.sim.engine import _block_costs, block_segments, simulate
from repro.workloads.generator import GEMMWorkload, build_workload
from repro.workloads.layers import LayerSpec


class TestSmallLayerReplication:
    def test_tiny_layer_still_fills_array(self):
        """Layers with fewer blocks than PEs replicate tasks across the
        B columns instead of leaving most of the array idle."""
        tiny = build_workload(LayerSpec("tiny", 16, 16, 512), PatternFamily.TBS, 0.5, seed=0)
        result = simulate(tb_stc(), tiny)
        # 4 blocks on 128 PEs would give <4% utilization without
        # replication; with it the array does useful work.
        assert result.compute_utilization > 0.05

    def test_single_column_no_replication(self):
        wl = build_workload(LayerSpec("col", 16, 16, 1), PatternFamily.TBS, 0.5, seed=1)
        result = simulate(tb_stc(), wl)
        assert result.cycles > 0


class TestBufferTiling:
    def test_large_a_forces_b_reloads(self):
        big = build_workload(LayerSpec("big", 2048, 1024, 64), PatternFamily.TBS, 0.5, seed=2)
        small = build_workload(LayerSpec("small", 128, 1024, 64), PatternFamily.TBS, 0.5, seed=2)
        r_big = simulate(tb_stc(), big)
        r_small = simulate(tb_stc(), small)
        # The B operand re-streams once per A row-tile, so a taller A
        # multiplies the reload count.
        b_once = 1024 * 64 * 2
        reloads_big = r_big.breakdown["b_bytes"] / b_once
        reloads_small = r_small.breakdown["b_bytes"] / b_once
        assert reloads_big > 4 * reloads_small

    def test_breakdown_keys_present(self):
        wl = build_workload(LayerSpec("k", 128, 128, 32), PatternFamily.TBS, 0.5, seed=3)
        result = simulate(tb_stc(), wl)
        for key in ("a_bytes", "b_bytes", "d_bytes", "a_cycles", "compute", "memory"):
            assert key in result.breakdown


class TestBlockCosts:
    def test_zero_overhead_gives_integer_costs(self):
        wl = build_workload(LayerSpec("c", 64, 64, 8), PatternFamily.TBS, 0.75, seed=4)
        counts, _ = block_segments(wl, tb_stc())
        costs = _block_costs(counts, tb_stc())
        assert all(float(c).is_integer() for c in costs)

    def test_overhead_adds_fractional(self):
        wl = build_workload(LayerSpec("c", 64, 64, 8), PatternFamily.TBS, 0.75, seed=4)
        counts, _ = block_segments(wl, tb_stc())
        plain = sum(_block_costs(counts, tb_stc()))
        loaded = sum(_block_costs(counts, tb_stc(), row_overhead=0.1))
        assert loaded > plain

    def test_dense_costs_uniform(self):
        wl = build_workload(LayerSpec("c", 32, 32, 8), PatternFamily.US, 0.0, seed=5)
        counts, _ = block_segments(wl, tensor_core())
        costs = _block_costs(counts, tensor_core())
        assert len(set(costs)) == 1


class TestWorkloadProperties:
    def test_sparse_values_zeroed(self):
        wl = build_workload(LayerSpec("p", 32, 32, 8), PatternFamily.TBS, 0.75, seed=6)
        assert not wl.sparse_values[~wl.mask].any()

    def test_name_encodes_family_and_sparsity(self):
        wl = build_workload(LayerSpec("p", 32, 32, 8), PatternFamily.RS_V, 0.5, seed=7)
        assert "RS_V" in wl.name and "50%" in wl.name

    def test_rejects_zero_b_cols(self):
        with pytest.raises(ValueError):
            GEMMWorkload("x", np.ones((8, 8)), np.ones((8, 8), dtype=bool), b_cols=0)


class TestArchPlumbing:
    def test_every_format_simulates(self):
        wl = build_workload(LayerSpec("f", 64, 64, 16), PatternFamily.TBS, 0.75, seed=8)
        for fmt in ("dense", "csr", "sdc", "ddc", "bitmap"):
            result = simulate(tb_stc(storage_format=fmt, has_codec=(fmt == "ddc")), wl)
            assert result.cycles > 0, fmt

    def test_ddc_moves_least_a_traffic(self):
        wl = build_workload(LayerSpec("f", 128, 128, 16), PatternFamily.TBS, 0.75, seed=9)
        traffic = {}
        for fmt in ("dense", "sdc", "ddc"):
            result = simulate(tb_stc(storage_format=fmt, has_codec=(fmt == "ddc")), wl)
            traffic[fmt] = result.breakdown["a_bytes"]
        assert traffic["ddc"] < traffic["sdc"] < traffic["dense"]
