"""Tests for the SimOptions value object and the legacy-kwargs shim."""

import pickle
import warnings

import pytest

from repro.core.patterns import PatternFamily
from repro.faults.ecc import ECCConfig
from repro.hw.config import tb_stc
from repro.hw.energy import EnergyParams
from repro.sim.engine import _LEGACY_WARNED_SITES, simulate
from repro.sim.metrics import SIM_RESULT_SCHEMA, SimResult
from repro.sim.options import SimOptions
from repro.workloads.generator import build_workload
from repro.workloads.layers import LayerSpec

LAYER = LayerSpec("test", 64, 64, 64)


def _wl(sparsity=0.75, seed=0):
    return build_workload(LAYER, PatternFamily.TBS, sparsity, seed=seed)


class TestSimOptions:
    def test_defaults(self):
        opts = SimOptions()
        assert opts.energy_params is None
        assert opts.row_overhead_cycles == 0.0
        assert opts.weight_bits == 16
        assert opts.ecc is None
        assert opts.fault is None
        assert opts.fault_seed == 0
        assert opts.cycle_budget is None
        assert opts.orientation == "forward"

    def test_frozen(self):
        with pytest.raises(Exception):
            SimOptions().weight_bits = 8  # type: ignore[misc]

    def test_hashable_and_picklable(self):
        opts = SimOptions(weight_bits=8)
        assert hash(opts) == hash(SimOptions(weight_bits=8))
        assert pickle.loads(pickle.dumps(opts)) == opts

    @pytest.mark.parametrize("bits", [0, 1, 17, 32])
    def test_rejects_bad_weight_bits(self, bits):
        with pytest.raises(ValueError, match="weight_bits"):
            SimOptions(weight_bits=bits)

    def test_rejects_negative_row_overhead(self):
        with pytest.raises(ValueError, match="row_overhead_cycles"):
            SimOptions(row_overhead_cycles=-1.0)

    def test_rejects_unknown_fault_target(self):
        with pytest.raises(ValueError, match="fault"):
            SimOptions(fault="everything")

    def test_rejects_bad_cycle_budget(self):
        with pytest.raises(ValueError, match="cycle_budget"):
            SimOptions(cycle_budget=0)

    def test_rejects_bad_orientation(self):
        with pytest.raises(ValueError, match="orientation"):
            SimOptions(orientation="sideways")

    def test_orientation_round_trips_through_dict(self):
        opts = SimOptions(orientation="transposed")
        assert opts.to_dict()["orientation"] == "transposed"
        assert SimOptions.from_dict(opts.to_dict()) == opts

    def test_old_dicts_without_orientation_still_load(self):
        payload = SimOptions().to_dict()
        del payload["orientation"]
        assert SimOptions.from_dict(payload).orientation == "forward"

    def test_with_returns_modified_copy(self):
        base = SimOptions()
        quant = base.with_(weight_bits=4)
        assert quant.weight_bits == 4
        assert base.weight_bits == 16
        with pytest.raises(ValueError):
            base.with_(weight_bits=99)  # validation runs on copies too

    def test_dict_round_trip_defaults(self):
        opts = SimOptions()
        assert SimOptions.from_dict(opts.to_dict()) == opts

    def test_dict_round_trip_nested(self):
        opts = SimOptions(
            energy_params=EnergyParams(),
            row_overhead_cycles=2.5,
            weight_bits=8,
            ecc=ECCConfig(mode="secded"),
            fault="metadata",
            fault_seed=7,
            cycle_budget=10**9,
        )
        back = SimOptions.from_dict(opts.to_dict())
        assert back.energy_params == opts.energy_params
        assert back.ecc.mode == "secded"
        assert back.with_(energy_params=None, ecc=None) == opts.with_(
            energy_params=None, ecc=None
        )


class TestSimulateOptions:
    def test_options_object_matches_legacy_kwargs(self):
        wl = _wl()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = simulate(tb_stc(), wl, weight_bits=8, row_overhead_cycles=1.0)
        new = simulate(
            tb_stc(), wl, options=SimOptions(weight_bits=8, row_overhead_cycles=1.0)
        )
        assert new.to_dict() == legacy.to_dict()

    def test_legacy_kwargs_warn_once_per_call_site(self):
        wl = _wl()
        _LEGACY_WARNED_SITES.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                simulate(tb_stc(), wl, weight_bits=8)  # one site, three calls
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "SimOptions" in str(deprecations[0].message)

    def test_distinct_call_sites_each_warn(self):
        wl = _wl()
        _LEGACY_WARNED_SITES.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            simulate(tb_stc(), wl, weight_bits=8)
            simulate(tb_stc(), wl, weight_bits=8)  # a different line -> warns again
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 2

    def test_warning_names_the_replacement_fields(self):
        """The message must tell the reader exactly what to write instead."""
        wl = _wl()
        _LEGACY_WARNED_SITES.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            simulate(tb_stc(), wl, weight_bits=8, fault_seed=3)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "fault_seed=..., weight_bits=..." in message  # sorted field names
        assert "options=SimOptions(fault_seed=..., weight_bits=...)" in message

    def test_rejects_mixing_options_and_legacy(self):
        with pytest.raises(TypeError, match="not both"):
            simulate(tb_stc(), _wl(), options=SimOptions(), weight_bits=8)

    def test_rejects_unknown_kwarg(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            simulate(tb_stc(), _wl(), turbo=True)

    def test_positional_legacy_energy_params_still_works(self):
        wl = _wl()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = simulate(tb_stc(), wl, EnergyParams())
        new = simulate(tb_stc(), wl, options=SimOptions(energy_params=EnergyParams()))
        assert new.to_dict() == legacy.to_dict()


class TestSimulateOrientation:
    def test_explicit_forward_matches_default(self):
        wl = _wl()
        fwd = simulate(tb_stc(), wl, options=SimOptions(orientation="forward"))
        assert fwd.to_dict() == simulate(tb_stc(), wl).to_dict()

    def test_transposed_pass_costs_more_for_sdc_storage(self):
        """SDC's row-group layout re-fetches whole groups per block
        column on the backward pass, so its DRAM traffic must grow."""
        from repro.hw.config import all_baselines

        config = next(c for c in all_baselines() if c.storage_format == "sdc")
        wl = _wl()
        fwd = simulate(config, wl)
        bwd = simulate(config, wl, options=SimOptions(orientation="transposed"))
        assert bwd.dram_bytes > fwd.dram_bytes


class TestSimResultSerialization:
    def test_round_trip(self):
        result = simulate(tb_stc(), _wl())
        payload = result.to_dict()
        assert payload["schema_version"] == SIM_RESULT_SCHEMA
        back = SimResult.from_dict(payload)
        assert back.to_dict() == payload
        assert back.cycles == result.cycles
        assert back.edp == pytest.approx(result.edp)

    def test_round_trip_survives_json(self):
        import json

        result = simulate(tb_stc(), _wl())
        back = SimResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.to_dict() == result.to_dict()

    def test_schema_mismatch_raises(self):
        payload = simulate(tb_stc(), _wl()).to_dict()
        payload["schema_version"] = SIM_RESULT_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            SimResult.from_dict(payload)

    def test_missing_schema_raises(self):
        payload = simulate(tb_stc(), _wl()).to_dict()
        del payload["schema_version"]
        with pytest.raises(ValueError, match="schema"):
            SimResult.from_dict(payload)
