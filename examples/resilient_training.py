"""Resilient sparse training: checkpoints, bit-exact resume, watchdog.

Three demonstrations on an MLP proxy with TBS masks:

1. checkpoint every epoch, then resume a half-finished run and verify
   the result is bit-identical to an uninterrupted run;
2. inject a NaN loss mid-training and watch the divergence watchdog
   roll back to the last good epoch with a learning-rate backoff;
3. exhaust the watchdog's retries and observe graceful degradation.

Run:  python examples/resilient_training.py
"""

import tempfile

from repro.core.patterns import PatternFamily
from repro.nn import cluster_dataset, make_mlp, train
from repro.nn.losses import softmax_cross_entropy
from repro.runtime import WatchdogConfig

SPARSITY = 0.5
EPOCHS = 8


def _fresh():
    data = cluster_dataset(n_samples=256, n_features=32, n_classes=4, seed=7)
    model = make_mlp(32, 48, 4, depth=3, seed=7)
    return model, data


def demo_checkpoint_resume(ckpt_dir: str) -> None:
    print("== 1. Checkpoint / bit-exact resume ==")
    model, data = _fresh()
    baseline = train(model, data, family=PatternFamily.TBS, sparsity=SPARSITY,
                     epochs=EPOCHS, seed=7)

    # A "crashed" run: only the first half of the epochs happen.
    model, data = _fresh()
    train(model, data, family=PatternFamily.TBS, sparsity=SPARSITY,
          epochs=EPOCHS // 2, seed=7, checkpoint_dir=ckpt_dir)

    # Resume on a fresh process-equivalent: fresh model, fresh optimizer.
    model, data = _fresh()
    resumed = train(model, data, family=PatternFamily.TBS, sparsity=SPARSITY,
                    epochs=EPOCHS, seed=7, checkpoint_dir=ckpt_dir, resume=True)

    print(f"resumed after epoch {resumed.resumed_from}")
    print(f"loss histories identical:  {resumed.loss_history == baseline.loss_history}")
    print(f"test accuracy identical:   {resumed.test_accuracy == baseline.test_accuracy}"
          f"  ({resumed.test_accuracy:.3f})")


def demo_watchdog_rollback() -> None:
    print("\n== 2. Watchdog rollback on an injected NaN ==")
    calls = {"n": 0}

    def glitchy_loss(logits, labels):
        calls["n"] += 1
        loss, dlogits = softmax_cross_entropy(logits, labels)
        if calls["n"] == 9:  # one poisoned batch mid-run
            return float("nan"), dlogits
        return loss, dlogits

    model, data = _fresh()
    result = train(model, data, family=PatternFamily.TBS, sparsity=SPARSITY,
                   epochs=EPOCHS, seed=7, loss_fn=glitchy_loss)
    for event in result.watchdog_events:
        print(f"epoch {event['epoch']}: {event['kind']} -> {event['action']} "
              f"(lr scale {event['lr_scale']:.2f})")
    print(f"run completed all {result.completed_epochs} epochs, "
          f"degraded={result.degraded}, accuracy {result.test_accuracy:.3f}")


def demo_graceful_degradation() -> None:
    print("\n== 3. Graceful degradation after exhausted retries ==")

    def broken_loss(logits, labels):
        _, dlogits = softmax_cross_entropy(logits, labels)
        return float("nan"), dlogits

    model, data = _fresh()
    result = train(model, data, family=PatternFamily.TBS, sparsity=SPARSITY,
                   epochs=EPOCHS, seed=7, loss_fn=broken_loss,
                   watchdog=WatchdogConfig(max_retries=1))
    actions = [e["action"] for e in result.watchdog_events]
    print(f"watchdog actions: {actions}")
    print(f"degraded={result.degraded}, kept {result.completed_epochs} good epochs")


def main() -> None:
    with tempfile.TemporaryDirectory() as ckpt_dir:
        demo_checkpoint_resume(ckpt_dir)
    demo_watchdog_rollback()
    demo_graceful_degradation()


if __name__ == "__main__":
    main()
