"""Run the complete paper reproduction and print a condensed report.

Executes every experiment driver (each paper table and figure) at a
reduced scale and prints the result tables.  The heavier accuracy
experiments use fewer seeds/epochs than the benchmarks; pass ``--full``
for the benchmark-grade configuration (several minutes).

Run:  python examples/full_reproduction.py [--full]
"""

import sys
import time

from repro.analysis import (
    render_dict_table,
    render_table,
    run_fig1_pareto,
    run_fig4_maskspace,
    run_fig6_datapath_power,
    run_fig7_bandwidth,
    run_fig12_layerwise,
    run_fig13_end2end,
    run_fig14_breakdown,
    run_fig15_bandwidth,
    run_fig15_block_size,
    run_fig15_quantization,
    run_fig15_sparsity_sweep,
    run_fig16_codec_ablation,
    run_fig16_scheduling_ablation,
    run_fig17_distribution,
    run_fig18_convergence,
    run_table1,
    run_table2,
    run_table3,
)


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main(full: bool = False) -> None:
    t0 = time.time()
    seeds = (0, 1, 2) if full else (0,)
    epochs = 12 if full else 8
    scale = 2 if full else 4

    section("Table I -- accuracy with retraining")
    print(render_dict_table(run_table1(seeds=seeds, epochs=epochs), key_header="proxy"))

    section("Table II -- one-shot pruning (Wanda / SparseGPT)")
    print(render_dict_table(
        run_table2(tasks=(("mlp", 0.625), ("encoder", 0.5)), seeds=seeds, epochs=epochs),
        key_header="proxy/criterion",
    ))

    section("Table III -- area / power breakdown")
    t3 = run_table3()
    print(render_dict_table({"area_mm2": t3["area_mm2"], "power_mw": t3["power_mw"]}, key_header="metric"))
    print(f"A100 integration overhead: {t3['a100_overhead_percent']['value']:.2f}%")

    section("Fig. 1 -- accuracy-EDP Pareto frontier")
    pareto = run_fig1_pareto(seeds=seeds[:2] or (0,), epochs=epochs, scale=scale)
    print(render_table(
        ["design", "EDP (J*s)", "accuracy"],
        [[p.label, f"{p.cost:.3e}", f"{p.quality:.3f}"]
         for p in sorted(pareto["points"], key=lambda p: p.cost)],
    ))
    print("frontier:", [p.label for p in pareto["frontier"]])

    section("Fig. 4 -- mask similarity and mask-space")
    fig4 = run_fig4_maskspace()
    print(render_dict_table(
        {"similarity_vs_US": fig4["similarity"], "log2_maskspace": fig4["log2_maskspace"]},
        key_header="metric",
    ))

    section("Fig. 6(d) -- datapath power")
    print({k: round(v, 2) for k, v in run_fig6_datapath_power().items()})

    section("Fig. 7 -- format bandwidth utilization")
    print(render_dict_table(run_fig7_bandwidth(), key_header="workload"))

    section("Fig. 12 -- layer-wise speedup / EDP")
    for layer, table in run_fig12_layerwise(scale=scale).items():
        print(render_dict_table(table, key_header=layer))
        print()

    section("Fig. 13 -- end-to-end iso-accuracy")
    for model, table in run_fig13_end2end(scale=max(4, scale * 2)).items():
        print(render_dict_table(table, key_header=model))
        print()

    section("Fig. 14 -- cycle breakdown (BERT GEMMs)")
    print(render_dict_table(run_fig14_breakdown(scale=scale), key_header="layer"))

    section("Fig. 15 -- sensitivity studies")
    print(render_dict_table(
        {f"M={m}": row for m, row in run_fig15_block_size(scale=scale, epochs=epochs).items()},
        key_header="block size",
    ))
    print("\nquantization:", {k: round(v, 4) for k, v in run_fig15_quantization(epochs=epochs, scale=scale).items()})
    print("bandwidth speedup:", {bw: round(v, 2) for bw, v in run_fig15_bandwidth(scale=scale).items()})
    print(render_dict_table(
        {f"{s:.0%}": row for s, row in run_fig15_sparsity_sweep(scale=scale).items()},
        key_header="sparsity (vs SGCN)",
    ))

    section("Fig. 16 -- ablations")
    print("codec:", {k: round(v, 2) for k, v in run_fig16_codec_ablation(scale=scale).items()})
    print(render_dict_table(run_fig16_scheduling_ablation(scale=scale), key_header="metric"))

    section("Fig. 17 -- block direction distribution")
    print(render_dict_table(run_fig17_distribution(), key_header="layers"))

    section("Fig. 18 -- training convergence")
    curves = run_fig18_convergence(epochs=epochs)
    for name in ("dense", "US", "TBS"):
        print(f"{name:6s} loss: {' '.join(f'{v:.2f}' for v in curves[name])}")

    print(f"\ncompleted in {time.time() - t0:.0f} s")


if __name__ == "__main__":
    main(full="--full" in sys.argv[1:])
