"""End-to-end pipeline: train sparse, then run THAT model on TB-STC.

The complete paper workflow in one script: train proxies with different
sparsity patterns, lower each *trained* model's actual masks to GEMM
workloads, simulate them on the matching architecture, and place every
design on the accuracy-vs-EDP plane (your own Fig. 1 point cloud).

Run:  python examples/model_to_hardware.py
"""

from repro.analysis import render_table
from repro.analysis.pareto import ParetoPoint, pareto_frontier
from repro.core.patterns import PatternFamily
from repro.nn import cluster_dataset, make_mlp, train
from repro.sim import aggregate, simulate_arch
from repro.sim.baselines import arch_by_name
from repro.workloads import workloads_from_model

#: (display name, pattern the model trains with, architecture that runs it)
DESIGNS = [
    ("TC (dense)", None, "TC"),
    ("STC", PatternFamily.TS, "STC"),
    ("VEGETA", PatternFamily.RS_V, "VEGETA"),
    ("RM-STC", PatternFamily.US, "RM-STC"),
    ("TB-STC", PatternFamily.TBS, "TB-STC"),
]

SPARSITY = 0.875
BATCH = 256


def main() -> None:
    data = cluster_dataset(n_samples=640, n_features=48, n_classes=8, seed=0, noise=1.4)
    rows = []
    points = []
    for name, family, arch_name in DESIGNS:
        model = make_mlp(48, 128, 8, depth=3, seed=100)
        result = train(model, data, family=family, sparsity=SPARSITY, epochs=12, seed=0)

        sim_family = family if family is not None else PatternFamily.US
        workloads = workloads_from_model(model, sim_family, batch=BATCH)
        config = arch_by_name(arch_name)
        sim = aggregate([simulate_arch(config, wl) for wl in workloads])

        achieved = result.sparsity_history[-1] if family else 0.0
        rows.append([
            name,
            f"{achieved:.1%}",
            f"{result.test_accuracy:.3f}",
            sim.cycles,
            f"{sim.energy.total_j * 1e6:.2f}",
            f"{sim.edp:.3e}",
        ])
        points.append(ParetoPoint(cost=sim.edp, quality=result.test_accuracy, label=name))

    print(render_table(
        ["design", "sparsity", "accuracy", "cycles", "energy (uJ)", "EDP (J*s)"],
        rows,
        title=f"Trained models on their matching hardware (target {SPARSITY:.0%} sparsity)",
    ))
    frontier = pareto_frontier(points)
    print("\naccuracy-EDP Pareto frontier:", [p.label for p in frontier])


if __name__ == "__main__":
    main()
