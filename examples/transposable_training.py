"""The transposition property: one TBS mask serves both training passes.

The paper's key insight (Sec. I): during training the backward pass
multiplies by the *transposed* weights.  A TBS mask transposes into
another valid TBS mask -- block directions flip, per-block N survives --
so TB-STC accelerates the forward GEMM (``W @ x``) and the backward
input-gradient GEMM (``W.T @ dy``) with the same stored mask.

This example prunes a weight matrix, verifies the transposed mask is
valid TBS, and simulates both passes on TB-STC, comparing against a
row-wise pattern that loses its structure under transposition.

Run:  python examples/transposable_training.py
"""

import numpy as np

from repro.analysis import render_table
from repro.core import tbs_sparsify, vegeta_mask
from repro.core.patterns import Direction, PatternFamily
from repro.hw import tb_stc
from repro.sim import simulate
from repro.sim.functional import functional_spmm
from repro.workloads import synthetic_weights
from repro.workloads.generator import GEMMWorkload


def check_tbs_validity(mask, block_n, block_direction, m=8) -> bool:
    """Every block obeys N:M along its declared dimension."""
    n_br, n_bc = block_n.shape
    for br in range(n_br):
        for bc in range(n_bc):
            block = mask[br * m : (br + 1) * m, bc * m : (bc + 1) * m]
            axis = 1 if block_direction[br, bc] == Direction.ROW.value else 0
            if block.sum(axis=axis).max(initial=0) > block_n[br, bc]:
                return False
    return True


def rowwise_nm_violations(mask, m=8) -> int:
    """Groups violating uniform row-wise N:M (what a row-only engine needs)."""
    rows, cols = mask.shape
    groups = mask.reshape(rows, cols // m, m).sum(axis=2)
    # A row-wise engine needs every group in a row to carry the row's N.
    return int(sum(len(set(groups[r])) > 1 for r in range(rows)))


def main() -> None:
    weights = synthetic_weights(128, 128, seed=0)
    tbs = tbs_sparsify(weights, m=8, sparsity=0.75)
    tbs_t = tbs.transposed()

    print("TBS forward mask valid: ",
          check_tbs_validity(tbs.mask, tbs.block_n, tbs.block_direction))
    print("TBS backward (transposed) mask valid:",
          check_tbs_validity(tbs_t.mask, tbs_t.block_n, tbs_t.block_direction))

    rs_mask = vegeta_mask(weights, m=8, sparsity=0.75)
    print(f"\nRow-wise (VEGETA) mask transposed: "
          f"{rowwise_nm_violations(rs_mask.T)} of {rs_mask.shape[1]} rows "
          f"violate uniform row-wise N:M -> the backward pass falls off "
          f"the structured fast path.")

    # Simulate both passes of the TBS model on TB-STC.
    sparse = weights * tbs.mask
    fwd = GEMMWorkload("fwd", weights, tbs.mask, b_cols=64, family=PatternFamily.TBS, tbs=tbs)
    bwd = GEMMWorkload("bwd", weights.T.copy(), tbs_t.mask, b_cols=64,
                       family=PatternFamily.TBS, tbs=tbs_t)
    rows = []
    for name, workload in (("forward  W @ x", fwd), ("backward W.T @ dy", bwd)):
        result = simulate(tb_stc(), workload)
        rows.append([name, result.cycles, f"{result.compute_utilization:.1%}"])
    print()
    print(render_table(["pass", "cycles", "compute util"], rows,
                       title="Both training GEMMs on TB-STC (same mask)"))

    # Numerical check: the functional datapath computes both products.
    rng = np.random.default_rng(1)
    x = rng.normal(size=(128, 32))
    dy = rng.normal(size=(128, 32))
    np.testing.assert_allclose(functional_spmm(sparse, x, tbs=tbs), sparse @ x, atol=1e-9)
    np.testing.assert_allclose(
        functional_spmm(sparse.T, dy, tbs=tbs_t), sparse.T @ dy, atol=1e-9
    )
    print("\nfunctional datapath: forward and backward products exact.")


if __name__ == "__main__":
    main()
