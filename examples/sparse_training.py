"""Sparse training with TBS masks on a CNN proxy (the Table I workflow).

Trains the same TinyResNet proxy densely and with US / TBS / TS masks
(regenerated every epoch from the live weights, Sec. III-B), then
reports the accuracy ladder and the Fig. 18-style loss curves.

Run:  python examples/sparse_training.py
"""

from repro.analysis import render_table
from repro.core.patterns import PatternFamily
from repro.nn import image_dataset, make_cnn, train

SPARSITY = 0.75
EPOCHS = 12


def main() -> None:
    data = image_dataset(n_samples=320, channels=3, size=16, n_classes=4, seed=0)
    configs = [
        ("Dense", None),
        ("US", PatternFamily.US),
        ("TBS", PatternFamily.TBS),
        ("RS-V", PatternFamily.RS_V),
        ("TS", PatternFamily.TS),
    ]

    rows = []
    curves = {}
    for name, family in configs:
        model = make_cnn(channels=3, width=12, n_classes=4, seed=100)
        result = train(
            model,
            data,
            family=family,
            sparsity=SPARSITY,
            epochs=EPOCHS,
            seed=0,
            ts_cap=None,  # iso-sparsity comparison (TS at 2:8)
        )
        achieved = result.sparsity_history[-1] if family else 0.0
        rows.append([name, f"{achieved:.1%}", f"{result.test_accuracy:.3f}"])
        curves[name] = result.loss_history

    print(render_table(
        ["pattern", "achieved sparsity", "test accuracy"],
        rows,
        title=f"Sparse training at {SPARSITY:.0%} target sparsity ({EPOCHS} epochs)",
    ))

    print("\nLoss curves (Fig. 18 style):")
    for name, losses in curves.items():
        trace = " ".join(f"{v:.2f}" for v in losses)
        print(f"  {name:6s} {trace}")


if __name__ == "__main__":
    main()
