"""Quickstart: prune a weight matrix with TBS, store it in DDC, and
simulate the GEMM on TB-STC vs the dense Tensor Core.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import render_table
from repro.core import pattern_similarity_sweep, tbs_sparsify
from repro.formats import DDCFormat, EncodeSpec, compare_formats
from repro.hw import tb_stc, tensor_core
from repro.sim import simulate, speedup, normalized_edp
from repro.workloads import LayerSpec, build_workload, synthetic_weights
from repro.core.patterns import PatternFamily


def main() -> None:
    # ------------------------------------------------------------------
    # 1. TBS sparsification (Algorithm 1)
    # ------------------------------------------------------------------
    weights = synthetic_weights(128, 128, seed=0)
    result = tbs_sparsify(weights, m=8, sparsity=0.75)
    print(f"TBS mask: sparsity={result.sparsity:.1%}, "
          f"block directions={result.direction_histogram()}")

    sims = pattern_similarity_sweep(weights, sparsity=0.75, m=8)
    print("similarity with unstructured mask:",
          {k: f"{v:.1%}" for k, v in sims.items()})

    # ------------------------------------------------------------------
    # 2. Storage: DDC vs the baseline formats
    # ------------------------------------------------------------------
    sparse = weights * result.mask
    encoded = DDCFormat().encode(sparse, EncodeSpec(tbs=result))
    assert np.allclose(DDCFormat().decode(encoded), sparse)
    print(f"\nDDC footprint: {encoded.total_bytes} B "
          f"(dense would be {weights.size * 2} B)")

    reports = compare_formats(sparse, tbs=result)
    print(render_table(
        ["format", "bandwidth utilization"],
        [[name, f"{rep.bandwidth_utilization:.1%}"] for name, rep in reports.items()],
    ))

    # ------------------------------------------------------------------
    # 3. Cycle-level simulation: TB-STC vs dense Tensor Core
    # ------------------------------------------------------------------
    layer = LayerSpec("example.ffn", 512, 256, 96)
    tb_workload = build_workload(layer, PatternFamily.TBS, 0.75, seed=0)
    dense_workload = build_workload(layer, PatternFamily.US, 0.0, seed=0)

    tb = simulate(tb_stc(), tb_workload)
    tc = simulate(tensor_core(), dense_workload)

    print(f"\nTB-STC : {tb.cycles:8d} cycles, "
          f"{tb.energy.total_j * 1e6:.2f} uJ, EDP {tb.edp:.3e} J*s")
    print(f"TC     : {tc.cycles:8d} cycles, "
          f"{tc.energy.total_j * 1e6:.2f} uJ, EDP {tc.edp:.3e} J*s")
    print(f"speedup {speedup(tb, tc):.2f}x, "
          f"normalized EDP {normalized_edp(tb, tc):.3f}")


if __name__ == "__main__":
    main()
