"""Architecture exploration with the cycle-level simulator.

Sweeps a BERT FFN layer across sparsity degrees and all baseline
architectures (the Fig. 12 experiment), then explores TB-STC design
knobs: off-chip bandwidth (Fig. 15(c)), the scheduling/codec ablations
(Fig. 16) and the Table III area/power budget.

Run:  python examples/hardware_exploration.py
"""

from repro.analysis import (
    compare_energy_breakdown,
    render_dict_table,
    render_table,
    ridge_intensity,
    roofline_point,
    run_table3,
)
from repro.core.patterns import PatternFamily
from repro.hw import tb_stc
from repro.sim import normalized_edp, simulate, simulate_layer_sweep, speedup
from repro.sim.baselines import simulate_arch
from repro.workloads import bert_layers, build_workload


def sweep_baselines() -> None:
    layer = bert_layers()[2]  # ffn_up: 3072 x 768
    print(f"=== Fig. 12 style sweep on {layer.name} "
          f"({layer.rows}x{layer.cols} @ K={layer.b_cols}) ===")
    table = {}
    for sparsity in (0.5, 0.75, 0.875):
        results = simulate_layer_sweep(layer, sparsity, scale=2)
        base = results["TC"]
        table[f"speedup@{sparsity:.0%}"] = {
            name: round(speedup(res, base), 2) for name, res in results.items()
        }
        table[f"norm.EDP@{sparsity:.0%}"] = {
            name: round(normalized_edp(res, base), 3) for name, res in results.items()
        }
    print(render_dict_table(table, key_header="metric"))


def sweep_bandwidth() -> None:
    print("\n=== Fig. 15(c): bandwidth sensitivity of TB-STC ===")
    layer = bert_layers()[2]
    workload = build_workload(layer, PatternFamily.TBS, 0.75, seed=0, scale=2)
    rows = []
    base = None
    for bw in (32, 64, 128, 256, 512):
        result = simulate_arch(tb_stc(dram_bandwidth_gbs=float(bw)), workload)
        base = base or result
        rows.append([f"{bw} GB/s", result.cycles, f"{base.cycles / result.cycles:.2f}x"])
    print(render_table(["bandwidth", "cycles", "speedup vs 32 GB/s"], rows))


def ablations() -> None:
    print("\n=== Fig. 16 ablations on a TBS workload ===")
    layer = bert_layers()[2]
    workload = build_workload(layer, PatternFamily.TBS, 0.75, seed=0, scale=2)
    variants = {
        "full TB-STC": tb_stc(),
        "no inter-block scheduling": tb_stc(inter_block_scheduling=False),
        "no intra-block mapping": tb_stc(intra_block_mapping=False),
        "no codec (SDC storage)": tb_stc(storage_format="sdc", has_codec=False),
    }
    base = simulate(tb_stc(), workload)
    rows = []
    for name, cfg in variants.items():
        result = simulate(cfg, workload)
        rows.append([
            name,
            result.cycles,
            f"{result.cycles / base.cycles:.2f}x",
            f"{result.compute_utilization:.1%}",
        ])
    print(render_table(["variant", "cycles", "slowdown", "compute util"], rows))


def budget() -> None:
    print("\n=== Table III: area / power budget ===")
    res = run_table3()
    print(render_dict_table(
        {"area_mm2": res["area_mm2"], "power_mw": res["power_mw"]}, key_header="metric"
    ))
    print(f"A100-scale integration overhead: "
          f"{res['a100_overhead_percent']['value']:.2f}% of the die")


def roofline() -> None:
    print("\n=== Roofline: why Fig. 15(c) saturates ===")
    layer = bert_layers()[2]
    cfg = tb_stc()
    print(f"TB-STC ridge point: {ridge_intensity(cfg):.1f} MACs/byte at 64 GB/s")
    rows = []
    for sparsity in (0.5, 0.75, 0.875):
        workload = build_workload(layer, PatternFamily.TBS, sparsity, seed=0, scale=2)
        result = simulate_arch(cfg, workload)
        point = roofline_point(workload, cfg, result)
        rows.append([
            f"{sparsity:.0%}",
            f"{point.intensity:.1f}",
            "memory" if point.memory_bound else "compute",
            f"{point.roofline_efficiency:.1%}",
        ])
    print(render_table(["sparsity", "MACs/byte", "bound by", "roofline efficiency"], rows))


def energy_stacks() -> None:
    print("\n=== Energy breakdown per architecture (Sparseloop view) ===")
    table = compare_energy_breakdown(bert_layers()[2], sparsity=0.75, scale=2)
    print(render_dict_table(table, key_header="arch"))


if __name__ == "__main__":
    sweep_baselines()
    sweep_bandwidth()
    ablations()
    roofline()
    energy_stacks()
    budget()
