"""One-shot pruning with Wanda and SparseGPT criteria (Table II workflow).

Trains a transformer-encoder proxy densely (the OPT/Llama stand-in),
captures calibration activations, then one-shot prunes at 50% with each
criterion x sparsity pattern and compares the accuracy retained --
including the SparseGPT OBS weight update.

Run:  python examples/oneshot_llm_pruning.py
"""

import numpy as np

from repro.analysis import (
    capture_layer_inputs,
    render_table,
    restore_params,
    snapshot_params,
)
from repro.core.criteria import sparsegpt_prune, sparsegpt_scores, wanda_scores
from repro.core.patterns import PatternFamily
from repro.core.sparsify import tbs_sparsify
from repro.nn import TransformerClassifier, evaluate, one_shot_prune, sequence_dataset, train
from repro.nn.models import prunable_layers

SPARSITY = 0.5
FAMILIES = [
    PatternFamily.US,
    PatternFamily.TS,
    PatternFamily.RS_V,
    PatternFamily.RS_H,
    PatternFamily.TBS,
]


def main() -> None:
    data = sequence_dataset(n_samples=384, seq_len=16, vocab=32, n_classes=4, seed=0)
    model = TransformerClassifier(vocab=32, dim=32, heads=4, depth=2, n_classes=4, seed=100)
    train(model, data, epochs=12, seed=0)
    dense_acc = evaluate(model, data[2], data[3])
    print(f"dense accuracy: {dense_acc:.3f}\n")

    snapshot = snapshot_params(model)
    activations = capture_layer_inputs(model, data[0][:64])

    rows = []
    for criterion in ("magnitude", "wanda", "sparsegpt"):

        def score_fn(layer, _criterion=criterion):
            w2d = layer.weight_matrix()
            if _criterion == "magnitude":
                return np.abs(w2d)
            acts = activations[id(layer)]
            if _criterion == "wanda":
                return wanda_scores(w2d, acts)
            return sparsegpt_scores(w2d, acts)

        for family in FAMILIES:
            restore_params(model, snapshot)
            one_shot_prune(model, family, SPARSITY, score_fn=score_fn, ts_cap=None)
            acc = evaluate(model, data[2], data[3])
            rows.append([criterion, family.name, f"{acc:.3f}", f"{dense_acc - acc:+.3f}"])

    print(render_table(
        ["criterion", "pattern", "accuracy", "drop vs dense"],
        rows,
        title=f"One-shot pruning at {SPARSITY:.0%} (no retraining)",
    ))

    # Bonus: the full SparseGPT OBS update on one layer, showing the
    # reconstruction-error benefit over plain masking.
    restore_params(model, snapshot)
    layer = prunable_layers(model)[0]
    weights = layer.weight_matrix()
    acts = activations[id(layer)]
    pruned, mask = sparsegpt_prune(
        weights, acts, lambda s: tbs_sparsify(s, m=8, sparsity=SPARSITY).mask
    )
    naive = weights * mask
    ref = acts @ weights.T
    err_obs = np.linalg.norm(ref - acts @ pruned.T)
    err_naive = np.linalg.norm(ref - acts @ naive.T)
    print(f"\nSparseGPT OBS update on layer 0: reconstruction error "
          f"{err_obs:.3f} vs naive masking {err_naive:.3f} "
          f"({err_naive / max(err_obs, 1e-12):.2f}x better)")


if __name__ == "__main__":
    main()
