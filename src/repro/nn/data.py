"""Synthetic datasets standing in for CIFAR / ImageNet / GLUE.

Pattern-vs-pattern accuracy comparisons need a learnable task whose loss
surface punishes bad masks, not the specific datasets.  Three families:

* :func:`cluster_dataset` -- Gaussian clusters pushed through a fixed
  random nonlinear warp (MLP workloads).
* :func:`image_dataset` -- class template images + structured noise,
  shaped ``(N, C, H, W)`` (CNN workloads; the Cifar/ImageNet stand-in).
* :func:`sequence_dataset` -- token sequences whose class is determined
  by embedded token motifs (encoder workloads; the GLUE stand-in).

All generators are deterministic given their seed and return
``(train_x, train_y, test_x, test_y)`` with a held-out test split, as
the paper requires ("a test dataset independent of the training
dataset").

Every generator draws exclusively from an explicit
:class:`numpy.random.Generator` -- either the ``rng`` argument or a
fresh ``default_rng(seed)`` -- never from numpy's global RNG, so runs
are reproducible and checkpoints can restore stream positions exactly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["cluster_dataset", "image_dataset", "sequence_dataset"]

Dataset = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def _rng_for(seed: int, rng: Optional[np.random.Generator]) -> np.random.Generator:
    """The generator a dataset draws from; ``rng`` wins over ``seed``."""
    return rng if rng is not None else np.random.default_rng(seed)


def _split(x: np.ndarray, y: np.ndarray, test_fraction: float, rng: np.random.Generator) -> Dataset:
    n = x.shape[0]
    order = rng.permutation(n)
    x, y = x[order], y[order]
    n_test = max(1, int(test_fraction * n))
    return x[n_test:], y[n_test:], x[:n_test], y[:n_test]


def cluster_dataset(
    n_samples: int = 512,
    n_features: int = 32,
    n_classes: int = 4,
    seed: int = 0,
    test_fraction: float = 0.25,
    noise: float = 0.6,
    rng: Optional[np.random.Generator] = None,
) -> Dataset:
    """Gaussian clusters warped by a random 2-layer map."""
    if n_samples < n_classes:
        raise ValueError("need at least one sample per class")
    rng = _rng_for(seed, rng)
    centers = rng.normal(0, 2.0, size=(n_classes, n_features))
    labels = rng.integers(0, n_classes, size=n_samples)
    x = centers[labels] + rng.normal(0, noise, size=(n_samples, n_features))
    # Fixed nonlinear warp so linear models cannot solve the task.
    w1 = rng.normal(0, 1.0 / np.sqrt(n_features), size=(n_features, n_features))
    x = np.tanh(x @ w1) + 0.3 * x
    return _split(x, labels, test_fraction, rng)


def image_dataset(
    n_samples: int = 384,
    channels: int = 3,
    size: int = 16,
    n_classes: int = 4,
    seed: int = 0,
    test_fraction: float = 0.25,
    noise: float = 0.45,
    rng: Optional[np.random.Generator] = None,
) -> Dataset:
    """Class-template images with per-sample noise and random shifts."""
    rng = _rng_for(seed, rng)
    templates = rng.normal(0, 1.0, size=(n_classes, channels, size, size))
    # Smooth the templates so classes have spatial structure.
    for axis in (2, 3):
        templates = 0.5 * templates + 0.25 * (
            np.roll(templates, 1, axis=axis) + np.roll(templates, -1, axis=axis)
        )
    labels = rng.integers(0, n_classes, size=n_samples)
    x = templates[labels] + rng.normal(0, noise, size=(n_samples, channels, size, size))
    shifts = rng.integers(-2, 3, size=(n_samples, 2))
    for i, (dy, dx) in enumerate(shifts):
        x[i] = np.roll(np.roll(x[i], dy, axis=1), dx, axis=2)
    return _split(x, labels, test_fraction, rng)


def sequence_dataset(
    n_samples: int = 384,
    seq_len: int = 16,
    vocab: int = 32,
    n_classes: int = 4,
    seed: int = 0,
    test_fraction: float = 0.25,
    rng: Optional[np.random.Generator] = None,
) -> Dataset:
    """Token sequences classified by which class motif they contain.

    Each class owns a 3-token motif; a sample is background noise with
    its class's motif planted at a random position -- attention must
    locate it, which is the GLUE-like structure the encoder needs.
    """
    rng = _rng_for(seed, rng)
    motifs = rng.integers(0, vocab, size=(n_classes, 3))
    labels = rng.integers(0, n_classes, size=n_samples)
    x = rng.integers(0, vocab, size=(n_samples, seq_len))
    for i, label in enumerate(labels):
        pos = rng.integers(0, seq_len - 3)
        x[i, pos : pos + 3] = motifs[label]
    order = rng.permutation(n_samples)
    x, labels = x[order], labels[order]
    n_test = max(1, int(test_fraction * n_samples))
    return x[n_test:], labels[n_test:], x[:n_test], labels[:n_test]
