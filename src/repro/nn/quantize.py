"""8-bit weight quantization (the Fig. 15(b) "Q+S" experiment).

Symmetric per-output-channel int8 fake quantization of the (masked)
weights: scale = max|w| / 127 per output row, weights round to the int8
grid and dequantize in place.  Combined with TBS pruning it roughly
halves the remaining weight traffic (FP16 -> INT8), which is where the
extra 1.33-1.39x speedup in Fig. 15(b) comes from.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .layers import Conv2d, Linear, Module
from .models import prunable_layers

__all__ = ["quantize_weights", "quantize_model", "quantization_error"]


def quantize_weights(weights: np.ndarray, bits: int = 8) -> np.ndarray:
    """Per-output-row symmetric fake quantization."""
    if bits < 2 or bits > 16:
        raise ValueError(f"bits must be in [2, 16], got {bits}")
    w = np.asarray(weights, dtype=np.float64)
    flat = w.reshape(w.shape[0], -1)
    qmax = 2 ** (bits - 1) - 1
    scale = np.abs(flat).max(axis=1, keepdims=True) / qmax
    scale[scale == 0] = 1.0
    q = np.clip(np.round(flat / scale), -qmax - 1, qmax)
    return (q * scale).reshape(w.shape)


def quantize_model(model: Module, bits: int = 8, include_stem_head: bool = False) -> List[str]:
    """Fake-quantize the weights of the model's (prunable) layers in place.

    Returns the list of touched parameter descriptions.
    """
    layers = (
        [m for m in model.modules() if isinstance(m, (Linear, Conv2d))]
        if include_stem_head
        else prunable_layers(model)
    )
    touched = []
    for i, layer in enumerate(layers):
        layer.params["weight"] = quantize_weights(layer.params["weight"], bits=bits)
        touched.append(f"{type(layer).__name__}[{i}].weight")
    return touched


def quantization_error(weights: np.ndarray, bits: int = 8) -> float:
    """Relative L2 error of quantizing ``weights``."""
    denom = float(np.linalg.norm(weights))
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(weights - quantize_weights(weights, bits))) / denom
