"""Proxy models for the accuracy experiments.

* :func:`make_mlp` -- plain classifier for the cluster task.
* :func:`make_cnn` -- TinyResNet-style CNN (the ResNet-50/18 proxy).
* :class:`TransformerClassifier` -- encoder classifier (the BERT proxy).

Following the paper's protocol (Sec. VII-A3), the first ("stem") and
final (classifier-head) layers are excluded from pruning;
:func:`prunable_layers` returns the layers the sparsity patterns apply
to, in order.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaskableMixin,
    MaxPool2d,
    Module,
    ReLU,
    Residual,
    Sequential,
    TransformerEncoderLayer,
)

__all__ = ["make_mlp", "make_cnn", "Embedding", "TransformerClassifier", "prunable_layers"]


def make_mlp(in_features: int = 32, hidden: int = 64, n_classes: int = 4, depth: int = 3, seed: int = 0) -> Sequential:
    """MLP with ``depth`` hidden layers."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    layers: List[Module] = [Linear(in_features, hidden, seed=seed), ReLU()]
    for i in range(depth - 1):
        layers += [Linear(hidden, hidden, seed=seed + i + 1), ReLU()]
    layers.append(Linear(hidden, n_classes, seed=seed + depth))
    return Sequential(*layers)


def _basic_block(channels: int, seed: int) -> Residual:
    return Residual(
        Sequential(
            Conv2d(channels, channels, 3, padding=1, seed=seed),
            BatchNorm2d(channels),
            ReLU(),
            Conv2d(channels, channels, 3, padding=1, seed=seed + 1),
            BatchNorm2d(channels),
        )
    )


def make_cnn(channels: int = 3, width: int = 16, n_classes: int = 4, seed: int = 0) -> Sequential:
    """TinyResNet: stem conv, two residual stages, pool, linear head."""
    return Sequential(
        Conv2d(channels, width, 3, padding=1, seed=seed),  # stem (never pruned)
        BatchNorm2d(width),
        ReLU(),
        _basic_block(width, seed + 10),
        MaxPool2d(2),
        Conv2d(width, 2 * width, 3, padding=1, seed=seed + 20),
        BatchNorm2d(2 * width),
        ReLU(),
        _basic_block(2 * width, seed + 30),
        GlobalAvgPool2d(),
        Linear(2 * width, n_classes, seed=seed + 40),  # head (never pruned)
    )


class Embedding(Module):
    """Token embedding with learned positional table."""

    def __init__(self, vocab: int, dim: int, max_len: int = 64, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.params["table"] = rng.normal(0, 0.5, size=(vocab, dim))
        self.params["pos"] = rng.normal(0, 0.1, size=(max_len, dim))

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        self._tokens = tokens
        seq = tokens.shape[1]
        return self.params["table"][tokens] + self.params["pos"][None, :seq]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        gtable = np.zeros_like(self.params["table"])
        np.add.at(gtable, self._tokens, grad)
        self.grads["table"] = self.grads.get("table", 0) + gtable
        gpos = np.zeros_like(self.params["pos"])
        gpos[: grad.shape[1]] = grad.sum(axis=0)
        self.grads["pos"] = self.grads.get("pos", 0) + gpos
        return grad  # tokens carry no gradient


class TransformerClassifier(Module):
    """Embedding -> N encoder layers -> mean pool -> linear head."""

    def __init__(
        self,
        vocab: int = 32,
        dim: int = 32,
        heads: int = 4,
        depth: int = 2,
        n_classes: int = 4,
        max_len: int = 64,
        seed: int = 0,
    ):
        super().__init__()
        self.embed = Embedding(vocab, dim, max_len=max_len, seed=seed)
        self.blocks = [TransformerEncoderLayer(dim, heads, seed=seed + 10 * (i + 1)) for i in range(depth)]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, n_classes, seed=seed + 99)

    def modules(self) -> List[Module]:
        mods: List[Module] = [self] + self.embed.modules()
        for block in self.blocks:
            mods.extend(block.modules())
        return mods + self.norm.modules() + self.head.modules()

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        x = self.embed(tokens)
        for block in self.blocks:
            x = block(x)
        x = self.norm(x)
        self._seq = x.shape[1]
        pooled = x.mean(axis=1)
        return self.head(pooled)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        gpooled = self.head.backward(grad)
        gx = np.repeat(gpooled[:, None, :], self._seq, axis=1) / self._seq
        gx = self.norm.backward(gx)
        for block in reversed(self.blocks):
            gx = block.backward(gx)
        return self.embed.backward(gx)


def prunable_layers(model: Module) -> List[MaskableMixin]:
    """Maskable layers excluding the stem (first) and head (last).

    Matches the paper's protocol: "All layers are pruned except the stem
    layer and the final fully-connected layer."
    """
    maskable = [m for m in model.modules() if isinstance(m, (Linear, Conv2d))]
    if len(maskable) <= 2:
        return []
    return maskable[1:-1]
