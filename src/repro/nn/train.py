"""Dense and sparse training loops (Sec. III-B) plus one-shot pruning.

The sparse-training flow follows the paper:

* train from scratch (not fine-tune);
* every epoch, regenerate the mask *from the current dense weights*: a
  global magnitude threshold at the target sparsity yields the
  unstructured reference, then the pattern family's generator projects
  it (Algorithm 1 for TBS);
* forward uses the masked weights, the gradient reaches the dense
  weights (straight-through), so pruned connections can revive.

``train`` records the loss history used by Fig. 18 and returns the
final test accuracy used by Tables I/II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..core.masks import make_mask, unstructured_mask
from ..core.patterns import PatternFamily, PatternSpec
from ..core.sparsify import tbs_sparsify
from .layers import Module
from .losses import accuracy, softmax_cross_entropy
from .models import prunable_layers
from .optim import SGD, _Optimizer

__all__ = ["TrainResult", "apply_masks", "train", "one_shot_prune", "evaluate"]


@dataclass
class TrainResult:
    """Outcome of one training run."""

    loss_history: List[float] = field(default_factory=list)
    sparsity_history: List[float] = field(default_factory=list)
    train_accuracy: float = 0.0
    test_accuracy: float = 0.0
    family: Optional[PatternFamily] = None
    sparsity: float = 0.0


def _mask_for(
    layer, family: PatternFamily, sparsity: float, m: int, ts_cap: Optional[float] = 0.5
) -> np.ndarray:
    """Mask for one layer.  ``ts_cap`` pins the TS family to the STC
    hardware ratio (4:8 = 50%, the paper's Table I footnote); pass
    ``None`` for an iso-sparsity TS comparison (fixed N = (1-s)*M)."""
    scores = np.abs(layer.weight_matrix())
    if family is PatternFamily.TBS:
        return tbs_sparsify(scores, m=m, sparsity=sparsity).mask
    if family is PatternFamily.US:
        return unstructured_mask(scores, sparsity)
    if family is PatternFamily.TS and ts_cap is not None:
        return make_mask(scores, PatternSpec(family, m=m, sparsity=min(sparsity, ts_cap)))
    return make_mask(scores, PatternSpec(family, m=m, sparsity=sparsity))


def _global_layer_sparsities(layers, sparsity: float) -> List[float]:
    """Per-layer sparsity targets from one *global* magnitude threshold.

    Sec. III-B1: "we first obtain the threshold on the entire weight
    according to the target sparsity" -- the threshold is computed over
    the concatenation of every prunable layer's weights, so layers with
    smaller magnitudes end up sparser than the global target and
    important layers keep more.
    """
    magnitudes = np.concatenate([np.abs(l.weight_matrix()).ravel() for l in layers])
    if magnitudes.size == 0 or sparsity <= 0.0:
        return [0.0] * len(layers)
    if sparsity >= 1.0:
        return [1.0] * len(layers)
    threshold = float(np.quantile(magnitudes, sparsity))
    return [
        float((np.abs(l.weight_matrix()) <= threshold).mean()) for l in layers
    ]


def apply_masks(
    model: Module,
    family: Optional[PatternFamily],
    sparsity: float,
    m: int = 8,
    ts_cap: Optional[float] = 0.5,
    global_threshold: bool = False,
) -> float:
    """Regenerate and install masks on every prunable layer.

    Returns the achieved sparsity over the prunable weights.  Passing
    ``family=None`` removes all masks (dense training).

    ``global_threshold=True`` follows the paper's Sec. III-B1 flow: one
    magnitude threshold over *all* prunable weights sets each layer's
    individual sparsity degree; the default prunes every layer to the
    same target independently.
    """
    layers = prunable_layers(model)
    if family is None:
        for layer in layers:
            layer.set_mask(None)
        return 0.0
    if global_threshold:
        per_layer = _global_layer_sparsities(layers, sparsity)
    else:
        per_layer = [sparsity] * len(layers)
    kept = 0
    total = 0
    for layer, layer_sparsity in zip(layers, per_layer):
        mask = _mask_for(layer, family, layer_sparsity, m, ts_cap=ts_cap)
        layer.set_mask(mask)
        kept += int(mask.sum())
        total += mask.size
    return 1.0 - kept / total if total else 0.0


def evaluate(model: Module, x: np.ndarray, y: np.ndarray, batch: int = 128) -> float:
    """Top-1 accuracy in eval mode."""
    model.eval()
    correct = 0
    for i in range(0, len(x), batch):
        logits = model(x[i : i + batch])
        correct += int((logits.argmax(axis=1) == y[i : i + batch]).sum())
    model.train()
    return correct / max(1, len(x))


def train(
    model: Module,
    data,
    family: Optional[PatternFamily] = None,
    sparsity: float = 0.0,
    epochs: int = 10,
    batch: int = 64,
    m: int = 8,
    optimizer: Optional[_Optimizer] = None,
    seed: int = 0,
    mask_refresh: Callable[[int], bool] = lambda epoch: True,
    ts_cap: Optional[float] = 0.5,
    scheduler=None,
    global_threshold: bool = False,
) -> TrainResult:
    """Train ``model`` on ``data = (train_x, train_y, test_x, test_y)``.

    ``family=None`` trains densely; otherwise the mask is regenerated at
    the start of every epoch for which ``mask_refresh(epoch)`` is true.
    ``scheduler`` is an optional LR schedule from
    :mod:`repro.nn.schedulers`, stepped once per epoch.
    """
    train_x, train_y, test_x, test_y = data
    opt = optimizer or SGD(model, lr=0.05, momentum=0.9, weight_decay=5e-4)
    rng = np.random.default_rng(seed)
    result = TrainResult(family=family, sparsity=sparsity)

    for epoch in range(epochs):
        if scheduler is not None:
            scheduler.step()
        if family is not None and mask_refresh(epoch):
            achieved = apply_masks(
                model, family, sparsity, m=m, ts_cap=ts_cap, global_threshold=global_threshold
            )
        else:
            achieved = result.sparsity_history[-1] if result.sparsity_history else 0.0
        order = rng.permutation(len(train_x))
        epoch_loss = 0.0
        steps = 0
        for i in range(0, len(order), batch):
            idx = order[i : i + batch]
            opt.zero_grad()
            logits = model(train_x[idx])
            loss, dlogits = softmax_cross_entropy(logits, train_y[idx])
            model.backward(dlogits)
            opt.step()
            epoch_loss += loss
            steps += 1
        result.loss_history.append(epoch_loss / max(1, steps))
        result.sparsity_history.append(achieved)

    result.train_accuracy = evaluate(model, train_x, train_y)
    result.test_accuracy = evaluate(model, test_x, test_y)
    return result


def one_shot_prune(
    model: Module,
    family: PatternFamily,
    sparsity: float,
    score_fn: Optional[Callable] = None,
    m: int = 8,
    ts_cap: Optional[float] = 0.5,
) -> float:
    """One-shot pruning of a trained model (the Table II protocol).

    ``score_fn(layer) -> scores`` supplies the criterion (Wanda,
    SparseGPT saliency, ...); default is weight magnitude.  Returns the
    achieved sparsity.
    """
    layers = prunable_layers(model)
    kept = 0
    total = 0
    for layer in layers:
        scores = np.abs(layer.weight_matrix()) if score_fn is None else np.abs(score_fn(layer))
        if family is PatternFamily.TBS:
            mask = tbs_sparsify(scores, m=m, sparsity=sparsity).mask
        elif family is PatternFamily.US:
            mask = unstructured_mask(scores, sparsity)
        elif family is PatternFamily.TS and ts_cap is not None:
            mask = make_mask(scores, PatternSpec(family, m=m, sparsity=min(sparsity, ts_cap)))
        else:
            mask = make_mask(scores, PatternSpec(family, m=m, sparsity=sparsity))
        layer.set_mask(mask)
        kept += int(mask.sum())
        total += mask.size
    return 1.0 - kept / total if total else 0.0
