"""Dense and sparse training loops (Sec. III-B) plus one-shot pruning.

The sparse-training flow follows the paper:

* train from scratch (not fine-tune);
* every epoch, regenerate the mask *from the current dense weights*: a
  global magnitude threshold at the target sparsity yields the
  unstructured reference, then the pattern family's generator projects
  it (Algorithm 1 for TBS);
* forward uses the masked weights, the gradient reaches the dense
  weights (straight-through), so pruned connections can revive.

``train`` records the loss history used by Fig. 18 and returns the
final test accuracy used by Tables I/II.

Resilience (see :mod:`repro.runtime`): ``train`` can checkpoint every
epoch into a :class:`~repro.runtime.checkpoint.CheckpointStore` and
resume bit-exactly (same RNG stream, parameters, optimizer slots and
masks), and a :class:`~repro.runtime.watchdog.DivergenceWatchdog`
rolls NaN/Inf/loss-spike epochs back to the last good state with a
learning-rate backoff, degrading gracefully once retries are exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from ..core.masks import make_mask, unstructured_mask
from ..core.patterns import PatternFamily, PatternSpec
from ..core.sparsify import tbs_sparsify
from ..core.transposable import transposable_sparsify
from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..obs.state import enabled as _obs_enabled
from ..perf import stage, timed
from ..runtime.checkpoint import CheckpointStore
from ..runtime.checks import check_mask
from ..runtime.state import capture_train_state, restore_train_state
from ..runtime.watchdog import DivergenceWatchdog, WatchdogConfig
from .layers import Module
from .losses import softmax_cross_entropy
from .models import prunable_layers
from .optim import SGD, _Optimizer

__all__ = ["TrainResult", "apply_masks", "train", "one_shot_prune", "evaluate"]


@dataclass
class TrainResult:
    """Outcome of one training run.

    ``completed_epochs`` counts epochs whose updates survived (rollbacks
    discard theirs); ``resumed_from`` is the checkpoint epoch a resumed
    run restarted after; ``degraded`` flags a run the watchdog stopped
    early after exhausting its retries; ``watchdog_events`` records every
    divergence (epoch, kind, action, lr scale).
    """

    loss_history: List[float] = field(default_factory=list)
    sparsity_history: List[float] = field(default_factory=list)
    train_accuracy: float = 0.0
    test_accuracy: float = 0.0
    family: Optional[PatternFamily] = None
    sparsity: float = 0.0
    completed_epochs: int = 0
    resumed_from: Optional[int] = None
    degraded: bool = False
    watchdog_events: List[Dict[str, Any]] = field(default_factory=list)


def _project(
    scores: np.ndarray,
    family: PatternFamily,
    sparsity: float,
    m: int,
    ts_cap: Optional[float],
    tsolver: Optional[str] = None,
):
    """Project magnitude scores onto one family: (mask, spec, tbs_meta).

    ``ts_cap`` pins the TS family to the STC hardware ratio (4:8 = 50%,
    the paper's Table I footnote); pass ``None`` for an iso-sparsity TS
    comparison (fixed N = (1-s)*M).  ``tsolver`` selects the
    :mod:`repro.core.tsolvers` backend for the NMT family (greedy /
    exact / tsenor); other families ignore it.
    """
    sparsity = min(1.0, max(0.0, sparsity))
    if family is PatternFamily.TBS:
        result = tbs_sparsify(scores, m=m, sparsity=sparsity)
        return result.mask, PatternSpec(family, m=m, sparsity=sparsity), result
    if family is PatternFamily.NMT:
        mask, _ = transposable_sparsify(scores, m=m, sparsity=sparsity, backend=tsolver)
        return mask, PatternSpec(family, m=m, sparsity=sparsity), None
    if family is PatternFamily.TS and ts_cap is not None:
        spec = PatternSpec(family, m=m, sparsity=min(sparsity, ts_cap))
        return make_mask(scores, spec), spec, None
    spec = PatternSpec(family, m=m, sparsity=sparsity)
    if family is PatternFamily.US:
        return unstructured_mask(scores, sparsity), spec, None
    return make_mask(scores, spec), spec, None


def _global_layer_sparsities(layers, sparsity: float) -> List[float]:
    """Per-layer sparsity targets from one *global* magnitude threshold.

    Sec. III-B1: "we first obtain the threshold on the entire weight
    according to the target sparsity" -- the threshold is computed over
    the concatenation of every prunable layer's weights, so layers with
    smaller magnitudes end up sparser than the global target and
    important layers keep more.
    """
    magnitudes = np.concatenate([np.abs(l.weight_matrix()).ravel() for l in layers])
    if magnitudes.size == 0 or sparsity <= 0.0:
        return [0.0] * len(layers)
    if sparsity >= 1.0:
        return [1.0] * len(layers)
    threshold = float(np.quantile(magnitudes, sparsity))
    return [
        float((np.abs(l.weight_matrix()) <= threshold).mean()) for l in layers
    ]


@timed("nn.train.apply_masks")
def apply_masks(
    model: Module,
    family: Optional[PatternFamily],
    sparsity: float,
    m: int = 8,
    ts_cap: Optional[float] = 0.5,
    global_threshold: bool = False,
    checks: Optional[str] = None,
    tsolver: Optional[str] = None,
) -> float:
    """Regenerate and install masks on every prunable layer.

    Returns the achieved sparsity over the prunable weights.  Passing
    ``family=None`` removes all masks (dense training).

    ``global_threshold=True`` follows the paper's Sec. III-B1 flow: one
    magnitude threshold over *all* prunable weights sets each layer's
    individual sparsity degree; the default prunes every layer to the
    same target independently.  ``checks`` overrides the global invariant
    strictness (:mod:`repro.runtime.checks`) for the generated masks;
    ``tsolver`` picks the transposable-mask backend for the NMT family.
    """
    layers = prunable_layers(model)
    if family is None:
        for layer in layers:
            layer.set_mask(None)
        return 0.0
    if global_threshold:
        per_layer = _global_layer_sparsities(layers, sparsity)
    else:
        per_layer = [sparsity] * len(layers)
    kept = 0
    total = 0
    for i, (layer, layer_sparsity) in enumerate(zip(layers, per_layer)):
        scores = np.abs(layer.weight_matrix())
        mask, spec, tbs = _project(scores, family, layer_sparsity, m, ts_cap, tsolver=tsolver)
        check_mask(mask, spec, tbs=tbs, context=f"apply_masks layer {i}", level=checks)
        layer.set_mask(mask)
        kept += int(mask.sum())
        total += mask.size
    return 1.0 - kept / total if total else 0.0


@timed("nn.train.evaluate")
def evaluate(model: Module, x: np.ndarray, y: np.ndarray, batch: int = 128) -> float:
    """Top-1 accuracy in eval mode."""
    model.eval()
    correct = 0
    for i in range(0, len(x), batch):
        logits = model(x[i : i + batch])
        correct += int((logits.argmax(axis=1) == y[i : i + batch]).sum())
    model.train()
    return correct / max(1, len(x))


def _watchdog_for(watchdog: Union[None, bool, WatchdogConfig]) -> DivergenceWatchdog:
    if isinstance(watchdog, WatchdogConfig):
        return DivergenceWatchdog(watchdog)
    if watchdog is False:
        return DivergenceWatchdog(WatchdogConfig(enabled=False))
    return DivergenceWatchdog(WatchdogConfig())


@timed("nn.train.train")
def train(
    model: Module,
    data,
    family: Optional[PatternFamily] = None,
    sparsity: float = 0.0,
    epochs: int = 10,
    batch: int = 64,
    m: int = 8,
    optimizer: Optional[_Optimizer] = None,
    seed: int = 0,
    mask_refresh: Callable[[int], bool] = lambda epoch: True,
    ts_cap: Optional[float] = 0.5,
    scheduler=None,
    global_threshold: bool = False,
    rng: Optional[np.random.Generator] = None,
    loss_fn: Optional[Callable] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: int = 1,
    watchdog: Union[None, bool, WatchdogConfig] = None,
    checks: Optional[str] = None,
) -> TrainResult:
    """Train ``model`` on ``data = (train_x, train_y, test_x, test_y)``.

    ``family=None`` trains densely; otherwise the mask is regenerated at
    the start of every epoch for which ``mask_refresh(epoch)`` is true.
    ``scheduler`` is an optional LR schedule from
    :mod:`repro.nn.schedulers`, stepped once per epoch.

    Resilience knobs:

    * ``rng`` -- explicit :class:`numpy.random.Generator` driving the
      batch shuffling (defaults to ``default_rng(seed)``); checkpoints
      capture and restore its exact stream position.
    * ``loss_fn`` -- the training criterion, ``(logits, labels) ->
      (loss, dlogits)``; defaults to softmax cross-entropy.
    * ``checkpoint_dir`` -- if set, every ``checkpoint_every``-th epoch
      (and the final one) is persisted atomically; with ``resume=True``
      the run restarts after the newest readable checkpoint and produces
      a bit-identical result to an uninterrupted run.
    * ``watchdog`` -- ``None`` for the default NaN/Inf/spike policy, a
      :class:`~repro.runtime.watchdog.WatchdogConfig` to tune it, or
      ``False`` to disable.  Rollbacks restore the last good epoch and
      shrink the learning rate; exhausted retries end the run early with
      ``result.degraded = True`` at the last good state.
    * ``checks`` -- invariant strictness override for mask generation
      (``"off"`` / ``"warn"`` / ``"strict"``).
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    train_x, train_y, test_x, test_y = data
    opt = optimizer or SGD(model, lr=0.05, momentum=0.9, weight_decay=5e-4)
    rng = rng if rng is not None else np.random.default_rng(seed)
    criterion = loss_fn or softmax_cross_entropy
    wd = _watchdog_for(watchdog)
    result = TrainResult(family=family, sparsity=sparsity)
    layers = prunable_layers(model)
    store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
    base_lr = opt.lr

    start_epoch = 0
    if resume and store is not None:
        snap = store.latest()
        if snap is not None:
            restore_train_state(snap, model, layers, opt, rng, scheduler=scheduler)
            wd.load_state_dict(snap.meta.get("watchdog", {}))
            base_lr = float(snap.meta.get("base_lr", base_lr))
            result.loss_history = list(snap.meta["loss_history"])
            result.sparsity_history = list(snap.meta["sparsity_history"])
            result.watchdog_events = [e.as_dict() for e in wd.events]
            result.resumed_from = snap.epoch
            start_epoch = snap.epoch + 1

    # Rollback target: with the watchdog or a store active we always hold
    # the last good state in memory (initially the untrained state).
    need_state = wd.config.enabled or store is not None

    def _capture(epoch: int):
        return capture_train_state(
            epoch, model, layers, opt, rng,
            scheduler=scheduler,
            loss_history=result.loss_history,
            sparsity_history=result.sparsity_history,
            extra_meta={"base_lr": base_lr, "seed": seed, "watchdog": wd.state_dict()},
        )

    last_good = _capture(start_epoch - 1) if need_state else None

    epoch = start_epoch
    while epoch < epochs:
        if scheduler is not None:
            scheduler.step()
            opt.lr = opt.lr * wd.lr_scale
        elif wd.lr_scale != 1.0:
            opt.lr = base_lr * wd.lr_scale
        if family is not None and mask_refresh(epoch):
            achieved = apply_masks(
                model, family, sparsity, m=m, ts_cap=ts_cap,
                global_threshold=global_threshold, checks=checks,
            )
        else:
            achieved = result.sparsity_history[-1] if result.sparsity_history else 0.0
        order = rng.permutation(len(train_x))
        epoch_loss = 0.0
        steps = 0
        diverged: Optional[str] = None
        with stage("nn.train.epoch"):
            for i in range(0, len(order), batch):
                idx = order[i : i + batch]
                opt.zero_grad()
                logits = model(train_x[idx])
                loss, dlogits = criterion(logits, train_y[idx])
                if wd.config.enabled and not np.isfinite(loss):
                    diverged = "nan"
                    break
                model.backward(dlogits)
                opt.step()
                epoch_loss += loss
                steps += 1
        mean_loss = epoch_loss / max(1, steps)
        if diverged is None:
            diverged = wd.classify(mean_loss)

        if diverged is not None:
            action = wd.diverged(epoch, mean_loss, diverged)
            if _obs_enabled():
                obs_metrics.counter_add("nn.watchdog_rollbacks")
                obs_tracer.instant(
                    "nn.watchdog.rollback", epoch=epoch, reason=diverged, action=action
                )
            result.watchdog_events = [e.as_dict() for e in wd.events]
            restore_train_state(last_good, model, layers, opt, rng, scheduler=scheduler)
            result.loss_history = list(last_good.meta["loss_history"])
            result.sparsity_history = list(last_good.meta["sparsity_history"])
            if action == "degrade":
                result.degraded = True
                break
            continue  # retry the same epoch from the restored state

        result.loss_history.append(mean_loss)
        result.sparsity_history.append(achieved)
        wd.record_good(mean_loss)
        if need_state:
            last_good = _capture(epoch)
            if store is not None and (epoch % checkpoint_every == 0 or epoch == epochs - 1):
                store.save(last_good)
        epoch += 1

    result.completed_epochs = len(result.loss_history)
    result.watchdog_events = [e.as_dict() for e in wd.events]
    result.train_accuracy = evaluate(model, train_x, train_y)
    result.test_accuracy = evaluate(model, test_x, test_y)
    return result


@timed("nn.train.one_shot_prune")
def one_shot_prune(
    model: Module,
    family: PatternFamily,
    sparsity: float,
    score_fn: Optional[Callable] = None,
    m: int = 8,
    ts_cap: Optional[float] = 0.5,
    checks: Optional[str] = None,
    tsolver: Optional[str] = None,
) -> float:
    """One-shot pruning of a trained model (the Table II protocol).

    ``score_fn(layer) -> scores`` supplies the criterion (Wanda,
    SparseGPT saliency, ...); default is weight magnitude.  Returns the
    achieved sparsity.  ``checks`` overrides the invariant strictness
    for the generated masks; ``tsolver`` picks the transposable-mask
    backend for the NMT family (wide layers need ``tsenor``).
    """
    layers = prunable_layers(model)
    kept = 0
    total = 0
    for i, layer in enumerate(layers):
        scores = np.abs(layer.weight_matrix()) if score_fn is None else np.abs(score_fn(layer))
        mask, spec, tbs = _project(scores, family, sparsity, m, ts_cap, tsolver=tsolver)
        check_mask(mask, spec, tbs=tbs, context=f"one_shot_prune layer {i}", level=checks)
        layer.set_mask(mask)
        kept += int(mask.sum())
        total += mask.size
    return 1.0 - kept / total if total else 0.0
