"""Losses with analytic gradients."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["softmax_cross_entropy", "mse_loss", "accuracy"]


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy over the batch; returns ``(loss, dlogits)``."""
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ValueError("labels must be a 1-D class-index array matching the batch")
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    loss = -float(log_probs[np.arange(n), labels].mean())
    probs = np.exp(log_probs)
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def mse_loss(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error; returns ``(loss, dpred)``."""
    if pred.shape != target.shape:
        raise ValueError("prediction/target shape mismatch")
    diff = pred - target
    loss = float((diff**2).mean())
    return loss, 2.0 * diff / diff.size


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    return float((logits.argmax(axis=1) == labels).mean())
