"""Learning-rate schedules for the training loops.

The paper retrains sparse models for many epochs; at proxy scale a
schedule mainly buys stability for the high-sparsity runs where the
mask regenerates every epoch.  All schedulers mutate the optimizer's
``lr`` in place when stepped once per epoch.
"""

from __future__ import annotations

import math

from .optim import _Optimizer

__all__ = ["StepLR", "CosineLR", "WarmupLR", "ConstantLR"]


class _Scheduler:
    def __init__(self, optimizer: _Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = -1

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)
        return self.optimizer.lr

    def _lr_at(self, epoch: int) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class ConstantLR(_Scheduler):
    """No-op schedule (the default training behaviour)."""

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(_Scheduler):
    """Multiply by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: _Optimizer, step_size: int = 10, gamma: float = 0.1):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(_Scheduler):
    """Cosine decay from the base LR to ``min_lr`` over ``total`` epochs."""

    def __init__(self, optimizer: _Optimizer, total: int, min_lr: float = 0.0):
        if total < 1:
            raise ValueError("total must be >= 1")
        if min_lr < 0:
            raise ValueError("min_lr must be non-negative")
        super().__init__(optimizer)
        self.total = total
        self.min_lr = min_lr

    def _lr_at(self, epoch: int) -> float:
        t = min(epoch, self.total) / self.total
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * t))


class WarmupLR(_Scheduler):
    """Linear warmup for ``warmup`` epochs, then an inner schedule."""

    def __init__(self, optimizer: _Optimizer, warmup: int, after: _Scheduler = None):
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        super().__init__(optimizer)
        self.warmup = warmup
        self.after = after

    def _lr_at(self, epoch: int) -> float:
        if epoch < self.warmup:
            return self.base_lr * (epoch + 1) / self.warmup
        if self.after is not None:
            return self.after._lr_at(epoch - self.warmup)
        return self.base_lr
