"""A from-scratch numpy neural-network substrate (the PyTorch stand-in).

Implements exactly what the paper's accuracy experiments need: dense and
*maskable* linear/convolution layers with manual backward passes, the
normalisation/activation/pooling glue, and a transformer encoder block.

Design: every :class:`Module` owns ``params`` and ``grads`` dicts and
implements ``forward`` (caching what backward needs) and ``backward``
(returning the input gradient and accumulating parameter gradients).
Sparse training uses the straight-through convention from the paper's
Sec. III-B: the mask multiplies the weights in ``forward``, while the
gradient flows to the *dense* weights so pruned connections can revive
when the mask is regenerated next epoch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Module",
    "Linear",
    "Conv2d",
    "ReLU",
    "GELU",
    "BatchNorm2d",
    "LayerNorm",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Sequential",
    "Residual",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
]


class Module:
    """Base class: parameter registry + mask support."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def modules(self) -> List["Module"]:
        """This module plus every registered child, depth-first."""
        return [self]

    def parameters(self) -> List[Tuple["Module", str]]:
        """(owner, name) handles for every parameter, for optimizers."""
        handles = []
        for mod in self.modules():
            for name in mod.params:
                handles.append((mod, name))
        return handles

    def zero_grad(self) -> None:
        for mod in self.modules():
            for name, value in mod.params.items():
                mod.grads[name] = np.zeros_like(value)

    def train(self, mode: bool = True) -> "Module":
        for mod in self.modules():
            mod.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        return sum(p.size for mod in self.modules() for p in mod.params.values())


def _kaiming(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / max(1, fan_in)), size=shape)


class MaskableMixin:
    """Weight-mask support shared by Linear and Conv2d.

    ``mask`` has the shape of the layer's 2-D weight view (out, in) --
    the GEMM shape the sparsity patterns operate on.
    """

    mask: Optional[np.ndarray] = None

    def weight_matrix(self) -> np.ndarray:
        """The 2-D (out_features, reduction) view of the weight."""
        w = self.params["weight"]
        return w.reshape(w.shape[0], -1)

    def set_mask(self, mask: Optional[np.ndarray]) -> None:
        if mask is not None and mask.shape != self.weight_matrix().shape:
            raise ValueError(
                f"mask shape {mask.shape} != weight matrix shape {self.weight_matrix().shape}"
            )
        self.mask = None if mask is None else mask.astype(bool)

    def effective_weight(self) -> np.ndarray:
        w = self.params["weight"]
        if self.mask is None:
            return w
        return w * self.mask.reshape(w.shape)


class Linear(Module, MaskableMixin):
    """Fully-connected layer ``y = x @ W.T + b`` with optional mask."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: int = 0):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("features must be positive")
        rng = np.random.default_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.params["weight"] = _kaiming(rng, in_features, (out_features, in_features))
        if bias:
            self.params["bias"] = np.zeros(out_features)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        w = self.effective_weight()
        y = x @ w.T
        if "bias" in self.params:
            y = y + self.params["bias"]
        return y

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x = self._x
        flat_g = grad.reshape(-1, self.out_features)
        flat_x = x.reshape(-1, self.in_features)
        gw = flat_g.T @ flat_x
        # Straight-through: gradient reaches the dense weight.
        self.grads["weight"] = self.grads.get("weight", 0) + gw
        if "bias" in self.params:
            self.grads["bias"] = self.grads.get("bias", 0) + flat_g.sum(axis=0)
        return grad @ self.effective_weight()


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """(N, C, H, W) -> (N, out_h, out_w, C*kh*kw) patch matrix."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    shape = (n, c, out_h, out_w, kh, kw)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
        x.strides[2],
        x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


class Conv2d(Module, MaskableMixin):
    """2-D convolution via im2col -- the GEMM lowering the paper prunes."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        bias: bool = True,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.params["weight"] = _kaiming(
            rng, fan_in, (out_channels, in_channels, kernel_size, kernel_size)
        )
        if bias:
            self.params["bias"] = np.zeros(out_channels)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        cols, out_h, out_w = _im2col(x, self.kernel_size, self.kernel_size, self.stride, self.padding)
        w2d = self.effective_weight().reshape(self.out_channels, -1)
        y = cols @ w2d.T  # (N, oh, ow, C_out)
        if "bias" in self.params:
            y = y + self.params["bias"]
        self._cache = (x.shape, cols)
        return y.transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_shape, cols = self._cache
        n, _, out_h, out_w = grad.shape
        g = grad.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        flat_cols = cols.reshape(-1, cols.shape[-1])
        gw = (g.T @ flat_cols).reshape(self.params["weight"].shape)
        self.grads["weight"] = self.grads.get("weight", 0) + gw
        if "bias" in self.params:
            self.grads["bias"] = self.grads.get("bias", 0) + g.sum(axis=0)

        w2d = self.effective_weight().reshape(self.out_channels, -1)
        gcols = (g @ w2d).reshape(n, out_h, out_w, -1)
        return self._col2im(gcols, x_shape)

    def _col2im(self, gcols: np.ndarray, x_shape) -> np.ndarray:
        n, c, h, w = x_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        gx = np.zeros((n, c, h + 2 * p, w + 2 * p))
        gcols = gcols.reshape(n, gcols.shape[1], gcols.shape[2], c, k, k)
        for i in range(gcols.shape[1]):
            for j in range(gcols.shape[2]):
                gx[:, :, i * s : i * s + k, j * s : j * s + k] += gcols[:, i, j]
        if p:
            gx = gx[:, :, p:-p, p:-p]
        return gx


class ReLU(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class GELU(Module):
    """tanh-approximation GELU (BERT's activation)."""

    _C = np.sqrt(2.0 / np.pi)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        inner = self._C * (x + 0.044715 * x**3)
        self._t = np.tanh(inner)
        return 0.5 * x * (1.0 + self._t)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x, t = self._x, self._t
        dinner = self._C * (1.0 + 3 * 0.044715 * x**2)
        dy = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * dinner
        return grad * dy


class BatchNorm2d(Module):
    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.params["gamma"] = np.ones(channels)
        self.params["beta"] = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        m = mean[None, :, None, None]
        v = var[None, :, None, None]
        self._xhat = (x - m) / np.sqrt(v + self.eps)
        self._std = np.sqrt(v + self.eps)
        return self.params["gamma"][None, :, None, None] * self._xhat + self.params["beta"][
            None, :, None, None
        ]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        xhat, std = self._xhat, self._std
        gamma = self.params["gamma"][None, :, None, None]
        axes = (0, 2, 3)
        n = grad.shape[0] * grad.shape[2] * grad.shape[3]
        self.grads["gamma"] = self.grads.get("gamma", 0) + (grad * xhat).sum(axis=axes)
        self.grads["beta"] = self.grads.get("beta", 0) + grad.sum(axis=axes)
        gxhat = grad * gamma
        gx = (
            gxhat
            - gxhat.mean(axis=axes, keepdims=True)
            - xhat * (gxhat * xhat).mean(axis=axes, keepdims=True)
        ) / std
        return gx


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.params["gamma"] = np.ones(dim)
        self.params["beta"] = np.zeros(dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        self._std = np.sqrt(var + self.eps)
        self._xhat = (x - mean) / self._std
        return self.params["gamma"] * self._xhat + self.params["beta"]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        xhat, std = self._xhat, self._std
        reduce_axes = tuple(range(grad.ndim - 1))
        self.grads["gamma"] = self.grads.get("gamma", 0) + (grad * xhat).sum(axis=reduce_axes)
        self.grads["beta"] = self.grads.get("beta", 0) + grad.sum(axis=reduce_axes)
        gxhat = grad * self.params["gamma"]
        gx = (
            gxhat
            - gxhat.mean(axis=-1, keepdims=True)
            - xhat * (gxhat * xhat).mean(axis=-1, keepdims=True)
        ) / std
        return gx


class MaxPool2d(Module):
    def __init__(self, size: int = 2):
        super().__init__()
        self.size = size

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"spatial dims {h}x{w} not divisible by pool size {s}")
        view = x.reshape(n, c, h // s, s, w // s, s)
        out = view.max(axis=(3, 5))
        self._mask = view == out[:, :, :, None, :, None]
        self._shape = x.shape
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        s = self.size
        expanded = grad[:, :, :, None, :, None] * self._mask
        return expanded.reshape(self._shape)


class GlobalAvgPool2d(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._shape
        return np.broadcast_to(grad[:, :, None, None], self._shape) / (h * w)


class Flatten(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


class Dropout(Module):
    def __init__(self, p: float = 0.1, seed: int = 0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout p must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        self._mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad if self._mask is None else grad * self._mask


class Sequential(Module):
    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def modules(self) -> List[Module]:
        out: List[Module] = [self]
        for layer in self.layers:
            out.extend(layer.modules())
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


class Residual(Module):
    """``y = inner(x) + x`` with matching shapes (ResNet basic shortcut)."""

    def __init__(self, inner: Module):
        super().__init__()
        self.inner = inner

    def modules(self) -> List[Module]:
        return [self] + self.inner.modules()

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.inner(x) + x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self.inner.backward(grad) + grad


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


class MultiHeadSelfAttention(Module):
    """Standard MHSA over (batch, seq, dim) with maskable projections."""

    def __init__(self, dim: int, heads: int = 4, seed: int = 0):
        super().__init__()
        if dim % heads:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.qkv = Linear(dim, 3 * dim, seed=seed)
        self.out = Linear(dim, dim, seed=seed + 1)

    def modules(self) -> List[Module]:
        return [self] + self.qkv.modules() + self.out.modules()

    def _split(self, x: np.ndarray) -> np.ndarray:
        b, s, _ = x.shape
        return x.reshape(b, s, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, s, d = x.shape
        qkv = self.qkv(x)
        q, k, v = np.split(qkv, 3, axis=-1)
        q, k, v = self._split(q), self._split(k), self._split(v)  # (b, h, s, hd)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (q @ k.transpose(0, 1, 3, 2)) * scale
        attn = _softmax(scores)
        ctx = attn @ v  # (b, h, s, hd)
        self._cache = (q, k, v, attn, scale, (b, s, d))
        merged = ctx.transpose(0, 2, 1, 3).reshape(b, s, d)
        return self.out(merged)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        q, k, v, attn, scale, (b, s, d) = self._cache
        gmerged = self.out.backward(grad)
        gctx = gmerged.reshape(b, s, self.heads, self.head_dim).transpose(0, 2, 1, 3)
        gattn = gctx @ v.transpose(0, 1, 3, 2)
        gv = attn.transpose(0, 1, 3, 2) @ gctx
        # softmax backward
        gscores = attn * (gattn - (gattn * attn).sum(axis=-1, keepdims=True))
        gscores *= scale
        gq = gscores @ k
        gk = gscores.transpose(0, 1, 3, 2) @ q
        merge = lambda t: t.transpose(0, 2, 1, 3).reshape(b, s, d)
        gqkv = np.concatenate([merge(gq), merge(gk), merge(gv)], axis=-1)
        return self.qkv.backward(gqkv)


class TransformerEncoderLayer(Module):
    """Pre-LN encoder block: LN -> MHSA -> +x, LN -> FFN -> +x."""

    def __init__(self, dim: int, heads: int = 4, ffn_mult: int = 4, seed: int = 0):
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, heads, seed=seed)
        self.ln2 = LayerNorm(dim)
        self.ffn = Sequential(
            Linear(dim, ffn_mult * dim, seed=seed + 2),
            GELU(),
            Linear(ffn_mult * dim, dim, seed=seed + 3),
        )

    def modules(self) -> List[Module]:
        return (
            [self]
            + self.ln1.modules()
            + self.attn.modules()
            + self.ln2.modules()
            + self.ffn.modules()
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = x + self.attn(self.ln1(x))
        return y + self.ffn(self.ln2(y))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g_ffn = self.ln2.backward(self.ffn.backward(grad))
        g_mid = grad + g_ffn
        g_attn = self.ln1.backward(self.attn.backward(g_mid))
        return g_mid + g_attn
