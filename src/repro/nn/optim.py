"""Optimizers operating on Module parameter handles."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .layers import Module

__all__ = ["SGD", "Adam"]


class _Optimizer:
    def __init__(self, model: Module, lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.model = model
        self.lr = lr
        self.handles: List[Tuple[Module, str]] = model.parameters()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def zero_grad(self) -> None:
        self.model.zero_grad()


class SGD(_Optimizer):
    """SGD with momentum and decoupled weight decay."""

    def __init__(self, model: Module, lr: float = 0.1, momentum: float = 0.9, weight_decay: float = 0.0):
        super().__init__(model, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for i, (mod, name) in enumerate(self.handles):
            grad = mod.grads.get(name)
            if grad is None:
                continue
            param = mod.params[name]
            if self.weight_decay and name == "weight":
                grad = grad + self.weight_decay * param
            vel = self._velocity.get(i)
            vel = grad if vel is None else self.momentum * vel + grad
            self._velocity[i] = vel
            mod.params[name] = param - self.lr * vel


class Adam(_Optimizer):
    def __init__(
        self,
        model: Module,
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(model, lr)
        self.b1, self.b2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for i, (mod, name) in enumerate(self.handles):
            grad = mod.grads.get(name)
            if grad is None:
                continue
            param = mod.params[name]
            if self.weight_decay and name == "weight":
                grad = grad + self.weight_decay * param
            m = self._m.get(i, np.zeros_like(param))
            v = self._v.get(i, np.zeros_like(param))
            m = self.b1 * m + (1 - self.b1) * grad
            v = self.b2 * v + (1 - self.b2) * grad**2
            self._m[i], self._v[i] = m, v
            mhat = m / (1 - self.b1**self._t)
            vhat = v / (1 - self.b2**self._t)
            mod.params[name] = param - self.lr * mhat / (np.sqrt(vhat) + self.eps)
