"""Numpy neural-network substrate for the accuracy experiments."""

from .data import cluster_dataset, image_dataset, sequence_dataset
from .layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaskableMixin,
    MaxPool2d,
    Module,
    MultiHeadSelfAttention,
    ReLU,
    Residual,
    Sequential,
    TransformerEncoderLayer,
)
from .losses import accuracy, mse_loss, softmax_cross_entropy
from .models import Embedding, TransformerClassifier, make_cnn, make_mlp, prunable_layers
from .optim import SGD, Adam
from .quantize import quantization_error, quantize_model, quantize_weights
from .schedulers import ConstantLR, CosineLR, StepLR, WarmupLR
from .train import TrainResult, apply_masks, evaluate, one_shot_prune, train

__all__ = [
    "Adam",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Embedding",
    "Flatten",
    "GELU",
    "GlobalAvgPool2d",
    "LayerNorm",
    "Linear",
    "MaskableMixin",
    "MaxPool2d",
    "Module",
    "MultiHeadSelfAttention",
    "ReLU",
    "Residual",
    "SGD",
    "Sequential",
    "ConstantLR",
    "CosineLR",
    "StepLR",
    "WarmupLR",
    "TrainResult",
    "TransformerClassifier",
    "TransformerEncoderLayer",
    "accuracy",
    "apply_masks",
    "cluster_dataset",
    "evaluate",
    "image_dataset",
    "make_cnn",
    "make_mlp",
    "mse_loss",
    "one_shot_prune",
    "prunable_layers",
    "quantization_error",
    "quantize_model",
    "quantize_weights",
    "sequence_dataset",
    "softmax_cross_entropy",
    "train",
]
