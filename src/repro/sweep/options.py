"""Frozen sweep-execution options (the ``SimOptions`` of the sweep layer).

:class:`SweepOptions` bundles every *how-to-run* knob of
:func:`~repro.sweep.engine.run_sweep` -- worker count, executor choice,
per-cell timeout, retry budget, cache/resume, chaos injection -- into
one frozen, hashable value that drivers can thread through unchanged
(``run_experiment`` -> table/figure driver -> ``run_sweep``) instead of
growing a kwarg tail at every layer.

None of these knobs is part of a cell's logical identity: the cell
cache hashes the cell payload only, so the same sweep hits the same
cache entries whatever its options were (see
:mod:`repro.runtime.cellcache`).  By the same token, options must never
change *results* -- only wall-clock, resilience, and telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .executors import EXECUTOR_NAMES

__all__ = ["SweepOptions"]


@dataclass(frozen=True)
class SweepOptions:
    """How a sweep executes (never *what* it computes).

    ``executor`` is ``"auto"``/``None`` (serial when ``workers == 1``,
    supervised otherwise), ``"serial"``, or ``"supervised"``.
    ``timeout`` is a per-cell deadline in seconds, enforced only by the
    supervised executor.  ``retries`` is the number of *extra* attempts
    a cell gets after a transient (``crashed``/``timeout``) outcome --
    deterministic failures are never retried.  ``backoff_s`` seeds the
    exponential backoff between attempts; ``breaker_threshold`` is the
    consecutive-transient-failure count that degrades the sweep to
    inline serial execution.  ``chaos`` optionally carries a
    :class:`repro.faults.chaos.ChaosConfig` for fault drills (typed
    loosely to keep this module free of a faults dependency).

    ``progress`` and ``cancel`` let callers that sit far above
    :func:`~repro.sweep.engine.run_sweep` (the simulation service, which
    only sees ``run_experiment``) observe and interrupt a sweep without
    threading new parameters through every driver: ``progress`` is
    called like ``run_sweep``'s own progress callback as each cell
    settles, and ``cancel`` is an event-like object (anything with an
    ``is_set()`` method) -- once set, no further cells are submitted,
    in-flight cells drain into the cache, and ``run_sweep`` raises
    :class:`~repro.sweep.engine.SweepCancelled`.
    """

    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    resume: bool = False
    executor: Optional[str] = None
    timeout: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.05
    breaker_threshold: int = 5
    chaos: Optional[Any] = None
    progress: Optional[Any] = None
    cancel: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.executor is not None and self.executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {self.executor!r}; choose from {EXECUTOR_NAMES}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.progress is not None and not callable(self.progress):
            raise ValueError("progress must be callable (or None)")
        if self.cancel is not None and not callable(
            getattr(self.cancel, "is_set", None)
        ):
            raise ValueError("cancel must expose an is_set() method (or be None)")
