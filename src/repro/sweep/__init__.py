"""Sharded parallel sweep execution (the ``repro sweep`` engine).

Every paper artifact is a grid of independent cells -- ``(task, seed,
family, criterion)`` for the accuracy tables, ``(model, arch)`` for the
end-to-end sweeps, ``(format, fault model)`` for the fault campaigns.
This package turns those serial ``for`` nests into declarative
:class:`~repro.sweep.spec.SweepSpec` objects executed by
:func:`~repro.sweep.engine.run_sweep`:

* **sharding** -- cells run across a ``multiprocessing`` worker pool;
  ``workers=1`` executes inline and reproduces the serial numbers
  bit-exactly (aggregation always walks cells in spec order, never in
  completion order);
* **determinism** -- every cell carries its seeds explicitly in its
  kwargs (and may add a :func:`~repro.sweep.spec.derive_seed`-derived
  ambient seed), so results do not depend on which worker ran it;
* **caching** -- completed cells are pickled content-addressed under a
  :class:`~repro.runtime.cellcache.CellCache` directory, so re-runs and
  ``--resume`` after a killed sweep replay finished cells from disk;
* **fault isolation** -- a cell that raises yields a structured
  :class:`~repro.sweep.engine.SweepCellResult` (error type, message,
  traceback) and never kills the sweep;
* **supervision** -- the :mod:`~repro.sweep.executors` layer runs one
  process per in-flight cell, classifies worker death as ``crashed``
  and deadline overruns as ``timeout``, retries exactly those transient
  outcomes under a deterministic :class:`~repro.sweep.executors
  .RetryPolicy`, and degrades to inline serial execution after repeated
  consecutive crashes (circuit breaker) -- a SIGKILLed or hung worker
  never stalls or unwinds the sweep.
"""

from .engine import (
    CELL_STATUSES,
    SweepCancelled,
    SweepCellResult,
    SweepCellsFailed,
    SweepError,
    SweepResult,
    configured_workers,
    default_workers,
    run_sweep,
)
from .executors import (
    EXECUTOR_NAMES,
    Executor,
    RetryPolicy,
    SerialExecutor,
    SupervisedProcessExecutor,
    Supervisor,
)
from .options import SweepOptions
from .spec import SweepCell, SweepSpec, derive_seed, fn_ref, resolve_fn

__all__ = [
    "CELL_STATUSES",
    "EXECUTOR_NAMES",
    "Executor",
    "RetryPolicy",
    "SerialExecutor",
    "SupervisedProcessExecutor",
    "Supervisor",
    "SweepCancelled",
    "SweepCell",
    "SweepCellResult",
    "SweepCellsFailed",
    "SweepError",
    "SweepOptions",
    "SweepResult",
    "SweepSpec",
    "configured_workers",
    "default_workers",
    "derive_seed",
    "fn_ref",
    "resolve_fn",
    "run_sweep",
]
