"""Pluggable sweep executors with worker supervision and retries.

The engine (:mod:`repro.sweep.engine`) used to ship cells to a bare
``multiprocessing.Pool``: a worker killed by OOM/SIGKILL either hung the
pool or unwound the whole sweep, a hung cell stalled it forever, and
nothing was ever retried.  This module is the supervision layer that
fixes that, behind a small pluggable interface:

* :class:`SerialExecutor` -- runs every cell inline in the submitting
  process.  Zero overhead, bit-exact reference path; cannot enforce
  timeouts and cannot survive a cell that kills the process.
* :class:`SupervisedProcessExecutor` -- one child process per in-flight
  cell, with a result pipe per child.  The supervisor waits on the
  pipes, so it *observes* worker death (EOF without a result -> the
  attempt is classified ``crashed``) and enforces a per-cell deadline
  (SIGKILL on expiry -> ``timeout``) without ever blocking on a corpse.

Outcome state machine for one attempt::

    submitted -> ok | failed | crashed | timeout
                 (cached is decided by the engine before submission)

``ok``/``failed`` come from inside the cell's isolation boundary
(:func:`repro.sweep.engine._execute_payload`) and are **deterministic**
properties of the cell -- they are never retried.  ``crashed`` and
``timeout`` are infrastructure outcomes -- the :class:`RetryPolicy`
retries exactly these, with exponential backoff whose jitter is
:func:`~repro.sweep.spec.derive_seed`-seeded (so a retried sweep is as
reproducible as a clean one).

:class:`Supervisor` drives an executor over a payload queue, applies the
retry policy, and trips a circuit breaker after ``breaker_threshold``
*consecutive* transient failures: worker processes that die that
reliably mean the process infrastructure itself is broken (fork bombs,
cgroup OOM, a poisoned interpreter), so the supervisor degrades
gracefully to inline serial execution for the remaining cells, logs the
degradation, and counts it in :class:`SupervisionStats` (exported as the
``sweep.degraded`` metric).

Determinism-under-retry contract: cell bodies are pure functions of
their payload (seeds travel inside it), so re-running an attempt cannot
change its value -- a chaos-ridden sweep with retries produces the same
:class:`~repro.sweep.engine.SweepResult` values as a clean serial run.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as _mp_connection
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .spec import derive_seed

__all__ = [
    "EXECUTOR_NAMES",
    "TRANSIENT_STATUSES",
    "Executor",
    "RetryPolicy",
    "SerialExecutor",
    "Supervisor",
    "SupervisionStats",
    "SupervisedProcessExecutor",
    "make_executor",
    "resolve_executor_name",
]

logger = logging.getLogger("repro.sweep")

#: Raw per-attempt result: ``(key, status, value_or_detail, elapsed_s,
#: pid, obs_export)`` -- the tuple shape produced by
#: :func:`repro.sweep.engine._execute_payload`, extended with the
#: supervisor-synthesized ``crashed``/``timeout`` statuses.
RawResult = Tuple[str, str, Any, float, int, Optional[Dict[str, Any]]]

#: Attempt outcomes that are infrastructure failures, not properties of
#: the cell -- the only statuses a :class:`RetryPolicy` ever retries.
TRANSIENT_STATUSES = ("crashed", "timeout")

#: Names accepted by :func:`make_executor` / ``run_sweep(executor=...)``.
EXECUTOR_NAMES = ("auto", "serial", "supervised")


def _execute(payload: Dict[str, Any]) -> RawResult:
    """Run one cell inline (lazy import breaks the engine<->executor cycle)."""
    from .engine import _execute_payload

    return _execute_payload(payload)


@dataclass(frozen=True)
class RetryPolicy:
    """When and how transient cell attempts are retried.

    ``max_attempts`` counts *total* attempts (1 = never retry).  The
    backoff before attempt ``n+1`` is ``backoff_s * backoff_factor**(n-1)``
    stretched by up to ``jitter`` relative, where the stretch is derived
    deterministically from ``(seed, key, n)`` via :func:`derive_seed` --
    never from wall clock or process state, so two runs of the same
    chaos-ridden sweep back off identically.
    """

    max_attempts: int = 1
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retry_statuses: Tuple[str, ...] = TRANSIENT_STATUSES

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0 or self.backoff_factor < 1 or self.jitter < 0:
            raise ValueError("backoff_s >= 0, backoff_factor >= 1, jitter >= 0 required")
        bad = set(self.retry_statuses) - set(TRANSIENT_STATUSES)
        if bad:
            raise ValueError(
                f"retry_statuses may only contain transient outcomes "
                f"{TRANSIENT_STATUSES}, got {sorted(bad)}"
            )

    def should_retry(self, status: str, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) that ended in
        ``status`` earns another attempt.  Deterministic failures never do."""
        return status in self.retry_statuses and attempt < self.max_attempts

    def delay_s(self, key: str, attempt: int) -> float:
        """Deterministic backoff before the attempt after ``attempt``."""
        base = self.backoff_s * self.backoff_factor ** max(0, attempt - 1)
        unit = derive_seed(self.seed, "backoff", key, attempt) / 2**32  # [0, 1)
        return base * (1.0 + self.jitter * unit)


@dataclass
class SupervisionStats:
    """Orchestration counters for one supervised sweep (obs-exported)."""

    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    degraded: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Nonzero counters only, keyed the way the metrics registry
        names them (``sweep.<counter>``) minus the prefix."""
        out = {}
        for name in ("retries", "crashes", "timeouts", "degraded"):
            value = getattr(self, name)
            if value:
                out[name] = value
        return out


class Executor:
    """One way of running cell attempts; the supervisor drives it.

    The contract is submit/poll, not map: the supervisor must be able to
    feed retries back in as earlier attempts settle, and must never
    block on a worker that died -- which is exactly what a pool's
    ``imap`` cannot promise.
    """

    name = "base"
    supports_timeout = False

    def free_slots(self) -> int:
        raise NotImplementedError

    def inflight(self) -> int:
        raise NotImplementedError

    def submit(self, payload: Dict[str, Any]) -> None:
        raise NotImplementedError

    def poll(self, timeout_s: float) -> List[RawResult]:
        """Attempts that settled; blocks at most ``timeout_s``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release workers; safe to call twice (and on a broken executor)."""


class SerialExecutor(Executor):
    """Run every attempt inline in the submitting process.

    The bit-exact reference path: no pickling, no processes, no
    supervision.  A per-cell ``timeout`` cannot be enforced inline (there
    is nobody left to enforce it), so it is ignored with one warning.
    """

    name = "serial"
    supports_timeout = False

    def __init__(self, timeout_s: Optional[float] = None):
        if timeout_s is not None:
            logger.warning(
                "serial executor cannot enforce per-cell timeout %.3gs; ignoring "
                "(use executor='supervised' for deadline enforcement)", timeout_s,
            )
        self._settled: List[RawResult] = []

    def free_slots(self) -> int:
        # One cell at a time, and not before the previous settled: keeps
        # progress callbacks firing per cell exactly like the historical
        # inline loop.
        return 0 if self._settled else 1

    def inflight(self) -> int:
        return len(self._settled)

    def submit(self, payload: Dict[str, Any]) -> None:
        self._settled.append(_execute(payload))

    def poll(self, timeout_s: float) -> List[RawResult]:
        settled, self._settled = self._settled, []
        return settled


class _Inflight:
    """Bookkeeping for one in-flight supervised attempt."""

    __slots__ = ("payload", "proc", "conn", "started", "deadline")

    def __init__(self, payload, proc, conn, started, deadline):
        self.payload = payload
        self.proc = proc
        self.conn = conn
        self.started = started
        self.deadline = deadline

    @property
    def key(self) -> str:
        return self.payload["key"]


def _child_main(conn, payload) -> None:  # pragma: no cover - runs in child
    """Worker entry point: run the cell, ship the raw result, exit.

    ``_execute_payload`` never raises (it is the isolation boundary), so
    anything escaping here is infrastructure breakage -- exit nonzero and
    let the parent classify the attempt as crashed.
    """
    try:
        raw = _execute(payload)
    except BaseException:
        os._exit(81)
    try:
        conn.send(raw)
        conn.close()
    except BaseException:
        os._exit(82)


class SupervisedProcessExecutor(Executor):
    """One child process per in-flight cell, each with a result pipe.

    Worker death is *observed*, never inferred: a child that exits
    without sending its result leaves its pipe readable at EOF, which
    :func:`multiprocessing.connection.wait` reports immediately -- the
    attempt settles as ``crashed`` carrying the exit code.  A child past
    its deadline is SIGKILLed and settles as ``timeout``.  Either way the
    sweep keeps going; there is no shared pool to break.
    """

    name = "supervised"
    supports_timeout = True

    def __init__(
        self,
        max_workers: int,
        timeout_s: Optional[float] = None,
        mp_context: Optional[multiprocessing.context.BaseContext] = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self._ctx = mp_context or multiprocessing.get_context()
        self._max = max_workers
        self._timeout = timeout_s
        self._inflight: List[_Inflight] = []

    def free_slots(self) -> int:
        return max(0, self._max - len(self._inflight))

    def inflight(self) -> int:
        return len(self._inflight)

    def next_deadline_in(self, now: float) -> Optional[float]:
        """Seconds until the earliest in-flight deadline, if any."""
        deadlines = [i.deadline for i in self._inflight if i.deadline is not None]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - now)

    def submit(self, payload: Dict[str, Any]) -> None:
        if not self.free_slots():
            raise RuntimeError("no free worker slot; poll() before submitting")
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_child_main, args=(child_conn, payload), daemon=True,
            name=f"repro-sweep-{payload['key']}",
        )
        proc.start()
        child_conn.close()  # parent's copy; the child keeps its own end
        now = time.monotonic()
        deadline = None if self._timeout is None else now + self._timeout
        self._inflight.append(_Inflight(payload, proc, parent_conn, now, deadline))

    def _reap(self, inf: _Inflight, kill: bool = False) -> None:
        if kill and inf.proc.is_alive():
            inf.proc.kill()
        inf.proc.join(timeout=5.0)
        inf.conn.close()
        self._inflight.remove(inf)

    def _crashed(self, inf: _Inflight) -> RawResult:
        inf.proc.join(timeout=5.0)
        code = inf.proc.exitcode
        detail = {
            "error": (
                f"worker pid {inf.proc.pid} died without a result "
                f"(exitcode {code})"
            ),
            "traceback": None,
        }
        return (
            inf.key, "crashed", detail,
            time.monotonic() - inf.started, inf.proc.pid or 0, None,
        )

    def _timed_out(self, inf: _Inflight) -> RawResult:
        detail = {
            "error": (
                f"cell exceeded per-cell timeout {self._timeout:.3g}s; "
                f"worker pid {inf.proc.pid} killed"
            ),
            "traceback": None,
        }
        return (
            inf.key, "timeout", detail,
            time.monotonic() - inf.started, inf.proc.pid or 0, None,
        )

    def poll(self, timeout_s: float) -> List[RawResult]:
        settled: List[RawResult] = []
        if not self._inflight:
            return settled
        # Deadlines bound how long we may sleep; a hung worker must not
        # extend the wait of an already-expired sibling.
        now = time.monotonic()
        till_deadline = self.next_deadline_in(now)
        wait_s = timeout_s if till_deadline is None else min(timeout_s, till_deadline)
        ready = _mp_connection.wait([i.conn for i in self._inflight], timeout=wait_s)
        ready_set = set(ready)
        for inf in [i for i in self._inflight if i.conn in ready_set]:
            try:
                raw = inf.conn.recv()
            except (EOFError, OSError):  # died before/while sending
                raw = self._crashed(inf)
            except Exception:  # partial/garbled pickle from a dying worker
                raw = self._crashed(inf)
            self._reap(inf)
            settled.append(raw)
        now = time.monotonic()
        for inf in [i for i in self._inflight if i.deadline is not None and now >= i.deadline]:
            raw = self._timed_out(inf)
            self._reap(inf, kill=True)
            settled.append(raw)
        return settled

    def close(self) -> None:
        for inf in list(self._inflight):
            self._reap(inf, kill=True)


def resolve_executor_name(
    name: Optional[str], workers: int, force_supervised: bool = False
) -> str:
    """Resolve a user-facing executor choice to a concrete executor name.

    ``None``/``"auto"`` picks serial for ``workers == 1`` (the historical
    bit-exact inline path) and supervised otherwise.  ``force_supervised``
    (chaos injection active) upgrades auto-serial to supervised -- chaos
    crash cells run inline would kill the submitting process -- but an
    explicit ``"serial"`` is honoured (the caller asked for it).
    """
    if name in (None, "auto"):
        if force_supervised:
            return "supervised"
        return "supervised" if workers > 1 else "serial"
    if name not in ("serial", "supervised"):
        raise ValueError(
            f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}"
        )
    return name


def make_executor(
    name: str, workers: int, timeout_s: Optional[float] = None
) -> Executor:
    """Instantiate a concrete executor by (already-resolved) name."""
    if name == "serial":
        return SerialExecutor(timeout_s=timeout_s)
    if name == "supervised":
        return SupervisedProcessExecutor(workers, timeout_s=timeout_s)
    raise ValueError(f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}")


class Supervisor:
    """Drive an executor over a payload queue with retries and a breaker.

    :meth:`run` yields ``(raw_result, attempts)`` for every payload's
    *final* attempt, in completion order (the engine re-folds into spec
    order).  Transient attempts that earn a retry are re-queued with a
    deterministic backoff and never surface.  After
    ``breaker_threshold`` consecutive transient failures the supervisor
    degrades to inline serial execution for everything still queued
    (in-flight workers are drained normally) -- the sweep finishes,
    degraded but complete.

    The breaker's premise is that repeated crashes mean the *process
    infrastructure* is broken (fork failures, OOM killer, a poisoned
    interpreter), not the cells -- inline execution has no crash or
    timeout protection.  ``breaker_threshold=None`` disables it; chaos
    drills (:mod:`repro.faults.chaos`) run with the breaker disabled,
    because induced crashes are expected there and degrading inline
    would execute a crash cell in the supervisor process itself.
    """

    #: Upper bound on one poll() sleep: keeps the supervisor responsive
    #: to newly-due retries without busy-waiting.
    _POLL_SLICE_S = 0.2

    def __init__(
        self,
        executor: Executor,
        policy: Optional[RetryPolicy] = None,
        breaker_threshold: Optional[int] = 5,
    ):
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, got {breaker_threshold}")
        self.executor = executor
        self.policy = policy or RetryPolicy()
        self.breaker_threshold = breaker_threshold
        self.stats = SupervisionStats()
        self._consecutive_transient = 0
        self._degraded = False

    @property
    def degraded(self) -> bool:
        return self._degraded

    def _trip_breaker(self) -> None:
        self._degraded = True
        self.stats.degraded = 1
        logger.error(
            "sweep supervisor: %d consecutive worker crash/timeout outcomes; "
            "circuit breaker tripped -- degrading to inline serial execution "
            "for remaining cells",
            self._consecutive_transient,
        )

    def run(
        self, payloads: List[Dict[str, Any]], cancel: Optional[Any] = None
    ) -> Iterator[Tuple[RawResult, int]]:
        """Yield final attempts; ``cancel`` (event-like, ``is_set()``)
        stops new submissions and drops queued/delayed work -- in-flight
        attempts still drain, so nothing half-run is abandoned."""
        self._payloads_by_key = {p["key"]: p for p in payloads}
        ready = deque((payload, 1) for payload in payloads)
        delayed: List[Tuple[float, Dict[str, Any], int]] = []  # (due, payload, attempt)
        attempts_of: Dict[str, int] = {}

        while ready or delayed or self.executor.inflight():
            if cancel is not None and cancel.is_set():
                ready.clear()
                delayed.clear()
                if not self.executor.inflight():
                    break
            now = time.monotonic()
            if delayed:
                due = [e for e in delayed if e[0] <= now]
                for entry in due:
                    delayed.remove(entry)
                    ready.append((entry[1], entry[2]))
            while ready and (self._degraded or self.executor.free_slots()):
                payload, attempt = ready.popleft()
                attempts_of[payload["key"]] = attempt
                if self._degraded:
                    yield from self._settle(_execute(payload), attempt, delayed)
                else:
                    self.executor.submit(payload)
            if not self.executor.inflight() and not ready:
                if delayed:  # nothing to poll; sleep until the next retry is due
                    pause = min(e[0] for e in delayed) - time.monotonic()
                    if pause > 0:
                        time.sleep(min(pause, self._POLL_SLICE_S))
                continue
            for raw in self.executor.poll(self._POLL_SLICE_S):
                yield from self._settle(raw, attempts_of[raw[0]], delayed)

    def _settle(
        self,
        raw: RawResult,
        attempt: int,
        delayed: List[Tuple[float, Dict[str, Any], int]],
    ) -> Iterator[Tuple[RawResult, int]]:
        key, status = raw[0], raw[1]
        if status in TRANSIENT_STATUSES:
            if status == "crashed":
                self.stats.crashes += 1
            else:
                self.stats.timeouts += 1
            self._consecutive_transient += 1
            if (
                not self._degraded
                and self.breaker_threshold is not None
                and self._consecutive_transient >= self.breaker_threshold
            ):
                self._trip_breaker()
            if self.policy.should_retry(status, attempt):
                self.stats.retries += 1
                delay = self.policy.delay_s(key, attempt)
                payload = self._payload_for(key)
                logger.warning(
                    "sweep cell %s attempt %d ended %s (%s); retrying in %.3fs "
                    "(attempt %d/%d)",
                    key, attempt, status, raw[2]["error"], delay,
                    attempt + 1, self.policy.max_attempts,
                )
                delayed.append((time.monotonic() + delay, payload, attempt + 1))
                return
        else:
            self._consecutive_transient = 0
        yield raw, attempt

    def _payload_for(self, key: str) -> Dict[str, Any]:
        payload = self._payloads_by_key.get(key)
        if payload is None:  # pragma: no cover - run() always registers first
            raise KeyError(f"no payload registered for cell {key!r}")
        return payload
