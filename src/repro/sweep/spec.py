"""Declarative sweep specifications: what to run, not how to run it.

A :class:`SweepSpec` is a named, ordered collection of
:class:`SweepCell` grid points.  Each cell names a *module-level*
callable by import path (``"package.module:function"``) plus the exact
keyword arguments of that grid point -- everything a worker process
needs to recompute the cell from scratch, and exactly what the cell
cache hashes.  Cells must therefore be picklable and self-contained:
seeds travel inside ``kwargs``, never in ambient process state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, Iterable, Optional, Tuple, Union

__all__ = ["SweepCell", "SweepSpec", "derive_seed", "fn_ref", "resolve_fn"]


def derive_seed(base_seed: int, *parts: Any) -> int:
    """Deterministic 32-bit seed for one cell of a sweep.

    Hashes ``(base_seed, parts)`` through SHA-256, so the seed depends
    only on the sweep's master seed and the cell's identity -- never on
    worker assignment, completion order, or process id.  Use it when a
    driver needs per-cell randomness that is not already threaded
    through explicit ``seed=`` kwargs.
    """
    digest = hashlib.sha256(repr((int(base_seed), parts)).encode()).digest()
    return int.from_bytes(digest[:4], "little")


def fn_ref(fn: Union[str, Callable[..., Any]]) -> str:
    """Normalize a callable to its ``"module:qualname"`` import path.

    Only module-level functions are accepted: the path must resolve back
    to the same object, which rejects lambdas, closures and bound
    methods up front (they would fail later, unpicklably, inside a
    worker).
    """
    if isinstance(fn, str):
        resolve_fn(fn)
        return fn
    ref = f"{fn.__module__}:{getattr(fn, '__qualname__', fn.__name__)}"
    try:
        resolved = resolve_fn(ref)
    except (ImportError, AttributeError, TypeError, ValueError):
        resolved = None
    if resolved is not fn:
        raise ValueError(
            f"{ref!r} does not resolve back to the given callable; "
            "sweep cells need module-level functions"
        )
    return ref


def resolve_fn(ref: str) -> Callable[..., Any]:
    """Import the callable a ``"module:qualname"`` reference names."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed function reference {ref!r}; want 'module:qualname'")
    obj: Any = import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"{ref!r} resolves to a non-callable {type(obj).__name__}")
    return obj


@dataclass(frozen=True)
class SweepCell:
    """One grid point: a key, a callable reference, and its kwargs.

    ``key`` must be unique within the sweep and stable across runs -- it
    names the cell in progress output, error reports, and cache files.
    ``seed`` is an optional ambient seed the engine installs (via
    ``numpy.random.seed``) before the cell body runs, for legacy code
    paths that still draw from the global generator; well-behaved cells
    carry explicit seeds in ``kwargs`` instead.
    """

    key: str
    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "fn", fn_ref(self.fn))

    def payload(self) -> Dict[str, Any]:
        """The cell's logical identity -- exactly what the cache hashes."""
        return {"fn": self.fn, "kwargs": self.kwargs, "seed": self.seed}


@dataclass(frozen=True)
class SweepSpec:
    """A named, ordered set of cells (the declarative sweep input)."""

    name: str
    cells: Tuple[SweepCell, ...]

    def __post_init__(self) -> None:
        cells = tuple(self.cells)
        object.__setattr__(self, "cells", cells)
        seen = set()
        for cell in cells:
            if cell.key in seen:
                raise ValueError(f"duplicate cell key {cell.key!r} in sweep {self.name!r}")
            seen.add(cell.key)

    def __len__(self) -> int:
        return len(self.cells)

    @classmethod
    def build(
        cls,
        name: str,
        fn: Union[str, Callable[..., Any]],
        grid: Iterable[Tuple[str, Dict[str, Any]]],
        base_seed: Optional[int] = None,
    ) -> "SweepSpec":
        """Spec with one cell per ``(key, kwargs)`` grid entry.

        With ``base_seed`` given, every cell also gets a
        :func:`derive_seed`-derived ambient seed from its key.
        """
        ref = fn_ref(fn)
        cells = tuple(
            SweepCell(
                key=key,
                fn=ref,
                kwargs=dict(kwargs),
                seed=None if base_seed is None else derive_seed(base_seed, key),
            )
            for key, kwargs in grid
        )
        return cls(name=name, cells=cells)
