"""Process-parallel sweep execution with caching and fault isolation.

:func:`run_sweep` executes every cell of a :class:`~repro.sweep.spec
.SweepSpec` and returns a :class:`SweepResult` whose cells are always in
**spec order**, whatever order the pool finished them in -- aggregation
code downstream can therefore fold results exactly the way the old
serial loops did, which is what makes ``--workers N`` bit-identical to
``--workers 1``.

Execution model:

* ``workers <= 1`` runs every cell inline in this process (no pool, no
  pickling) -- the reference path;
* ``workers > 1`` ships ``(fn-ref, kwargs)`` payloads to a
  ``multiprocessing`` pool; each worker re-imports the callable, runs
  the cell under the submitting process's check level, and returns
  either the value or a structured error;
* a cell that raises becomes a failed :class:`SweepCellResult` carrying
  ``error`` and ``traceback`` strings -- it is logged through the
  ``repro.sweep`` logger and never unwinds the sweep;
* with a cache directory, finished cells are pickled content-addressed
  (:mod:`repro.runtime.cellcache`); ``resume=True`` serves hits from
  disk, so restarting a killed sweep only recomputes missing cells.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..obs import metrics as obs_metrics
from ..obs import state as obs_state
from ..obs import tracer as obs_tracer
from ..runtime.cellcache import CellCache
from ..runtime.checks import check_level, get_check_level
from .spec import SweepSpec, resolve_fn

__all__ = [
    "SweepCellResult",
    "SweepError",
    "SweepResult",
    "configured_workers",
    "default_workers",
    "run_sweep",
]

logger = logging.getLogger("repro.sweep")


class SweepError(RuntimeError):
    """Engine-level failure (misuse or, under ``strict=True``, failed cells)."""


def default_workers() -> int:
    """Worker count to use when the caller does not say.

    Honours ``REPRO_SWEEP_WORKERS`` (how the benchmark harness and CI
    select parallelism without threading a flag through every driver),
    else falls back to the machine's CPU count.
    """
    env = _env_workers()
    if env is not None:
        return env
    return max(1, os.cpu_count() or 1)


def _env_workers() -> Optional[int]:
    env = os.environ.get("REPRO_SWEEP_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            logger.warning("ignoring malformed REPRO_SWEEP_WORKERS=%r", env)
    return None


def configured_workers(explicit: Optional[int] = None) -> int:
    """Resolve a driver's ``workers`` parameter to a concrete count.

    Precedence: an explicit argument, then ``REPRO_SWEEP_WORKERS``, then
    1 (serial) -- drivers stay bit-exactly serial unless somebody opted
    into parallelism.
    """
    if explicit is not None:
        if explicit < 1:
            raise SweepError(f"workers must be >= 1, got {explicit}")
        return int(explicit)
    return _env_workers() or 1


@dataclass
class SweepCellResult:
    """Outcome of one sweep cell (ok, cached, or failed)."""

    key: str
    status: str  # "ok" | "cached" | "failed"
    value: Any = None
    error: Optional[str] = None  #: "ExcType: message" for failed cells
    traceback: Optional[str] = None  #: full formatted traceback for failed cells
    elapsed_s: float = 0.0
    worker: Optional[int] = None  #: pid of the process that ran the cell
    #: Deterministic observability payload of this cell's execution
    #: (``repro.obs.metrics`` ``to_dict(deterministic_only=True)``),
    #: present only when observability was enabled at submit time.  The
    #: cell body runs against a fresh registry (and a cleared block-cost
    #: memo), so the payload is identical whichever worker ran it --
    #: failed cells keep theirs as forensics.  Cached cells have None.
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class SweepResult:
    """All cells of one sweep, in spec order, plus run metadata."""

    spec_name: str
    workers: int
    cells: List[SweepCellResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> List[SweepCellResult]:
        return [cell for cell in self.cells if not cell.ok]

    def value(self, key: str) -> Any:
        for cell in self.cells:
            if cell.key == key:
                if not cell.ok:
                    raise SweepError(f"cell {key!r} failed: {cell.error}")
                return cell.value
        raise KeyError(f"no cell {key!r} in sweep {self.spec_name!r}")

    def values(self) -> Dict[str, Any]:
        """``{key: value}`` over the cells that succeeded."""
        return {cell.key: cell.value for cell in self.cells if cell.ok}

    def summary(self) -> str:
        ok = sum(1 for c in self.cells if c.status == "ok")
        cached = sum(1 for c in self.cells if c.status == "cached")
        failed = len(self.failures)
        return (
            f"{len(self.cells)} cells ({ok} computed, {cached} from cache, "
            f"{failed} failed) in {self.elapsed_s:.2f} s with {self.workers} worker(s)"
        )

    def metrics(self) -> Optional[Dict[str, Any]]:
        """Merged deterministic metrics of the whole sweep, or None.

        Folds every cell's payload in **spec order** (the merge is
        order-insensitive anyway; spec order makes the identity obvious)
        and adds the orchestration counters
        ``sweep.cells_{ok,cached,failed}`` -- so the dict is
        byte-identical between ``--workers 1`` and ``--workers N``.
        """
        payloads = [c.metrics for c in self.cells if c.metrics is not None]
        if not payloads and not obs_state.enabled():
            return None
        reg = obs_metrics.MetricsRegistry.merged(payloads)
        for status in ("ok", "cached", "failed"):
            n = sum(1 for c in self.cells if c.status == status)
            if n:
                reg.counter_add(f"sweep.cells_{status}", n)
        return reg.to_dict(deterministic_only=True)


class _ObsCellScope:
    """Isolated observability collection for one sweep cell.

    Installs a fresh metrics registry and trace buffer (and clears the
    block-cost memo, whose warmth is process-history-dependent), enables
    obs, and wraps the cell in a ``sweep.cell.<key>`` span.  ``close()``
    exports the cell's deterministic metrics plus its trace events and
    restores the previous sinks -- the same code runs inline and in
    workers, which is what makes serial and parallel metrics identical.
    """

    def __init__(self, key: str):
        self._key = key

    def open(self) -> None:
        from ..sim.engine import clear_cost_memo

        clear_cost_memo()
        self._prev_registry = obs_metrics.swap_registry()
        self._prev_buffer = obs_tracer.swap_buffer()
        self._was_enabled = obs_state.enabled()
        obs_state.enable()
        self._span = obs_tracer.span(f"sweep.cell.{self._key}")
        self._span.__enter__()

    def close(self) -> Dict[str, Any]:
        self._span.__exit__(None, None, None)
        exported = {
            "metrics": obs_metrics.registry().to_dict(deterministic_only=True),
            "events": obs_tracer.events(),
        }
        if not self._was_enabled:
            obs_state.disable()
        obs_metrics.swap_registry(self._prev_registry)
        obs_tracer.swap_buffer(self._prev_buffer)
        return exported


def _execute_payload(
    payload: Dict[str, Any],
) -> Tuple[str, str, Any, float, int, Optional[Dict[str, Any]]]:
    """Run one cell body; never raises (the isolation boundary).

    Returns ``(key, status, value_or_error, elapsed_s, pid, obs)`` where
    a failed cell's third slot is ``{"error": ..., "traceback": ...}``
    and ``obs`` (when the submitting process had observability on) is
    ``{"metrics": ..., "events": [...]}``.  Runs in the worker process
    under ``workers > 1`` and inline under ``workers <= 1`` -- one code
    path, so both modes compute the same thing.  Obs enablement travels
    in the payload (like ``check_level``) rather than relying on fork
    inheritance, so spawn-based pools behave identically.
    """
    key = payload["key"]
    start = time.perf_counter()
    obs_export: Optional[Dict[str, Any]] = None
    try:
        fn = resolve_fn(payload["fn"])
        if payload.get("seed") is not None:
            import numpy as np

            np.random.seed(payload["seed"] & 0xFFFFFFFF)
        scope = None
        if payload.get("obs"):
            scope = _ObsCellScope(key)
            scope.open()
        try:
            with check_level(payload.get("check_level", "off")):
                value = fn(**payload["kwargs"])
            pickle.dumps(value)  # fail *inside* the isolation boundary, not in the pool
        finally:
            if scope is not None:
                obs_export = scope.close()
    except KeyboardInterrupt:  # pragma: no cover - user abort must propagate
        raise
    except BaseException as exc:  # noqa: BLE001 - cell isolation is the point
        detail = {"error": f"{type(exc).__name__}: {exc}", "traceback": traceback.format_exc()}
        return key, "failed", detail, time.perf_counter() - start, os.getpid(), obs_export
    return key, "ok", value, time.perf_counter() - start, os.getpid(), obs_export


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    resume: bool = False,
    progress: Optional[Callable[[SweepCellResult, int, int], None]] = None,
    strict: bool = False,
) -> SweepResult:
    """Execute every cell of ``spec`` and return results in spec order.

    ``progress`` (if given) is called as each cell settles, with the
    cell result plus ``(done, total)`` counts -- note this happens in
    *completion* order, which under parallelism is nondeterministic;
    only the returned :class:`SweepResult` ordering is stable.
    ``strict=True`` raises :class:`SweepError` after the sweep completes
    if any cell failed (the sweep itself still runs to the end).
    """
    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    cache = CellCache(cache_dir) if cache_dir else None
    ambient_level = get_check_level()
    start = time.perf_counter()
    total = len(spec.cells)
    by_key: Dict[str, SweepCellResult] = {}
    done = 0

    def settle(result: SweepCellResult) -> None:
        nonlocal done
        done += 1
        by_key[result.key] = result
        if result.status == "failed":
            logger.error(
                "sweep %s: cell %s failed after %.2f s: %s",
                spec.name, result.key, result.elapsed_s, result.error,
            )
        if progress is not None:
            progress(result, done, total)

    pending: List[Dict[str, Any]] = []
    for cell in spec.cells:
        path = cache.path(cell.key, cell.payload()) if cache is not None else None
        if resume and cache is not None:
            hit = cache.read(path)
            if hit is not None:
                settle(SweepCellResult(cell.key, "cached", value=hit))
                continue
        pending.append(
            {
                "key": cell.key,
                "fn": cell.fn,
                "kwargs": cell.kwargs,
                "seed": cell.seed,
                "check_level": ambient_level,
                "obs": obs_state.enabled(),
            }
        )

    def finish(raw: Tuple[str, str, Any, float, int, Optional[Dict[str, Any]]]) -> None:
        key, status, value, elapsed, pid, obs_export = raw
        cell_metrics = None
        if obs_export is not None:
            cell_metrics = obs_export["metrics"]
            # Trace events keep their worker pid/clock, so ingesting in
            # completion order is safe (per-track monotonicity holds).
            obs_tracer.ingest(obs_export["events"])
        if status == "failed":
            settle(
                SweepCellResult(
                    key, "failed", error=value["error"], traceback=value["traceback"],
                    elapsed_s=elapsed, worker=pid, metrics=cell_metrics,
                )
            )
            return
        if cache is not None:
            cell = next(c for c in spec.cells if c.key == key)
            cache.write(cache.path(key, cell.payload()), value)
        settle(
            SweepCellResult(
                key, "ok", value=value, elapsed_s=elapsed, worker=pid,
                metrics=cell_metrics,
            )
        )

    if pending:
        n_workers = min(max(1, workers), len(pending))
        if n_workers == 1:
            for payload in pending:
                finish(_execute_payload(payload))
        else:
            # chunksize=1: cells are coarse (a whole training run or
            # simulation each), so fair dealing beats batching.
            with multiprocessing.Pool(processes=n_workers) as pool:
                for raw in pool.imap_unordered(_execute_payload, pending, chunksize=1):
                    finish(raw)

    ordered = [by_key[cell.key] for cell in spec.cells]
    if obs_state.enabled():
        # Fold cell metrics into the ambient registry in spec order (and
        # count orchestration outcomes), so `repro report/trace --metrics`
        # can export one registry for a whole experiment.
        for cell_result in ordered:
            if cell_result.metrics is not None:
                obs_metrics.merge_payload(cell_result.metrics)
            obs_metrics.counter_add(f"sweep.cells_{cell_result.status}")
    result = SweepResult(
        spec_name=spec.name,
        workers=workers,
        cells=ordered,
        elapsed_s=time.perf_counter() - start,
    )
    if strict and not result.ok:
        raise SweepError(
            f"sweep {spec.name!r}: {len(result.failures)} cell(s) failed: "
            + ", ".join(c.key for c in result.failures)
        )
    return result
