"""Supervised parallel sweep execution with caching and fault isolation.

:func:`run_sweep` executes every cell of a :class:`~repro.sweep.spec
.SweepSpec` and returns a :class:`SweepResult` whose cells are always in
**spec order**, whatever order execution finished them in -- aggregation
code downstream can therefore fold results exactly the way the old
serial loops did, which is what makes ``--workers N`` bit-identical to
``--workers 1``.

Execution model (see :mod:`repro.sweep.executors` for the machinery):

* the ``serial`` executor runs every cell inline in this process (no
  pool, no pickling) -- the reference path, picked automatically for
  ``workers == 1``;
* the ``supervised`` executor runs one child process per in-flight cell
  and *watches* it: a worker that dies (OOM, SIGKILL, ``os._exit``)
  settles its cell as ``crashed``, a worker past the per-cell
  ``timeout`` is killed and settles as ``timeout`` -- neither hangs or
  unwinds the sweep;
* transient outcomes (``crashed``/``timeout``) are retried up to
  ``retries`` extra attempts with deterministic exponential backoff;
  deterministic failures (a cell that *raises*) become a structured
  ``failed`` :class:`SweepCellResult` carrying ``error`` and
  ``traceback`` strings and are never retried;
* after ``SweepOptions.breaker_threshold`` consecutive transient
  failures a circuit breaker degrades the sweep to inline serial
  execution (logged, and counted as ``sweep.degraded``);
* with a cache directory, finished cells are pickled content-addressed
  (:mod:`repro.runtime.cellcache`); ``resume=True`` serves hits from
  disk, so restarting a killed sweep only recomputes missing cells.

Chaos drills: a :class:`repro.faults.chaos.ChaosConfig` (programmatic
via ``SweepOptions.chaos`` or ambient via ``REPRO_SWEEP_CHAOS``) wraps
execution payloads so cells misbehave on their first attempts; cache
hashing still sees the clean payloads, and retried values are identical
to a clean run's -- the determinism-under-retry contract the chaos test
suite pins.
"""

from __future__ import annotations

import logging
import os
import pickle
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..obs import metrics as obs_metrics
from ..obs import state as obs_state
from ..obs import tracer as obs_tracer
from ..runtime.cellcache import CellCache
from ..runtime.checks import check_level, get_check_level
from .executors import RetryPolicy, Supervisor, make_executor, resolve_executor_name
from .options import SweepOptions
from .spec import SweepSpec, derive_seed, resolve_fn

__all__ = [
    "SweepCancelled",
    "SweepCellResult",
    "SweepCellsFailed",
    "SweepError",
    "SweepResult",
    "configured_workers",
    "default_workers",
    "run_sweep",
]

logger = logging.getLogger("repro.sweep")

#: Every status a settled cell can carry.  ``cached`` is decided before
#: submission; ``ok``/``failed`` come from inside the cell body;
#: ``crashed``/``timeout`` are synthesized by the supervising executor
#: for attempts whose worker died or overran the per-cell deadline.
CELL_STATUSES = ("ok", "cached", "failed", "crashed", "timeout")


class SweepError(RuntimeError):
    """Engine-level failure (misuse or, under ``strict=True``, failed cells)."""


class SweepCellsFailed(SweepError):
    """One or more cells ended in a terminal non-ok status.

    Distinct from plain :class:`SweepError` (misuse: bad worker counts,
    unknown executors) so callers -- the CLI in particular -- can map
    *cell outcomes* to their own exit code instead of conflating them
    with usage errors.  ``failures`` carries the failed
    :class:`SweepCellResult` rows; ``result`` the full
    :class:`SweepResult` when the sweep ran to completion (``None`` when
    raised from :meth:`SweepResult.value` during aggregation).
    """

    def __init__(self, message: str, failures=(), result=None):
        super().__init__(message)
        self.failures = list(failures)
        self.result = result


class SweepCancelled(SweepError):
    """The sweep was interrupted by its cancellation token.

    Already-settled cells were cached (when a cache is configured), so a
    later run with ``resume=True`` continues where this one stopped --
    the exception is a checkpoint marker, not a loss of work.  ``done``
    and ``total`` count settled vs. requested cells; ``pending_keys``
    names the cells that never ran.
    """

    def __init__(self, spec_name: str, done: int, total: int, pending_keys=()):
        super().__init__(
            f"sweep {spec_name!r} cancelled after {done}/{total} cell(s)"
        )
        self.spec_name = spec_name
        self.done = done
        self.total = total
        self.pending_keys = list(pending_keys)


def default_workers() -> int:
    """Worker count to use when the caller does not say.

    Honours ``REPRO_SWEEP_WORKERS`` (how the benchmark harness and CI
    select parallelism without threading a flag through every driver),
    else falls back to the machine's CPU count.
    """
    env = _env_workers()
    if env is not None:
        return env
    return max(1, os.cpu_count() or 1)


def _env_workers() -> Optional[int]:
    env = os.environ.get("REPRO_SWEEP_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            logger.warning("ignoring malformed REPRO_SWEEP_WORKERS=%r", env)
    return None


def configured_workers(explicit: Optional[int] = None) -> int:
    """Resolve a driver's ``workers`` parameter to a concrete count.

    Precedence: an explicit argument, then ``REPRO_SWEEP_WORKERS``, then
    1 (serial) -- drivers stay bit-exactly serial unless somebody opted
    into parallelism.
    """
    if explicit is not None:
        if explicit < 1:
            raise SweepError(f"workers must be >= 1, got {explicit}")
        return int(explicit)
    return _env_workers() or 1


@dataclass
class SweepCellResult:
    """Outcome of one sweep cell (ok, cached, failed, crashed, or timeout)."""

    key: str
    status: str  #: one of :data:`CELL_STATUSES`
    value: Any = None
    error: Optional[str] = None  #: "ExcType: message" / supervisor diagnosis
    traceback: Optional[str] = None  #: formatted traceback (``failed`` only)
    elapsed_s: float = 0.0
    worker: Optional[int] = None  #: pid of the process that ran the cell
    #: Deterministic observability payload of this cell's execution
    #: (``repro.obs.metrics`` ``to_dict(deterministic_only=True)``),
    #: present only when observability was enabled at submit time.  The
    #: cell body runs against a fresh registry (and a cleared block-cost
    #: memo), so the payload is identical whichever worker ran it --
    #: failed cells keep theirs as forensics.  Cached cells have None.
    metrics: Optional[Dict[str, Any]] = None
    #: Execution attempts this cell took (1 for a clean run, more after
    #: crash/timeout retries, 0 when served from cache).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class SweepResult:
    """All cells of one sweep, in spec order, plus run metadata."""

    spec_name: str
    workers: int
    cells: List[SweepCellResult] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: Nonzero supervision counters of the run (``retries``, ``crashes``,
    #: ``timeouts``, ``degraded``); empty for clean sweeps.
    supervision: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> List[SweepCellResult]:
        return [cell for cell in self.cells if not cell.ok]

    def value(self, key: str) -> Any:
        for cell in self.cells:
            if cell.key == key:
                if not cell.ok:
                    raise SweepCellsFailed(
                        f"cell {key!r} failed: {cell.error}", failures=[cell]
                    )
                return cell.value
        raise KeyError(f"no cell {key!r} in sweep {self.spec_name!r}")

    def values(self) -> Dict[str, Any]:
        """``{key: value}`` over the cells that succeeded."""
        return {cell.key: cell.value for cell in self.cells if cell.ok}

    def summary(self) -> str:
        ok = sum(1 for c in self.cells if c.status == "ok")
        cached = sum(1 for c in self.cells if c.status == "cached")
        failed = len(self.failures)
        base = (
            f"{len(self.cells)} cells ({ok} computed, {cached} from cache, "
            f"{failed} failed) in {self.elapsed_s:.2f} s with {self.workers} worker(s)"
        )
        if self.supervision:
            bits = ", ".join(f"{v} {k}" for k, v in sorted(self.supervision.items()))
            base += f" [{bits}]"
        return base

    def metrics(self) -> Optional[Dict[str, Any]]:
        """Merged deterministic metrics of the whole sweep, or None.

        Folds every cell's payload in **spec order** (the merge is
        order-insensitive anyway; spec order makes the identity obvious)
        and adds the orchestration counters ``sweep.cells_{status}``
        plus the supervision counters (``sweep.retries`` ...) -- so the
        dict is byte-identical between ``--workers 1`` and ``--workers
        N`` (supervision counts depend only on the cells and the chaos
        configuration, never on worker assignment).
        """
        payloads = [c.metrics for c in self.cells if c.metrics is not None]
        if not payloads and not obs_state.enabled():
            return None
        reg = obs_metrics.MetricsRegistry.merged(payloads)
        for status in CELL_STATUSES:
            n = sum(1 for c in self.cells if c.status == status)
            if n:
                reg.counter_add(f"sweep.cells_{status}", n)
        for name, value in self.supervision.items():
            reg.counter_add(f"sweep.{name}", value)
        return reg.to_dict(deterministic_only=True)


class _ObsCellScope:
    """Isolated observability collection for one sweep cell.

    Installs a fresh metrics registry and trace buffer (and clears the
    block-cost memo, whose warmth is process-history-dependent), enables
    obs, and wraps the cell in a ``sweep.cell.<key>`` span.  ``close()``
    exports the cell's deterministic metrics plus its trace events and
    restores the previous sinks -- the same code runs inline and in
    workers, which is what makes serial and parallel metrics identical.
    """

    def __init__(self, key: str):
        self._key = key

    def open(self) -> None:
        from ..sim.engine import clear_cost_memo

        clear_cost_memo()
        self._prev_registry = obs_metrics.swap_registry()
        self._prev_buffer = obs_tracer.swap_buffer()
        self._was_enabled = obs_state.enabled()
        obs_state.enable()
        self._span = obs_tracer.span(f"sweep.cell.{self._key}")
        self._span.__enter__()

    def close(self) -> Dict[str, Any]:
        self._span.__exit__(None, None, None)
        exported = {
            "metrics": obs_metrics.registry().to_dict(deterministic_only=True),
            "events": obs_tracer.events(),
        }
        if not self._was_enabled:
            obs_state.disable()
        obs_metrics.swap_registry(self._prev_registry)
        obs_tracer.swap_buffer(self._prev_buffer)
        return exported


def _execute_payload(
    payload: Dict[str, Any],
) -> Tuple[str, str, Any, float, int, Optional[Dict[str, Any]]]:
    """Run one cell body; never raises (the isolation boundary).

    Returns ``(key, status, value_or_error, elapsed_s, pid, obs)`` where
    a failed cell's third slot is ``{"error": ..., "traceback": ...}``
    and ``obs`` (when the submitting process had observability on) is
    ``{"metrics": ..., "events": [...]}``.  Runs in a worker process
    under the supervised executor and inline under the serial one -- one
    code path, so both modes compute the same thing.  Obs enablement
    travels in the payload (like ``check_level``) rather than relying on
    fork inheritance, so spawn-based contexts behave identically.

    Cells carrying an ambient ``seed`` run against a *seeded* global
    numpy RNG, but the caller's RNG state is saved and restored around
    the cell body -- inline sweeps must not perturb ambient randomness.
    """
    key = payload["key"]
    start = time.perf_counter()
    obs_export: Optional[Dict[str, Any]] = None
    rng_state = None
    try:
        fn = resolve_fn(payload["fn"])
        if payload.get("seed") is not None:
            import numpy as np

            rng_state = np.random.get_state()
            np.random.seed(payload["seed"] & 0xFFFFFFFF)
        scope = None
        if payload.get("obs"):
            scope = _ObsCellScope(key)
            scope.open()
        try:
            with check_level(payload.get("check_level", "off")):
                value = fn(**payload["kwargs"])
            pickle.dumps(value)  # fail *inside* the isolation boundary, not in the pool
        finally:
            if scope is not None:
                obs_export = scope.close()
    except KeyboardInterrupt:  # pragma: no cover - user abort must propagate
        raise
    except BaseException as exc:  # noqa: BLE001 - cell isolation is the point
        detail = {"error": f"{type(exc).__name__}: {exc}", "traceback": traceback.format_exc()}
        return key, "failed", detail, time.perf_counter() - start, os.getpid(), obs_export
    finally:
        if rng_state is not None:
            import numpy as np

            np.random.set_state(rng_state)
    return key, "ok", value, time.perf_counter() - start, os.getpid(), obs_export


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    resume: bool = False,
    progress: Optional[Callable[[SweepCellResult, int, int], None]] = None,
    strict: bool = False,
    executor: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    options: Optional[SweepOptions] = None,
    cancel: Optional[Any] = None,
) -> SweepResult:
    """Execute every cell of ``spec`` and return results in spec order.

    ``progress`` (if given) is called as each cell settles, with the
    cell result plus ``(done, total)`` counts -- note this happens in
    *completion* order, which under parallelism is nondeterministic;
    only the returned :class:`SweepResult` ordering is stable.
    ``strict=True`` raises :class:`SweepCellsFailed` after the sweep
    completes if any cell failed (the sweep itself still runs to the
    end).

    ``cancel`` is an event-like object (``is_set()``): once set, no
    further cells are submitted, in-flight cells drain into the cache,
    and the call raises :class:`SweepCancelled`.  A later run with the
    same cache and ``resume=True`` continues from the settled cells.

    ``options`` (a :class:`~repro.sweep.options.SweepOptions`) supplies
    defaults for every execution knob; explicitly-passed keyword
    arguments win over it.  ``executor`` is ``"auto"`` (default),
    ``"serial"``, or ``"supervised"``; ``timeout`` is a per-cell
    deadline in seconds (supervised only); ``retries`` is the number of
    extra attempts after a transient ``crashed``/``timeout`` outcome.
    """
    opts = options if options is not None else SweepOptions()
    if workers is None:
        workers = opts.workers if opts.workers is not None else 1
    if cache_dir is None:
        cache_dir = opts.cache_dir
    resume = resume or opts.resume
    if executor is None:
        executor = opts.executor
    if timeout is None:
        timeout = opts.timeout
    if retries is None:
        retries = opts.retries
    if progress is None:
        progress = opts.progress
    if cancel is None:
        cancel = opts.cancel

    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise SweepError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise SweepError(f"timeout must be > 0, got {timeout}")
    try:
        resolve_executor_name(executor, workers)
    except ValueError as exc:
        raise SweepError(str(exc)) from exc

    chaos = opts.chaos
    if chaos is None:
        from ..faults.chaos import chaos_from_env

        chaos = chaos_from_env()

    cache = CellCache(cache_dir) if cache_dir else None
    ambient_level = get_check_level()
    start = time.perf_counter()
    total = len(spec.cells)
    cells_by_key = {cell.key: cell for cell in spec.cells}
    by_key: Dict[str, SweepCellResult] = {}
    done = 0

    def settle(result: SweepCellResult) -> None:
        nonlocal done
        done += 1
        by_key[result.key] = result
        if not result.ok:
            logger.error(
                "sweep %s: cell %s %s after %.2f s (%d attempt(s)): %s",
                spec.name, result.key, result.status, result.elapsed_s,
                result.attempts, result.error,
            )
        if progress is not None:
            progress(result, done, total)

    pending: List[Dict[str, Any]] = []
    for cell in spec.cells:
        path = cache.path(cell.key, cell.payload()) if cache is not None else None
        if resume and cache is not None:
            hit, value = cache.read_hit(path)
            if hit:
                settle(SweepCellResult(cell.key, "cached", value=value, attempts=0))
                continue
        pending.append(
            {
                "key": cell.key,
                "fn": cell.fn,
                "kwargs": cell.kwargs,
                "seed": cell.seed,
                "check_level": ambient_level,
                "obs": obs_state.enabled(),
            }
        )

    def finish(
        raw: Tuple[str, str, Any, float, int, Optional[Dict[str, Any]]],
        attempts: int = 1,
    ) -> None:
        key, status, value, elapsed, pid, obs_export = raw
        cell_metrics = None
        if obs_export is not None:
            cell_metrics = obs_export["metrics"]
            # Trace events keep their worker pid/clock, so ingesting in
            # completion order is safe (per-track monotonicity holds).
            obs_tracer.ingest(obs_export["events"])
        if status != "ok":
            settle(
                SweepCellResult(
                    key, status, error=value["error"], traceback=value["traceback"],
                    elapsed_s=elapsed, worker=pid, metrics=cell_metrics,
                    attempts=attempts,
                )
            )
            return
        if cache is not None:
            cell = cells_by_key[key]
            cache.write(cache.path(key, cell.payload()), value)
        settle(
            SweepCellResult(
                key, "ok", value=value, elapsed_s=elapsed, worker=pid,
                metrics=cell_metrics, attempts=attempts,
            )
        )

    supervision: Dict[str, int] = {}
    if pending:
        n_workers = min(max(1, workers), len(pending))
        exec_name = resolve_executor_name(
            executor, workers, force_supervised=chaos is not None
        )
        if chaos is not None:
            from ..faults import chaos as chaos_mod

            ledger_dir = chaos.ledger_dir or tempfile.mkdtemp(prefix="repro-chaos-")
            logger.warning(
                "sweep %s: chaos injection active (%s, first_n=%d, ledger %s)",
                spec.name, "+".join(chaos.modes), chaos.first_n, ledger_dir,
            )
            pending = [chaos_mod.wrap_payload(p, chaos, ledger_dir) for p in pending]
        policy = RetryPolicy(
            max_attempts=retries + 1,
            backoff_s=opts.backoff_s,
            seed=derive_seed(0, "sweep-backoff", spec.name),
        )
        exec_obj = make_executor(exec_name, n_workers, timeout_s=timeout)
        # Chaos drills disable the circuit breaker: induced crashes are
        # expected there, and degrading to inline execution would run a
        # crash cell inside the supervisor process itself.
        supervisor = Supervisor(
            exec_obj, policy,
            breaker_threshold=None if chaos is not None else opts.breaker_threshold,
        )
        try:
            for raw, attempts in supervisor.run(pending, cancel=cancel):
                finish(raw, attempts)
        finally:
            exec_obj.close()
        supervision = supervisor.stats.as_dict()

    pending_keys = [p["key"] for p in pending if p["key"] not in by_key]
    if pending_keys:
        if cancel is not None and cancel.is_set():
            # A set cancellation token legitimately leaves cells
            # unsettled; the settled ones are already cached, so this is
            # a resumable stop.
            logger.warning(
                "sweep %s: cancelled with %d/%d cell(s) settled",
                spec.name, done, total,
            )
            raise SweepCancelled(spec.name, done, total, pending_keys)
        # No cancellation, yet cells vanished without settling: that is
        # a supervisor bug, not a resumable stop -- report it as one.
        raise SweepError(
            f"sweep {spec.name!r}: {len(pending_keys)} cell(s) never settled "
            f"({done}/{total} done): " + ", ".join(pending_keys[:5])
        )

    ordered = [by_key[cell.key] for cell in spec.cells]
    if obs_state.enabled():
        # Fold cell metrics into the ambient registry in spec order (and
        # count orchestration outcomes), so `repro report/trace --metrics`
        # can export one registry for a whole experiment.
        for cell_result in ordered:
            if cell_result.metrics is not None:
                obs_metrics.merge_payload(cell_result.metrics)
            obs_metrics.counter_add(f"sweep.cells_{cell_result.status}")
        for name, value in supervision.items():
            obs_metrics.counter_add(f"sweep.{name}", value)
    result = SweepResult(
        spec_name=spec.name,
        workers=workers,
        cells=ordered,
        elapsed_s=time.perf_counter() - start,
        supervision=supervision,
    )
    if strict and not result.ok:
        raise SweepCellsFailed(
            f"sweep {spec.name!r}: {len(result.failures)} cell(s) failed: "
            + ", ".join(c.key for c in result.failures),
            failures=result.failures,
            result=result,
        )
    return result
