"""Process-parallel sweep execution with caching and fault isolation.

:func:`run_sweep` executes every cell of a :class:`~repro.sweep.spec
.SweepSpec` and returns a :class:`SweepResult` whose cells are always in
**spec order**, whatever order the pool finished them in -- aggregation
code downstream can therefore fold results exactly the way the old
serial loops did, which is what makes ``--workers N`` bit-identical to
``--workers 1``.

Execution model:

* ``workers <= 1`` runs every cell inline in this process (no pool, no
  pickling) -- the reference path;
* ``workers > 1`` ships ``(fn-ref, kwargs)`` payloads to a
  ``multiprocessing`` pool; each worker re-imports the callable, runs
  the cell under the submitting process's check level, and returns
  either the value or a structured error;
* a cell that raises becomes a failed :class:`SweepCellResult` carrying
  ``error`` and ``traceback`` strings -- it is logged through the
  ``repro.sweep`` logger and never unwinds the sweep;
* with a cache directory, finished cells are pickled content-addressed
  (:mod:`repro.runtime.cellcache`); ``resume=True`` serves hits from
  disk, so restarting a killed sweep only recomputes missing cells.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..runtime.cellcache import CellCache
from ..runtime.checks import check_level, get_check_level
from .spec import SweepSpec, resolve_fn

__all__ = [
    "SweepCellResult",
    "SweepError",
    "SweepResult",
    "configured_workers",
    "default_workers",
    "run_sweep",
]

logger = logging.getLogger("repro.sweep")


class SweepError(RuntimeError):
    """Engine-level failure (misuse or, under ``strict=True``, failed cells)."""


def default_workers() -> int:
    """Worker count to use when the caller does not say.

    Honours ``REPRO_SWEEP_WORKERS`` (how the benchmark harness and CI
    select parallelism without threading a flag through every driver),
    else falls back to the machine's CPU count.
    """
    env = _env_workers()
    if env is not None:
        return env
    return max(1, os.cpu_count() or 1)


def _env_workers() -> Optional[int]:
    env = os.environ.get("REPRO_SWEEP_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            logger.warning("ignoring malformed REPRO_SWEEP_WORKERS=%r", env)
    return None


def configured_workers(explicit: Optional[int] = None) -> int:
    """Resolve a driver's ``workers`` parameter to a concrete count.

    Precedence: an explicit argument, then ``REPRO_SWEEP_WORKERS``, then
    1 (serial) -- drivers stay bit-exactly serial unless somebody opted
    into parallelism.
    """
    if explicit is not None:
        if explicit < 1:
            raise SweepError(f"workers must be >= 1, got {explicit}")
        return int(explicit)
    return _env_workers() or 1


@dataclass
class SweepCellResult:
    """Outcome of one sweep cell (ok, cached, or failed)."""

    key: str
    status: str  # "ok" | "cached" | "failed"
    value: Any = None
    error: Optional[str] = None  #: "ExcType: message" for failed cells
    traceback: Optional[str] = None  #: full formatted traceback for failed cells
    elapsed_s: float = 0.0
    worker: Optional[int] = None  #: pid of the process that ran the cell

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class SweepResult:
    """All cells of one sweep, in spec order, plus run metadata."""

    spec_name: str
    workers: int
    cells: List[SweepCellResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> List[SweepCellResult]:
        return [cell for cell in self.cells if not cell.ok]

    def value(self, key: str) -> Any:
        for cell in self.cells:
            if cell.key == key:
                if not cell.ok:
                    raise SweepError(f"cell {key!r} failed: {cell.error}")
                return cell.value
        raise KeyError(f"no cell {key!r} in sweep {self.spec_name!r}")

    def values(self) -> Dict[str, Any]:
        """``{key: value}`` over the cells that succeeded."""
        return {cell.key: cell.value for cell in self.cells if cell.ok}

    def summary(self) -> str:
        ok = sum(1 for c in self.cells if c.status == "ok")
        cached = sum(1 for c in self.cells if c.status == "cached")
        failed = len(self.failures)
        return (
            f"{len(self.cells)} cells ({ok} computed, {cached} from cache, "
            f"{failed} failed) in {self.elapsed_s:.2f} s with {self.workers} worker(s)"
        )


def _execute_payload(payload: Dict[str, Any]) -> Tuple[str, str, Any, float, int]:
    """Run one cell body; never raises (the isolation boundary).

    Returns ``(key, status, value_or_error, elapsed_s, pid)`` where a
    failed cell's third slot is ``{"error": ..., "traceback": ...}``.
    Runs in the worker process under ``workers > 1`` and inline under
    ``workers <= 1`` -- one code path, so both modes compute the same
    thing.
    """
    key = payload["key"]
    start = time.perf_counter()
    try:
        fn = resolve_fn(payload["fn"])
        if payload.get("seed") is not None:
            import numpy as np

            np.random.seed(payload["seed"] & 0xFFFFFFFF)
        with check_level(payload.get("check_level", "off")):
            value = fn(**payload["kwargs"])
        pickle.dumps(value)  # fail *inside* the isolation boundary, not in the pool
    except KeyboardInterrupt:  # pragma: no cover - user abort must propagate
        raise
    except BaseException as exc:  # noqa: BLE001 - cell isolation is the point
        detail = {"error": f"{type(exc).__name__}: {exc}", "traceback": traceback.format_exc()}
        return key, "failed", detail, time.perf_counter() - start, os.getpid()
    return key, "ok", value, time.perf_counter() - start, os.getpid()


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    resume: bool = False,
    progress: Optional[Callable[[SweepCellResult, int, int], None]] = None,
    strict: bool = False,
) -> SweepResult:
    """Execute every cell of ``spec`` and return results in spec order.

    ``progress`` (if given) is called as each cell settles, with the
    cell result plus ``(done, total)`` counts -- note this happens in
    *completion* order, which under parallelism is nondeterministic;
    only the returned :class:`SweepResult` ordering is stable.
    ``strict=True`` raises :class:`SweepError` after the sweep completes
    if any cell failed (the sweep itself still runs to the end).
    """
    if workers < 1:
        raise SweepError(f"workers must be >= 1, got {workers}")
    cache = CellCache(cache_dir) if cache_dir else None
    ambient_level = get_check_level()
    start = time.perf_counter()
    total = len(spec.cells)
    by_key: Dict[str, SweepCellResult] = {}
    done = 0

    def settle(result: SweepCellResult) -> None:
        nonlocal done
        done += 1
        by_key[result.key] = result
        if result.status == "failed":
            logger.error(
                "sweep %s: cell %s failed after %.2f s: %s",
                spec.name, result.key, result.elapsed_s, result.error,
            )
        if progress is not None:
            progress(result, done, total)

    pending: List[Dict[str, Any]] = []
    for cell in spec.cells:
        path = cache.path(cell.key, cell.payload()) if cache is not None else None
        if resume and cache is not None:
            hit = cache.read(path)
            if hit is not None:
                settle(SweepCellResult(cell.key, "cached", value=hit))
                continue
        pending.append(
            {
                "key": cell.key,
                "fn": cell.fn,
                "kwargs": cell.kwargs,
                "seed": cell.seed,
                "check_level": ambient_level,
            }
        )

    def finish(raw: Tuple[str, str, Any, float, int]) -> None:
        key, status, value, elapsed, pid = raw
        if status == "failed":
            settle(
                SweepCellResult(
                    key, "failed", error=value["error"], traceback=value["traceback"],
                    elapsed_s=elapsed, worker=pid,
                )
            )
            return
        if cache is not None:
            cell = next(c for c in spec.cells if c.key == key)
            cache.write(cache.path(key, cell.payload()), value)
        settle(SweepCellResult(key, "ok", value=value, elapsed_s=elapsed, worker=pid))

    if pending:
        n_workers = min(max(1, workers), len(pending))
        if n_workers == 1:
            for payload in pending:
                finish(_execute_payload(payload))
        else:
            # chunksize=1: cells are coarse (a whole training run or
            # simulation each), so fair dealing beats batching.
            with multiprocessing.Pool(processes=n_workers) as pool:
                for raw in pool.imap_unordered(_execute_payload, pending, chunksize=1):
                    finish(raw)

    ordered = [by_key[cell.key] for cell in spec.cells]
    result = SweepResult(
        spec_name=spec.name,
        workers=workers,
        cells=ordered,
        elapsed_s=time.perf_counter() - start,
    )
    if strict and not result.ok:
        raise SweepError(
            f"sweep {spec.name!r}: {len(result.failures)} cell(s) failed: "
            + ", ".join(c.key for c in result.failures)
        )
    return result
