"""Roofline analysis: where each workload sits against each machine.

The roofline model explains the paper's bandwidth observations
(Fig. 15(c)): a kernel with arithmetic intensity ``I`` (MACs per DRAM
byte) on a machine with peak compute ``P`` and bandwidth ``B`` attains
at most ``min(P, I*B)``.  Sparsity *lowers* a layer's intensity (less
compute per byte of activations), which is why TB-STC is
bandwidth-bound at 64 GB/s for high sparsity and stops scaling above
256 GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.config import ArchConfig
from ..sim.metrics import SimResult
from ..workloads.generator import GEMMWorkload

__all__ = ["RooflinePoint", "roofline_point", "ridge_intensity", "attainable_macs_per_cycle"]


@dataclass(frozen=True)
class RooflinePoint:
    """One workload's position on one machine's roofline."""

    workload: str
    arch: str
    intensity: float  # useful MACs per DRAM byte
    attainable_macs_per_cycle: float
    peak_macs_per_cycle: float
    achieved_macs_per_cycle: float

    @property
    def memory_bound(self) -> bool:
        return self.attainable_macs_per_cycle < self.peak_macs_per_cycle

    @property
    def roofline_efficiency(self) -> float:
        """Achieved throughput relative to the roofline bound."""
        if self.attainable_macs_per_cycle <= 0:
            return 1.0
        return min(1.0, self.achieved_macs_per_cycle / self.attainable_macs_per_cycle)


def ridge_intensity(config: ArchConfig) -> float:
    """Intensity (MACs/byte) where the machine turns compute-bound."""
    return config.peak_macs_per_cycle / config.dram_bytes_per_cycle


def attainable_macs_per_cycle(intensity: float, config: ArchConfig) -> float:
    """The roofline bound ``min(peak, I * bandwidth)``."""
    if intensity < 0:
        raise ValueError("intensity must be non-negative")
    return min(config.peak_macs_per_cycle, intensity * config.dram_bytes_per_cycle)


def roofline_point(
    workload: GEMMWorkload, config: ArchConfig, result: SimResult
) -> RooflinePoint:
    """Place one simulated execution on the machine's roofline.

    Intensity uses the *useful* sparse MACs over the bytes the run
    actually moved (format overheads lower the intensity, exactly as
    they should).
    """
    useful_macs = workload.macs if config.storage_format != "dense" else workload.dense_macs
    dram_bytes = max(1.0, result.dram_bytes)
    intensity = useful_macs / dram_bytes
    achieved = useful_macs / max(1, result.cycles)
    return RooflinePoint(
        workload=workload.name,
        arch=config.name,
        intensity=intensity,
        attainable_macs_per_cycle=attainable_macs_per_cycle(intensity, config),
        peak_macs_per_cycle=config.peak_macs_per_cycle,
        achieved_macs_per_cycle=achieved,
    )
