"""High-level experiment drivers -- one per paper table/figure.

Every driver is deterministic given its seed(s), returns plain dicts the
benchmarks/examples can assert on and render, and accepts size knobs so
the benches run in seconds while the examples can run bigger instances.

The grid-shaped drivers (Tables I/II, the fig13/fig15 simulator sweeps,
the fig17 distribution scan) decompose into independent cells executed
through the sweep engine (:mod:`repro.sweep`): ``workers=N`` shards the
grid across a process pool, ``workers=1`` (the default) runs the same
cell bodies inline and reproduces the historical serial numbers
bit-exactly, because aggregation always folds cell values in grid order
-- never in completion order.  Cell functions are module-level (and so
picklable); simulator cells ship their results across the process
boundary as versioned ``SimResult.to_dict()`` payloads.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.criteria import sparsegpt_scores, wanda_scores
from ..core.maskspace import maskspace_table
from ..core.patterns import PatternFamily
from ..core.similarity import pattern_similarity_sweep
from ..core.sparsify import tbs_sparsify
from ..core.transposable import transposable_sparsify
from ..formats.memory_model import compare_formats
from ..hw.area import a100_overhead_percent, area_breakdown
from ..hw.config import tb_stc
from ..hw.energy import EnergyModel
from ..nn.data import cluster_dataset, image_dataset, sequence_dataset
from ..nn.layers import Conv2d, Linear
from ..nn.models import TransformerClassifier, make_cnn, make_mlp, prunable_layers
from ..nn.quantize import quantize_model
from ..nn.train import evaluate, one_shot_prune, train
from ..sim.baselines import ARCH_FAMILY, arch_by_name, simulate_arch
from ..sim.breakdown import codec_overhead_fraction, cycle_breakdown
from ..sim.engine import simulate
from ..sim.metrics import SimResult, aggregate, normalized_edp, speedup
from ..sim.options import SimOptions
from ..sweep import SweepCell, SweepOptions, SweepSpec, configured_workers, run_sweep
from ..workloads.generator import build_workload, synthetic_weights
from ..workloads.layers import LayerSpec, bert_layers, resnet50_layers
from ..workloads.models import build_model_workload
from ..workloads.scenarios import (
    SCENARIO_ARCH,
    SCENARIO_FAMILIES,
    SCENARIO_PATTERNS,
    build_scenario,
)
from .pareto import ParetoPoint, pareto_frontier

__all__ = [
    "ACCURACY_FAMILIES",
    "EXPERIMENTS",
    "run_experiment",
    "snapshot_params",
    "restore_params",
    "capture_layer_inputs",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig1_pareto",
    "run_fig4_maskspace",
    "run_fig6_datapath_power",
    "run_fig7_bandwidth",
    "run_fig7_both_passes",
    "run_fig12_layerwise",
    "run_fig13_end2end",
    "run_fig14_breakdown",
    "run_fig15_block_size",
    "run_fig15_quantization",
    "run_fig15_bandwidth",
    "run_fig15_sparsity_sweep",
    "run_fig16_codec_ablation",
    "run_fig16_scheduling_ablation",
    "run_fig17_distribution",
    "run_fig18_convergence",
    "run_scenarios",
    "run_wide_oneshot",
]

#: The pattern families compared throughout the accuracy evaluation.
ACCURACY_FAMILIES = [
    PatternFamily.US,
    PatternFamily.TS,
    PatternFamily.RS_V,
    PatternFamily.RS_H,
    PatternFamily.TBS,
]

#: Canonical experiment-cell names, one per paper table/figure.  This is
#: the registry the fault-tolerant runner and the CLI dispatch on.
EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig4",
    "fig6",
    "fig7",
    "fig7both",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "wide",
    "scenarios",
)


def run_experiment(
    name: str,
    seeds: Sequence[int] = (0,),
    epochs: int = 8,
    scale: int = 4,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    options: Optional[SweepOptions] = None,
    families: Optional[Sequence[str]] = None,
):
    """Compute the raw data behind one paper table/figure by name.

    One entry point per :data:`EXPERIMENTS` cell, with the three size
    knobs every driver understands.  Returns whatever the underlying
    driver returns (plain dicts/lists, picklable), so the fault-tolerant
    runner (:class:`repro.runtime.runner.ExperimentRunner`) can cache
    cells on disk and ``repro report all`` can resume mid-sweep.
    Rendering stays in :mod:`repro.cli`.

    ``workers``/``cache_dir``/``resume`` thread through to the
    grid-shaped drivers (table1, table2, fig13, fig15, fig17), which
    shard their cells across the sweep engine; single-shot drivers
    ignore them.
    """
    seeds = tuple(seeds)
    sweep = dict(workers=workers, cache_dir=cache_dir, resume=resume, options=options)
    if name == "table1":
        return run_table1(seeds=seeds, epochs=epochs, **sweep)
    if name == "table2":
        return run_table2(seeds=seeds, epochs=epochs, **sweep)
    if name == "table3":
        return run_table3()
    if name == "fig1":
        return run_fig1_pareto(seeds=seeds, epochs=epochs, scale=scale)
    if name == "fig4":
        return run_fig4_maskspace()
    if name == "fig6":
        return run_fig6_datapath_power()
    if name == "fig7":
        return run_fig7_bandwidth()
    if name == "fig7both":
        return run_fig7_both_passes(**sweep)
    if name == "fig12":
        return run_fig12_layerwise(scale=scale)
    if name == "fig13":
        return run_fig13_end2end(scale=max(scale, 8), **sweep)
    if name == "fig14":
        return run_fig14_breakdown(scale=scale)
    if name == "fig15":
        return {
            "block_size": run_fig15_block_size(scale=scale, epochs=epochs, **sweep),
            "quantization": run_fig15_quantization(epochs=epochs, scale=scale),
            "bandwidth": run_fig15_bandwidth(scale=scale, **sweep),
            "sparsity_sweep": run_fig15_sparsity_sweep(scale=scale, **sweep),
        }
    if name == "fig16":
        return {
            "codec": run_fig16_codec_ablation(scale=scale),
            "scheduling": run_fig16_scheduling_ablation(scale=scale),
        }
    if name == "fig17":
        return run_fig17_distribution(**sweep)
    if name == "fig18":
        return run_fig18_convergence(epochs=epochs)
    if name == "wide":
        return run_wide_oneshot(scale=scale, **sweep)
    if name == "scenarios":
        return run_scenarios(scale=max(scale, 8), families=families, **sweep)
    raise ValueError(f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}")


# ---------------------------------------------------------------------------
# Model state helpers
# ---------------------------------------------------------------------------


def snapshot_params(model) -> Dict[int, Dict[str, np.ndarray]]:
    """Deep copy of every parameter, keyed by module identity."""
    return {id(m): {k: v.copy() for k, v in m.params.items()} for m in model.modules()}


def restore_params(model, snapshot: Dict[int, Dict[str, np.ndarray]]) -> None:
    for mod in model.modules():
        saved = snapshot.get(id(mod))
        if saved:
            for key, value in saved.items():
                mod.params[key] = value.copy()
        if hasattr(mod, "set_mask"):
            mod.set_mask(None)


def capture_layer_inputs(model, x: np.ndarray) -> Dict[int, np.ndarray]:
    """Calibration activations per prunable layer (for Wanda/SparseGPT).

    Runs one forward pass and reads each layer's cached GEMM input: the
    raw input for Linear, the im2col patch matrix for Conv2d -- exactly
    the reduction-dimension activations the criteria need.
    """
    model.eval()
    model(x)
    model.train()
    activations: Dict[int, np.ndarray] = {}
    for layer in prunable_layers(model):
        if isinstance(layer, Linear):
            acts = layer._x.reshape(-1, layer.in_features)
        elif isinstance(layer, Conv2d):
            acts = layer._cache[1].reshape(-1, layer._cache[1].shape[-1])
        else:  # pragma: no cover - only Linear/Conv2d are maskable
            continue
        activations[id(layer)] = acts
    return activations


# ---------------------------------------------------------------------------
# Accuracy experiments (Tables I / II, Fig. 18)
# ---------------------------------------------------------------------------


def _proxy(task: str, seed: int):
    """(model, data) pair for one proxy task."""
    if task == "cnn":
        data = image_dataset(n_samples=320, channels=3, size=16, n_classes=4, seed=seed)
        model = make_cnn(channels=3, width=12, n_classes=4, seed=100 + seed)
    elif task == "encoder":
        data = sequence_dataset(n_samples=384, seq_len=16, vocab=32, n_classes=4, seed=seed)
        model = TransformerClassifier(vocab=32, dim=32, heads=4, depth=2, n_classes=4, seed=100 + seed)
    elif task == "mlp":
        data = cluster_dataset(n_samples=640, n_features=48, n_classes=8, seed=seed, noise=1.3)
        model = make_mlp(48, 48, 8, depth=3, seed=100 + seed)
    else:
        raise ValueError(f"unknown proxy task {task!r}")
    return model, data


def _family_by_name(name: str) -> Optional[PatternFamily]:
    """``"Dense"`` -> ``None``, else the named pattern family."""
    return None if name == "Dense" else PatternFamily[name]


def _table1_cell(
    task: str,
    sparsity: float,
    family: str,
    seed: int,
    epochs: int,
    ts_cap: Optional[float],
) -> float:
    """One Table I grid point: train one (task, family, seed) model."""
    model, data = _proxy(task, seed)
    res = train(
        model,
        data,
        family=_family_by_name(family),
        sparsity=sparsity,
        epochs=epochs,
        seed=seed,
        ts_cap=ts_cap,
    )
    return res.test_accuracy


def run_table1(
    tasks: Sequence[Tuple[str, float]] = (("cnn", 0.75), ("encoder", 0.5), ("mlp", 0.75)),
    seeds: Sequence[int] = (0, 1, 2),
    epochs: int = 10,
    ts_cap: Optional[float] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    options: Optional[SweepOptions] = None,
) -> Dict[str, Dict[str, float]]:
    """Table I -- sparse-training accuracy per pattern family.

    Proxy substitutions: TinyResNet on the image task stands in for
    ResNet-50/18 (75% sparsity), the encoder classifier for BERT (50%).
    ``ts_cap=None`` runs TS at matched sparsity (iso-sparsity protocol);
    pass ``0.5`` for the paper's hardware-pinned 4:8 footnote variant.
    Returns ``{task: {family_or_Dense: mean accuracy}}``.

    The (task x seed x family) grid runs through the sweep engine;
    per-family means always fold accuracies in seed order, so the result
    is bit-identical at any worker count.
    """
    family_names = ["Dense"] + [family.name for family in ACCURACY_FAMILIES]
    cells = [
        SweepCell(
            key=f"{task}@{sparsity}/seed{seed}/{family}",
            fn=_table1_cell,
            kwargs={
                "task": task,
                "sparsity": sparsity,
                "family": family,
                "seed": seed,
                "epochs": epochs,
                "ts_cap": ts_cap,
            },
        )
        for task, sparsity in tasks
        for seed in seeds
        for family in family_names
    ]
    sweep = run_sweep(
        SweepSpec("table1", tuple(cells)),
        workers=configured_workers(workers),
        cache_dir=cache_dir,
        resume=resume,
        options=options,
        strict=True,
    )
    results: Dict[str, Dict[str, float]] = {}
    for task, sparsity in tasks:
        per_family: Dict[str, List[float]] = {name: [] for name in family_names}
        for seed in seeds:
            for family in family_names:
                per_family[family].append(sweep.value(f"{task}@{sparsity}/seed{seed}/{family}"))
        results[task] = {name: float(np.mean(vals)) for name, vals in per_family.items()}
    return results


def _table2_cell(
    task: str,
    sparsity: float,
    criteria: Sequence[str],
    seed: int,
    epochs: int,
) -> Dict[str, Any]:
    """One Table II grid point: dense-train one (task, seed) model, then
    one-shot prune it with every criterion x family from the same
    snapshot (the expensive dense training is shared inside the cell).
    """
    model, data = _proxy(task, seed)
    train(model, data, family=None, epochs=epochs, seed=seed)
    dense_acc = evaluate(model, data[2], data[3])
    snap = snapshot_params(model)
    calib = data[0][:64]
    acts = capture_layer_inputs(model, calib)

    per_criterion: Dict[str, Dict[str, float]] = {}
    for criterion in criteria:

        def score_fn(layer, _criterion=criterion):
            w2d = layer.weight_matrix()
            layer_acts = acts[id(layer)]
            if _criterion == "wanda":
                return wanda_scores(w2d, layer_acts)
            if _criterion == "sparsegpt":
                return sparsegpt_scores(w2d, layer_acts)
            if _criterion == "magnitude":
                return np.abs(w2d)
            raise ValueError(f"unknown criterion {_criterion!r}")

        accs: Dict[str, float] = {}
        for family in ACCURACY_FAMILIES:
            restore_params(model, snap)
            one_shot_prune(model, family, sparsity, score_fn=score_fn, ts_cap=None)
            accs[family.name] = evaluate(model, data[2], data[3])
        per_criterion[criterion] = accs
    restore_params(model, snap)
    return {"dense": dense_acc, "criteria": per_criterion}


def run_table2(
    tasks: Sequence[Tuple[str, float]] = (("mlp", 0.5), ("encoder", 0.5)),
    criteria: Sequence[str] = ("wanda", "sparsegpt"),
    seeds: Sequence[int] = (0, 1, 2),
    epochs: int = 10,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    options: Optional[SweepOptions] = None,
) -> Dict[str, Dict[str, float]]:
    """Table II -- one-shot pruning accuracy per (criterion, family).

    Proxies stand in for OPT-6.7B / Llama2-7B: a model is trained dense,
    then pruned one-shot at 50% with each criterion x pattern and
    evaluated without retraining.  Returns
    ``{f"{task}/{criterion}": {family_or_Dense: mean accuracy}}``.

    Cells are (task, seed) pairs -- the dense training dominates, so the
    criterion x family pruning rides inside each cell; aggregation folds
    accuracies in seed order for bit-identical means at any worker count.
    """
    criteria = tuple(criteria)
    cells = [
        SweepCell(
            key=f"{task}@{sparsity}/seed{seed}",
            fn=_table2_cell,
            kwargs={
                "task": task,
                "sparsity": sparsity,
                "criteria": criteria,
                "seed": seed,
                "epochs": epochs,
            },
        )
        for task, sparsity in tasks
        for seed in seeds
    ]
    sweep = run_sweep(
        SweepSpec("table2", tuple(cells)),
        workers=configured_workers(workers),
        cache_dir=cache_dir,
        resume=resume,
        options=options,
        strict=True,
    )
    results: Dict[str, Dict[str, List[float]]] = {}
    for task, sparsity in tasks:
        for seed in seeds:
            cell = sweep.value(f"{task}@{sparsity}/seed{seed}")
            for criterion in criteria:
                key = f"{task}/{criterion}"
                bucket = results.setdefault(key, {})
                bucket.setdefault("Dense", []).append(cell["dense"])
                for family in ACCURACY_FAMILIES:
                    bucket.setdefault(family.name, []).append(cell["criteria"][criterion][family.name])
    return {key: {n: float(np.mean(v)) for n, v in bucket.items()} for key, bucket in results.items()}


def run_fig18_convergence(
    task: str = "mlp", sparsity: float = 0.75, epochs: int = 12, seed: int = 0
) -> Dict[str, List[float]]:
    """Fig. 18 -- loss curves for dense / US / TBS training."""
    curves: Dict[str, List[float]] = {}
    for name, family in (("dense", None), ("US", PatternFamily.US), ("TBS", PatternFamily.TBS)):
        model, data = _proxy(task, seed)
        res = train(model, data, family=family, sparsity=sparsity, epochs=epochs, seed=seed)
        curves[name] = res.loss_history
        if name == "TBS":
            curves["TBS_sparsity"] = res.sparsity_history
    return curves


# ---------------------------------------------------------------------------
# Wide-layer one-shot transposable pruning (tsolver scenario)
# ---------------------------------------------------------------------------


def _wide_cell(
    backend: str, rows: int, cols: int, m: int, sparsity: float, seed: int
) -> Dict[str, float]:
    """One wide-pruning grid point: magnitude one-shot NM-T pruning of a
    synthetic layer with one solver backend.  Cell values are retained
    |score| fractions -- pure functions of the kwargs, so the sweep is
    bit-identical at any worker count (no wall-clock in the payload)."""
    weights = synthetic_weights(rows, cols, seed=seed)
    scores = np.abs(weights)
    mask, _ = transposable_sparsify(scores, m=m, sparsity=sparsity, backend=backend)
    return {
        "retained_score": float((scores * mask).sum() / scores.sum()),
        "density": float(mask.mean()),
    }


def run_wide_oneshot(
    sparsity: float = 0.75,
    seed: int = 0,
    scale: int = 4,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    options: Optional[SweepOptions] = None,
) -> Dict[str, Dict[str, float]]:
    """Wide-layer one-shot pruning across transposable-solver backends.

    Three scenarios, each magnitude-pruned to the strictly transposable
    NM-T pattern (:func:`repro.core.transposable.transposable_sparsify`):

    * ``ref`` -- a small M=8 layer where the ``exact`` min-cost-flow
      oracle is tractable; all three backends run and the greedy/tsenor
      rows carry their retained-score ratio against exact.
    * ``wide`` -- a wide M=32 layer (projection-style shape) where exact
      is intractable; greedy and ``tsenor`` (the batched Sinkhorn
      backend) are compared head to head.
    * ``wide64`` -- a wider-still M=64 layer that only the vectorized
      tsenor backend solves in reasonable time.

    Returns ``{scenario: {backend: retained_score, ...}}`` plus the
    quality ratios; one sweep cell per (scenario, backend).
    """
    scale = max(int(scale), 1)
    shapes = {
        "ref": (max(8, 512 // scale), max(8, 1024 // scale), 8),
        "wide": (max(32, 1024 // scale), max(32, 4096 // scale), 32),
        "wide64": (max(64, 2048 // scale), max(64, 8192 // scale), 64),
    }
    grid = [
        ("ref", "greedy"),
        ("ref", "exact"),
        ("ref", "tsenor"),
        ("wide", "greedy"),
        ("wide", "tsenor"),
        ("wide64", "tsenor"),
    ]
    cells = [
        SweepCell(
            key=f"{scenario}/{backend}",
            fn=_wide_cell,
            kwargs={
                "backend": backend,
                "rows": shapes[scenario][0],
                "cols": shapes[scenario][1],
                "m": shapes[scenario][2],
                "sparsity": sparsity,
                "seed": seed,
            },
        )
        for scenario, backend in grid
    ]
    sweep = run_sweep(
        SweepSpec("wide-oneshot", tuple(cells)),
        workers=configured_workers(workers),
        cache_dir=cache_dir,
        resume=resume,
        options=options,
        strict=True,
    )
    out: Dict[str, Dict[str, float]] = {}
    for scenario, backend in grid:
        cell = sweep.value(f"{scenario}/{backend}")
        row = out.setdefault(scenario, {})
        row[backend] = cell["retained_score"]
        row.setdefault("density", cell["density"])
    exact = out["ref"]["exact"]
    for backend in ("greedy", "tsenor"):
        out["ref"][f"{backend}_vs_exact"] = out["ref"][backend] / exact
    out["wide"]["tsenor_vs_greedy"] = out["wide"]["tsenor"] / out["wide"]["greedy"]
    for scenario, (rows, cols, m) in shapes.items():
        out[scenario]["m"] = float(m)
        out[scenario]["rows"] = float(rows)
        out[scenario]["cols"] = float(cols)
    return out


# ---------------------------------------------------------------------------
# Pattern analyses (Fig. 4, Fig. 17)
# ---------------------------------------------------------------------------


def run_fig4_maskspace(x: int = 64, y: int = 64, m: int = 8, seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Fig. 4(b)/(c) -- mask similarity with US and log2 mask-space."""
    weights = synthetic_weights(256, 256, seed=seed)
    return {
        "similarity": pattern_similarity_sweep(weights, sparsity=0.75, m=m),
        "log2_maskspace": maskspace_table(x, y, m),
    }


def _fig17_cell(sparsity: float, seed: int) -> List[Dict[str, int]]:
    """One Fig. 17 grid point: per-layer direction histograms at one
    sparsity (plain int counts, cheap to ship across processes)."""
    histograms: List[Dict[str, int]] = []
    for i, layer in enumerate(resnet50_layers()[:6]):
        spec = layer.scaled(4)
        weights = synthetic_weights(spec.rows, spec.cols, seed=seed + i)
        histograms.append(tbs_sparsify(weights, m=8, sparsity=sparsity).direction_histogram())
    return histograms


def _histogram_fractions(histograms: Sequence[Dict[str, int]]) -> Dict[str, float]:
    """Fold per-layer direction histograms into Fig. 17 fractions
    (integer sums, so the result is independent of fold order)."""
    totals = {"row": 0, "col": 0, "other": 0}
    for hist in histograms:
        for key in totals:
            totals[key] += hist[key]
    count = sum(totals.values())
    if count == 0:
        return {key: 0.0 for key in totals}
    return {key: value / count for key, value in totals.items()}


def run_fig17_distribution(
    sparsities: Sequence[float] = (0.5, 0.75, 0.875),
    seed: int = 0,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    options: Optional[SweepOptions] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 17 -- block-direction distribution of TBS-pruned layers.

    One sweep cell per sparsity degree; cells return integer block
    counts, so both the per-sparsity and the pooled "Total" rows are
    exact whatever order the cells finished in.
    """
    cells = [
        SweepCell(
            key=f"sparsity={sparsity}",
            fn=_fig17_cell,
            kwargs={"sparsity": sparsity, "seed": seed},
        )
        for sparsity in sparsities
    ]
    sweep = run_sweep(
        SweepSpec("fig17", tuple(cells)),
        workers=configured_workers(workers),
        cache_dir=cache_dir,
        resume=resume,
        options=options,
        strict=True,
    )
    out: Dict[str, Dict[str, float]] = {}
    all_histograms: List[Dict[str, int]] = []
    for sparsity in sparsities:
        histograms = sweep.value(f"sparsity={sparsity}")
        out[f"sparsity={sparsity:.0%}"] = _histogram_fractions(histograms)
        all_histograms.extend(histograms)
    out["Total"] = _histogram_fractions(all_histograms)
    return out


# ---------------------------------------------------------------------------
# Hardware experiments
# ---------------------------------------------------------------------------


def run_table3() -> Dict[str, Dict[str, float]]:
    """Table III -- area/power breakdown plus the A100 integration figure."""
    cfg = tb_stc()
    return {
        "area_mm2": area_breakdown(cfg),
        "power_mw": EnergyModel(cfg).peak_dynamic_power_mw(),
        "a100_overhead_percent": {"value": a100_overhead_percent(cfg)},
    }


def run_fig6_datapath_power() -> Dict[str, float]:
    """Fig. 6(d) -- peak datapath power, RM-STC vs TB-STC."""
    ours = EnergyModel(tb_stc()).peak_dynamic_power_mw()["Total"]
    theirs = EnergyModel(arch_by_name("RM-STC")).peak_dynamic_power_mw()["Total"]
    return {"TB-STC_mw": ours, "RM-STC_mw": theirs, "ratio": theirs / ours}


def run_fig7_bandwidth(
    sparsities: Sequence[float] = (0.5, 0.75, 0.875), seed: int = 0, size: int = 256
) -> Dict[str, Dict[str, float]]:
    """Sec. V / Fig. 7 -- per-format bandwidth utilization on TBS matrices."""
    out: Dict[str, Dict[str, float]] = {}
    for sparsity in sparsities:
        weights = synthetic_weights(size, size, seed=seed)
        res = tbs_sparsify(weights, m=8, sparsity=sparsity)
        reports = compare_formats(weights * res.mask, tbs=res)
        out[f"sparsity={sparsity:.0%}"] = {
            name: rep.bandwidth_utilization for name, rep in reports.items()
        }
    return out


def _fig7both_cell(sparsity: float, seed: int, size: int) -> Dict[str, Dict[str, float]]:
    """One both-passes grid point: every registered format encoded ONCE,
    then traced and traffic-analysed in both orientations.

    The transposed ("backward") numbers come from the same encoding --
    :meth:`EncodedMatrix.trace` derives the transposed walk, so formats
    whose layouts transpose poorly (CSR's per-element scatter, SDC's
    per-block-column re-fetch) pay their honest penalty while BCSR-COO's
    COO side table keeps its payload runs intact.
    """
    from ..formats.base import ORIENTATIONS, EncodeSpec
    from ..formats.memory_model import traffic_report
    from ..formats.registry import available_formats, get_format

    weights = synthetic_weights(size, size, seed=seed)
    res = tbs_sparsify(weights, m=8, sparsity=sparsity)
    sparse = weights * res.mask
    spec = EncodeSpec(tbs=res, block_size=8)
    out: Dict[str, Dict[str, float]] = {}
    for name in available_formats():
        encoded = get_format(name).encode(sparse, spec)
        row: Dict[str, float] = {}
        for orient in ORIENTATIONS:
            key = "forward" if orient == "forward" else "backward"
            rep = traffic_report(encoded, orientation=orient)
            row[f"{key}_util"] = rep.bandwidth_utilization
            row[f"{key}_traced_bytes"] = float(encoded.traced_bytes_for(orient))
            row[f"{key}_fetched_bytes"] = float(rep.fetched_bytes)
        out[name] = row
    return out


def run_fig7_both_passes(
    sparsities: Sequence[float] = (0.5, 0.75, 0.875),
    seed: int = 0,
    size: int = 256,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    options: Optional[SweepOptions] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 7 analogue extended with the backward (transposed) pass.

    One sweep cell per sparsity; each cell encodes every registered
    format once and reports both consumption orientations, so the table
    directly shows what the forward/backward duality of TB-STC's
    transposable masks costs each storage format.
    """
    cells = [
        SweepCell(
            key=f"sparsity={sparsity}",
            fn=_fig7both_cell,
            kwargs={"sparsity": sparsity, "seed": seed, "size": size},
        )
        for sparsity in sparsities
    ]
    sweep = run_sweep(
        SweepSpec("fig7both", tuple(cells)),
        workers=configured_workers(workers),
        cache_dir=cache_dir,
        resume=resume,
        options=options,
        strict=True,
    )
    out: Dict[str, Dict[str, float]] = {}
    for sparsity in sparsities:
        cell = sweep.value(f"sparsity={sparsity}")
        for name, row in cell.items():
            out[f"sparsity={sparsity:.0%} {name}"] = row
    return out


def run_fig12_layerwise(
    layers: Optional[Sequence[LayerSpec]] = None,
    sparsities: Sequence[float] = (0.5, 0.625, 0.75, 0.875),
    arch_names: Sequence[str] = ("TC", "STC", "VEGETA", "HighLight", "RM-STC", "TB-STC"),
    scale: int = 4,
    seed: int = 0,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 12 -- layer-wise speedup and normalized EDP vs sparsity.

    Returns ``{layer: {f"sparsity={s}": {arch: speedup}, ...}}`` with the
    EDP table under the ``"edp"`` suffix keys.
    """
    from ..sim.baselines import simulate_layer_sweep

    if layers is None:
        layers = [resnet50_layers()[8], bert_layers()[2]]
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for layer in layers:
        layer_out: Dict[str, Dict[str, float]] = {}
        for sparsity in sparsities:
            results = simulate_layer_sweep(
                layer, sparsity, arch_names=list(arch_names), scale=scale, seed=seed
            )
            base = results["TC"]
            layer_out[f"speedup@{sparsity:.0%}"] = {
                name: speedup(res, base) for name, res in results.items()
            }
            layer_out[f"edp@{sparsity:.0%}"] = {
                name: normalized_edp(res, base) for name, res in results.items()
            }
        out[layer.name] = layer_out
    return out


def _fig13_cell(model: str, arch: str, scale: int, seed: int) -> Dict[str, Any]:
    """One Fig. 13 grid point: a whole model on one architecture.

    Ships the aggregated :class:`SimResult` across the process boundary
    as its versioned ``to_dict()`` payload.
    """
    config = arch_by_name(arch)
    family = ARCH_FAMILY[arch]
    bundle = build_model_workload(model, family, m=8, seed=seed, scale=scale)
    layer_results = [simulate_arch(config, wl) for wl in bundle.layers]
    return aggregate(layer_results, bundle.repeats).to_dict()


def run_fig13_end2end(
    models: Sequence[str] = ("resnet50", "bert", "opt-6.7b"),
    arch_names: Sequence[str] = ("TC", "STC", "VEGETA", "HighLight", "RM-STC", "TB-STC"),
    scale: int = 8,
    seed: int = 0,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    options: Optional[SweepOptions] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 13 -- end-to-end iso-accuracy speedup and normalized EDP.

    One sweep cell per (model, architecture); normalization against the
    TC baseline happens after the sweep, from the spec-ordered results.
    """
    cells = [
        SweepCell(
            key=f"{model}/{name}",
            fn=_fig13_cell,
            kwargs={"model": model, "arch": name, "scale": scale, "seed": seed},
        )
        for model in models
        for name in arch_names
    ]
    sweep = run_sweep(
        SweepSpec("fig13", tuple(cells)),
        workers=configured_workers(workers),
        cache_dir=cache_dir,
        resume=resume,
        options=options,
        strict=True,
    )
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for model in models:
        per_arch: Dict[str, SimResult] = {
            name: SimResult.from_dict(sweep.value(f"{model}/{name}")) for name in arch_names
        }
        base = per_arch["TC"]
        out[model] = {
            "speedup": {n: speedup(r, base) for n, r in per_arch.items()},
            "edp": {n: normalized_edp(r, base) for n, r in per_arch.items()},
        }
    return out


def run_fig14_breakdown(scale: int = 4, seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Fig. 14 -- execution-cycle breakdown of the BERT layer GEMMs."""
    out: Dict[str, Dict[str, float]] = {}
    config = tb_stc()
    for layer in bert_layers():
        workload = build_workload(layer, PatternFamily.TBS, 0.625, seed=seed, scale=scale)
        result = simulate_arch(config, workload)
        shares = cycle_breakdown(result)
        shares["codec_fraction"] = codec_overhead_fraction(result)
        out[layer.name] = shares
    return out


# ---------------------------------------------------------------------------
# Sensitivity studies (Fig. 15)
# ---------------------------------------------------------------------------


def _fig15_block_cell(
    m: int, sparsity: float, seed: int, epochs: int, scale: int, with_accuracy: bool
) -> Dict[str, float]:
    """One Fig. 15(a) grid point: speedup (and optionally accuracy) at
    one block size.  Each cell recomputes the cheap dense baseline so it
    stays a pure function of its kwargs."""
    layer = resnet50_layers()[8]
    base_workload = build_workload(layer, PatternFamily.US, 0.0, seed=seed, scale=scale)
    dense = simulate_arch(arch_by_name("TC"), base_workload)
    workload = build_workload(layer, PatternFamily.TBS, sparsity, m=m, seed=seed, scale=scale)
    result = simulate_arch(tb_stc(), workload)
    entry = {"speedup": speedup(result, dense)}
    if with_accuracy:
        model, data = _proxy("mlp", seed)
        res = train(model, data, family=PatternFamily.TBS, sparsity=sparsity, epochs=epochs, m=m, seed=seed)
        entry["accuracy"] = res.test_accuracy
    return entry


def run_fig15_block_size(
    block_sizes: Sequence[int] = (4, 8, 16, 32),
    sparsity: float = 0.75,
    seed: int = 0,
    epochs: int = 8,
    scale: int = 4,
    with_accuracy: bool = True,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    options: Optional[SweepOptions] = None,
) -> Dict[int, Dict[str, float]]:
    """Fig. 15(a) -- block size vs speedup and accuracy."""
    cells = [
        SweepCell(
            key=f"m={m}",
            fn=_fig15_block_cell,
            kwargs={
                "m": m,
                "sparsity": sparsity,
                "seed": seed,
                "epochs": epochs,
                "scale": scale,
                "with_accuracy": with_accuracy,
            },
        )
        for m in block_sizes
    ]
    sweep = run_sweep(
        SweepSpec("fig15-block-size", tuple(cells)),
        workers=configured_workers(workers),
        cache_dir=cache_dir,
        resume=resume,
        options=options,
        strict=True,
    )
    return {m: sweep.value(f"m={m}") for m in block_sizes}


def run_fig15_quantization(
    task: str = "mlp", sparsity: float = 0.75, epochs: int = 10, seed: int = 0, scale: int = 4
) -> Dict[str, float]:
    """Fig. 15(b) -- weight-8-bit quantization on TBS-pruned models.

    Returns the extra speedup from INT8 weights and the accuracy delta.
    """
    # Accuracy side: train sparse, then fake-quantize the weights.
    model, data = _proxy(task, seed)
    res = train(model, data, family=PatternFamily.TBS, sparsity=sparsity, epochs=epochs, seed=seed)
    sparse_acc = res.test_accuracy
    quantize_model(model, bits=8)
    quant_acc = evaluate(model, data[2], data[3])

    # Performance side: halved weight traffic.
    layer = resnet50_layers()[8]
    workload = build_workload(layer, PatternFamily.TBS, sparsity, seed=seed, scale=scale)
    fp16 = simulate(tb_stc(), workload)
    int8 = simulate(tb_stc(), workload, options=SimOptions(weight_bits=8))
    return {
        "sparse_accuracy": sparse_acc,
        "quantized_accuracy": quant_acc,
        "accuracy_drop": sparse_acc - quant_acc,
        "extra_speedup": speedup(int8, fp16),
    }


def _fig15_bandwidth_cell(bw: float, sparsity: float, seed: int, scale: int) -> float:
    """One Fig. 15(c) grid point: simulated cycles at one DRAM bandwidth."""
    layer = bert_layers()[2]
    workload = build_workload(layer, PatternFamily.TBS, sparsity, seed=seed, scale=scale)
    return simulate_arch(tb_stc(dram_bandwidth_gbs=float(bw)), workload).cycles


def run_fig15_bandwidth(
    bandwidths: Sequence[float] = (32, 64, 128, 256, 512),
    sparsity: float = 0.75,
    seed: int = 0,
    scale: int = 4,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    options: Optional[SweepOptions] = None,
) -> Dict[float, float]:
    """Fig. 15(c) -- normalized speedup vs off-chip bandwidth.

    Cells return raw cycle counts; normalization against the lowest
    bandwidth point happens after the sweep.
    """
    cells = [
        SweepCell(
            key=f"bw={bw}",
            fn=_fig15_bandwidth_cell,
            kwargs={"bw": bw, "sparsity": sparsity, "seed": seed, "scale": scale},
        )
        for bw in bandwidths
    ]
    sweep = run_sweep(
        SweepSpec("fig15-bandwidth", tuple(cells)),
        workers=configured_workers(workers),
        cache_dir=cache_dir,
        resume=resume,
        options=options,
        strict=True,
    )
    cycles = {bw: sweep.value(f"bw={bw}") for bw in bandwidths}
    base_cycles = cycles[bandwidths[0]]
    return {bw: base_cycles / c for bw, c in cycles.items()}


def _fig15_sparsity_cell(sparsity: float, seed: int, scale: int) -> Dict[str, float]:
    """One Fig. 15(d) grid point: TB-STC vs SGCN at one sparsity."""
    layer = bert_layers()[2]
    tb_wl = build_workload(layer, PatternFamily.TBS, sparsity, seed=seed, scale=scale)
    us_wl = build_workload(layer, PatternFamily.US, sparsity, seed=seed, scale=scale)
    tb = simulate_arch(tb_stc(), tb_wl)
    sg = simulate_arch(arch_by_name("SGCN"), us_wl)
    return {
        "TB-STC_cycles": float(tb.cycles),
        "SGCN_cycles": float(sg.cycles),
        "tb_over_sgcn": sg.cycles / tb.cycles,
    }


def run_fig15_sparsity_sweep(
    sparsities: Sequence[float] = (0.3, 0.5, 0.7, 0.8, 0.9, 0.95),
    seed: int = 0,
    scale: int = 4,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    options: Optional[SweepOptions] = None,
) -> Dict[float, Dict[str, float]]:
    """Fig. 15(d) -- TB-STC vs SGCN across sparsity degrees."""
    cells = [
        SweepCell(
            key=f"sparsity={sparsity}",
            fn=_fig15_sparsity_cell,
            kwargs={"sparsity": sparsity, "seed": seed, "scale": scale},
        )
        for sparsity in sparsities
    ]
    sweep = run_sweep(
        SweepSpec("fig15-sparsity", tuple(cells)),
        workers=configured_workers(workers),
        cache_dir=cache_dir,
        resume=resume,
        options=options,
        strict=True,
    )
    return {sparsity: sweep.value(f"sparsity={sparsity}") for sparsity in sparsities}


# ---------------------------------------------------------------------------
# Ablations (Fig. 16)
# ---------------------------------------------------------------------------


def run_fig16_codec_ablation(
    sparsity: float = 0.75, seed: int = 0, scale: int = 4
) -> Dict[str, float]:
    """Fig. 16(a) -- the TBS model on architectures without the codec.

    All variants share the TB-STC fabric; only the storage/codec stack
    changes.  Returns cycles normalized to full TB-STC (higher = slower).
    """
    layer = resnet50_layers()[8]
    workload = build_workload(layer, PatternFamily.TBS, sparsity, seed=seed, scale=scale)
    variants = {
        "TB-STC (DDC+codec)": tb_stc(),
        "SDC no codec": tb_stc(storage_format="sdc", has_codec=False),
        "CSR no codec": tb_stc(storage_format="csr", has_codec=False),
        "Dense stream": tb_stc(storage_format="dense", has_codec=False),
    }
    results = {name: simulate_arch(cfg, workload) for name, cfg in variants.items()}
    base = results["TB-STC (DDC+codec)"].cycles
    return {name: res.cycles / base for name, res in results.items()}


def run_fig16_scheduling_ablation(
    sparsity: float = 0.75, seed: int = 0, scale: int = 4
) -> Dict[str, Dict[str, float]]:
    """Fig. 16(b) -- scheduling strategies on the TB-STC fabric.

    Compares compute utilization (vs non-scheduled direct mapping) and
    normalized EDP of the DVPE+FAN variant.
    """
    layer = resnet50_layers()[8]
    workload = build_workload(layer, PatternFamily.TBS, sparsity, seed=seed, scale=scale)
    full = simulate_arch(tb_stc(), workload)
    # The non-scheduled baseline keeps the PE datapath identical and only
    # drops the inter-block scheduler (lockstep direct mapping) and the
    # intra-block packing -- the two halves of the hierarchical strategy.
    unscheduled = simulate_arch(
        tb_stc(inter_block_scheduling=False, intra_block_mapping=False), workload
    )
    fan = simulate_arch(arch_by_name("DVPE+FAN"), workload)
    return {
        "utilization": {
            "scheduled": full.compute_utilization,
            "non_scheduled": unscheduled.compute_utilization,
            "gain": full.compute_utilization / max(1e-9, unscheduled.compute_utilization),
        },
        "fan_edp": {"normalized": fan.edp / full.edp},
    }


# ---------------------------------------------------------------------------
# Fig. 1 -- the accuracy-EDP Pareto frontier
# ---------------------------------------------------------------------------


def run_fig1_pareto(
    seeds: Sequence[int] = (0, 1),
    sparsities: Sequence[float] = (0.5, 0.75),
    epochs: int = 8,
    scale: int = 4,
) -> Dict[str, List[ParetoPoint]]:
    """Fig. 1 -- accuracy (proxy encoder) vs EDP (simulator) per design.

    Each architecture is evaluated at each sparsity with its own pattern
    family; the dense TC anchors the right edge of the plot.
    """
    layer = bert_layers()[2]
    arch_names = ["TC", "STC", "VEGETA", "HighLight", "RM-STC", "TB-STC"]
    points: List[ParetoPoint] = []
    acc_cache: Dict[Tuple[str, float], float] = {}

    def proxy_accuracy(family: Optional[PatternFamily], sparsity: float) -> float:
        key = (family.name if family else "Dense", sparsity)
        if key not in acc_cache:
            accs = []
            for seed in seeds:
                model, data = _proxy("encoder", seed)
                res = train(model, data, family=family, sparsity=sparsity, epochs=epochs, seed=seed)
                accs.append(res.test_accuracy)
            acc_cache[key] = float(np.mean(accs))
        return acc_cache[key]

    for name in arch_names:
        family = ARCH_FAMILY[name]
        config = arch_by_name(name)
        if name == "TC":
            workload = build_workload(layer, PatternFamily.US, 0.0, seed=seeds[0], scale=scale)
            result = simulate_arch(config, workload)
            points.append(ParetoPoint(result.edp, proxy_accuracy(None, 0.0), label="TC"))
            continue
        for sparsity in sparsities:
            workload = build_workload(layer, family, sparsity, seed=seeds[0], scale=scale)
            result = simulate_arch(config, workload)
            acc_family = family if name != "RM-STC" else PatternFamily.US
            points.append(
                ParetoPoint(result.edp, proxy_accuracy(acc_family, sparsity), label=f"{name}@{sparsity:.0%}")
            )
    return {"points": points, "frontier": pareto_frontier(points)}


# ---------------------------------------------------------------------------
# Scenario diversity: stencil / MoE / 2:4-inference win-loss sweep
# ---------------------------------------------------------------------------


def _scenario_cell(family: str, pattern: str, scale: int, seed: int) -> Dict[str, Any]:
    """One scenario grid point: a whole workload family under one pattern
    regime, simulated on that regime's architecture AND encoded in every
    registered storage format with both consumption orientations traced.

    Ships the aggregated :class:`SimResult` as its versioned
    ``to_dict()`` payload plus plain per-format traffic floats -- pure
    function of the kwargs, picklable both ways.
    """
    from ..formats.base import ORIENTATIONS, EncodeSpec
    from ..formats.memory_model import traffic_report
    from ..formats.registry import available_formats, get_format

    bundle = build_scenario(family, pattern, seed=seed, scale=scale)
    config = arch_by_name(SCENARIO_ARCH[pattern])
    layer_results = [simulate_arch(config, wl) for wl in bundle.layers]
    agg = aggregate(layer_results, bundle.repeats)

    fmt_wl = bundle.format_workload
    spec = EncodeSpec(mask=fmt_wl.mask, tbs=fmt_wl.tbs, block_size=fmt_wl.m)
    formats: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in available_formats():
        encoded = get_format(name).encode(fmt_wl.sparse_values, spec)
        per_orient: Dict[str, Dict[str, float]] = {}
        for orient in ORIENTATIONS:
            rep = traffic_report(encoded, m=fmt_wl.m, orientation=orient)
            per_orient[orient] = {
                "fetched_bytes": float(rep.fetched_bytes),
                "bandwidth_utilization": float(rep.bandwidth_utilization),
            }
        formats[name] = per_orient
    return {
        "sim": agg.to_dict(),
        "formats": formats,
        "mask_sparsity": float(fmt_wl.sparsity),
        "target_sparsity": float(bundle.target_sparsity),
    }


def _winner(patterns: Sequence[str], costs) -> str:
    """The regime with the strictly lowest cost, or ``"tie"`` on a draw."""
    best = min(costs[p] for p in patterns)
    leaders = [p for p in patterns if costs[p] == best]
    return leaders[0] if len(leaders) == 1 else "tie"


def run_scenarios(
    families: Optional[Sequence[str]] = None,
    patterns: Sequence[str] = SCENARIO_PATTERNS,
    seed: int = 0,
    scale: int = 8,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    options: Optional[SweepOptions] = None,
) -> Dict[str, Dict[str, Any]]:
    """The scenario-diversity win/loss sweep: which scenarios does TBS win?

    Every workload family (stencil / moe / inference24) runs under every
    pattern regime (TBS on TB-STC, 2:4 on STC, dense on TC); each cell
    also encodes the family's representative matrix in every registered
    storage format and traces both consumption orientations.  Returns
    per family::

        {"patterns": {regime: {cycles, edp, mask_sparsity, macs}},
         "speedup_vs_dense": {regime: x},
         "cycle_winner": regime,
         "formats": {fmt: {orientation: {regime: fetched_bytes...,
                                         "winner": regime}}}}

    ``winner`` marks the regime moving the fewest bytes for that
    (format, orientation); ``cycle_winner`` the fastest regime end to
    end; exact draws report ``"tie"``.  One sweep cell per (family,
    regime); aggregation folds in grid order, so the table is
    byte-identical at any worker count.
    """
    if families is None:
        families = SCENARIO_FAMILIES
    families = tuple(families)
    for family in families:
        if family not in SCENARIO_FAMILIES:
            raise ValueError(
                f"unknown workload family {family!r}; known: {', '.join(SCENARIO_FAMILIES)}"
            )
    patterns = tuple(patterns)
    for pattern in patterns:
        if pattern not in SCENARIO_PATTERNS:
            raise ValueError(
                f"unknown scenario pattern {pattern!r}; known: {', '.join(SCENARIO_PATTERNS)}"
            )
    cells = [
        SweepCell(
            key=f"{family}/{pattern}",
            fn=_scenario_cell,
            kwargs={"family": family, "pattern": pattern, "scale": scale, "seed": seed},
        )
        for family in families
        for pattern in patterns
    ]
    sweep = run_sweep(
        SweepSpec("scenarios", tuple(cells)),
        workers=configured_workers(workers),
        cache_dir=cache_dir,
        resume=resume,
        options=options,
        strict=True,
    )
    out: Dict[str, Dict[str, Any]] = {}
    for family in families:
        cells_by_pattern = {p: sweep.value(f"{family}/{p}") for p in patterns}
        sims = {p: SimResult.from_dict(cell["sim"]) for p, cell in cells_by_pattern.items()}
        pattern_rows = {
            p: {
                "cycles": float(sims[p].cycles),
                "edp": float(sims[p].edp),
                "mask_sparsity": cells_by_pattern[p]["mask_sparsity"],
                "macs": float(sims[p].macs),
            }
            for p in patterns
        }
        entry: Dict[str, Any] = {
            "target_sparsity": cells_by_pattern[patterns[0]]["target_sparsity"],
            "patterns": pattern_rows,
            "cycle_winner": _winner(patterns, {p: sims[p].cycles for p in patterns}),
        }
        if "dense" in patterns:
            dense_cycles = sims["dense"].cycles
            entry["speedup_vs_dense"] = {p: dense_cycles / sims[p].cycles for p in patterns}
        formats: Dict[str, Dict[str, Dict[str, Any]]] = {}
        fmt_names = list(cells_by_pattern[patterns[0]]["formats"])
        for fmt in fmt_names:
            per_orient: Dict[str, Dict[str, Any]] = {}
            for orient in ("forward", "transposed"):
                row: Dict[str, Any] = {
                    p: cells_by_pattern[p]["formats"][fmt][orient]["fetched_bytes"]
                    for p in patterns
                }
                row["winner"] = _winner(patterns, row)
                per_orient[orient] = row
            formats[fmt] = per_orient
        entry["formats"] = formats
        out[family] = entry
    return out
