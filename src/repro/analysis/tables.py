"""ASCII rendering of result tables (for benches and examples)."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["render_table", "render_dict_table"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width table with a separator under the header."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_dict_table(data: Dict[str, Dict[str, float]], key_header: str = "", title: str = "") -> str:
    """Rows = outer keys, columns = union of inner keys."""
    columns: List[str] = []
    for inner in data.values():
        for key in inner:
            if key not in columns:
                columns.append(key)
    headers = [key_header] + columns
    rows = [[name] + [inner.get(col, "") for col in columns] for name, inner in data.items()]
    return render_table(headers, rows, title=title)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
