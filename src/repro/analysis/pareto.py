"""Pareto-frontier utilities (Fig. 1: accuracy vs EDP)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = ["ParetoPoint", "pareto_frontier", "dominates", "hypervolume_2d"]


@dataclass(frozen=True)
class ParetoPoint:
    """One design point: lower ``cost`` (EDP) and higher ``quality``
    (accuracy) are better."""

    cost: float
    quality: float
    label: str = ""


def dominates(a: ParetoPoint, b: ParetoPoint) -> bool:
    """True when ``a`` is at least as good on both axes and better on one."""
    return (a.cost <= b.cost and a.quality >= b.quality) and (
        a.cost < b.cost or a.quality > b.quality
    )


def pareto_frontier(points: Iterable[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset, sorted by ascending cost."""
    pts = list(points)
    frontier = [p for p in pts if not any(dominates(q, p) for q in pts if q is not p)]
    return sorted(frontier, key=lambda p: (p.cost, -p.quality))


def hypervolume_2d(
    frontier: Sequence[ParetoPoint], ref_cost: float, ref_quality: float = 0.0
) -> float:
    """Area dominated by the frontier w.r.t. a reference point.

    Larger is better; used to compare frontiers quantitatively ("TB-STC
    offers an enhanced accuracy-EDP Pareto frontier").
    """
    pts = [p for p in pareto_frontier(frontier) if p.cost <= ref_cost and p.quality >= ref_quality]
    if not pts:
        return 0.0
    # Staircase integration: sweep by ascending cost, accumulating the
    # rectangle each point adds above the best quality seen so far.
    area = 0.0
    best_quality = ref_quality
    for p in sorted(pts, key=lambda p: p.cost):
        if p.quality > best_quality:
            area += (ref_cost - p.cost) * (p.quality - best_quality)
            best_quality = p.quality
    return area
