"""Component energy breakdowns (the Sparseloop-style stacked view).

Decomposes a simulation's energy into its components (compute / DRAM /
SRAM / codec / MBD / static) and compares the stacks across
architectures -- the view that explains *why* RM-STC's EDP trails
TB-STC despite similar cycle counts (Fig. 6(d) / Fig. 12 discussion):
the unstructured datapath's compute energy balloons while everything
else stays comparable.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..sim.baselines import ARCH_FAMILY, arch_by_name, simulate_arch
from ..sim.metrics import SimResult
from ..workloads.generator import build_workload
from ..workloads.layers import LayerSpec

__all__ = ["energy_fractions", "compare_energy_breakdown"]


def energy_fractions(result: SimResult) -> Dict[str, float]:
    """Per-component share of one run's total energy (sums to 1)."""
    total = result.energy.total_pj
    if total <= 0:
        return {}
    return {name: pj / total for name, pj in sorted(result.energy.components.items())}


def compare_energy_breakdown(
    layer: LayerSpec,
    sparsity: float = 0.75,
    arch_names: Sequence[str] = ("TC", "STC", "VEGETA", "HighLight", "RM-STC", "TB-STC"),
    scale: int = 2,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Energy stacks of one layer across architectures.

    Returns ``{arch: {component: fraction, "total_uJ": energy}}``; each
    architecture prunes with its own pattern family (the Fig. 12
    protocol).
    """
    out: Dict[str, Dict[str, float]] = {}
    for name in arch_names:
        config = arch_by_name(name)
        workload = build_workload(layer, ARCH_FAMILY[name], sparsity, seed=seed, scale=scale)
        result = simulate_arch(config, workload)
        row = energy_fractions(result)
        row["total_uJ"] = result.energy.total_j * 1e6
        out[name] = row
    return out
