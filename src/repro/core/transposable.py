"""Strictly-transposable N:M masks (the NM-T baseline, ref. [25]).

Hubara et al. propose masks that satisfy N:M simultaneously in *both*
dimensions of every ``M x M`` block, so the same mask works untouched
for the forward and backward GEMMs.  TBS subsumes this: a strictly
transposable block is valid in either direction, so its mask-space is a
subset of TBS's (which is why TBS reaches higher accuracy -- Sec. III-A
footnote 2 discusses NM-T's mask-diversity measure).

This module implements:

* :func:`is_transposable` -- check the 2-D N:M constraint per block;
* :func:`transposable_block_mask` -- greedy-with-repair construction of
  the maximum-score strictly transposable block mask (each row *and*
  each column keeps at most N entries);
* :func:`transposable_mask` -- whole-matrix construction block by block;
* :func:`transposable_sparsify` -- the NM-T counterpart of Algorithm 1,
  with per-block N chosen from the candidate set.

The construction is the classic greedy algorithm on the bipartite
degree-constrained subgraph problem: sort candidate entries by score and
accept an entry when its row and column quotas are still open.  A repair
pass then fills under-quota rows/columns where possible.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .blocks import merge_from_blocks, split_into_blocks
from .masks import unstructured_mask
from .patterns import DEFAULT_M, PatternSpec, PatternFamily, nearest_candidate

__all__ = [
    "is_transposable",
    "transposable_block_mask",
    "transposable_mask",
    "transposable_sparsify",
]


def is_transposable(mask: np.ndarray, n: int, m: Optional[int] = None) -> bool:
    """True when every row *and* every column keeps at most ``n`` entries."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"expected a 2-D mask, got {mask.shape}")
    if m is not None and mask.shape != (m, m):
        raise ValueError(f"expected a {m}x{m} block")
    return bool(mask.sum(axis=0).max(initial=0) <= n and mask.sum(axis=1).max(initial=0) <= n)


def transposable_block_mask(scores: np.ndarray, n: int) -> np.ndarray:
    """Max-score strictly transposable mask of one square block.

    Greedy by descending score with row/column quotas, followed by a
    repair pass that tops up rows and columns that are both under quota
    (the greedy solution can strand capacity).  The result always
    satisfies the 2-D constraint; on ties it is deterministic.
    """
    scores = np.abs(np.asarray(scores, dtype=np.float64))
    if scores.ndim != 2 or scores.shape[0] != scores.shape[1]:
        raise ValueError(f"expected a square block, got {scores.shape}")
    m = scores.shape[0]
    if not 0 <= n <= m:
        raise ValueError(f"N must be in [0, {m}], got {n}")
    mask = np.zeros((m, m), dtype=bool)
    if n == 0:
        return mask
    if n == m:
        return np.ones((m, m), dtype=bool)

    row_quota = np.full(m, n)
    col_quota = np.full(m, n)
    order = np.dstack(np.unravel_index(np.argsort(-scores, axis=None, kind="stable"), scores.shape))[0]
    deferred = []
    for i, j in order:
        if row_quota[i] > 0 and col_quota[j] > 0:
            mask[i, j] = True
            row_quota[i] -= 1
            col_quota[j] -= 1
        else:
            deferred.append((i, j))
    # Repair: greedy can strand quota (row open, all its open columns
    # taken); one more descending pass over the rejects fixes the easy
    # cases.
    for i, j in deferred:
        if row_quota[i] > 0 and col_quota[j] > 0 and not mask[i, j]:
            mask[i, j] = True
            row_quota[i] -= 1
            col_quota[j] -= 1
    return mask


def transposable_mask(
    scores: np.ndarray,
    n: int,
    m: int = DEFAULT_M,
) -> np.ndarray:
    """Whole-matrix strictly transposable N:M mask with fixed ``n``."""
    scores = np.abs(np.asarray(scores, dtype=np.float64))
    if scores.ndim != 2:
        raise ValueError(f"expected a 2-D score matrix, got {scores.shape}")
    rows, cols = scores.shape
    blocks = split_into_blocks(scores, m)
    n_br, n_bc = blocks.shape[:2]
    out = np.zeros((n_br, n_bc, m, m), dtype=bool)
    for br in range(n_br):
        for bc in range(n_bc):
            out[br, bc] = transposable_block_mask(blocks[br, bc], n)
    return merge_from_blocks(out, rows, cols)


def transposable_sparsify(
    scores: np.ndarray,
    m: int = DEFAULT_M,
    sparsity: float = 0.5,
    candidates: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """NM-T with block-adaptive N (the fairest comparison against TBS).

    Like Algorithm 1, each block's N comes from its unstructured
    density; unlike TBS the block must then satisfy N:M in *both*
    dimensions.  Returns ``(mask, block_n)``.
    """
    spec = PatternSpec(
        PatternFamily.TBS, m=m, sparsity=sparsity, candidates=tuple(candidates) if candidates else None
    )
    scores = np.abs(np.asarray(scores, dtype=np.float64))
    us = unstructured_mask(scores, sparsity)
    score_blocks = split_into_blocks(scores, m)
    density = split_into_blocks(us.astype(np.float64), m).mean(axis=(2, 3))
    n_br, n_bc = density.shape
    out = np.zeros((n_br, n_bc, m, m), dtype=bool)
    block_n = np.zeros((n_br, n_bc), dtype=np.int64)
    for br in range(n_br):
        for bc in range(n_bc):
            n = nearest_candidate(float(density[br, bc]), m, spec.candidates)
            block_n[br, bc] = n
            out[br, bc] = transposable_block_mask(score_blocks[br, bc], n)
    rows, cols = scores.shape
    return merge_from_blocks(out, rows, cols), block_n
