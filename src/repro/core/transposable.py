"""Strictly-transposable N:M masks (the NM-T baseline, ref. [25]).

Hubara et al. propose masks that satisfy N:M simultaneously in *both*
dimensions of every ``M x M`` block, so the same mask works untouched
for the forward and backward GEMMs.  TBS subsumes this: a strictly
transposable block is valid in either direction, so its mask-space is a
subset of TBS's (which is why TBS reaches higher accuracy -- Sec. III-A
footnote 2 discusses NM-T's mask-diversity measure).

This module implements:

* :func:`is_transposable` -- check the 2-D N:M constraint per block;
* :func:`transposable_block_mask` -- maximum-score strictly transposable
  block mask (each row *and* each column keeps at most N entries);
* :func:`transposable_mask` -- whole-matrix construction block by block;
* :func:`transposable_sparsify` -- the NM-T counterpart of Algorithm 1,
  with per-block N chosen from the candidate set.

Mask construction is delegated to the pluggable solver backends in
:mod:`repro.core.tsolvers` -- ``greedy`` (the historical default),
``exact`` (min-cost-flow oracle) and ``tsenor`` (batched Sinkhorn/
Dykstra).  Every entry point takes ``backend=`` and falls back to
``$REPRO_TSOLVER`` and then ``greedy``; whole-matrix construction hands
the full block batch to the backend in one call so vectorized solvers
see the batch dimension.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .blocks import merge_from_blocks, split_into_blocks
from .masks import unstructured_mask
from .patterns import (
    DEFAULT_M,
    PatternSpec,
    PatternFamily,
    nearest_candidates_grid,
)
from .tsolvers import solve_block, solve_blocks

__all__ = [
    "is_transposable",
    "transposable_block_mask",
    "transposable_mask",
    "transposable_sparsify",
]


def is_transposable(mask: np.ndarray, n: int, m: Optional[int] = None) -> bool:
    """True when every row *and* every column keeps at most ``n`` entries."""
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"expected a 2-D mask, got {mask.shape}")
    if m is not None and mask.shape != (m, m):
        raise ValueError(f"expected a {m}x{m} block")
    return bool(mask.sum(axis=0).max(initial=0) <= n and mask.sum(axis=1).max(initial=0) <= n)


def transposable_block_mask(
    scores: np.ndarray, n: int, backend: Optional[str] = None
) -> np.ndarray:
    """Max-score strictly transposable mask of one square block.

    ``backend`` selects the :mod:`repro.core.tsolvers` implementation
    (``greedy`` / ``exact`` / ``tsenor``); the default resolves through
    ``$REPRO_TSOLVER`` to ``greedy``.  The result always satisfies the
    2-D constraint and is deterministic on ties.
    """
    return solve_block(scores, n, backend=backend)


def _solve_block_grid(
    score_blocks: np.ndarray, block_n: np.ndarray, backend: Optional[str]
) -> np.ndarray:
    """Solve an ``(n_br, n_bc, m, m)`` block grid as one backend batch."""
    n_br, n_bc, m, _ = score_blocks.shape
    batch = score_blocks.reshape(n_br * n_bc, m, m)
    masks = solve_blocks(batch, np.asarray(block_n).reshape(-1), backend=backend)
    return masks.reshape(n_br, n_bc, m, m)


def transposable_mask(
    scores: np.ndarray,
    n: int,
    m: int = DEFAULT_M,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Whole-matrix strictly transposable N:M mask with fixed ``n``."""
    scores = np.abs(np.asarray(scores, dtype=np.float64))
    if scores.ndim != 2:
        raise ValueError(f"expected a 2-D score matrix, got {scores.shape}")
    rows, cols = scores.shape
    blocks = split_into_blocks(scores, m)
    n_grid = np.full(blocks.shape[:2], n, dtype=np.int64)
    out = _solve_block_grid(blocks, n_grid, backend)
    return merge_from_blocks(out, rows, cols)


def transposable_sparsify(
    scores: np.ndarray,
    m: int = DEFAULT_M,
    sparsity: float = 0.5,
    candidates: Optional[Sequence[int]] = None,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """NM-T with block-adaptive N (the fairest comparison against TBS).

    Like Algorithm 1, each block's N comes from its unstructured
    density; unlike TBS the block must then satisfy N:M in *both*
    dimensions.  Returns ``(mask, block_n)``.
    """
    spec = PatternSpec(
        PatternFamily.TBS, m=m, sparsity=sparsity, candidates=tuple(candidates) if candidates else None
    )
    scores = np.abs(np.asarray(scores, dtype=np.float64))
    us = unstructured_mask(scores, sparsity)
    score_blocks = split_into_blocks(scores, m)
    density = split_into_blocks(us.astype(np.float64), m).mean(axis=(2, 3))
    block_n = nearest_candidates_grid(density, m, spec.candidates)
    out = _solve_block_grid(score_blocks, block_n, backend)
    rows, cols = scores.shape
    return merge_from_blocks(out, rows, cols), block_n
