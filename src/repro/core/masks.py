"""Mask generators for every sparsity-pattern family the paper compares.

Every generator takes a *score* matrix (importance per weight -- magnitude
by default, but any criterion from :mod:`repro.core.criteria` works, since
the paper notes pattern and criterion are orthogonal) and returns a boolean
mask of the same shape where ``True`` marks a kept (non-zero) weight.

Conventions (see :mod:`repro.core.patterns`): the matrix rows are the
independent dimension and the columns the reduction dimension, so
"row-wise" N:M groups run along axis 1.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from .patterns import (
    DEFAULT_M,
    NMConfig,
    PatternFamily,
    PatternSpec,
    nearest_candidate,
)

__all__ = [
    "unstructured_mask",
    "global_threshold",
    "tile_mask",
    "topn_along_last",
    "vegeta_mask",
    "highlight_mask",
    "make_mask",
]


def _as_scores(scores: np.ndarray) -> np.ndarray:
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"expected a 2-D score matrix, got shape {scores.shape}")
    return np.abs(scores)


def unstructured_mask(scores: np.ndarray, sparsity: float) -> np.ndarray:
    """Global top-k mask: keep the ``(1 - sparsity)`` highest-score entries."""
    scores = _as_scores(scores)
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    total = scores.size
    keep = total - int(round(sparsity * total))
    mask = np.zeros(total, dtype=bool)
    if keep > 0:
        flat = scores.ravel()
        kept_idx = np.argpartition(flat, total - keep)[total - keep :]
        mask[kept_idx] = True
    return mask.reshape(scores.shape)


def global_threshold(scores: np.ndarray, sparsity: float) -> float:
    """Score threshold at the target sparsity over the whole matrix.

    This is the first step of the sparse-training forward pass
    (Sec. III-B1): "we first obtain the threshold on the entire weight
    according to the target sparsity".
    """
    scores = _as_scores(scores)
    if scores.size == 0 or sparsity <= 0.0:
        return 0.0
    if sparsity >= 1.0:
        return float(scores.max()) + 1.0
    return float(np.quantile(scores.ravel(), sparsity))


def topn_along_last(scores: np.ndarray, n: int) -> np.ndarray:
    """Boolean mask keeping the top-``n`` entries along the last axis.

    Works on any leading shape; this is the N:M primitive used by every
    structured generator.  ``n`` may be an integer array broadcastable over
    the leading axes (per-group N), enabling the variable-N patterns.
    """
    scores = np.abs(np.asarray(scores, dtype=np.float64))
    m = scores.shape[-1]
    n_arr = np.asarray(n)
    if np.any(n_arr < 0) or np.any(n_arr > m):
        raise ValueError(f"N must be within [0, {m}]")
    # Rank entries within each group: rank 0 is the largest.
    order = np.argsort(-scores, axis=-1, kind="stable")
    ranks = np.empty_like(order)
    # put_along_axis only reads `values`, so the read-only broadcast view
    # is fine -- materialising it would dominate this hot path.
    np.put_along_axis(ranks, order, np.broadcast_to(np.arange(m), scores.shape), axis=-1)
    return ranks < np.expand_dims(n_arr, axis=-1) if n_arr.ndim else ranks < n_arr


def tile_mask(scores: np.ndarray, nm: NMConfig) -> np.ndarray:
    """Tile-wise N:M mask (TS): fixed N for every M-wide reduction-dim tile.

    This is the NVIDIA Sparse Tensor Core pattern (2:4 in hardware; the
    paper's TS baseline uses 4:8).
    """
    scores = _as_scores(scores)
    rows, cols = scores.shape
    pad_c = (-cols) % nm.m
    padded = np.pad(scores, ((0, 0), (0, pad_c)), constant_values=-np.inf)
    groups = padded.reshape(rows, -1, nm.m)
    mask = topn_along_last(groups, nm.n)
    mask &= np.isfinite(groups)  # padding is never "kept"
    return mask.reshape(rows, -1)[:, :cols]


def _row_densities_from_unstructured(scores: np.ndarray, sparsity: float) -> np.ndarray:
    """Per-row densities implied by the global unstructured mask.

    Both row-wise baselines calibrate their per-row N against the density
    the unstructured pattern would give that row, which is how they reach
    the matrix-level target sparsity while redistributing across rows.
    """
    us = unstructured_mask(scores, sparsity)
    return us.mean(axis=1)


def vegeta_mask(
    scores: np.ndarray,
    m: int = DEFAULT_M,
    sparsity: float = 0.5,
    candidates: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Row-wise N:M mask with per-row N (the VEGETA / RS-V baseline).

    Each row independently selects its N from the candidate set to best
    match its unstructured density, then applies uniform N:M along its
    reduction-dim groups.  Unlike the block-wise patterns, VEGETA's
    hardware supports *any* N in [0, M] per row, so the default
    candidate set is the full integer range.
    """
    scores = _as_scores(scores)
    if candidates is None:
        candidates = tuple(range(m + 1))
    spec = PatternSpec(PatternFamily.RS_V, m=m, sparsity=sparsity, candidates=tuple(candidates))
    rows, cols = scores.shape
    densities = _row_densities_from_unstructured(scores, sparsity)
    row_n = np.array([nearest_candidate(d, m, spec.candidates) for d in densities])

    pad_c = (-cols) % m
    padded = np.pad(scores, ((0, 0), (0, pad_c)), constant_values=-np.inf)
    groups = padded.reshape(rows, -1, m)
    mask = topn_along_last(groups, row_n[:, None])
    mask &= np.isfinite(groups)
    return mask.reshape(rows, -1)[:, :cols]


def highlight_mask(
    scores: np.ndarray,
    m: int = DEFAULT_M,
    sparsity: float = 0.5,
    candidates: Optional[Sequence[int]] = None,
    super_group: int = 4,
) -> np.ndarray:
    """Hierarchical row-wise mask (the HighLight / RS-H baseline).

    HighLight composes two sparsity levels: a coarse level that keeps
    ``T`` of every ``super_group`` M-wide tiles (tile-level N:M over tile
    occupancy) and a fine level that applies N:M inside each surviving
    tile.  Per row we search the small (T, N) grid for the product ratio
    ``(T / super_group) * (N / M)`` closest to the row's unstructured
    density, which yields more achievable sparsity degrees than RS-V's
    single-level choice.
    """
    scores = _as_scores(scores)
    spec = PatternSpec(PatternFamily.RS_H, m=m, sparsity=sparsity, candidates=tuple(candidates) if candidates else None)
    rows, cols = scores.shape
    densities = _row_densities_from_unstructured(scores, sparsity)

    fine_levels = [n for n in spec.candidates if n > 0]
    coarse_levels = list(range(1, super_group + 1))
    combos: list[Tuple[int, int, float]] = [
        (t, n, (t / super_group) * (n / m)) for t in coarse_levels for n in fine_levels
    ]
    combos.append((0, 0, 0.0))

    pad_c = (-cols) % (m * super_group)
    padded = np.pad(scores, ((0, 0), (0, pad_c)), constant_values=0.0)
    n_tiles = padded.shape[1] // m
    tiles = padded.reshape(rows, n_tiles, m)

    tile_strength = tiles.sum(axis=2)  # coarse-level tile importance

    # Per-row combo choice, vectorized with the same lexicographic
    # tie-break as ``min(combos, key=(abs diff, ratio))`` plus list
    # position: smallest |ratio - density|, then smallest ratio, then
    # first combo in (t, n) enumeration order.
    ratios = np.array([c[2] for c in combos])
    diffs = np.abs(ratios[None, :] - densities[:, None])
    cand = diffs == diffs.min(axis=1, keepdims=True)
    ratio_masked = np.where(cand, ratios[None, :], np.inf)
    cand &= ratio_masked == ratio_masked.min(axis=1, keepdims=True)
    best = np.argmax(cand, axis=1)
    t_keep = np.array([c[0] for c in combos])[best]
    n_keep = np.array([c[1] for c in combos])[best]

    # Coarse level: keep the strongest t_keep[r] tiles per super-group.
    strengths = tile_strength.reshape(rows, -1, super_group)
    keep_tiles = topn_along_last(strengths, t_keep[:, None]).reshape(rows, n_tiles)
    # Fine level: top-n_keep[r] inside every tile (a tile's top-N does
    # not depend on the other tiles, so computing it everywhere and
    # masking with the coarse keep set matches the per-row loop exactly).
    fine = topn_along_last(tiles, n_keep[:, None])
    mask = fine & keep_tiles[:, :, None] & (n_keep > 0)[:, None, None]
    return mask.reshape(rows, -1)[:, :cols]


def make_mask(scores: np.ndarray, spec: PatternSpec) -> np.ndarray:
    """Dispatch to the generator for ``spec.family``.

    TBS is implemented by Algorithm 1 in :mod:`repro.core.sparsify`; it is
    imported lazily here to keep the module dependency graph acyclic.
    """
    if spec.family is PatternFamily.US:
        return unstructured_mask(scores, spec.sparsity)
    if spec.family is PatternFamily.TS:
        return tile_mask(scores, NMConfig(spec.fixed_n, spec.m))
    if spec.family is PatternFamily.RS_V:
        return vegeta_mask(scores, spec.m, spec.sparsity, spec.candidates)
    if spec.family is PatternFamily.RS_H:
        return highlight_mask(scores, spec.m, spec.sparsity, spec.candidates)
    if spec.family is PatternFamily.TBS:
        from .sparsify import tbs_sparsify

        return tbs_sparsify(scores, m=spec.m, sparsity=spec.sparsity, candidates=spec.candidates).mask
    if spec.family is PatternFamily.NMT:
        from .transposable import transposable_sparsify

        mask, _ = transposable_sparsify(
            scores, m=spec.m, sparsity=spec.sparsity, candidates=spec.candidates
        )
        return mask
    raise ValueError(f"unknown pattern family: {spec.family}")
