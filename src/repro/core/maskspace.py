"""Mask-space (MS) formulas -- Sec. III-A2, Eqs. (1)-(4).

The mask-space of a sparsity pattern is the number of distinct masks the
pattern can express on an ``X x Y`` matrix with granularity M.  The paper
uses it to explain why TBS approaches unstructured accuracy: a larger
mask-space lets the structured pattern land closer to the unstructured
optimum (Fig. 4(c)).

All quantities are astronomically large (e.g. ``2^10^5``), so the public
API returns **log2** values computed with ``lgamma``; exact big-integer
versions are provided for small matrices and used by the tests to validate
the log-domain implementations.

Notation: ``C(p, q)`` is the binomial coefficient; candidate N values are
the powers of two ``2^i`` for ``i = 0..k`` with ``k = log2(M)`` (plus the
empty choice, which the formulas fold into the sums as written).
"""

from __future__ import annotations

import math
from typing import Iterable

from .patterns import is_power_of_two, log2_choose

__all__ = [
    "log2_maskspace_ts",
    "log2_maskspace_rs_v",
    "log2_maskspace_rs_h",
    "log2_maskspace_tbs",
    "log2_maskspace_us",
    "exact_maskspace_ts",
    "exact_maskspace_rs_v",
    "exact_maskspace_tbs",
    "maskspace_table",
]


def _check_dims(x: int, y: int, m: int) -> None:
    if m < 1 or not is_power_of_two(m):
        raise ValueError(f"M must be a positive power of two, got {m}")
    if x < 1 or y < 1:
        raise ValueError(f"matrix dims must be positive, got {x}x{y}")
    if x % m or y % m:
        raise ValueError(f"dims ({x}x{y}) must be multiples of M={m}")


def _log2_sum_exp(log_terms: Iterable[float]) -> float:
    """log2 of a sum given the log2 of each term (stable log-sum-exp)."""
    terms = [t for t in log_terms if t != float("-inf")]
    if not terms:
        return float("-inf")
    peak = max(terms)
    total = sum(2.0 ** (t - peak) for t in terms)
    return peak + math.log2(total)


def _candidate_exponents(m: int) -> range:
    return range(int(math.log2(m)) + 1)


def log2_maskspace_ts(x: int, y: int, m: int) -> float:
    """Eq. (1): tile-wise.  One N = 2^i shared by all X*Y/M tiles.

    ``MS_TS = sum_i C(M, 2^i) ** (X*Y / M)``
    """
    _check_dims(x, y, m)
    tiles = x * y // m
    return _log2_sum_exp(tiles * log2_choose(m, 2**i) for i in _candidate_exponents(m))


def log2_maskspace_rs_v(x: int, y: int, m: int) -> float:
    """Eq. (2): row-wise VEGETA.  Each row picks its own N = 2^i.

    ``MS_RS-V = [sum_i C(M, 2^i) ** (Y / M)] ** X``
    """
    _check_dims(x, y, m)
    per_row = _log2_sum_exp((y // m) * log2_choose(m, 2**i) for i in _candidate_exponents(m))
    return x * per_row


def log2_maskspace_rs_h(x: int, y: int, m: int) -> float:
    """Eq. (3): row-wise HighLight with hierarchical ratios.

    ``MS_RS-H = sum_{i=M}^{2M-1} [ (C(i, M) * C(M, M/2)**M) ** (X*Y/(i*M))
                                    + 2 * C(i, M) ** (X*Y/(i*M)) ]``

    The coarse level keeps M of every ``i`` tiles (``i`` sweeping M..2M-1
    gives the hierarchical ratio family); the fine level is M/2:M within
    kept tiles, with the two degenerate single-level variants contributing
    the ``2 * C(i, M) ** ...`` term.
    """
    _check_dims(x, y, m)
    terms = []
    log_fine = m * log2_choose(m, m // 2) if m >= 2 else 0.0
    for i in range(m, 2 * m):
        groups = (x * y) / (i * m)
        log_coarse = log2_choose(i, m)
        terms.append(groups * (log_coarse + log_fine))
        terms.append(1.0 + groups * log_coarse)  # the "2 *" variants
    return _log2_sum_exp(terms)


def log2_maskspace_tbs(x: int, y: int, m: int) -> float:
    """Eq. (4): transposable block-wise.

    ``MS_TBS = [sum_i 2 * C(M, 2^i) ** M] ** (X*Y / M^2)``

    Per block: pick N = 2^i, pick one of 2 directions, and choose top-N
    positions independently in each of the block's M rows (or columns).
    """
    _check_dims(x, y, m)
    per_block = _log2_sum_exp(1.0 + m * log2_choose(m, 2**i) for i in _candidate_exponents(m))
    blocks = x * y // (m * m)
    return blocks * per_block


def log2_maskspace_us(x: int, y: int, sparsity: float = 0.5) -> float:
    """Unstructured reference: ``C(X*Y, nnz)`` at the given sparsity."""
    total = x * y
    keep = total - int(round(sparsity * total))
    return log2_choose(total, keep)


# ---------------------------------------------------------------------------
# Exact big-integer versions (small matrices; used to validate the log code).
# ---------------------------------------------------------------------------


def exact_maskspace_ts(x: int, y: int, m: int) -> int:
    _check_dims(x, y, m)
    tiles = x * y // m
    return sum(math.comb(m, 2**i) ** tiles for i in _candidate_exponents(m))


def exact_maskspace_rs_v(x: int, y: int, m: int) -> int:
    _check_dims(x, y, m)
    per_row = sum(math.comb(m, 2**i) ** (y // m) for i in _candidate_exponents(m))
    return per_row**x


def exact_maskspace_tbs(x: int, y: int, m: int) -> int:
    _check_dims(x, y, m)
    per_block = sum(2 * math.comb(m, 2**i) ** m for i in _candidate_exponents(m))
    return per_block ** (x * y // (m * m))


def maskspace_table(x: int, y: int, m: int) -> dict:
    """All four pattern mask-spaces (log2) plus the US reference -- Fig. 4(c)."""
    return {
        "TS": log2_maskspace_ts(x, y, m),
        "RS-V": log2_maskspace_rs_v(x, y, m),
        "RS-H": log2_maskspace_rs_h(x, y, m),
        "TBS": log2_maskspace_tbs(x, y, m),
        "US": log2_maskspace_us(x, y),
    }
