"""Pruning criteria -- orthogonal to the sparsity pattern (Sec. III-B note).

The paper evaluates the pattern families under multiple criteria
(Table II): magnitude, Wanda and SparseGPT.  Every criterion here reduces
to a *score matrix* that the pattern generators in
:mod:`repro.core.masks` / :mod:`repro.core.sparsify` consume, which is
exactly the orthogonality the paper claims.

* **Magnitude** [17], [19]: ``|W|``.
* **Wanda** [59]: ``|W| * ||X_j||_2`` -- weight magnitude scaled by the L2
  norm of the corresponding input activation channel over a calibration
  set.
* **SparseGPT** [12]: the OBS saliency ``w^2 / [H^-1]_jj`` with
  ``H = X X^T + lambda I``; :func:`sparsegpt_prune` additionally applies
  the OBS *weight update* that compensates remaining weights for the
  pruned ones, column by column.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

__all__ = [
    "magnitude_scores",
    "wanda_scores",
    "sparsegpt_scores",
    "sparsegpt_prune",
    "calibration_hessian",
]

MaskFn = Callable[[np.ndarray], np.ndarray]


def _check_weight(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"expected 2-D weights (out, in), got shape {weights.shape}")
    return weights


def _check_calibration(weights: np.ndarray, activations: np.ndarray) -> np.ndarray:
    activations = np.asarray(activations, dtype=np.float64)
    if activations.ndim != 2:
        raise ValueError(f"expected 2-D activations (samples, in), got {activations.shape}")
    if activations.shape[1] != weights.shape[1]:
        raise ValueError(
            f"activation feature dim {activations.shape[1]} != weight input dim {weights.shape[1]}"
        )
    return activations


def magnitude_scores(weights: np.ndarray) -> np.ndarray:
    """Plain magnitude criterion ``|W|``."""
    return np.abs(_check_weight(weights))


def wanda_scores(weights: np.ndarray, activations: np.ndarray) -> np.ndarray:
    """Wanda criterion: ``|W_ij| * ||X_j||_2`` over the calibration set.

    ``weights`` is ``(out_features, in_features)``; ``activations`` is
    ``(samples, in_features)``.
    """
    weights = _check_weight(weights)
    activations = _check_calibration(weights, activations)
    norms = np.linalg.norm(activations, axis=0)
    return np.abs(weights) * norms[None, :]


def calibration_hessian(
    activations: np.ndarray, damping: float = 0.01
) -> np.ndarray:
    """``H = X^T X / n + lambda * mean(diag) * I`` from calibration activations.

    The relative damping follows SparseGPT's practice of scaling the ridge
    term by the average diagonal magnitude so one constant works across
    layers of very different activation scales.
    """
    activations = np.asarray(activations, dtype=np.float64)
    if activations.ndim != 2:
        raise ValueError(f"expected 2-D activations, got {activations.shape}")
    n = max(1, activations.shape[0])
    hessian = activations.T @ activations / n
    diag_mean = float(np.trace(hessian)) / max(1, hessian.shape[0])
    if diag_mean <= 0.0:
        diag_mean = 1.0
    hessian = hessian + damping * diag_mean * np.eye(hessian.shape[0])
    return hessian


def sparsegpt_scores(
    weights: np.ndarray, activations: np.ndarray, damping: float = 0.01
) -> np.ndarray:
    """OBS saliency ``w^2 / [H^-1]_jj`` (the SparseGPT pruning metric)."""
    weights = _check_weight(weights)
    activations = _check_calibration(weights, activations)
    hessian = calibration_hessian(activations, damping)
    hinv = np.linalg.inv(hessian)
    denom = np.clip(np.diag(hinv), 1e-12, None)
    return weights**2 / denom[None, :]


def sparsegpt_prune(
    weights: np.ndarray,
    activations: np.ndarray,
    mask_fn: MaskFn,
    damping: float = 0.01,
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot SparseGPT pruning with OBS error compensation.

    The mask is chosen by ``mask_fn`` applied to the OBS saliency scores
    (this is where the sparsity *pattern* plugs in); the surviving weights
    are then updated column-by-column so each pruned weight's contribution
    is redistributed through the inverse Hessian, following the SparseGPT
    update ``W[:, j:] -= (w_p / [H^-1]_pp) * H^-1[p, j:]``.

    Returns ``(pruned_weights, mask)``.
    """
    weights = _check_weight(weights).copy()
    activations = _check_calibration(weights, activations)
    hessian = calibration_hessian(activations, damping)
    hinv = np.linalg.inv(hessian)

    scores = weights**2 / np.clip(np.diag(hinv), 1e-12, None)[None, :]
    mask = mask_fn(scores).astype(bool)
    if mask.shape != weights.shape:
        raise ValueError("mask_fn returned a mask of the wrong shape")

    in_features = weights.shape[1]
    for j in range(in_features):
        pruned = ~mask[:, j]
        if not np.any(pruned):
            continue
        d = hinv[j, j]
        if d <= 1e-12:
            weights[pruned, j] = 0.0
            continue
        # The error of zeroing column j's pruned entries is redistributed
        # onto the not-yet-visited columns through the inverse Hessian.
        err = np.where(pruned, weights[:, j], 0.0)
        if j + 1 < in_features:
            weights[:, j + 1 :] -= np.outer(err / d, hinv[j, j + 1 :])
        weights[pruned, j] = 0.0
    weights[~mask] = 0.0
    return weights, mask
