"""TB-STC core algorithms: the TBS sparsity pattern and its analyses.

This subpackage is the paper's algorithmic contribution (Sec. III):

* :mod:`~repro.core.patterns` -- pattern taxonomy and N:M descriptors.
* :mod:`~repro.core.masks` -- mask generators for US / TS / RS-V / RS-H.
* :mod:`~repro.core.sparsify` -- Algorithm 1 (TBS sparsification).
* :mod:`~repro.core.maskspace` -- mask-space formulas, Eqs. (1)-(4).
* :mod:`~repro.core.similarity` -- mask similarity, block distributions.
* :mod:`~repro.core.criteria` -- magnitude / Wanda / SparseGPT criteria.
* :mod:`~repro.core.blocks` -- block partitioning shared with hw/formats.
"""

from .blocks import (
    BlockIndex,
    block_densities,
    block_grid_shape,
    block_nnz_counts,
    iter_blocks,
    merge_from_blocks,
    pad_to_blocks,
    split_into_blocks,
)
from .criteria import (
    magnitude_scores,
    sparsegpt_prune,
    sparsegpt_scores,
    wanda_scores,
)
from .masks import (
    global_threshold,
    highlight_mask,
    make_mask,
    tile_mask,
    topn_along_last,
    unstructured_mask,
    vegeta_mask,
)
from .maskspace import (
    log2_maskspace_rs_h,
    log2_maskspace_rs_v,
    log2_maskspace_tbs,
    log2_maskspace_ts,
    log2_maskspace_us,
    maskspace_table,
)
from .patterns import (
    DEFAULT_CANDIDATES,
    DEFAULT_M,
    BlockPattern,
    Direction,
    NMConfig,
    PatternFamily,
    PatternSpec,
    default_candidates,
    nearest_candidate,
    nearest_candidates_grid,
    sparsity_of,
)
from .similarity import (
    direction_distribution,
    kept_overlap,
    mask_agreement,
    pattern_similarity_sweep,
)
from .sparsify import TBSResult, block_pattern_grid, tbs_sparsify
from .tsolvers import (
    DEFAULT_TSOLVER,
    TSOLVER_NAMES,
    resolve_tsolver,
    solve_block,
    solve_blocks,
)
from .transposable import (
    is_transposable,
    transposable_block_mask,
    transposable_mask,
    transposable_sparsify,
)
from .validate import ValidationReport, Violation, validate_mask, validate_tbs_result

__all__ = [
    "BlockIndex",
    "BlockPattern",
    "DEFAULT_CANDIDATES",
    "DEFAULT_M",
    "DEFAULT_TSOLVER",
    "TSOLVER_NAMES",
    "Direction",
    "NMConfig",
    "PatternFamily",
    "PatternSpec",
    "TBSResult",
    "ValidationReport",
    "Violation",
    "block_densities",
    "block_grid_shape",
    "block_nnz_counts",
    "block_pattern_grid",
    "default_candidates",
    "direction_distribution",
    "global_threshold",
    "highlight_mask",
    "is_transposable",
    "iter_blocks",
    "kept_overlap",
    "log2_maskspace_rs_h",
    "log2_maskspace_rs_v",
    "log2_maskspace_tbs",
    "log2_maskspace_ts",
    "log2_maskspace_us",
    "magnitude_scores",
    "make_mask",
    "mask_agreement",
    "maskspace_table",
    "merge_from_blocks",
    "nearest_candidate",
    "nearest_candidates_grid",
    "pad_to_blocks",
    "resolve_tsolver",
    "solve_block",
    "solve_blocks",
    "pattern_similarity_sweep",
    "sparsegpt_prune",
    "sparsegpt_scores",
    "sparsity_of",
    "split_into_blocks",
    "tbs_sparsify",
    "tile_mask",
    "topn_along_last",
    "transposable_block_mask",
    "transposable_mask",
    "transposable_sparsify",
    "unstructured_mask",
    "validate_mask",
    "validate_tbs_result",
    "vegeta_mask",
    "wanda_scores",
]
