"""Mask validation: check that a mask satisfies a pattern family's rules.

Downstream users (and our own tests) need to verify that a mask claimed
to be, say, row-wise 2:8 actually is -- e.g. after externally-produced
checkpoints or hand-edited masks.  Each validator returns a
:class:`ValidationReport` listing every violation instead of just a
boolean, so failures are actionable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .blocks import split_into_blocks
from .patterns import Direction, PatternFamily, PatternSpec
from .sparsify import TBSResult

__all__ = [
    "Violation",
    "ValidationReport",
    "validate_mask",
    "validate_tbs_result",
    "assert_valid",
]


@dataclass(frozen=True)
class Violation:
    """One rule violation: where, and what went wrong."""

    location: Tuple[int, ...]
    message: str

    def __str__(self) -> str:
        return f"{self.location}: {self.message}"


@dataclass
class ValidationReport:
    """Outcome of validating one mask."""

    family: PatternFamily
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, location: Tuple[int, ...], message: str) -> None:
        self.violations.append(Violation(location, message))

    def summary(self, limit: int = 5) -> str:
        if self.ok:
            return f"{self.family.name}: valid"
        head = "; ".join(str(v) for v in self.violations[:limit])
        more = len(self.violations) - limit
        tail = f" (+{more} more)" if more > 0 else ""
        return f"{self.family.name}: {len(self.violations)} violation(s): {head}{tail}"


def _check_groups(report, mask: np.ndarray, m: int, max_n=None, uniform_rows: bool = False) -> None:
    """Row-wise group checks shared by TS and RS validation."""
    rows, cols = mask.shape
    pad = (-cols) % m
    padded = np.pad(mask, ((0, 0), (0, pad)))
    groups = padded.reshape(rows, -1, m).sum(axis=2)
    for r in range(rows):
        row_counts = groups[r]
        if uniform_rows:
            # Ignore the ragged last group, which may legitimately hold
            # fewer elements.
            full = row_counts[:-1] if pad else row_counts
            if full.size and (full != full[0]).any():
                report.add((r,), f"non-uniform group occupancy {sorted(set(full.tolist()))}")
        if max_n is not None:
            for g, count in enumerate(row_counts):
                if count > max_n:
                    report.add((r, g), f"group keeps {count} > N={max_n}")


def validate_mask(
    mask: np.ndarray,
    spec: PatternSpec,
    tbs: Optional[TBSResult] = None,
) -> ValidationReport:
    """Validate ``mask`` against the constraints of ``spec.family``.

    * ``US`` -- always valid (only the sparsity degree is advisory).
    * ``TS`` -- every M-wide reduction-dim group keeps at most
      ``spec.fixed_n``.
    * ``RS_V`` -- every group keeps at most M, and groups within a row
      are uniform (the per-row-N constraint).
    * ``RS_H`` -- every group keeps at most M (the hierarchy is a
      refinement; group-level emptiness is allowed anywhere).
    * ``TBS`` -- every ``M x M`` block satisfies N:M in at least one
      dimension for some candidate N (or exactly the declared direction
      and N when ``tbs`` metadata is supplied).
    * ``NMT`` -- every ``M x M`` block satisfies N:M in *both*
      dimensions for some candidate N (the strictly transposable
      constraint: max row and column occupancy within one candidate).
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError(f"expected a 2-D mask, got {mask.shape}")
    report = ValidationReport(spec.family)
    m = spec.m

    if spec.family is PatternFamily.US:
        return report
    if spec.family is PatternFamily.TS:
        _check_groups(report, mask, m, max_n=spec.fixed_n)
        return report
    if spec.family is PatternFamily.RS_V:
        _check_groups(report, mask, m, max_n=m, uniform_rows=True)
        return report
    if spec.family is PatternFamily.RS_H:
        _check_groups(report, mask, m, max_n=m)
        return report
    if spec.family is PatternFamily.TBS:
        blocks = split_into_blocks(mask.astype(np.int64), m)
        n_br, n_bc = blocks.shape[:2]
        for br in range(n_br):
            for bc in range(n_bc):
                block = blocks[br, bc]
                row_counts = block.sum(axis=1)
                col_counts = block.sum(axis=0)
                if tbs is not None:
                    n = int(tbs.block_n[br, bc])
                    direction = Direction(int(tbs.block_direction[br, bc]))
                    counts = row_counts if direction is Direction.ROW else col_counts
                    if counts.max(initial=0) > n:
                        report.add((br, bc), f"{direction.name} block exceeds declared N={n}")
                    continue
                # A block is valid if its max lane occupancy in SOME
                # direction is an allowed N and the occupancy is uniform
                # (zero-padded lanes excepted at matrix edges).
                row_uniform = row_counts.max(initial=0) in spec.candidates and (
                    set(row_counts.tolist()) <= {0, row_counts.max(initial=0)}
                )
                col_uniform = col_counts.max(initial=0) in spec.candidates and (
                    set(col_counts.tolist()) <= {0, col_counts.max(initial=0)}
                )
                if not (row_uniform or col_uniform):
                    report.add(
                        (br, bc),
                        f"block valid in neither dimension "
                        f"(row counts {sorted(set(row_counts.tolist()))}, "
                        f"col counts {sorted(set(col_counts.tolist()))})",
                    )
        return report
    if spec.family is PatternFamily.NMT:
        blocks = split_into_blocks(mask.astype(np.int64), m)
        n_br, n_bc = blocks.shape[:2]
        max_candidate = max(spec.candidates)
        for br in range(n_br):
            for bc in range(n_bc):
                block = blocks[br, bc]
                occ = max(
                    int(block.sum(axis=1).max(initial=0)),
                    int(block.sum(axis=0).max(initial=0)),
                )
                # Strictly transposable: some candidate N must bound the
                # occupancy of every row AND every column of the block.
                if occ > max_candidate:
                    report.add(
                        (br, bc),
                        f"block occupancy {occ} exceeds every candidate N "
                        f"(max {max_candidate})",
                    )
        return report
    raise ValueError(f"unknown family {spec.family}")


def validate_tbs_result(result: TBSResult) -> ValidationReport:
    """Validate a :class:`TBSResult` against its own declared metadata."""
    spec = PatternSpec(PatternFamily.TBS, m=result.m)
    return validate_mask(result.mask, spec, tbs=result)


def assert_valid(
    mask: np.ndarray, spec: PatternSpec, tbs: Optional[TBSResult] = None
) -> ValidationReport:
    """Validate and raise ``ValueError`` with the summary on violation.

    The one-call form used by the runtime invariant layer
    (:mod:`repro.runtime.checks`) and scripts that want hard failures
    instead of reports.
    """
    report = validate_mask(mask, spec, tbs=tbs)
    if not report.ok:
        raise ValueError(report.summary())
    return report
