"""Sparsity-pattern taxonomy for the TB-STC reproduction.

The paper (Sec. II-A, Fig. 4(a)) compares five sparsity-pattern families:

* ``US``   -- unstructured sparsity (element-wise top-k).
* ``TS``   -- tile-wise N:M (NVIDIA Sparse Tensor Core style, fixed N).
* ``RS_V`` -- row-wise N:M with per-row N (VEGETA).
* ``RS_H`` -- row-wise hierarchical N:M (HighLight).
* ``TBS``  -- transposable block-wise N:M (this paper's contribution).

Dimension naming follows the paper's Fig. 3(a): for ``D = A @ B`` the
*independent* dimension of ``A`` is its row axis (rows survive into ``D``)
and the *reduction* dimension is its column axis (contracted with ``B``).
"Row-wise N:M" therefore means N:M groups laid out *along the reduction
dimension* (within a row), and "column-wise N:M" means groups along the
independent dimension (within a column).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple


class PatternFamily(enum.Enum):
    """The sparsity-pattern families compared throughout the paper.

    ``NMT`` is the strictly-transposable N:M baseline (Hubara et al.,
    ref. [25]): every ``M x M`` block satisfies N:M in *both*
    dimensions, built by the solver backends in
    :mod:`repro.core.tsolvers`.
    """

    US = "unstructured"
    TS = "tile-wise"
    RS_V = "row-wise-vegeta"
    RS_H = "row-wise-highlight"
    TBS = "transposable-block-wise"
    NMT = "transposable-nm"

    @property
    def is_structured(self) -> bool:
        return self is not PatternFamily.US


class Direction(enum.Enum):
    """Per-block sparsity dimension of a TBS block (Fig. 8(a) ``Sparsity dim.``).

    ``ROW`` means the N:M groups run along the reduction dimension (each row
    of the block keeps at most N of its M elements); ``COL`` means the groups
    run along the independent dimension (each column keeps at most N).
    """

    ROW = 0
    COL = 1

    @property
    def transposed(self) -> "Direction":
        return Direction.COL if self is Direction.ROW else Direction.ROW


#: The paper's experimental configuration (Sec. VII-A3): M = 8 and the
#: candidate non-zero counts are the divisor powers of two of M plus zero.
DEFAULT_M = 8
DEFAULT_CANDIDATES = (0, 1, 2, 4, 8)


def default_candidates(m: int) -> Tuple[int, ...]:
    """Candidate N values for block size ``m``: 0 and the powers of two <= m.

    Matches the paper's ``M = 8, N in {0, 1, 2, 4, 8}`` choice and
    generalises it to other block sizes for the Fig. 15(a) sweep.
    """
    if m < 1:
        raise ValueError(f"block size must be positive, got {m}")
    cands = [0]
    power = 1
    while power <= m:
        cands.append(power)
        power *= 2
    if cands[-1] != m and m not in cands:
        cands.append(m)
    return tuple(cands)


@dataclass(frozen=True)
class NMConfig:
    """An N:M ratio (keep at most ``n`` of every ``m`` elements)."""

    n: int
    m: int

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"M must be positive, got {self.m}")
        if not 0 <= self.n <= self.m:
            raise ValueError(f"N must be in [0, {self.m}], got {self.n}")

    @property
    def density(self) -> float:
        return self.n / self.m

    @property
    def sparsity(self) -> float:
        return 1.0 - self.density

    def __str__(self) -> str:  # e.g. "2:4"
        return f"{self.n}:{self.m}"


@dataclass(frozen=True)
class BlockPattern:
    """Resolved sparsity metadata of one M x M TBS block.

    This is what the DDC format's per-block Info table encodes (Fig. 8(a)):
    the sparsity dimension, the block's N, and (added by the format layer)
    the element offset of the block payload.
    """

    n: int
    m: int
    direction: Direction

    def __post_init__(self) -> None:
        if not 0 <= self.n <= self.m:
            raise ValueError(f"N must be in [0, {self.m}], got {self.n}")

    @property
    def nnz(self) -> int:
        """Total non-zeros in the block -- always a multiple of M.

        This is the "balance property" that the intra-block sparsity-aware
        mapping exploits (Sec. VI-B2): N non-zeros in each of the M
        rows/columns gives exactly ``N * M`` elements.
        """
        return self.n * self.m

    @property
    def density(self) -> float:
        return self.n / self.m

    @property
    def is_trivial(self) -> bool:
        """Empty or fully dense blocks have no meaningful direction."""
        return self.n == 0 or self.n == self.m


@dataclass(frozen=True)
class PatternSpec:
    """A fully-specified sparsity-pattern request.

    Bundles the family with its parameters so that the mask generators,
    the storage formats and the simulator all speak the same language.
    """

    family: PatternFamily
    m: int = DEFAULT_M
    sparsity: float = 0.5
    candidates: Tuple[int, ...] = field(default=None)  # type: ignore[assignment]
    fixed_n: int = None  # type: ignore[assignment]  # TS only

    def __post_init__(self) -> None:
        if not 0.0 <= self.sparsity <= 1.0:
            raise ValueError(f"sparsity must be in [0, 1], got {self.sparsity}")
        if self.candidates is None:
            object.__setattr__(self, "candidates", default_candidates(self.m))
        bad = [n for n in self.candidates if not 0 <= n <= self.m]
        if bad:
            raise ValueError(f"candidates {bad} out of range for M={self.m}")
        if self.family is PatternFamily.TS and self.fixed_n is None:
            # TS uses one N for the whole matrix; derive it from the target
            # sparsity (the paper's TS baseline uses 4:8, i.e. 50%).
            n = round((1.0 - self.sparsity) * self.m)
            object.__setattr__(self, "fixed_n", max(0, min(self.m, n)))

    @property
    def density(self) -> float:
        return 1.0 - self.sparsity


def nearest_candidate(density: float, m: int, candidates: Sequence[int]) -> int:
    """Pick the candidate N whose density N/M is closest to ``density``.

    Implements Algorithm 1 step 2 (``N_p = argmin |N_i / M - d_p|``; the
    paper's listing writes the sparsity degree ``s_p`` where the density is
    clearly intended -- N/M is a density, and matching it against a sparsity
    would invert the selection).  Ties break toward the smaller N so that
    the overall mask never exceeds the target density.
    """
    if not candidates:
        raise ValueError("candidate list must not be empty")
    best = min(candidates, key=lambda n: (abs(n / m - density), n))
    return best


def nearest_candidates_grid(density, m: int, candidates: Sequence[int]):
    """Vectorized :func:`nearest_candidate` over an array of densities.

    Bit-compatible with the scalar form: candidates are sorted ascending
    so the first argmin along the candidate axis realises the same
    ``(abs(n / m - density), n)`` lexicographic tie-break, and the
    per-candidate distance ``n / m - density`` is computed with the same
    float operations.  Returns an int64 array shaped like ``density``.
    """
    import numpy as np

    if not candidates:
        raise ValueError("candidate list must not be empty")
    cands = np.asarray(sorted(candidates), dtype=np.int64)
    density = np.asarray(density, dtype=np.float64)
    diffs = np.abs(cands / m - density[..., None])
    return cands[np.argmin(diffs, axis=-1)]


def sparsity_of(mask) -> float:
    """Fraction of zero entries in a boolean/0-1 mask array."""
    total = mask.size
    if total == 0:
        return 0.0
    kept = int(mask.sum())
    return 1.0 - kept / total


def is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def log2_choose(n: int, k: int) -> float:
    """log2 of the binomial coefficient C(n, k) via lgamma (overflow-safe)."""
    if k < 0 or k > n:
        return float("-inf")
    if k == 0 or k == n:
        return 0.0
    ln = math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    return ln / math.log(2.0)
