"""Block partitioning utilities shared by masks, formats and the simulator.

TBS divides the sparse matrix into ``M x M`` blocks (Sec. III-A1).  Real
layer shapes are not always multiples of M, so the partitioner follows the
usual accelerator convention of padding the trailing edge with zeros; the
iteration helpers hand out views of the *unpadded* region plus the block's
logical extent so that callers never see phantom elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class BlockIndex:
    """Location of one block within the block grid of a matrix."""

    row: int  # block-row index (independent dimension / matrix rows)
    col: int  # block-col index (reduction dimension / matrix cols)
    r0: int  # first matrix row covered
    c0: int  # first matrix col covered
    height: int  # rows actually covered (< m only at the ragged edge)
    width: int  # cols actually covered

    @property
    def slices(self) -> Tuple[slice, slice]:
        return (slice(self.r0, self.r0 + self.height), slice(self.c0, self.c0 + self.width))


def block_grid_shape(rows: int, cols: int, m: int) -> Tuple[int, int]:
    """Number of (block-rows, block-cols) covering a ``rows x cols`` matrix."""
    if m < 1:
        raise ValueError(f"block size must be positive, got {m}")
    return (-(-rows // m), -(-cols // m))


def iter_blocks(rows: int, cols: int, m: int) -> Iterator[BlockIndex]:
    """Yield block indices in row-major order over the block grid."""
    n_br, n_bc = block_grid_shape(rows, cols, m)
    for br in range(n_br):
        r0 = br * m
        height = min(m, rows - r0)
        for bc in range(n_bc):
            c0 = bc * m
            width = min(m, cols - c0)
            yield BlockIndex(br, bc, r0, c0, height, width)


def pad_to_blocks(matrix: np.ndarray, m: int) -> np.ndarray:
    """Zero-pad a 2-D array so both dims are multiples of ``m``.

    Returns the input unchanged (no copy) when already aligned.
    """
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {matrix.shape}")
    rows, cols = matrix.shape
    pad_r = (-rows) % m
    pad_c = (-cols) % m
    if pad_r == 0 and pad_c == 0:
        return matrix
    return np.pad(matrix, ((0, pad_r), (0, pad_c)))


def extract_block(matrix: np.ndarray, idx: BlockIndex, m: int) -> np.ndarray:
    """Return the ``m x m`` block at ``idx``, zero-padded at ragged edges."""
    view = matrix[idx.slices]
    if view.shape == (m, m):
        return view
    block = np.zeros((m, m), dtype=matrix.dtype)
    block[: idx.height, : idx.width] = view
    return block


def scatter_block(target: np.ndarray, idx: BlockIndex, block: np.ndarray) -> None:
    """Write an ``m x m`` block back into ``target``, clipping padding."""
    target[idx.slices] = block[: idx.height, : idx.width]


def split_into_blocks(matrix: np.ndarray, m: int) -> np.ndarray:
    """Reshape a padded matrix into a 4-D ``(n_br, n_bc, m, m)`` block view."""
    padded = pad_to_blocks(matrix, m)
    rows, cols = padded.shape
    return padded.reshape(rows // m, m, cols // m, m).swapaxes(1, 2)


def merge_from_blocks(blocks: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Inverse of :func:`split_into_blocks`, cropping back to (rows, cols)."""
    n_br, n_bc, m, m2 = blocks.shape
    if m != m2:
        raise ValueError(f"blocks must be square, got {m}x{m2}")
    merged = blocks.swapaxes(1, 2).reshape(n_br * m, n_bc * m)
    return merged[:rows, :cols]


def block_nnz_counts(mask: np.ndarray, m: int) -> np.ndarray:
    """Per-block non-zero counts, shape ``(n_br, n_bc)``."""
    blocks = split_into_blocks(mask.astype(np.int64), m)
    return blocks.sum(axis=(2, 3))


def block_densities(mask: np.ndarray, m: int) -> np.ndarray:
    """Per-block densities (relative to the full m*m block, padding counts
    as zeros, matching how the hardware sees the padded tile)."""
    return block_nnz_counts(mask, m) / float(m * m)


def row_group_view(matrix: np.ndarray, m: int) -> np.ndarray:
    """View rows as groups of ``m`` consecutive reduction-dim elements.

    Returns shape ``(rows, n_groups, m)`` over the column-padded matrix.
    This is the layout in which row-wise (reduction-dimension) N:M
    constraints are expressed.
    """
    padded = pad_to_blocks(matrix, m) if matrix.shape[1] % m else matrix
    if padded.shape[0] != matrix.shape[0]:
        padded = padded[: matrix.shape[0]]
    rows, cols = padded.shape
    return padded.reshape(rows, cols // m, m)


def blocks_list(matrix: np.ndarray, m: int) -> List[np.ndarray]:
    """Materialised list of ``m x m`` blocks in row-major block order."""
    return [extract_block(matrix, idx, m) for idx in iter_blocks(*matrix.shape, m)]
