"""TSENOR backend: entropy-regularized transport over whole block batches.

Meng, Makni & Mazumder ("TSENOR: Highly-Efficient Algorithm for Finding
Transposable N:M Sparse Masks", PAPERS.md) relax the 2-D N:M problem to
an optimal-transport polytope: maximize ``<S, X>`` over doubly
"n-stochastic" plans with a box cap, ``{X : X @ 1 = n, X.T @ 1 = n,
0 <= X <= 1}``.  The entropy-regularized optimum is found by Dykstra's
alternating KL projections:

* row-sum and column-sum constraints are affine, so their KL projections
  are plain Sinkhorn scalings (no correction term needed);
* the box ``X <= 1`` is an inequality, so it carries the usual Dykstra
  multiplicative correction ``Q`` (``Q >= 1``, re-applied before each
  clip).

Everything is vectorized over the whole ``(B, m, m)`` batch -- this is
the entire speed story: the per-block Python loop in ``greedy`` becomes
a handful of batched array ops.  Epsilon annealing is done by *squaring*
the plan between stages (``exp(s / (eps / 2)) == exp(s / eps) ** 2``),
which sharpens X toward a vertex without ever materializing a large
``exp`` argument.

Rounding must always return a *valid* mask, so the relaxed plan is
rounded by batch-vectorized greedy: one stable argsort of each block's
entries by plan value (original score breaks near-ties), then ``m * m``
quota steps that process all B blocks at once.  A vectorized repair pass
re-offers rejects, and the rare block whose quota is still stranded
falls through to the augmenting-path repair shared with ``greedy`` --
so the validity guarantee never rests on Sinkhorn convergence.
"""

from __future__ import annotations

import numpy as np

from .greedy import _augment_repair

__all__ = ["solve_batch"]

# Annealing schedule: initial entropy temperature and the number of
# squaring stages (each halves the effective epsilon).  Chosen as the
# cheapest schedule that keeps retained score within ~0.5% of the exact
# oracle across M in {4..64} (the CI solver gate allows 1%).  Large
# blocks converge in fewer sweeps (relative quota granularity is finer),
# so m >= 32 runs a shorter inner loop -- still >= 0.991 of exact at the
# worst N, versus ~0.986 if small blocks tried the same shortcut.
_EPS0 = 0.5
_STAGES = 4
_ITERS_PER_STAGE = 6
_ITERS_PER_STAGE_WIDE = 2
_WIDE_M = 32
# Division guard; must stay representable in float32.
_TINY = np.float32(1e-30)


def _sinkhorn_plan(scores: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Relaxed transport plan for a ``(B, m, m)`` batch, entries in [0, 1].

    Runs in float32 with in-place updates: the plan only has to *rank*
    entries for the rounding pass, so single precision is plenty, and
    the Sinkhorn sweeps are memory-bound on large batches.
    """
    b, m, _ = scores.shape
    smax = scores.max(axis=(1, 2), keepdims=True)
    s = (scores / np.where(smax > 0, smax, 1.0)).astype(np.float32)
    # Degenerate row/col targets (n = 0 or n = m) break the scalings;
    # solve them at an interior target and let rounding apply the real
    # quota (it trivially returns the empty / full mask).
    target = np.clip(n, 1, max(m - 1, 1)).astype(np.float32)[:, None, None]

    iters = _ITERS_PER_STAGE_WIDE if m >= _WIDE_M else _ITERS_PER_STAGE
    x = np.exp((s - 1.0) / np.float32(_EPS0))
    for stage in range(_STAGES):
        if stage:
            x *= x  # eps -> eps / 2
        q = np.ones_like(x)
        for _ in range(iters):
            x *= target / np.maximum(x.sum(axis=2, keepdims=True), _TINY)
            x *= target / np.maximum(x.sum(axis=1, keepdims=True), _TINY)
            y = x * q
            # KL projection onto the box is a clip; its Dykstra
            # correction is y / min(y, 1) == max(y, 1) -- no division.
            np.maximum(y, np.float32(1.0), out=q)
            np.minimum(y, np.float32(1.0), out=x)
    return x


# Vectorized "peeling" rounds run before the sequential rank loop: each
# round bulk-decides every cell whose fate is already forced, shrinking
# the sequential tail from m^2 steps to the residual (>85% of cells are
# decided in the first round at m=32).  The round count never changes
# the result -- peeling + residual loop is exactly the sequential
# greedy -- so it is tuned purely for speed: one round is cheapest for
# small blocks, a second pays off at m = 64 where the residual after
# one round is still ~25% of the block.
def _peel_rounds(m: int) -> int:
    return 2 if m >= 64 else 1


def _round_batch(
    plan: np.ndarray, scores: np.ndarray, n: np.ndarray
) -> np.ndarray:
    """Deterministic greedy rounding, vectorized across the batch.

    Entries are ranked per block by plan value (descending, with the
    original score as a near-tie breaker and the flat index as the final
    stable tie-break), then accepted in rank order when both quotas are
    open.  The result is *exactly* the sequential greedy mask, computed
    in two phases:

    1. **Peeling** -- a cell whose position among still-undecided
       candidates in its row *and* column is below the remaining quota
       is accepted no matter how earlier candidates resolve; a cell in a
       row or column with zero remaining quota is rejected no matter
       what.  Each round applies both rules to the whole batch at once
       (the earliest undecided candidate always resolves, so rounds
       always make progress).
    2. **Residual loop** -- the few cells still undecided are compacted
       into per-block rank lists (padded to the longest) and run through
       the plain sequential quota loop, which now iterates over the
       residual length instead of all ``m * m`` ranks.
    """
    b, m, _ = plan.shape
    mm = m * m
    smax = scores.max(axis=(1, 2), keepdims=True)
    # float32 key, ranked through its int32 bit view: the key is
    # non-negative, where IEEE-754 ordering matches integer ordering, so
    # the big per-block argsort takes numpy's integer radix path.
    key = plan + np.float32(1e-7) * (
        scores / np.where(smax > 0, smax, 1.0)
    ).astype(np.float32)
    order = np.argsort(
        -key.reshape(b, mm).view(np.int32), axis=1, kind="stable"
    ).astype(np.int32)

    # Per-cell rank within its block, plus static row/col rank layouts:
    # flat cell index of the k-th ranked candidate in each row / column
    # (int32 throughout: all flat offsets stay below B * m * m).
    cell_off = np.arange(b, dtype=np.int32)[:, None] * mm
    rank = np.empty(b * mm, dtype=np.int32)
    rank[(order + cell_off).reshape(-1)] = np.tile(
        np.arange(mm, dtype=np.int32), b
    )
    rank = rank.reshape(b, m, m)
    rows_order = np.argsort(rank, axis=2)  # column of k-th ranked in row i
    cols_order = np.argsort(rank, axis=1)  # row of k-th ranked in col j
    nrounds = _peel_rounds(m)
    if nrounds > 1:
        # Later rounds gather/scatter through flat index tables; only
        # build them when a second round actually runs.
        base = cell_off[:, :, None]
        rows_gather = (
            base
            + np.arange(m, dtype=np.int32)[None, :, None] * m
            + rows_order.astype(np.int32)
        ).reshape(-1)
        # Transposed to [block, col, k] so the cumsum below walks one
        # column's candidates along the contiguous axis.
        cols_gather = (
            base + cols_order.astype(np.int32) * m
            + np.arange(m, dtype=np.int32)[None, None, :]
        )
        cols_gather = np.ascontiguousarray(
            cols_gather.transpose(0, 2, 1)
        ).reshape(-1)

    alive = np.ones(b * mm, dtype=bool)
    mask = np.zeros(b * mm, dtype=bool)
    rowpos = np.empty((b, m, m), dtype=np.int32)
    colpos = np.empty((b, m, m), dtype=np.int32)
    rq = np.broadcast_to(n[:, None], (b, m)).astype(np.int32).copy()
    cq = rq.copy()
    al3 = alive.reshape(b, m, m)
    for peel in range(nrounds):
        # Exclusive count of undecided earlier-ranked candidates that
        # share the cell's row (resp. column).  In the first round
        # everything is undecided, so the count is just the static rank
        # position: scattering arange inverts the row/col permutations
        # directly, no gather or cumsum needed.
        if peel == 0:
            np.put_along_axis(
                rowpos,
                rows_order,
                np.arange(m, dtype=np.int32)[None, None, :],
                axis=2,
            )
            np.put_along_axis(
                colpos,
                cols_order,
                np.arange(m, dtype=np.int32)[None, :, None],
                axis=1,
            )
        else:
            alive_r = alive[rows_gather].reshape(b, m, m)
            pos = np.cumsum(alive_r, axis=2, dtype=np.int32)
            pos -= alive_r
            rowpos.reshape(-1)[rows_gather] = pos.reshape(-1)
            alive_c = alive[cols_gather].reshape(b, m, m)
            pos = np.cumsum(alive_c, axis=2, dtype=np.int32)
            pos -= alive_c
            colpos.reshape(-1)[cols_gather] = pos.reshape(-1)
        sure = (
            al3
            & (rowpos < rq[:, :, None])
            & (colpos < cq[:, None, :])
        )
        mask |= sure.reshape(-1)
        al3 &= ~sure
        rq -= sure.sum(axis=2, dtype=np.int32)
        cq -= sure.sum(axis=1, dtype=np.int32)
        al3 &= (rq[:, :, None] > 0) & (cq[:, None, :] > 0)

    if alive.any():
        # Compact the undecided cells into per-block rank lists, padded
        # to the longest list with a sentinel that points at an extra
        # zero quota slot (so pads never accept).
        alive_o = np.take_along_axis(alive.reshape(b, mm), order, axis=1)
        blk, rpos = np.nonzero(alive_o)
        counts = alive_o.sum(axis=1)
        amax = int(counts.max())
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        k = np.arange(blk.size) - starts[blk]
        cells = order[blk, rpos]
        rows = np.full((b, amax), b * m, dtype=np.int32)
        cols = np.full((b, amax), b * m, dtype=np.int32)
        flat = np.zeros((b, amax), dtype=np.int32)
        rows[blk, k] = (cells // m + blk * m).astype(np.int32)
        cols[blk, k] = (cells % m + blk * m).astype(np.int32)
        flat[blk, k] = (cells + blk * mm).astype(np.int32)
        # Rank-major (t, B) tables keep every per-step operation a
        # contiguous gather/scatter.
        rank_rows = np.ascontiguousarray(rows.T)
        rank_cols = np.ascontiguousarray(cols.T)
        rank_flat = np.ascontiguousarray(flat.T)
        row_quota = np.append(rq.reshape(-1), np.int32(0))
        col_quota = np.append(cq.reshape(-1), np.int32(0))
        for t in range(amax):
            r, c = rank_rows[t], rank_cols[t]
            ok = (row_quota[r] > 0) & (col_quota[c] > 0)
            if ok.any():
                # Each block contributes at most one (row, col) per
                # rank step, so the fancy indices are duplicate-free
                # and plain indexed subtraction is safe (and much
                # faster than np.subtract.at).
                mask[rank_flat[t][ok]] = True
                row_quota[r[ok]] -= 1
                col_quota[c[ok]] -= 1
            if t % 32 == 31 and t + 1 < amax:
                # Blocks are independent, so columns whose block can no
                # longer accept (one side's quota spent, or only pads
                # left) can be dropped without changing any result.
                rq_any = np.append(
                    (row_quota[:-1].reshape(b, m) > 0).any(axis=1), False
                )
                cq_any = np.append(
                    (col_quota[:-1].reshape(b, m) > 0).any(axis=1), False
                )
                bid = rank_rows[t + 1] // m
                active = rq_any[bid] & cq_any[bid]
                if not active.any():
                    break
                if active.sum() <= active.size // 2:
                    keep = np.flatnonzero(active)
                    rank_rows = np.ascontiguousarray(rank_rows[:, keep])
                    rank_cols = np.ascontiguousarray(rank_cols[:, keep])
                    rank_flat = np.ascontiguousarray(rank_flat[:, keep])
        rq = row_quota[:-1].reshape(b, m)
        cq = col_quota[:-1].reshape(b, m)

    mask = mask.reshape(b, m, m)
    row_quota = rq
    col_quota = cq

    # Stragglers: quota stranded on both sides of a block needs an
    # augmenting swap.  The overwhelmingly common shape (~90%) is one
    # open row, one open column, one missing unit -- for those the
    # scalar repair reduces to a single best length-3 chain, which is
    # batched across blocks here with the exact same scan order and
    # accept policy.  Everything else falls back to the shared scalar
    # repair.
    stranded = np.flatnonzero(
        (row_quota > 0).any(axis=1) & (col_quota > 0).any(axis=1)
    )
    if stranded.size:
        simple = (
            ((row_quota[stranded] > 0).sum(axis=1) == 1)
            & ((col_quota[stranded] > 0).sum(axis=1) == 1)
            & (row_quota[stranded].sum(axis=1) == 1)
        )
        sb = stranded[simple]
        if sb.size:
            k = np.arange(sb.size)
            i_b = np.argmax(row_quota[sb] > 0, axis=1)
            j_b = np.argmax(col_quota[sb] > 0, axis=1)
            s_k = scores[sb]
            m_k = mask[sb]
            # Chain gain over (j1, i2): add (i, j1), drop (i2, j1),
            # add (i2, j) -- identical layout/tie order to the scalar
            # double loop in greedy._augment_repair.
            gains = (
                s_k[k, i_b][:, :, None]
                - s_k.transpose(0, 2, 1)
                + s_k[k, :, j_b][:, None, :]
            )
            valid = (
                (~m_k[k, i_b] & (col_quota[sb] == 0))[:, :, None]
                & m_k.transpose(0, 2, 1)
                & ~m_k[k, :, j_b][:, None, :]
            )
            flat_g = np.where(valid, gains, -np.inf).reshape(sb.size, -1)
            best = flat_g.argmax(axis=1)
            take = flat_g[k, best] >= -1e-12
            j1, i2 = best // m, best % m
            kk = k[take]
            mask[sb[kk], i_b[kk], j1[kk]] = True
            mask[sb[kk], i2[kk], j1[kk]] = False
            mask[sb[kk], i2[kk], j_b[kk]] = True
        for idx in stranded[~simple]:
            _augment_repair(
                scores[idx], mask[idx], row_quota[idx], col_quota[idx]
            )
    return mask


def solve_batch(scores: np.ndarray, n: np.ndarray) -> np.ndarray:
    """TSENOR masks for a ``(B, m, m)`` batch with per-block N."""
    if scores.shape[0] == 0:
        return np.zeros(scores.shape, dtype=bool)
    plan = _sinkhorn_plan(scores, n)
    return _round_batch(plan, scores, n)
