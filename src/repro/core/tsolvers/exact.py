"""Exact backend: min-cost-flow quality oracle (small M only).

Keeping at most N entries per row *and* per column of a block while
maximizing kept score is a max-weight degree-constrained bipartite
subgraph problem, solved exactly as min-cost max-flow on the network::

    source --(cap N, cost 0)--> row_i --(cap 1, cost -s[i,j])--> col_j
        col_j --(cap N, cost 0)--> sink

Successive shortest augmenting paths with Johnson potentials keep every
reduced cost non-negative, so each augmentation is one dense Dijkstra
over the ``2m + 2`` node residual graph (vectorized relaxation rows).
We stop as soon as the cheapest augmenting path has positive true cost:
pushing it would *lose* score.  Zero-cost paths are still taken, so the
mask fills to the same max cardinality the heuristics reach and only the
score-optimal support differs.

Complexity is ``O(n * m)`` augmentations of an ``O(V^2)`` Dijkstra --
exact is the oracle for benches, gates and tests, not a training-path
backend.  The batch entry point just loops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["solve_batch", "solve_block"]

# Tolerance for "this augmenting path gains nothing": float score sums
# can pick up ~1e-15 noise; anything above this is a real loss.
_EPS = 1e-9


def solve_block(scores: np.ndarray, n: int) -> np.ndarray:
    """Provably max-score strictly transposable mask of one block."""
    m = scores.shape[0]
    if n == 0:
        return np.zeros((m, m), dtype=bool)
    if n == m:
        return np.ones((m, m), dtype=bool)

    # Node layout: 0 = source, 1..m = rows, m+1..2m = cols, 2m+1 = sink.
    nodes = 2 * m + 2
    src, sink = 0, 2 * m + 1
    rows = np.arange(1, m + 1)
    cols = np.arange(m + 1, 2 * m + 1)

    cap = np.zeros((nodes, nodes), dtype=np.int64)
    cost = np.zeros((nodes, nodes), dtype=np.float64)
    cap[src, rows] = n
    cap[rows[:, None], cols[None, :]] = 1
    cost[rows[:, None], cols[None, :]] = -scores
    cost[cols[:, None], rows[None, :]] = scores.T  # residual direction
    cap[cols, sink] = n

    # Initial potentials = layered shortest distances on the empty-flow
    # graph (source -> row edges cost 0, so rows sit at 0; each column at
    # its cheapest incoming edge).  This makes all reduced costs
    # non-negative without a Bellman-Ford pass.
    pi = np.zeros(nodes, dtype=np.float64)
    pi[cols] = -scores.max(axis=0)
    pi[sink] = pi[cols].min()

    inf = np.inf
    for _ in range(n * m):
        dist = np.full(nodes, inf)
        dist[src] = 0.0
        parent = np.full(nodes, -1, dtype=np.int64)
        visited = np.zeros(nodes, dtype=bool)
        while True:
            open_dist = np.where(visited, inf, dist)
            u = int(open_dist.argmin())
            if open_dist[u] == inf or u == sink:
                break
            visited[u] = True
            reach = (cap[u] > 0) & ~visited
            cand = dist[u] + cost[u] + pi[u] - pi
            better = reach & (cand < dist)
            dist[better] = cand[better]
            parent[better] = u
        if not np.isfinite(dist[sink]):
            break
        # True path cost (potentials telescope out of the reduced sum).
        path_cost = dist[sink] + pi[sink] - pi[src]
        if path_cost > _EPS:
            break
        # Early-stop potential update: Dijkstra finalized only nodes with
        # dist <= dist[sink], so unfinalized/unreached nodes must be
        # capped at dist[sink] (their tentative labels overestimate and
        # would break reduced-cost non-negativity).
        pi = pi + np.minimum(dist, dist[sink])
        v = sink
        while v != src:
            u = int(parent[v])
            cap[u, v] -= 1
            cap[v, u] += 1
            v = u

    # Kept entries are the saturated row -> col edges.
    mask = cap[rows[:, None], cols[None, :]] == 0
    return np.asarray(mask, dtype=bool)


def solve_batch(scores: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Solve each block of a ``(B, m, m)`` batch independently."""
    out = np.zeros(scores.shape, dtype=bool)
    for b in range(scores.shape[0]):
        out[b] = solve_block(scores[b], int(n[b]))
    return out
