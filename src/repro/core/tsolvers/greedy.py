"""Greedy-with-repair backend (the historical default).

Classic greedy on the degree-constrained bipartite subgraph problem:
visit candidate entries by descending score and accept one when its row
and column quotas are still open, then run two repair passes over the
rejects:

1. *Simple repair* -- re-offer every reject whose row and column are
   both still open (the original repair pass).
2. *Augmenting repair* -- the simple pass cannot help when the open
   capacity is *stranded*: some row ``i`` and some column ``j`` are both
   under quota but cell ``(i, j)`` alone cannot use them (it is already
   kept, or using it would overfill the other side).  An alternating
   add/remove path ``(i, j1) -> (i2, j1) -> (i2, j)`` frees the quota
   and nets one extra kept entry.  A chain is accepted only at
   non-negative net score gain (the same policy as the exact oracle's
   zero-cost augmenting paths), so the repair never trades score for
   cardinality and previously-optimal blocks are untouched -- the
   default backend stays bit-compatible on them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["solve_batch", "solve_block"]


def _augment_repair(
    scores: np.ndarray,
    mask: np.ndarray,
    row_quota: np.ndarray,
    col_quota: np.ndarray,
) -> None:
    """Un-strand leftover quota with length-3 alternating paths, in place.

    While some row ``i`` and column ``j`` are both under quota, look for
    the best chain *add (i, j1), remove (i2, j1), add (i2, j)*: column
    ``j1`` is freed by dropping a kept entry of it, and the row ``i2``
    that dropped it re-spends its quota on the open column ``j``.  Each
    accepted chain nets +1 kept entry and is taken only at non-negative
    score gain (the exact oracle's zero-cost-path policy).
    Deterministic: candidates are scanned in index order and the best
    gain wins, ties toward the earliest chain.
    """
    m = scores.shape[0]
    while True:
        open_rows = np.flatnonzero(row_quota > 0)
        open_cols = np.flatnonzero(col_quota > 0)
        if open_rows.size == 0 or open_cols.size == 0:
            return
        best_gain = -np.inf
        best_chain = None
        for i in open_rows:
            for j in open_cols:
                if not mask[i, j]:
                    # Direct fill (possible when simple repair ran before
                    # quota opened up elsewhere in this loop).
                    gain = float(scores[i, j])
                    if gain > best_gain:
                        best_gain = gain
                        best_chain = ((i, j),)
                    continue
                # (i, j) is kept already; find an alternating path.
                # Gains for every (j1, i2) at once; the (j1, i2) flat
                # layout and first-max argmax reproduce the scan order
                # of the scalar double loop exactly.
                valid_j1 = ~mask[i] & (col_quota == 0)
                if not valid_j1.any():
                    continue
                gains = (scores[i][:, None] - scores.T) + scores[:, j][None, :]
                valid = valid_j1[:, None] & mask.T & ~mask[:, j][None, :]
                if not valid.any():
                    continue
                gains = np.where(valid, gains, -np.inf)
                flat = int(gains.argmax())
                gain = float(gains.reshape(-1)[flat])
                if gain > best_gain:
                    j1, i2 = flat // m, flat % m
                    best_gain = gain
                    best_chain = ((i, j1), (i2, j1), (i2, j))
        if best_chain is None or best_gain < -1e-12:
            return
        if len(best_chain) == 1:
            (i, j) = best_chain[0]
            mask[i, j] = True
            row_quota[i] -= 1
            col_quota[j] -= 1
        else:
            (i, j1), (i2, _), (_, j) = best_chain
            mask[i, j1] = True
            mask[i2, j1] = False
            mask[i2, j] = True
            row_quota[i] -= 1
            col_quota[j] -= 1


def solve_block(scores: np.ndarray, n: int) -> np.ndarray:
    """Greedy-with-repair mask for one ``(m, m)`` score block."""
    m = scores.shape[0]
    mask = np.zeros((m, m), dtype=bool)
    if n == 0:
        return mask
    if n == m:
        return np.ones((m, m), dtype=bool)

    row_quota = np.full(m, n)
    col_quota = np.full(m, n)
    order = np.dstack(
        np.unravel_index(np.argsort(-scores, axis=None, kind="stable"), scores.shape)
    )[0]
    deferred = []
    for i, j in order:
        if row_quota[i] > 0 and col_quota[j] > 0:
            mask[i, j] = True
            row_quota[i] -= 1
            col_quota[j] -= 1
        else:
            deferred.append((i, j))
    # Simple repair: greedy can strand quota (row open, all its open
    # columns taken); one more descending pass over the rejects fixes
    # the easy cases.
    for i, j in deferred:
        if row_quota[i] > 0 and col_quota[j] > 0 and not mask[i, j]:
            mask[i, j] = True
            row_quota[i] -= 1
            col_quota[j] -= 1
    # Augmenting repair: only fires when a row and a column are still
    # both under quota, i.e. exactly the blocks the simple pass left
    # suboptimal -- everything else is untouched (bit-compat).
    if (row_quota > 0).any() and (col_quota > 0).any():
        _augment_repair(scores, mask, row_quota, col_quota)
    return mask


def solve_batch(scores: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Solve each block of a ``(B, m, m)`` batch independently."""
    out = np.zeros(scores.shape, dtype=bool)
    for b in range(scores.shape[0]):
        out[b] = solve_block(scores[b], int(n[b]))
    return out
