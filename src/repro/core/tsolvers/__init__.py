"""Pluggable solver backends for strictly-transposable N:M block masks.

The 2-D N:M constraint (every row *and* every column of an ``M x M``
block keeps at most N entries) is a maximum-weight degree-constrained
bipartite subgraph problem.  Three backends solve it, trading speed for
optimality:

* ``greedy`` -- the historical greedy-with-repair heuristic, kept as the
  default for bit-compatibility, now followed by an augmenting-path
  repair pass that un-strands quota the simple repair cannot reach.
* ``exact``  -- min-cost-flow via successive shortest augmenting paths
  (Dijkstra with Johnson potentials on the bipartite flow network).
  Provably score-optimal; intended as the small-M quality oracle.
* ``tsenor`` -- the TSENOR algorithm (Meng, Makni & Mazumder, 2025):
  entropy-regularized optimal transport with Dykstra-style alternating
  projections onto the row-sum / column-sum / box constraints, solved
  **vectorized over whole batches of blocks**, followed by a
  deterministic rounding step that always yields a valid 2-D N:M mask.
  Orders of magnitude faster than ``greedy`` at large M, within ~1% of
  the exact retained score (the CI ``solver`` job gates this).

Backend selection resolves ``explicit argument -> $REPRO_TSOLVER ->
"greedy"``; every entry point in :mod:`repro.core.transposable`, the
one-shot pruner and the CLI (``--tsolver``) accepts a backend name.
Each solve is timed under a ``tsolver.<backend>`` perf stage
(:mod:`repro.perf.timers`), so backend cost shows up in
``SimResult.perf_breakdown`` and Chrome traces like any other hot path.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

__all__ = [
    "DEFAULT_TSOLVER",
    "TSOLVER_ENV",
    "TSOLVER_NAMES",
    "resolve_tsolver",
    "solve_block",
    "solve_blocks",
]

#: Environment variable overriding the default backend.
TSOLVER_ENV = "REPRO_TSOLVER"

#: Registered backend names, in documentation order.
TSOLVER_NAMES = ("greedy", "exact", "tsenor")

#: The bit-compatible default.
DEFAULT_TSOLVER = "greedy"


def resolve_tsolver(backend: Optional[str] = None) -> str:
    """Resolve a backend name: explicit arg -> $REPRO_TSOLVER -> greedy."""
    name = backend or os.environ.get(TSOLVER_ENV) or DEFAULT_TSOLVER
    if name not in TSOLVER_NAMES:
        raise ValueError(f"unknown tsolver {name!r}; choose from {TSOLVER_NAMES}")
    return name


def _validate_block(scores: np.ndarray, n: int) -> np.ndarray:
    scores = np.abs(np.asarray(scores, dtype=np.float64))
    if scores.ndim != 2 or scores.shape[0] != scores.shape[1]:
        raise ValueError(f"expected a square block, got {scores.shape}")
    m = scores.shape[0]
    if not 0 <= n <= m:
        raise ValueError(f"N must be in [0, {m}], got {n}")
    return scores


def solve_block(scores: np.ndarray, n: int, backend: Optional[str] = None) -> np.ndarray:
    """Max-score strictly transposable mask of one square score block."""
    scores = _validate_block(scores, n)
    masks = solve_blocks(scores[None], np.array([n]), backend=backend)
    return masks[0]


def solve_blocks(
    scores: np.ndarray, n: np.ndarray, backend: Optional[str] = None
) -> np.ndarray:
    """Solve a batch of blocks at once: ``(B, m, m)`` scores, ``(B,)`` N.

    Returns a ``(B, m, m)`` boolean mask batch where every block
    satisfies the 2-D N:M constraint for its own N.  The batch form is
    what makes ``tsenor`` fast -- its projections and rounding are
    vectorized over the whole batch -- while ``greedy``/``exact`` loop
    block by block.
    """
    from ..tsolvers import exact as _exact
    from ..tsolvers import greedy as _greedy
    from ..tsolvers import tsenor as _tsenor
    from ...perf import stage

    name = resolve_tsolver(backend)
    scores = np.abs(np.asarray(scores, dtype=np.float64))
    if scores.ndim != 3 or scores.shape[1] != scores.shape[2]:
        raise ValueError(f"expected a (B, m, m) block batch, got {scores.shape}")
    m = scores.shape[1]
    n = np.broadcast_to(np.asarray(n, dtype=np.int64), scores.shape[:1])
    if n.size and (n.min() < 0 or n.max() > m):
        raise ValueError(f"N must be in [0, {m}], got range [{n.min()}, {n.max()}]")
    with stage(f"tsolver.{name}"):
        if name == "greedy":
            return _greedy.solve_batch(scores, n)
        if name == "exact":
            return _exact.solve_batch(scores, n)
        return _tsenor.solve_batch(scores, n)
