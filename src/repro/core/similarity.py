"""Mask-similarity and block-distribution analyses (Fig. 4(b), Fig. 17).

The paper quantifies how close each structured pattern lands to the
unstructured optimum by comparing the structured mask against the
unstructured mask generated from the *same* scores at the *same* target
sparsity.  TBS reaches 85.31%-91.62% similarity, far above the other N:M
patterns (Fig. 4(b)).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .masks import make_mask, unstructured_mask
from .patterns import DEFAULT_M, PatternFamily, PatternSpec

__all__ = [
    "mask_agreement",
    "kept_overlap",
    "pattern_similarity_sweep",
    "direction_distribution",
]


def _validate_pair(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ValueError(f"mask shapes differ: {a.shape} vs {b.shape}")


def mask_agreement(mask: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of positions where the two masks agree (keep or prune).

    This is the paper's "mask similarity": at equal sparsity it equals
    ``1 - L1(mask, reference) / size``, the complement of the normalised L1
    distance Algorithm 1 minimises per block.
    """
    _validate_pair(mask, reference)
    if mask.size == 0:
        return 1.0
    return float((mask.astype(bool) == reference.astype(bool)).mean())


def kept_overlap(mask: np.ndarray, reference: np.ndarray) -> float:
    """Jaccard overlap of the *kept* positions (intersection over union)."""
    _validate_pair(mask, reference)
    a = mask.astype(bool)
    b = reference.astype(bool)
    union = int((a | b).sum())
    if union == 0:
        return 1.0
    return float((a & b).sum() / union)


def pattern_similarity_sweep(
    scores: np.ndarray,
    sparsity: float = 0.5,
    m: int = DEFAULT_M,
    families: Optional[Sequence[PatternFamily]] = None,
) -> Dict[str, float]:
    """Similarity of every structured pattern with US -- the Fig. 4(b) rows."""
    if families is None:
        families = [PatternFamily.TS, PatternFamily.RS_V, PatternFamily.RS_H, PatternFamily.TBS]
    reference = unstructured_mask(scores, sparsity)
    out: Dict[str, float] = {}
    for family in families:
        spec = PatternSpec(family, m=m, sparsity=sparsity)
        out[family.name] = mask_agreement(make_mask(scores, spec), reference)
    return out


def direction_distribution(results) -> Dict[str, float]:
    """Aggregate block-direction fractions over one or many TBS results.

    Returns the Fig. 17 quantities: fraction of blocks that are row-wise
    sparse, column-wise sparse, and "other" (empty/dense blocks whose
    direction is immaterial).
    """
    if not isinstance(results, (list, tuple)):
        results = [results]
    totals = {"row": 0, "col": 0, "other": 0}
    for result in results:
        hist = result.direction_histogram()
        for key in totals:
            totals[key] += hist[key]
    count = sum(totals.values())
    if count == 0:
        return {key: 0.0 for key in totals}
    return {key: value / count for key, value in totals.items()}
