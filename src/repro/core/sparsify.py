"""Algorithm 1 -- TBS sparsification.

Given a dense score matrix, produce the transposable block-wise N:M mask
that best approximates the unstructured mask at the target sparsity:

1. *Unstructured pruning*: prune to the target sparsity globally.
2. *Determine N*: split into ``M x M`` blocks; each block picks the
   candidate N whose density ``N / M`` is closest to the block's
   unstructured density.
3. *Determine pruning direction*: build both the reduction-dimension
   (row-wise) and independent-dimension (column-wise) top-N patterns and
   keep whichever is closer (L1) to the block's unstructured pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .blocks import merge_from_blocks, split_into_blocks
from .masks import topn_along_last, unstructured_mask
from .patterns import (
    DEFAULT_M,
    BlockPattern,
    Direction,
    PatternSpec,
    PatternFamily,
    nearest_candidates_grid,
)

__all__ = ["TBSResult", "tbs_sparsify", "block_pattern_grid"]


@dataclass
class TBSResult:
    """Output of Algorithm 1.

    Attributes
    ----------
    mask:
        Boolean keep-mask with the original matrix shape.
    block_n:
        Integer array ``(n_br, n_bc)`` -- each block's chosen N.
    block_direction:
        Integer array ``(n_br, n_bc)`` of :class:`Direction` values.
    m:
        Block size.
    shape:
        Original (unpadded) matrix shape.
    """

    mask: np.ndarray
    block_n: np.ndarray
    block_direction: np.ndarray
    m: int
    shape: Tuple[int, int]

    @property
    def sparsity(self) -> float:
        return 1.0 - float(self.mask.mean()) if self.mask.size else 0.0

    def block_patterns(self) -> List[List[BlockPattern]]:
        """Per-block :class:`BlockPattern` metadata (DDC Info-table source)."""
        n_br, n_bc = self.block_n.shape
        return [
            [
                BlockPattern(int(self.block_n[r, c]), self.m, Direction(int(self.block_direction[r, c])))
                for c in range(n_bc)
            ]
            for r in range(n_br)
        ]

    def transposed(self) -> "TBSResult":
        """The TBS metadata of ``W.T`` -- the paper's transposition property.

        During training the backward pass multiplies by the transposed
        weights (Sec. I, Challenge-1).  A TBS mask transposes into
        another valid TBS mask: the block grid transposes and every
        block's sparsity dimension flips (a row-wise block of ``W`` is a
        column-wise block of ``W.T``), so both passes run on the same
        hardware with the same per-block N.
        """
        flipped = np.where(
            self.block_direction == Direction.ROW.value,
            Direction.COL.value,
            Direction.ROW.value,
        ).T.astype(np.int64)
        return TBSResult(
            mask=self.mask.T.copy(),
            block_n=self.block_n.T.copy(),
            block_direction=flipped,
            m=self.m,
            shape=(self.shape[1], self.shape[0]),
        )

    def direction_histogram(self) -> dict:
        """Counts of row / column / trivial ("other") blocks -- Fig. 17.

        Blocks with N = 0 (empty) or N = M (dense) satisfy both dimensions
        simultaneously, so the paper's distribution plot buckets them as
        "other".
        """
        trivial = (self.block_n == 0) | (self.block_n == self.m)
        rows = int(((self.block_direction == Direction.ROW.value) & ~trivial).sum())
        cols = int(((self.block_direction == Direction.COL.value) & ~trivial).sum())
        other = int(trivial.sum())
        return {"row": rows, "col": cols, "other": other}


def _directional_masks(
    score_blocks: np.ndarray, block_n: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise and column-wise top-N masks for every block at once.

    ``score_blocks`` has shape ``(n_br, n_bc, m, m)``; ``block_n`` has shape
    ``(n_br, n_bc)`` and broadcasts over the per-row / per-column top-N.
    """
    n_rows = block_n[:, :, None]  # same N for each of the m rows
    row_masks = topn_along_last(score_blocks, n_rows)
    col_masks = topn_along_last(np.swapaxes(score_blocks, 2, 3), n_rows)
    col_masks = np.swapaxes(col_masks, 2, 3)
    return row_masks, col_masks


def tbs_sparsify(
    scores: np.ndarray,
    m: int = DEFAULT_M,
    sparsity: float = 0.5,
    candidates: Optional[Sequence[int]] = None,
    us_mask: Optional[np.ndarray] = None,
) -> TBSResult:
    """Run Algorithm 1 and return the TBS mask plus per-block metadata.

    Parameters
    ----------
    scores:
        Importance scores (e.g. ``|W|`` or a Wanda/SparseGPT criterion).
    m:
        Block size M.
    sparsity:
        Target sparsity degree ``t_s``.
    candidates:
        Allowed per-block N values; defaults to the paper's
        ``{0, 1, 2, 4, 8}`` scaled to ``m``.
    us_mask:
        Precomputed unstructured mask (step 1).  Supplying it lets callers
        reuse one unstructured solution across pattern comparisons.
    """
    scores = np.abs(np.asarray(scores, dtype=np.float64))
    if scores.ndim != 2:
        raise ValueError(f"expected 2-D scores, got shape {scores.shape}")
    spec = PatternSpec(
        PatternFamily.TBS, m=m, sparsity=sparsity, candidates=tuple(candidates) if candidates else None
    )

    # Step 1: unstructured pruning at the target sparsity.
    if us_mask is None:
        us_mask = unstructured_mask(scores, sparsity)
    elif us_mask.shape != scores.shape:
        raise ValueError("us_mask shape must match scores")

    rows, cols = scores.shape
    score_blocks = split_into_blocks(scores, m)
    us_blocks = split_into_blocks(us_mask.astype(np.float64), m)

    # Step 2: per-block N from the unstructured density.  Padding at the
    # ragged edge counts as zeros, exactly as the padded hardware tile does.
    block_density = us_blocks.mean(axis=(2, 3))
    block_n = nearest_candidates_grid(block_density, m, spec.candidates)

    # Step 3: per-block direction by L1 distance to the unstructured pattern.
    row_masks, col_masks = _directional_masks(score_blocks, block_n)
    us_bool = us_blocks.astype(bool)
    dist_row = np.abs(row_masks ^ us_bool).sum(axis=(2, 3))
    dist_col = np.abs(col_masks ^ us_bool).sum(axis=(2, 3))
    # Tie-break toward the direction keeping more total score mass, then ROW.
    mass_row = (score_blocks * row_masks).sum(axis=(2, 3))
    mass_col = (score_blocks * col_masks).sum(axis=(2, 3))
    choose_col = (dist_col < dist_row) | ((dist_col == dist_row) & (mass_col > mass_row))

    direction = np.where(choose_col, Direction.COL.value, Direction.ROW.value).astype(np.int64)
    chosen = np.where(choose_col[:, :, None, None], col_masks, row_masks)
    mask = merge_from_blocks(chosen, rows, cols)
    return TBSResult(mask=mask, block_n=block_n, block_direction=direction, m=m, shape=(rows, cols))


def block_pattern_grid(result: TBSResult) -> np.ndarray:
    """Object array of :class:`BlockPattern`, convenient for format layers."""
    grid = np.empty(result.block_n.shape, dtype=object)
    for r in range(grid.shape[0]):
        for c in range(grid.shape[1]):
            grid[r, c] = BlockPattern(
                int(result.block_n[r, c]), result.m, Direction(int(result.block_direction[r, c]))
            )
    return grid
