"""Invariant-check layer: mask validity and format round-trip integrity.

STen-style lesson: a sparsity stack is only trustworthy at scale if its
structural invariants (every TBS block really is N:M in some dimension,
every storage format really decodes back to the matrix it encoded) are
*checked where the data flows*, not only in unit tests.  This module is
that checkpoint: cheap enough to leave on in ``warn`` mode, strict
enough to stop a corrupted run dead in ``strict`` mode.

Strictness levels (global, overridable per call site):

* ``off``    -- no checking (the default; zero overhead on hot paths);
* ``warn``   -- violations emit a :class:`InvariantWarning` and continue;
* ``strict`` -- violations raise :class:`InvariantError`.

The level comes from, in priority order: an explicit ``level=`` argument,
:func:`set_check_level`, or the ``REPRO_CHECKS`` environment variable.
"""

from __future__ import annotations

import contextlib
import os
import warnings
from typing import Dict, Iterator, Optional

import numpy as np

from ..core.patterns import PatternFamily, PatternSpec
from ..core.validate import validate_mask

__all__ = [
    "CHECK_LEVELS",
    "InvariantError",
    "InvariantWarning",
    "set_check_level",
    "get_check_level",
    "check_level",
    "check_mask",
    "check_workload",
    "check_format_roundtrip",
    "warning_counts",
    "reset_warning_counts",
]

CHECK_LEVELS = ("off", "warn", "strict")

_level: Optional[str] = None  # None -> fall back to the environment


class InvariantError(AssertionError):
    """A structural invariant was violated under ``strict`` checking."""


class InvariantWarning(UserWarning):
    """A structural invariant was violated under ``warn`` checking."""


def _validate_level(level: str) -> str:
    if level not in CHECK_LEVELS:
        raise ValueError(f"check level must be one of {CHECK_LEVELS}, got {level!r}")
    return level


def set_check_level(level: Optional[str]) -> None:
    """Set the global strictness; ``None`` defers to ``$REPRO_CHECKS``.

    Also resets the warn-mode dedup state: a new strictness regime
    starts with a clean slate of "already warned" call sites.
    """
    global _level
    _level = None if level is None else _validate_level(level)
    _warn_seen.clear()


def get_check_level(override: Optional[str] = None) -> str:
    if override is not None:
        return _validate_level(override)
    if _level is not None:
        return _level
    env = os.environ.get("REPRO_CHECKS", "off").strip().lower()
    return env if env in CHECK_LEVELS else "off"


@contextlib.contextmanager
def check_level(level: str) -> Iterator[None]:
    """Temporarily pin the global strictness (tests, CLI flags)."""
    global _level
    previous = _level
    set_check_level(level)
    try:
        yield
    finally:
        _level = previous


#: Warn-mode dedup: call-site key -> number of violations observed.
#: A sweep that trips the same invariant at the same site thousands of
#: times emits ONE warning; the rest are tallied for ``warning_counts``.
_warn_seen: Dict[str, int] = {}


def warning_counts() -> Dict[str, int]:
    """Violations tallied per call site since the last reset.

    The value counts *every* violation at that site, including the one
    that actually warned; ``count - 1`` warnings were suppressed.
    """
    return dict(_warn_seen)


def reset_warning_counts() -> None:
    """Forget which call sites have already warned (see ``warning_counts``)."""
    _warn_seen.clear()


def _report_violation(message: str, level: str, site: Optional[str] = None) -> None:
    if level == "strict":
        raise InvariantError(message)
    if site is not None:
        _warn_seen[site] = _warn_seen.get(site, 0) + 1
        if _warn_seen[site] > 1:
            return  # already warned for this site; keep the tally only
        message = f"{message} (further {site!r} violations are counted, not re-warned)"
    warnings.warn(message, InvariantWarning, stacklevel=3)


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------


def check_mask(
    mask: np.ndarray,
    spec: PatternSpec,
    tbs=None,
    context: str = "",
    level: Optional[str] = None,
) -> bool:
    """Validate ``mask`` against ``spec``; returns True when clean.

    Under ``off`` the mask is never inspected.  ``tbs`` carries the
    block metadata when the mask came from Algorithm 1, tightening the
    TBS check to the declared per-block (N, direction).
    """
    level = get_check_level(level)
    if level == "off":
        return True
    report = validate_mask(mask, spec, tbs=tbs)
    if report.ok:
        return True
    where = f" [{context}]" if context else ""
    _report_violation(
        f"mask invariant violated{where}: {report.summary()}",
        level,
        site=f"mask:{context}" if context else None,
    )
    return False


def check_workload(workload, context: str = "", level: Optional[str] = None) -> bool:
    """Validate a :class:`~repro.workloads.generator.GEMMWorkload` mask."""
    level = get_check_level(level)
    if level == "off":
        return True
    family = workload.family
    if family is PatternFamily.US:
        return True
    spec = PatternSpec(family, m=workload.m, sparsity=min(1.0, max(0.0, workload.sparsity)))
    return check_mask(
        workload.mask,
        spec,
        tbs=workload.tbs,
        context=context or workload.name,
        level=level,
    )


def check_format_roundtrip(
    fmt,
    values: np.ndarray,
    mask: Optional[np.ndarray] = None,
    tbs=None,
    block_size: int = 8,
    context: str = "",
    level: Optional[str] = None,
) -> bool:
    """Encode-then-decode ``values`` through ``fmt`` and compare exactly.

    This is the storage-format integrity invariant: whatever bytes the
    memory system would move must reconstruct the sparse matrix
    bit-exactly.  The encoding's access traces (both orientations) are
    also checked against its declared footprint via
    :mod:`repro.formats.validate`.  Expensive (a full encode+decode), so
    call sites gate it behind ``strict``.
    """
    level = get_check_level(level)
    if level == "off":
        return True
    expected = np.where(mask, values, 0.0) if mask is not None else np.asarray(values, float)
    try:
        from ..formats.base import EncodedMatrix, EncodeSpec, SparseFormat
        from ..formats.validate import validate_trace

        if isinstance(fmt, SparseFormat):
            encoded = fmt.encode(values, EncodeSpec(mask=mask, tbs=tbs, block_size=block_size))
        else:  # duck-typed stand-ins keep the legacy keyword contract
            encoded = fmt.encode(values, mask=mask, tbs=tbs, block_size=block_size)
        if isinstance(encoded, EncodedMatrix):
            validate_trace(encoded)
        decoded = fmt.decode(encoded)
    except Exception as exc:  # noqa: BLE001 - converted into the invariant report
        where = f" [{context}]" if context else ""
        _report_violation(
            f"format {fmt.name!r} round-trip crashed{where}: {exc}",
            level,
            site=f"roundtrip:{fmt.name}:{context}" if context else None,
        )
        return False
    if decoded.shape != expected.shape or not np.array_equal(decoded, expected):
        where = f" [{context}]" if context else ""
        bad = int(np.sum(decoded != expected)) if decoded.shape == expected.shape else -1
        _report_violation(
            f"format {fmt.name!r} round-trip mismatch{where}: "
            f"{bad if bad >= 0 else 'shape'} differing elements "
            f"({decoded.shape} vs {expected.shape})",
            level,
            site=f"roundtrip:{fmt.name}:{context}" if context else None,
        )
        return False
    return True
