"""Content-addressed, atomically-written training checkpoints.

File layout (see DESIGN.md "Checkpoint layout"):

* one ``.npz`` per checkpoint, named ``ckpt-{epoch:05d}-{digest12}.npz``
  where ``digest12`` is the first 12 hex chars of a SHA-256 over the
  logical payload (sorted keys + array bytes + meta JSON) -- renaming or
  bit-rot is detectable, identical states deduplicate naturally;
* inside the npz: every array of :class:`~repro.runtime.state.TrainState`
  under its flat key (``param.*``, ``mask.*``, ``opt_*``) plus one
  ``__meta__`` entry holding the JSON-encoded scalar state (epoch, RNG
  bit-generator state, optimizer scalars, histories, watchdog state);
* writes go to a ``.tmp-*`` sibling and are published with
  ``os.replace`` -- a crash mid-write never corrupts an existing
  checkpoint, and :meth:`CheckpointStore.latest` skips unreadable or
  digest-mismatched files, falling back to the newest good one.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..obs.state import enabled as _obs_enabled
from .state import TrainState

__all__ = ["CheckpointError", "CheckpointStore"]

_META_KEY = "__meta__"
_NAME_RE = re.compile(r"^ckpt-(\d{5})-([0-9a-f]{12})\.npz$")


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, unreadable, or fails its digest."""


def _payload_digest(state: TrainState, meta_json: str) -> str:
    h = hashlib.sha256()
    for key in sorted(state.arrays):
        arr = np.ascontiguousarray(state.arrays[key])
        h.update(key.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    h.update(meta_json.encode())
    return h.hexdigest()


class CheckpointStore:
    """Directory of atomic, content-addressed training checkpoints."""

    def __init__(self, directory: Union[str, Path], max_keep: Optional[int] = None):
        if max_keep is not None and max_keep < 1:
            raise ValueError("max_keep must be >= 1 (or None to keep everything)")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_keep = max_keep

    # -- writing ------------------------------------------------------------

    def save(self, state: TrainState) -> Path:
        """Atomically persist ``state``; returns the published path."""
        with obs_tracer.span("checkpoint.save", epoch=state.epoch):
            meta_json = json.dumps(state.meta, sort_keys=True)
            digest = _payload_digest(state, meta_json)[:12]
            path = self.directory / f"ckpt-{state.epoch:05d}-{digest}.npz"
            if path.exists():  # content-addressed: identical state already stored
                if _obs_enabled():
                    obs_metrics.counter_add("checkpoint.saves_deduped")
                return path
            payload = dict(state.arrays)
            payload[_META_KEY] = np.array(meta_json)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-ckpt-", suffix=".npz", dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(fh, **payload)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            if _obs_enabled():
                obs_metrics.counter_add("checkpoint.saves")
            if self.max_keep is not None:
                self._prune()
            return path

    def _prune(self) -> None:
        paths = self.list()
        for path in paths[: max(0, len(paths) - self.max_keep)]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # -- reading ------------------------------------------------------------

    def list(self) -> List[Path]:
        """All well-named checkpoints, oldest epoch first."""
        found = []
        for path in self.directory.iterdir():
            match = _NAME_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path.name, path))
        return [p for _, _, p in sorted(found)]

    def load(self, path: Union[str, Path], verify: bool = True) -> TrainState:
        """Load one checkpoint; ``verify`` re-checks the content digest."""
        path = Path(path)
        match = _NAME_RE.match(path.name)
        try:
            with np.load(path, allow_pickle=False) as npz:
                arrays = {k: npz[k] for k in npz.files if k != _META_KEY}
                meta_json = str(npz[_META_KEY])
            meta = json.loads(meta_json)
        except CheckpointError:
            raise
        # Corruption surfaces as many exception types (BadZipFile and
        # zlib.error from garbled bytes, OSError from truncation, KeyError
        # from a missing meta entry, JSONDecodeError from garbled meta);
        # all of them mean the same thing: this snapshot is unusable and
        # ``latest`` should fall back to an older one.
        except Exception as exc:  # noqa: BLE001
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
        state = TrainState(epoch=int(meta["epoch"]), arrays=arrays, meta=meta)
        if verify and match:
            digest = _payload_digest(state, json.dumps(meta, sort_keys=True))[:12]
            if digest != match.group(2):
                raise CheckpointError(
                    f"checkpoint {path.name} fails its content digest "
                    f"(expected {match.group(2)}, payload hashes to {digest})"
                )
        return state

    def latest(self) -> Optional[TrainState]:
        """Newest loadable checkpoint, or ``None`` if the store is empty.

        Corrupt or truncated files (e.g. from a crash racing the atomic
        rename on exotic filesystems) are skipped, not fatal.
        """
        for path in reversed(self.list()):
            try:
                return self.load(path)
            except CheckpointError:
                continue
        return None
