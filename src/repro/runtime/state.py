"""Bit-exact capture/restore of everything a training run mutates.

Checkpointing (and watchdog rollback) must reproduce a run *exactly*:
the same parameter bytes, the same optimizer slots, the same RNG stream
position.  This module captures all of that into plain
``Dict[str, np.ndarray]`` / JSON-able structures so the checkpoint layer
can persist them and the watchdog can hold them in memory.

Everything is duck-typed against the :mod:`repro.nn` conventions
(``model.modules()``, ``module.params``, maskable layers with ``mask``,
optimizers with ``_velocity`` / ``_m`` / ``_v`` / ``_t`` slots,
schedulers with an ``epoch`` counter) so this package never imports
:mod:`repro.nn` and stays dependency-free.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = [
    "TrainState",
    "capture_model",
    "restore_model",
    "capture_masks",
    "restore_masks",
    "capture_optimizer",
    "restore_optimizer",
    "capture_rng",
    "restore_rng",
    "capture_train_state",
    "restore_train_state",
]

#: Optimizer slot attributes we know how to snapshot (SGD / Adam).
_OPT_ARRAY_SLOTS = ("_velocity", "_m", "_v")
_OPT_SCALAR_SLOTS = ("_t", "lr", "momentum", "weight_decay")


@dataclass
class TrainState:
    """One restorable point of a training run.

    ``arrays`` holds every ndarray under flat string keys (the npz
    layout, see DESIGN.md); ``meta`` holds the JSON-able scalars.
    """

    epoch: int
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Model parameters and masks
# ---------------------------------------------------------------------------


def capture_model(model) -> Dict[str, np.ndarray]:
    """``param.{module_index}.{name}`` -> copied parameter array."""
    out: Dict[str, np.ndarray] = {}
    for i, mod in enumerate(model.modules()):
        for name, value in mod.params.items():
            out[f"param.{i}.{name}"] = np.array(value, copy=True)
    return out


def restore_model(model, arrays: Dict[str, np.ndarray]) -> None:
    modules = model.modules()
    for key, value in arrays.items():
        if not key.startswith("param."):
            continue
        _, idx, name = key.split(".", 2)
        mod = modules[int(idx)]
        if name not in mod.params:
            raise KeyError(f"checkpoint parameter {key!r} unknown to the model")
        if mod.params[name].shape != value.shape:
            raise ValueError(
                f"checkpoint parameter {key!r} shape {value.shape} != "
                f"model shape {mod.params[name].shape}"
            )
        mod.params[name] = np.array(value, copy=True)


def capture_masks(layers) -> Dict[str, np.ndarray]:
    """``mask.{layer_index}`` -> boolean mask for layers that carry one."""
    out: Dict[str, np.ndarray] = {}
    for j, layer in enumerate(layers):
        mask = getattr(layer, "mask", None)
        if mask is not None:
            out[f"mask.{j}"] = np.array(mask, dtype=bool, copy=True)
    return out


def restore_masks(layers, arrays: Dict[str, np.ndarray]) -> None:
    saved = {
        int(key.split(".", 1)[1]): value
        for key, value in arrays.items()
        if key.startswith("mask.")
    }
    for j, layer in enumerate(layers):
        layer.set_mask(saved.get(j))


# ---------------------------------------------------------------------------
# Optimizer
# ---------------------------------------------------------------------------


def capture_optimizer(opt) -> Dict[str, Any]:
    """Snapshot the slot arrays and scalar hyper-state of an optimizer."""
    state: Dict[str, Any] = {"arrays": {}, "scalars": {}}
    for slot in _OPT_ARRAY_SLOTS:
        slot_dict = getattr(opt, slot, None)
        if isinstance(slot_dict, dict):
            for idx, arr in slot_dict.items():
                state["arrays"][f"opt{slot}.{idx}"] = np.array(arr, copy=True)
            state["scalars"][f"has{slot}"] = True
    for slot in _OPT_SCALAR_SLOTS:
        if hasattr(opt, slot):
            state["scalars"][slot] = getattr(opt, slot)
    return state


def restore_optimizer(opt, state: Dict[str, Any]) -> None:
    scalars = state.get("scalars", {})
    for slot in _OPT_ARRAY_SLOTS:
        if not scalars.get(f"has{slot}") or not hasattr(opt, slot):
            continue
        slot_dict = {}
        prefix = f"opt{slot}."
        for key, arr in state.get("arrays", {}).items():
            if key.startswith(prefix):
                slot_dict[int(key[len(prefix):])] = np.array(arr, copy=True)
        setattr(opt, slot, slot_dict)
    for slot in _OPT_SCALAR_SLOTS:
        if slot in scalars and hasattr(opt, slot):
            setattr(opt, slot, scalars[slot])


# ---------------------------------------------------------------------------
# RNG
# ---------------------------------------------------------------------------


def capture_rng(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-able bit-generator state (PCG64 ints survive JSON exactly)."""
    return copy.deepcopy(rng.bit_generator.state)


def restore_rng(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    expected = rng.bit_generator.state.get("bit_generator")
    got = state.get("bit_generator")
    if expected != got:
        raise ValueError(f"RNG kind mismatch: checkpoint has {got!r}, run uses {expected!r}")
    rng.bit_generator.state = copy.deepcopy(state)


# ---------------------------------------------------------------------------
# Whole-run state
# ---------------------------------------------------------------------------


def capture_train_state(
    epoch: int,
    model,
    layers,
    opt,
    rng: np.random.Generator,
    *,
    scheduler=None,
    loss_history: Optional[List[float]] = None,
    sparsity_history: Optional[List[float]] = None,
    extra_meta: Optional[Dict[str, Any]] = None,
) -> TrainState:
    """Capture one complete, restartable training-run state."""
    arrays = capture_model(model)
    arrays.update(capture_masks(layers))
    opt_state = capture_optimizer(opt)
    arrays.update(opt_state["arrays"])
    meta: Dict[str, Any] = {
        "epoch": int(epoch),
        "rng_state": capture_rng(rng),
        "optimizer": opt_state["scalars"],
        "loss_history": list(loss_history or []),
        "sparsity_history": list(sparsity_history or []),
    }
    if scheduler is not None and hasattr(scheduler, "epoch"):
        meta["scheduler_epoch"] = int(scheduler.epoch)
    if extra_meta:
        meta.update(extra_meta)
    return TrainState(epoch=int(epoch), arrays=arrays, meta=meta)


def restore_train_state(
    state: TrainState,
    model,
    layers,
    opt,
    rng: np.random.Generator,
    *,
    scheduler=None,
) -> None:
    """Put a run back exactly where :func:`capture_train_state` saw it."""
    restore_model(model, state.arrays)
    restore_masks(layers, state.arrays)
    restore_optimizer(opt, {"arrays": state.arrays, "scalars": state.meta.get("optimizer", {})})
    restore_rng(rng, state.meta["rng_state"])
    if scheduler is not None and "scheduler_epoch" in state.meta:
        scheduler.epoch = int(state.meta["scheduler_epoch"])
