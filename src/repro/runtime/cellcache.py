"""Content-addressed on-disk cache for experiment/sweep cell results.

This is the persistence layer shared by the fault-tolerant
:class:`~repro.runtime.runner.ExperimentRunner` (coarse cells: one per
paper table/figure) and the parallel sweep engine
(:mod:`repro.sweep.engine`; fine cells: one per grid point).  One cell
-> one pickle file, published with the same atomic write-rename
discipline as the training :class:`~repro.runtime.checkpoint
.CheckpointStore`: a crash mid-write never corrupts an existing entry,
and a corrupt entry reads as a miss, never as an exception.

**Cache key definition** (see DESIGN.md "Sweep cell cache"): the key is
``{name}-{sha256(name :: canonical-JSON(payload))[:16]}`` where
``payload`` is the cell's logical identity -- the callable's import path
plus its exact keyword arguments (seeds included), serialized as
sorted-key JSON with ``repr`` for non-JSON values.  Anything that does
not change the cell's *result* stays out of the hash: worker count,
retry budget, submission order, wall-clock, host.  Re-running the same
sweep therefore hits the cache regardless of parallelism, and changing
any input (a seed, a shape, the function itself) misses it.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

try:  # POSIX only; on other platforms writes stay atomic but unserialized
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from ..obs import metrics as obs_metrics
from ..obs.state import enabled as _obs_enabled

__all__ = ["CellCache", "cache_key"]

#: Tag of the ``(tag, value)`` envelope every entry is pickled inside.
#: The envelope is what makes a cached ``None`` distinguishable from a
#: miss (``read_hit`` returns an explicit hit flag); entries written
#: before the envelope existed unpickle as their bare value and are
#: still served (legacy hit).
_ENVELOPE_TAG = "repro.cellcache.envelope/1"


def cache_key(name: str, payload: Dict[str, Any]) -> str:
    """Content-addressed key for one cell (see module docstring)."""
    try:
        blob = json.dumps(payload, sort_keys=True, default=repr)
    except TypeError:  # pragma: no cover - default=repr handles everything
        blob = repr(sorted(payload.items()))
    digest = hashlib.sha256(f"{name}::{blob}".encode()).hexdigest()[:16]
    return f"{name}-{digest}"


class CellCache:
    """Directory of atomically-written, content-addressed result pickles."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, name: str, payload: Dict[str, Any]) -> Path:
        """Entry path for cell ``name`` -- always *inside* the cache dir.

        Keys may contain ``/`` (nested entries), so a hostile key like
        ``"../../x"`` would otherwise address a path outside the cache;
        the service validates submitted keys, and this lexical
        containment check backstops every other caller.
        """
        entry = self.directory / f"{cache_key(name, payload)}.pkl"
        base = os.path.abspath(self.directory)
        if not os.path.abspath(entry).startswith(base + os.sep):
            raise ValueError(
                f"cell key {name!r} escapes cache directory {self.directory}"
            )
        return entry

    def read_hit(self, path: Optional[Path]) -> Tuple[bool, Any]:
        """``(hit, value)`` for the entry at ``path``.

        The explicit hit flag is the API consumers must use to decide
        between cache and recompute: a cell whose legitimate result *is*
        ``None`` reads back as ``(True, None)``, not as a miss --
        without the flag such cells were recomputed on every resume.
        Corrupt entries read as ``(False, None)``, never as an
        exception.
        """
        if path is None or not path.exists():
            if _obs_enabled():
                obs_metrics.counter_add("cellcache.misses")
            return False, None
        try:
            with open(path, "rb") as fh:
                obj = pickle.load(fh)
        except Exception:  # corrupt cache entry: recompute, don't crash
            if _obs_enabled():
                obs_metrics.counter_add("cellcache.corrupt")
            return False, None
        if _obs_enabled():
            obs_metrics.counter_add("cellcache.hits")
        if isinstance(obj, tuple) and len(obj) == 2 and obj[0] == _ENVELOPE_TAG:
            return True, obj[1]
        return True, obj  # legacy pre-envelope entry: the pickle IS the value

    def read(self, path: Optional[Path]) -> Any:
        """Cached value at ``path``, or None on miss/corruption.

        Ambiguous for cells whose legitimate value is ``None`` -- kept
        for callers that know their values are never ``None``; prefer
        :meth:`read_hit`.
        """
        return self.read_hit(path)[1]

    @contextlib.contextmanager
    def write_lock(self, path: Path) -> Iterator[None]:
        """Inter-process exclusive lock for publishing ``path``.

        An ``fcntl.flock`` on a ``<entry>.lock`` sibling: two processes
        (the service runs concurrent jobs over one shared cache)
        publishing the same content-addressed entry serialize their
        write+rename sections instead of racing two temp files onto one
        path.  Readers never take the lock -- ``os.replace`` keeps every
        read either the old bytes or the new, never a tear.  On
        platforms without ``fcntl`` the lock degrades to a no-op (the
        rename alone is still atomic).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_path = Path(str(path) + ".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            # Unlock before close is implicit in close; the lock file is
            # left behind deliberately -- unlinking it would open a race
            # where a third process locks a file the second just deleted.
            os.close(fd)

    def write(self, path: Optional[Path], value: Any) -> None:
        """Atomically publish ``value`` at ``path`` (write + rename).

        The temp-file + ``os.replace`` pair makes the publish atomic for
        *readers*; the :meth:`write_lock` around it serializes
        concurrent *writers* of the same key across processes.
        """
        if path is None:
            return
        # Cell keys may contain "/" (e.g. "cnn@0.75/seed0/Dense"), which
        # nests entries in subdirectories; publish must create them.
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        with self.write_lock(path):
            fd, tmp = tempfile.mkstemp(prefix=".tmp-cell-", dir=self.directory)
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump((_ENVELOPE_TAG, value), fh)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
