"""Resilient-execution layer: checkpoints, watchdog, invariants, runner.

Long TB-STC reproductions (sparse training sweeps, ``repro report all``)
must survive crashes, divergence, and partial failures.  This package
provides the four pieces the rest of the stack wires in:

* :mod:`~repro.runtime.state`      -- bit-exact capture/restore of model,
  optimizer, mask and RNG state;
* :mod:`~repro.runtime.checkpoint` -- content-addressed, atomically
  written ``.npz`` snapshots with corruption-tolerant loading;
* :mod:`~repro.runtime.watchdog`   -- NaN/Inf/loss-spike detection with
  bounded rollback + learning-rate backoff;
* :mod:`~repro.runtime.checks`     -- configurable mask/format invariant
  checking (``off`` / ``warn`` / ``strict``);
* :mod:`~repro.runtime.runner`     -- fault-tolerant experiment runner
  with per-cell retries and disk caching.
"""

from .checkpoint import CheckpointError, CheckpointStore
from .checks import (
    CHECK_LEVELS,
    InvariantError,
    InvariantWarning,
    check_format_roundtrip,
    check_level,
    check_mask,
    check_workload,
    get_check_level,
    reset_warning_counts,
    set_check_level,
    warning_counts,
)
from .runner import CellResult, ExperimentRunner
from .state import (
    TrainState,
    capture_train_state,
    restore_train_state,
)
from .watchdog import DivergenceWatchdog, WatchdogConfig, WatchdogEvent

__all__ = [
    "CHECK_LEVELS",
    "CellResult",
    "CheckpointError",
    "CheckpointStore",
    "DivergenceWatchdog",
    "ExperimentRunner",
    "InvariantError",
    "InvariantWarning",
    "TrainState",
    "WatchdogConfig",
    "WatchdogEvent",
    "capture_train_state",
    "check_format_roundtrip",
    "check_level",
    "check_mask",
    "check_workload",
    "get_check_level",
    "reset_warning_counts",
    "restore_train_state",
    "set_check_level",
    "warning_counts",
]
