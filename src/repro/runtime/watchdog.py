"""Divergence watchdog: detect NaN/Inf/loss-spikes, decide rollbacks.

Truly-sparse training regenerates its mask every epoch, which is exactly
where long runs blow up silently (a bad mask + high LR => NaN half an
hour in).  The watchdog watches the per-batch and per-epoch losses,
classifies divergence, and tells the training loop to roll back to the
last good state with a learning-rate backoff.  Retries are bounded:
after ``max_retries`` rollbacks the run degrades gracefully -- it stops,
flags the result, and keeps whatever progress was sound.

The watchdog only *decides*; the training loop owns the state capture /
restore (via :mod:`repro.runtime.state`) so the policy stays testable in
isolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["WatchdogConfig", "WatchdogEvent", "DivergenceWatchdog"]


@dataclass(frozen=True)
class WatchdogConfig:
    """Policy knobs for :class:`DivergenceWatchdog`.

    ``spike_factor`` flags an epoch whose mean loss exceeds
    ``spike_factor x`` the last good epoch's loss (NaN/Inf always flag).
    ``lr_backoff`` multiplies the effective learning rate on every
    rollback; ``max_retries`` bounds total rollbacks per run before the
    run degrades.
    """

    enabled: bool = True
    spike_factor: float = 10.0
    lr_backoff: float = 0.5
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.spike_factor <= 1.0:
            raise ValueError("spike_factor must be > 1")
        if not 0.0 < self.lr_backoff < 1.0:
            raise ValueError("lr_backoff must be in (0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")


@dataclass
class WatchdogEvent:
    """One divergence occurrence and the action taken."""

    epoch: int
    kind: str  # "nan" | "spike"
    loss: float
    action: str  # "rollback" | "degrade"
    lr_scale: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "kind": self.kind,
            "loss": self.loss,
            "action": self.action,
            "lr_scale": self.lr_scale,
        }


@dataclass
class DivergenceWatchdog:
    """Stateful divergence policy for one training run."""

    config: WatchdogConfig = field(default_factory=WatchdogConfig)
    retries: int = 0
    lr_scale: float = 1.0
    last_good_loss: Optional[float] = None
    events: List[WatchdogEvent] = field(default_factory=list)

    def classify(self, loss: float) -> Optional[str]:
        """``None`` if the loss is healthy, else the divergence kind."""
        if not self.config.enabled:
            return None
        if not math.isfinite(loss):
            return "nan"
        if (
            self.last_good_loss is not None
            and math.isfinite(self.last_good_loss)
            and loss > self.config.spike_factor * abs(self.last_good_loss) + 1e-12
        ):
            return "spike"
        return None

    def record_good(self, loss: float) -> None:
        self.last_good_loss = loss

    def diverged(self, epoch: int, loss: float, kind: str) -> str:
        """Register a divergence; returns ``"rollback"`` or ``"degrade"``.

        On rollback the caller must restore the last good state and apply
        :attr:`lr_scale` (already multiplied by the backoff) to its
        learning rate.
        """
        if self.retries < self.config.max_retries:
            self.retries += 1
            self.lr_scale *= self.config.lr_backoff
            action = "rollback"
        else:
            action = "degrade"
        self.events.append(WatchdogEvent(epoch, kind, float(loss), action, self.lr_scale))
        return action

    # -- checkpoint integration --------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "retries": self.retries,
            "lr_scale": self.lr_scale,
            "last_good_loss": self.last_good_loss,
            "events": [e.as_dict() for e in self.events],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.retries = int(state.get("retries", 0))
        self.lr_scale = float(state.get("lr_scale", 1.0))
        self.last_good_loss = state.get("last_good_loss")
        self.events = [WatchdogEvent(**e) for e in state.get("events", [])]
