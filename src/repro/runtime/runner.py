"""Fault-tolerant experiment runner with per-cell disk caching.

``repro report all`` runs 14 independent experiment cells; without
isolation, a crash in cell 9 throws away cells 1-8.  The runner gives
each cell:

* **isolation** -- exceptions are caught per cell and reported as a
  failed :class:`CellResult` instead of unwinding the whole run;
* **bounded retries** -- transient failures get ``retries`` fresh
  attempts before the cell is declared failed;
* **disk caching** -- successful results are pickled (atomic
  write-rename) under a key derived from the cell name and its exact
  keyword arguments, so a re-run with ``resume=True`` skips every cell
  that already completed and recomputes only the missing ones.

The runner is deliberately generic (name + callable + kwargs); the
mapping from paper table/figure names to driver callables lives in
:func:`repro.analysis.experiments.run_experiment`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..obs import metrics as obs_metrics
from ..obs import tracer as obs_tracer
from ..obs.state import enabled as _obs_enabled
from .cellcache import CellCache, cache_key

__all__ = ["CellResult", "ExperimentRunner"]


@dataclass
class CellResult:
    """Outcome of one experiment cell."""

    name: str
    status: str  # "ok" | "cached" | "failed"
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


#: Kept as a module-level alias: the key definition now lives in
#: :func:`repro.runtime.cellcache.cache_key`, shared with the sweep engine.
_cache_key = cache_key


class ExperimentRunner:
    """Run experiment cells with isolation, retries, and a result cache."""

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        retries: int = 1,
        resume: bool = False,
    ):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self._cache = CellCache(cache_dir) if cache_dir else None
        self.retries = retries
        self.resume = resume
        self.results: List[CellResult] = []

    # -- cache --------------------------------------------------------------

    @property
    def cache_dir(self) -> Optional[Path]:
        return self._cache.directory if self._cache is not None else None

    def _cache_path(self, name: str, kwargs: Dict[str, Any]) -> Optional[Path]:
        if self._cache is None:
            return None
        return self._cache.path(name, kwargs)

    def _read_cache(self, path: Optional[Path]) -> "tuple[bool, Any]":
        """``(hit, value)``; a cached ``None`` is a hit, not a miss."""
        if self._cache is None:
            return False, None
        return self._cache.read_hit(path)

    def _write_cache(self, path: Optional[Path], value: Any) -> None:
        if self._cache is not None:
            self._cache.write(path, value)

    # -- execution ----------------------------------------------------------

    def run(self, name: str, fn: Callable[..., Any], /, **kwargs: Any) -> CellResult:
        """Execute one cell (or serve it from cache) and record the result."""
        path = self._cache_path(name, kwargs)
        if self.resume:
            hit, cached = self._read_cache(path)
            if hit:
                if _obs_enabled():
                    obs_metrics.counter_add("runner.cells_cached")
                result = CellResult(name, "cached", value=cached)
                self.results.append(result)
                return result
        start = time.perf_counter()
        error: Optional[str] = None
        attempts = 0
        with obs_tracer.span(f"runner.cell.{name}"):
            for attempt in range(self.retries + 1):
                attempts = attempt + 1
                if attempt and _obs_enabled():
                    obs_metrics.counter_add("runner.cell_retries")
                try:
                    value = fn(**kwargs)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:  # noqa: BLE001 - cell isolation is the point
                    error = f"{type(exc).__name__}: {exc}"
                    continue
                self._write_cache(path, value)
                if _obs_enabled():
                    obs_metrics.counter_add("runner.cells_ok")
                result = CellResult(
                    name, "ok", value=value, attempts=attempts,
                    elapsed_s=time.perf_counter() - start,
                )
                self.results.append(result)
                return result
        if _obs_enabled():
            obs_metrics.counter_add("runner.cells_failed")
        result = CellResult(
            name, "failed", error=error, attempts=attempts,
            elapsed_s=time.perf_counter() - start,
        )
        self.results.append(result)
        return result

    # -- reporting ----------------------------------------------------------

    @property
    def failed(self) -> List[CellResult]:
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        ok = sum(1 for r in self.results if r.status == "ok")
        cached = sum(1 for r in self.results if r.status == "cached")
        failed = len(self.failed)
        return f"{ok} computed, {cached} from cache, {failed} failed"
