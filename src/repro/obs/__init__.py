"""repro.obs -- zero-cost-when-off observability (tracing + metrics).

One master switch (:func:`enabled` / :func:`enable` / :func:`disable`)
gates two sinks:

* the **tracer** (:mod:`repro.obs.tracer`): span/instant events in
  Chrome ``trace_event`` shape, exportable for Perfetto;
* the **metrics registry** (:mod:`repro.obs.metrics`):
  counters/gauges/histograms whose merge is associative and
  order-insensitive, plus the wall-time stage timers that
  :mod:`repro.perf.timers` adapts over.

Typical use::

    from repro import obs

    with obs.enabled_scope():
        result = simulate(config, workload)   # result.metrics now set
        obs.write_chrome_trace("trace.json")

Instrumentation sites import the functions they need and guard hot
loops on ``obs.enabled()``; everything is a no-op while the switch is
off, which is the default.
"""

from .metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    capture,
    counter_add,
    gauge_max,
    merge_payload,
    metrics_dict,
    observe,
    registry,
    swap_registry,
    timer_add,
)
from .metrics import reset as reset_metrics
from .state import disable, enable, enabled, enabled_scope
from .tracer import (
    events,
    ingest,
    instant,
    span,
    swap_buffer,
    to_chrome_trace,
    write_chrome_trace,
)
from .tracer import reset as reset_trace

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "capture",
    "counter_add",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "events",
    "gauge_max",
    "ingest",
    "instant",
    "merge_payload",
    "metrics_dict",
    "observe",
    "registry",
    "reset",
    "reset_metrics",
    "reset_trace",
    "span",
    "swap_registry",
    "timer_add",
    "to_chrome_trace",
    "write_chrome_trace",
]


def reset() -> None:
    """Clear both sinks (events and metrics)."""
    reset_trace()
    reset_metrics()
