"""Metrics registry: counters, gauges, histograms and stage timers.

The registry is the numeric half of :mod:`repro.obs` (the tracer is the
event half).  Four metric kinds, chosen so that **merging two
registries is associative and order-insensitive**:

* **counters** -- integer (or float) totals; merge adds.
* **gauges** -- high-water marks; merge takes the maximum.
* **histograms** -- power-of-two buckets plus exact ``count``/``sum``/
  ``min``/``max``; merge adds counts and sums and combines extrema.
  In-repo instrumentation only observes *integers* (cycles, block
  counts, retries), so sums stay exact Python ints and the merge is
  bit-exact under any grouping -- the property the hypothesis suite
  (``tests/obs/test_metrics_properties.py``) pins.  Float observations
  are accepted but their sums are only order-insensitive up to IEEE-754
  rounding.
* **timers** -- ``[calls, total_ns]`` wall-time records, the storage
  behind :mod:`repro.perf.timers` (now a thin adapter over this
  registry).  Wall time is inherently nondeterministic, so timers are
  **excluded** from the deterministic export that crosses process
  boundaries: sweep workers ship ``to_dict(deterministic_only=True)``
  payloads, which is what makes ``--workers N`` metrics byte-identical
  to serial.

The module-level registry is process-global and not thread-safe (the
simulator is single-threaded by construction); :func:`swap_registry`
installs a fresh registry for isolation boundaries (sweep cell bodies,
per-``simulate()`` capture).

``to_dict`` payloads carry ``schema_version`` (:data:`METRICS_SCHEMA`);
``merge_payload``/``from_dict`` refuse other versions so cached or
cross-process payloads from older code fail loudly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "bucket_exponent",
    "capture",
    "counter_add",
    "current_timers",
    "gauge_max",
    "merge_payload",
    "metrics_dict",
    "observe",
    "registry",
    "reset",
    "swap_registry",
    "timer_add",
]

#: Version stamped into every ``MetricsRegistry.to_dict`` payload.  Bump
#: whenever a kind is added/renamed or merge semantics change, so stale
#: payloads fail loudly in ``merge_payload``/``from_dict``.
METRICS_SCHEMA = 1

Number = Union[int, float]


def bucket_exponent(value: Number) -> int:
    """Power-of-two histogram bucket for ``value``.

    Bucket ``e`` covers ``(2**(e-1), 2**e]``; values ``<= 0`` land in
    bucket ``0`` (so the bucket key is always a small int, and equal
    values land in equal buckets whatever process observed them).
    """
    if value <= 0:
        return 0
    # Integer bit-length avoids float log2 edge cases for the common
    # (cycle-count) path; floats fall back to repeated doubling.
    if isinstance(value, int):
        return (value - 1).bit_length() if value > 1 else 1
    e = 1
    bound = 2.0
    while value > bound and e < 1024:
        bound *= 2.0
        e += 1
    return e


class _Histogram:
    """Fixed power-of-two-bucket histogram with exact extrema."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        e = bucket_exponent(value)
        self.buckets[e] = self.buckets.get(e, 0) + 1
        self.count += 1
        self.total = self.total + value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "_Histogram") -> None:
        for e, n in other.buckets.items():
            self.buckets[e] = self.buckets.get(e, 0) + n
        self.count += other.count
        self.total = self.total + other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(e): n for e, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "_Histogram":
        hist = cls()
        hist.count = int(data["count"])
        hist.total = data["sum"]
        hist.min = data["min"]
        hist.max = data["max"]
        hist.buckets = {int(e): int(n) for e, n in data["buckets"].items()}
        return hist


class MetricsRegistry:
    """One process's (or one isolation scope's) metric state."""

    __slots__ = ("counters", "gauges", "histograms", "timers")

    def __init__(self):
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self.histograms: Dict[str, _Histogram] = {}
        #: name -> [calls, total_ns]; wall time, never merged across
        #: processes (see module docstring).
        self.timers: Dict[str, List[int]] = {}

    # -- recording ----------------------------------------------------------

    def counter_add(self, name: str, value: Number = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge_max(self, name: str, value: Number) -> None:
        prev = self.gauges.get(name)
        if prev is None or value > prev:
            self.gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = _Histogram()
        hist.observe(value)

    def timer_add(self, name: str, elapsed_ns: int) -> None:
        rec = self.timers.get(name)
        if rec is None:
            self.timers[name] = [1, elapsed_ns]
        else:
            rec[0] += 1
            rec[1] += elapsed_ns

    # -- merging ------------------------------------------------------------

    def merge(self, other: "MetricsRegistry", include_timers: bool = True) -> "MetricsRegistry":
        """Fold ``other`` into ``self`` (associative, order-insensitive
        for the deterministic kinds); returns ``self`` for chaining."""
        for name, value in other.counters.items():
            self.counter_add(name, value)
        for name, value in other.gauges.items():
            self.gauge_max(name, value)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = _Histogram()
            mine.merge(hist)
        if include_timers:
            for name, (calls, ns) in other.timers.items():
                rec = self.timers.get(name)
                if rec is None:
                    self.timers[name] = [calls, ns]
                else:
                    rec[0] += calls
                    rec[1] += ns
        return self

    def merge_payload(self, data: Dict[str, Any]) -> "MetricsRegistry":
        """Fold a ``to_dict`` payload (schema-checked) into ``self``."""
        return self.merge(MetricsRegistry.from_dict(data))

    # -- (de)serialization --------------------------------------------------

    def to_dict(self, deterministic_only: bool = False) -> Dict[str, Any]:
        """Versioned JSON-ready payload.

        ``deterministic_only=True`` drops the wall-time ``timers``
        section -- the form that crosses process boundaries and lands in
        sweep JSON, byte-identical at any worker count.
        """
        out: Dict[str, Any] = {
            "schema_version": METRICS_SCHEMA,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.to_dict() for name, hist in sorted(self.histograms.items())
            },
        }
        if not deterministic_only:
            out["timers"] = {
                name: {"calls": rec[0], "seconds": rec[1] / 1e9}
                for name, rec in sorted(self.timers.items())
            }
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        version = data.get("schema_version")
        if version != METRICS_SCHEMA:
            raise ValueError(
                f"metrics payload schema {version!r} != supported {METRICS_SCHEMA}"
            )
        reg = cls()
        reg.counters = dict(data.get("counters", {}))
        reg.gauges = dict(data.get("gauges", {}))
        reg.histograms = {
            name: _Histogram.from_dict(h) for name, h in data.get("histograms", {}).items()
        }
        for name, rec in data.get("timers", {}).items():
            reg.timers[name] = [int(rec["calls"]), int(round(rec["seconds"] * 1e9))]
        return reg

    @classmethod
    def merged(cls, payloads: Iterable[Dict[str, Any]]) -> "MetricsRegistry":
        """A fresh registry holding the fold of every payload."""
        reg = cls()
        for payload in payloads:
            reg.merge_payload(payload)
        return reg

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms or self.timers)


# -- module-level registry (the default sink) -------------------------------

_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The currently-installed process registry."""
    return _REGISTRY


def swap_registry(new: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``new`` (or a fresh registry) and return the previous one.

    The isolation primitive: sweep cell bodies and per-call captures run
    against a fresh registry, export it, and the caller merges the
    export back -- so deltas are exact and nothing double-counts.
    """
    global _REGISTRY
    prev = _REGISTRY
    _REGISTRY = new if new is not None else MetricsRegistry()
    return prev


def counter_add(name: str, value: Number = 1) -> None:
    _REGISTRY.counter_add(name, value)


def gauge_max(name: str, value: Number) -> None:
    _REGISTRY.gauge_max(name, value)


def observe(name: str, value: Number) -> None:
    _REGISTRY.observe(name, value)


def timer_add(name: str, elapsed_ns: int) -> None:
    _REGISTRY.timer_add(name, elapsed_ns)


def current_timers() -> Dict[str, List[int]]:
    """Live view of the installed registry's timer records (the storage
    :mod:`repro.perf.timers` adapts over)."""
    return _REGISTRY.timers


def metrics_dict(deterministic_only: bool = False) -> Dict[str, Any]:
    """``to_dict`` of the installed registry."""
    return _REGISTRY.to_dict(deterministic_only=deterministic_only)


def merge_payload(data: Dict[str, Any]) -> None:
    """Fold an exported payload into the installed registry."""
    _REGISTRY.merge_payload(data)


def reset() -> None:
    """Drop every metric in the installed registry."""
    _REGISTRY.counters.clear()
    _REGISTRY.gauges.clear()
    _REGISTRY.histograms.clear()
    _REGISTRY.timers.clear()


class capture:
    """Context manager yielding the *deterministic* metrics recorded
    inside its block.

    Runs the block against a fresh registry, merges it back into the
    surrounding registry on exit (timers included, so ambient
    accounting is preserved), and fills the yielded dict with the fresh
    registry's ``to_dict(deterministic_only=True)`` -- this is how
    ``simulate()`` attaches a per-call ``SimResult.metrics``.
    """

    def __enter__(self) -> Dict[str, Any]:
        self._child = MetricsRegistry()
        self._parent = swap_registry(self._child)
        self.data: Dict[str, Any] = {}
        return self.data

    def __exit__(self, *exc) -> bool:
        swap_registry(self._parent)
        self._parent.merge(self._child)
        self.data.update(self._child.to_dict(deterministic_only=True))
        return False
