"""The observability master switch (shared by tracer and metrics).

One process-global boolean gates every obs sink.  Instrumentation sites
in hot paths guard on :func:`enabled` (a single global read) so the
subsystem is zero-cost when off -- the same discipline as
:mod:`repro.perf.timers`, which this module generalizes.

The flag is process-global and inherited across ``fork``; the sweep
engine does **not** rely on that inheritance and instead ships the
submitting process's obs state inside each cell payload (see
``repro.sweep.engine._execute_payload``), so spawn-based pools behave
identically.
"""

from __future__ import annotations

__all__ = ["enabled", "enable", "disable", "enabled_scope"]

_enabled = False


def enabled() -> bool:
    """Whether observability (tracing + metrics) is collecting."""
    return _enabled


def enable() -> None:
    """Turn observability on (events/metrics accumulate until reset)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn observability off; accumulated data is kept."""
    global _enabled
    _enabled = False


class enabled_scope:
    """Context manager enabling obs inside its block, restoring after."""

    def __enter__(self) -> "enabled_scope":
        global _enabled
        self._prev = _enabled
        _enabled = True
        return self

    def __exit__(self, *exc) -> bool:
        global _enabled
        _enabled = self._prev
        return False
