"""Structured event tracer with Chrome ``trace_event`` export.

The event half of :mod:`repro.obs`.  Instrumented code emits **spans**
(``with span("sim.engine.wave"): ...``) and **instants**
(``instant("nn.train.rollback", epoch=3)``); when observability is off
(:func:`repro.obs.state.enabled` false) both return a shared null
object / no-op, so hot paths pay a single boolean test -- the same
null-object discipline as :mod:`repro.perf.timers`.

Events accumulate in a process-global buffer as plain dicts already in
Chrome ``trace_event`` shape (``ph`` ``B``/``E`` duration events and
``ph`` ``i`` instants, ``ts`` in microseconds from
``time.perf_counter_ns``).  :func:`to_chrome_trace` wraps the buffer in
the ``{"traceEvents": [...]}`` envelope with thread-name metadata so
Perfetto / ``chrome://tracing`` can load it directly.

Tracks: every event names a *track* (default ``"main"``), rendered as a
thread row.  Timestamps come from a process-monotonic clock, so within
one track (one process) they never go backwards -- the conformance
property ``tests/obs/test_tracer.py`` pins.  Sweep workers run against
a swapped-in buffer (:func:`swap_buffer`), ship their events home in
the result tuple, and the parent :func:`ingest`\\ s them onto
``pid``-tagged tracks.

Spans always close: ``span.__exit__`` emits the ``E`` event on the
exception path too, so a cell that raises mid-span still yields a
balanced trace.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

from . import state

__all__ = [
    "events",
    "ingest",
    "instant",
    "reset",
    "span",
    "swap_buffer",
    "to_chrome_trace",
    "write_chrome_trace",
]

_events: List[Dict[str, Any]] = []


def _now_us() -> float:
    return time.perf_counter_ns() / 1000.0


class _NullSpan:
    """Shared do-nothing span handed out when observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _NullSpan()


class _Span:
    __slots__ = ("_name", "_track", "_args")

    def __init__(self, name: str, track: str, args: Optional[Dict[str, Any]]):
        self._name = name
        self._track = track
        self._args = args

    def __enter__(self) -> "_Span":
        event: Dict[str, Any] = {
            "name": self._name,
            "ph": "B",
            "ts": _now_us(),
            "pid": os.getpid(),
            "tid": self._track,
        }
        if self._args:
            event["args"] = self._args
        _events.append(event)
        return self

    def __exit__(self, *exc) -> bool:
        # Emitted unconditionally so every B has a matching E even when
        # the body raises (the balance property the conformance test pins).
        _events.append(
            {
                "name": self._name,
                "ph": "E",
                "ts": _now_us(),
                "pid": os.getpid(),
                "tid": self._track,
            }
        )
        return False


def span(name: str, track: str = "main", **args: Any):
    """A context manager tracing ``name`` as a B/E duration event pair
    on ``track``; extra kwargs become the event's ``args``."""
    if not state.enabled():
        return _NULL
    return _Span(name, track, args or None)


def instant(name: str, track: str = "main", **args: Any) -> None:
    """Emit a point-in-time event (watchdog rollback, stall, ...)."""
    if not state.enabled():
        return
    event: Dict[str, Any] = {
        "name": name,
        "ph": "i",
        "s": "t",
        "ts": _now_us(),
        "pid": os.getpid(),
        "tid": track,
    }
    if args:
        event["args"] = args
    _events.append(event)


def events() -> List[Dict[str, Any]]:
    """The live event buffer (callers must not mutate entries)."""
    return _events


def reset() -> None:
    """Drop every buffered event."""
    _events.clear()


def swap_buffer(new: Optional[List[Dict[str, Any]]] = None) -> List[Dict[str, Any]]:
    """Install ``new`` (or a fresh list) as the buffer, returning the
    previous one -- the isolation primitive for sweep cell bodies."""
    global _events
    prev = _events
    _events = new if new is not None else []
    return prev


def ingest(worker_events: List[Dict[str, Any]]) -> None:
    """Append events shipped home by a worker process.

    Events keep their originating ``pid``/``tid``, so each worker
    renders as its own process group and per-track monotonicity (one
    track == one process-local clock) is preserved.
    """
    _events.extend(worker_events)


def to_chrome_trace() -> Dict[str, Any]:
    """The buffer wrapped as a Chrome ``trace_event`` JSON object."""
    trace_events: List[Dict[str, Any]] = []
    seen_tracks = set()
    for event in _events:
        key = (event["pid"], event["tid"])
        if key not in seen_tracks:
            seen_tracks.add(key)
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": event["pid"],
                    "tid": event["tid"],
                    "args": {"name": str(event["tid"])},
                }
            )
    trace_events.extend(_events)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str) -> str:
    """Serialize :func:`to_chrome_trace` to ``path``; returns ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(), fh)
    return path
