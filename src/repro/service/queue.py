"""Bounded admission control for the job service: shed load, don't fall over.

Three pieces, all stdlib:

* :class:`TokenBucket` -- the classic per-client rate limiter: a bucket
  of ``burst`` tokens refilling at ``rate`` per second.  ``take()``
  either consumes a token or reports how long until one exists, which
  becomes the HTTP ``Retry-After`` header.  The HTTP layer keys buckets
  by *remote address*, never by a client-supplied header (which a
  flooder could rotate to mint fresh buckets), and the bucket map is a
  bounded LRU so fabricated identities cannot grow it without limit.
* :class:`AdmissionQueue` -- a bounded two-lane queue of run ids.  The
  **priority lane** holds near-free work -- jobs reclaimed by crash
  recovery or resubmitted after completion, whose cells are already in
  the cell cache -- and always drains first; fresh work waits in the
  normal lane.  When both lanes together hit ``maxsize``, admission
  raises :class:`QueueFull` instead of queuing unboundedly: the caller
  answers 429 and the client backs off.  Recovery re-queues bypass the
  bound (refusing to recover our *own* accepted jobs would turn a crash
  into data loss).
* :class:`QueueFull` / :class:`RateLimited` -- both carry
  ``retry_after_s`` so the HTTP layer can translate them mechanically.

Everything takes an injectable ``clock`` so the tests run in virtual
time; the service uses ``time.monotonic``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from math import ceil
from typing import Callable, Optional

__all__ = ["AdmissionQueue", "QueueFull", "RateLimited", "TokenBucket"]


class RateLimited(Exception):
    """Client exceeded its submission rate; retry after ``retry_after_s``."""

    def __init__(self, client: str, retry_after_s: float):
        super().__init__(
            f"client {client!r} rate-limited; retry in {retry_after_s:.2f}s"
        )
        self.client = client
        self.retry_after_s = retry_after_s


class QueueFull(Exception):
    """The admission queue is at capacity; retry after ``retry_after_s``."""

    def __init__(self, size: int, retry_after_s: float):
        super().__init__(
            f"admission queue full ({size} job(s) waiting); "
            f"retry in {retry_after_s:.2f}s"
        )
        self.size = size
        self.retry_after_s = retry_after_s


class TokenBucket:
    """``burst``-deep bucket refilling at ``rate`` tokens per second."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0 or burst < 1:
            raise ValueError(f"need rate > 0 and burst >= 1, got {rate}/{burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def take(self) -> Optional[float]:
        """Consume one token; returns ``None`` on success, else the
        seconds until a token will be available."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return None
        return (1.0 - self._tokens) / self.rate


class AdmissionQueue:
    """Bounded two-lane FIFO of run ids with per-client rate limiting."""

    def __init__(
        self,
        maxsize: int = 64,
        rate: Optional[float] = 10.0,
        burst: Optional[float] = 20.0,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 1024,
    ):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.maxsize = maxsize
        self._rate = rate
        self._burst = burst if burst is not None else (rate or 0) * 2
        self._clock = clock
        self._max_clients = max_clients
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._priority: deque = deque()
        self._normal: deque = deque()
        self._members: set = set()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._priority) + len(self._normal)

    def depth(self) -> Dict[str, int]:
        with self._cond:
            return {"priority": len(self._priority), "normal": len(self._normal)}

    def _bucket(self, client: str) -> Optional[TokenBucket]:
        if self._rate is None:
            return None
        bucket = self._buckets.get(client)
        if bucket is None:
            # LRU-evict the coldest bucket at the cap: an evicted client
            # merely restarts from a full burst, whereas an unbounded map
            # is a memory leak any identity-rotating client can drive.
            while len(self._buckets) >= self._max_clients:
                self._buckets.popitem(last=False)
            bucket = self._buckets[client] = TokenBucket(
                self._rate, self._burst, clock=self._clock
            )
        else:
            self._buckets.move_to_end(client)
        return bucket

    def check_rate(self, client: str) -> None:
        """Charge one submission against ``client``'s bucket.

        ``client`` must be an identity the peer cannot choose freely
        (the HTTP layer passes the remote address) -- keying on a
        client-supplied header would let a flooder rotate identities to
        dodge the bucket.  Applied to every submission attempt --
        including dedupes and rejects -- so a flood of repeat POSTs is
        throttled like any other flood.  Raises :class:`RateLimited`
        when exhausted.
        """
        with self._cond:
            bucket = self._bucket(client)
            if bucket is None:
                return
            wait = bucket.take()
        if wait is not None:
            raise RateLimited(client, ceil(wait * 100) / 100)

    def push(self, run_id: str, priority: bool = False, force: bool = False) -> None:
        """Enqueue ``run_id``; :class:`QueueFull` at capacity unless ``force``.

        ``force`` is for recovery/drain re-queues of jobs the service
        already accepted -- bounding those would drop durable work.
        Duplicate pushes of an id already waiting are no-ops (the store
        is the source of truth; the queue is just scheduling).
        """
        with self._cond:
            if run_id in self._members:
                return
            size = len(self._priority) + len(self._normal)
            if size >= self.maxsize and not force:
                raise QueueFull(size, self._retry_after(size))
            (self._priority if priority else self._normal).append(run_id)
            self._members.add(run_id)
            self._cond.notify()

    def _retry_after(self, size: int) -> float:
        # Heuristic: no execution-time oracle exists at admission time,
        # so advertise a backoff proportional to the backlog depth.
        return max(1.0, min(30.0, size * 0.5))

    def check_capacity(self) -> None:
        """Raise :class:`QueueFull` if a non-``force`` push would be
        refused right now.

        For admission paths that must decide *before* durably recording
        a job whether it can be scheduled (the service's submit pipeline
        checks capacity, then writes the store, then ``push(...,
        force=True)``).  Same bound as :meth:`push`, owned by the queue
        so the two cannot drift.
        """
        with self._cond:
            size = len(self._priority) + len(self._normal)
            if size >= self.maxsize:
                raise QueueFull(size, self._retry_after(size))

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """Dequeue the next run id (priority lane first), or ``None`` on
        timeout.  Blocks up to ``timeout`` seconds (forever if None)."""
        with self._cond:
            if not self._cond.wait_for(
                lambda: self._priority or self._normal, timeout=timeout
            ):
                return None
            lane = self._priority if self._priority else self._normal
            run_id = lane.popleft()
            self._members.discard(run_id)
            return run_id

    def drop(self, run_id: str) -> bool:
        """Remove a waiting id (a queued job that was cancelled)."""
        with self._cond:
            for lane in (self._priority, self._normal):
                try:
                    lane.remove(run_id)
                except ValueError:
                    continue
                self._members.discard(run_id)
                return True
        return False
