"""repro.service -- durable simulation-as-a-service (stdlib only).

The gateway between the sweep engine and long-running, unattended
operation: a small HTTP job service whose state lives in a crash-safe
SQLite store, so the server process is disposable -- ``kill -9`` it,
restart it, and every job it was running resumes from its persisted
per-cell progress (the content-addressed cell cache makes the replayed
portion near-free).

Layers, bottom up:

* :mod:`repro.service.store` -- the :class:`RunStore`: a SQLite-WAL job
  database with an explicit job state machine (queued -> running ->
  done/failed/cancelled, plus running -> queued for crash recovery and
  graceful drain), per-cell progress rows, a schema version with a
  migration hook, and idempotent submission (the run id is a content
  hash of the canonicalized job payload, so a repeat POST returns the
  original run id instead of recomputing);
* :mod:`repro.service.queue` -- the :class:`AdmissionQueue`: a bounded
  two-lane queue with per-client token-bucket rate limiting.  When the
  service is saturated it *sheds load* (HTTP 429 + ``Retry-After``)
  instead of growing an unbounded backlog; recovered/resubmitted jobs
  ride a priority lane because their cells are already cached;
* :mod:`repro.service.server` -- :class:`SimService`: a
  ``ThreadingHTTPServer`` exposing submit/status/result/cancel/healthz/
  metrics, worker threads that execute jobs through
  ``run_experiment``/``run_sweep`` with progress and cancellation
  threaded via :class:`repro.sweep.SweepOptions`, startup recovery of
  jobs found ``running`` in the store, and a SIGTERM drain that
  re-queues in-flight jobs as resumable;
* :mod:`repro.service.client` -- :class:`ServiceClient`: a small
  ``urllib``-based client used by the tests, the CI smoke job, and
  scripts.

The crash-recovery invariant (pinned by ``tests/service``): restart +
resubmit is byte-identical to an uninterrupted run -- results are
canonical JSON over deterministic experiment values, and neither the
kill, the recovery, nor the cache replay can change a byte of them.
"""

from .client import RateLimitedError, ServiceClient, ServiceError
from .queue import AdmissionQueue, QueueFull, RateLimited, TokenBucket
from .server import ServiceConfig, SimService
from .store import JOB_STATES, RunStore, StoreError, canonical_job, job_run_id

__all__ = [
    "AdmissionQueue",
    "JOB_STATES",
    "QueueFull",
    "RateLimited",
    "RateLimitedError",
    "RunStore",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SimService",
    "StoreError",
    "TokenBucket",
    "canonical_job",
    "job_run_id",
]
