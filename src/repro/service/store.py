"""Crash-safe persistent run store (SQLite WAL) for the job service.

One database file holds every job the service has ever accepted plus
per-cell progress rows.  Design points:

* **WAL journaling** -- readers never block the writer, and a ``kill
  -9`` at any instant leaves a database that opens clean (SQLite
  replays or rolls back the write-ahead log on the next connect).  This
  is the property the recovery drill in ``tests/service`` pins.
* **Explicit state machine** -- a job is exactly one of
  :data:`JOB_STATES`; :meth:`RunStore.transition` enforces the edge set
  :data:`_TRANSITIONS` atomically (compare-and-swap on the current
  state inside one statement), so a buggy caller gets a
  :class:`StoreError`, never a silently inconsistent row.  The two
  "backward" edges -- ``running -> queued`` -- are how crash recovery
  and graceful drain mark a job *resumable*.
* **Idempotent submission** -- the run id is a content hash of the
  canonicalized job payload (:func:`job_run_id`), so submitting the
  same job twice returns the same id and the stored outcome instead of
  recomputing; execution knobs (priority, client id) stay out of the
  hash, exactly like the cell cache keeps worker counts out of cell
  keys.
* **Schema version + migration hook** -- the ``meta`` table records
  :data:`SCHEMA_VERSION`; on open, :data:`_MIGRATIONS` steps older
  databases forward one version at a time.  Opening a *newer* database
  raises (downgrades are not supported).

The store is shared by HTTP handler threads and job worker threads; a
single connection guarded by an :class:`threading.RLock` keeps SQLite's
threading rules trivially satisfied (the service is I/O-light -- jobs
take seconds, store writes take microseconds).
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

__all__ = [
    "JOB_STATES",
    "SCHEMA_VERSION",
    "RunStore",
    "StoreError",
    "canonical_job",
    "job_run_id",
]

SCHEMA_VERSION = 1

#: Every state a job row can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Legal state-machine edges.  ``running -> queued`` is the resumable
#: edge used by crash recovery and graceful drain.
_TRANSITIONS = frozenset(
    {
        ("queued", "running"),
        ("queued", "cancelled"),
        ("running", "done"),
        ("running", "failed"),
        ("running", "cancelled"),
        ("running", "queued"),
    }
)


class StoreError(RuntimeError):
    """Illegal transition, unknown run id, or incompatible schema."""


def canonical_job(payload: Dict[str, Any]) -> str:
    """Canonical JSON of one job payload (sorted keys, no whitespace).

    This string *is* the job's identity: everything that changes the
    result (experiment name, seeds, epochs, scale, spec cells) must be
    inside it, and nothing else (priority flags, client ids, submission
    time) may be.  The server normalizes payloads before calling this,
    so two submissions that mean the same job canonicalize identically.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)


def job_run_id(payload: Dict[str, Any]) -> str:
    """Content-addressed run id: ``job-<sha256(canonical_job)[:16]>``."""
    digest = hashlib.sha256(canonical_job(payload).encode()).hexdigest()[:16]
    return f"job-{digest}"


#: ``{from_version: migrate(conn)}`` -- each hook steps the schema one
#: version forward.  Empty at version 1; the scaffolding exists so a
#: version-2 column addition is a three-line change, not a redesign.
_MIGRATIONS: Dict[int, Callable[[sqlite3.Connection], None]] = {}


class RunStore:
    """SQLite-backed durable job + per-cell progress store."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, timeout=30.0
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._init_schema()

    # -- schema -------------------------------------------------------------

    def _init_schema(self) -> None:
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
                version = SCHEMA_VERSION
            else:
                version = int(row["value"])
            if version > SCHEMA_VERSION:
                raise StoreError(
                    f"run store {self.path} has schema v{version}; this build "
                    f"understands up to v{SCHEMA_VERSION} (downgrade unsupported)"
                )
            while version < SCHEMA_VERSION:
                migrate = _MIGRATIONS.get(version)
                if migrate is None:
                    raise StoreError(
                        f"no migration registered from schema v{version}"
                    )
                migrate(self._conn)
                version += 1
                self._conn.execute(
                    "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                    (str(version),),
                )
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS jobs (
                    run_id       TEXT PRIMARY KEY,
                    state        TEXT NOT NULL,
                    payload      TEXT NOT NULL,
                    client       TEXT,
                    priority     INTEGER NOT NULL DEFAULT 0,
                    attempts     INTEGER NOT NULL DEFAULT 0,
                    submitted_at REAL NOT NULL,
                    started_at   REAL,
                    finished_at  REAL,
                    result       TEXT,
                    error        TEXT
                )
                """
            )
            self._conn.execute(
                """
                CREATE TABLE IF NOT EXISTS cells (
                    run_id     TEXT NOT NULL,
                    key        TEXT NOT NULL,
                    status     TEXT NOT NULL,
                    elapsed_s  REAL NOT NULL DEFAULT 0,
                    attempts   INTEGER NOT NULL DEFAULT 0,
                    updated_at REAL NOT NULL,
                    PRIMARY KEY (run_id, key)
                )
                """
            )
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state)"
            )

    @property
    def schema_version(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        return int(row["value"])

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        payload: Dict[str, Any],
        client: Optional[str] = None,
        priority: bool = False,
    ) -> Tuple[str, bool, str]:
        """Record one job; returns ``(run_id, is_new, state)``.

        Idempotent: an existing job in any *forward* state (queued,
        running, done) is returned untouched (``is_new=False``) -- the
        dedupe path of the service.  A job that previously ended
        ``failed`` or ``cancelled`` is re-queued by resubmission (fresh
        attempt over the same cached cells), reported as new work.
        """
        run_id = job_run_id(payload)
        now = time.time()
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT state FROM jobs WHERE run_id = ?", (run_id,)
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO jobs (run_id, state, payload, client, priority,"
                    " submitted_at) VALUES (?, 'queued', ?, ?, ?, ?)",
                    (run_id, canonical_job(payload), client, int(priority), now),
                )
                return run_id, True, "queued"
            state = row["state"]
            if state in ("failed", "cancelled"):
                self._conn.execute(
                    "UPDATE jobs SET state = 'queued', error = NULL,"
                    " finished_at = NULL, priority = ?, submitted_at = ?"
                    " WHERE run_id = ?",
                    (int(priority), now, run_id),
                )
                return run_id, True, "queued"
            return run_id, False, state

    # -- state machine ------------------------------------------------------

    def transition(self, run_id: str, new_state: str, **fields: Any) -> str:
        """Atomically move ``run_id`` to ``new_state``; returns the old state.

        ``fields`` may set ``result``, ``error``, ``priority``.  Raises
        :class:`StoreError` for unknown jobs, unknown states, and edges
        outside :data:`_TRANSITIONS`.
        """
        if new_state not in JOB_STATES:
            raise StoreError(f"unknown job state {new_state!r}")
        unknown = set(fields) - {"result", "error", "priority"}
        if unknown:
            raise StoreError(f"transition cannot set fields {sorted(unknown)}")
        now = time.time()
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT state, attempts FROM jobs WHERE run_id = ?", (run_id,)
            ).fetchone()
            if row is None:
                raise StoreError(f"unknown run id {run_id!r}")
            old = row["state"]
            if (old, new_state) not in _TRANSITIONS:
                raise StoreError(
                    f"illegal transition {old!r} -> {new_state!r} for {run_id}"
                )
            sets = ["state = ?"]
            args: List[Any] = [new_state]
            if new_state == "running":
                sets += ["started_at = ?", "attempts = ?"]
                args += [now, row["attempts"] + 1]
            if new_state in ("done", "failed", "cancelled"):
                sets.append("finished_at = ?")
                args.append(now)
            for name in ("result", "error", "priority"):
                if name in fields:
                    sets.append(f"{name} = ?")
                    value = fields[name]
                    args.append(int(value) if name == "priority" else value)
            args.append(run_id)
            self._conn.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE run_id = ?", args
            )
        return old

    # -- per-cell progress --------------------------------------------------

    def record_cell(
        self,
        run_id: str,
        key: str,
        status: str,
        elapsed_s: float = 0.0,
        attempts: int = 1,
    ) -> None:
        """Upsert one cell progress row (called from sweep progress hooks)."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO cells (run_id, key, status, elapsed_s, attempts,"
                " updated_at) VALUES (?, ?, ?, ?, ?, ?)"
                " ON CONFLICT (run_id, key) DO UPDATE SET status = excluded.status,"
                " elapsed_s = excluded.elapsed_s, attempts = excluded.attempts,"
                " updated_at = excluded.updated_at",
                (run_id, key, status, float(elapsed_s), int(attempts), time.time()),
            )

    def cells(self, run_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, status, elapsed_s, attempts, updated_at FROM cells"
                " WHERE run_id = ? ORDER BY key",
                (run_id,),
            ).fetchall()
        return [dict(row) for row in rows]

    def clear_cells(self, run_id: str) -> None:
        """Drop progress rows before a fresh attempt repopulates them."""
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM cells WHERE run_id = ?", (run_id,))

    # -- reading ------------------------------------------------------------

    def job(self, run_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            return None
        job = dict(row)
        job["payload"] = json.loads(job["payload"])
        job["priority"] = bool(job["priority"])
        return job

    def jobs(self, state: Optional[str] = None) -> List[Dict[str, Any]]:
        """Job summaries (no payload/result bodies), oldest first."""
        query = (
            "SELECT run_id, state, client, priority, attempts, submitted_at,"
            " started_at, finished_at, error FROM jobs"
        )
        args: Tuple[Any, ...] = ()
        if state is not None:
            query += " WHERE state = ?"
            args = (state,)
        query += " ORDER BY submitted_at"
        with self._lock:
            rows = self._conn.execute(query, args).fetchall()
        out = []
        for row in rows:
            job = dict(row)
            job["priority"] = bool(job["priority"])
            out.append(job)
        return out

    def result(self, run_id: str) -> Optional[str]:
        """The stored result JSON string (``None`` unless the job is done)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT result FROM jobs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            raise StoreError(f"unknown run id {run_id!r}")
        return row["result"]

    def counts(self) -> Dict[str, int]:
        """``{state: job count}`` over every state (zeros included)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    # -- recovery -----------------------------------------------------------

    def reclaim_running(self) -> List[str]:
        """Move every ``running`` job back to ``queued`` (crash recovery).

        Called once at server startup: a job still marked ``running``
        means the previous process died mid-execution.  Its finished
        cells are in the cell cache, so the re-run is near-free -- the
        reclaimed jobs are flagged ``priority`` so the admission queue
        schedules them ahead of fresh work.
        """
        reclaimed = []
        with self._lock:
            for job in self.jobs(state="running"):
                self.transition(job["run_id"], "queued", priority=True)
                reclaimed.append(job["run_id"])
        return reclaimed

    def close(self) -> None:
        with self._lock:
            self._conn.close()
