"""Minimal ``urllib``-based client for the simulation service.

Used by the tests, the CI smoke drill, and scripts; deliberately thin --
every method maps 1:1 onto one endpoint of
:mod:`repro.service.server`.  Errors surface as :class:`ServiceError`
(HTTP status + decoded body); a 429 raises the
:class:`RateLimitedError` subclass carrying the parsed ``Retry-After``
so callers can implement honest backoff.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

__all__ = ["RateLimitedError", "ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, body: Any):
        detail = body.get("error") if isinstance(body, dict) else body
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.body = body


class RateLimitedError(ServiceError):
    """HTTP 429 -- retry after ``retry_after_s`` seconds."""

    def __init__(self, status: int, body: Any, retry_after_s: float):
        super().__init__(status, body)
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Talk to one service endpoint, e.g. ``http://127.0.0.1:8765``."""

    def __init__(self, base_url: str, client_id: Optional[str] = None, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> tuple:
        """Returns ``(status, raw_bytes, headers)``; raises on non-2xx."""
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        request.add_header("Content-Type", "application/json")
        if self.client_id:
            request.add_header("X-Client", self.client_id)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, response.read(), dict(response.headers)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                parsed = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                parsed = raw.decode("utf-8", "replace")
            if exc.code == 429:
                retry_after = _retry_after_s(parsed, exc.headers)
                raise RateLimitedError(exc.code, parsed, retry_after) from None
            raise ServiceError(exc.code, parsed) from None

    def _json(self, method: str, path: str, body: Optional[Dict[str, Any]] = None):
        status, raw, _ = self._request(method, path, body)
        return json.loads(raw.decode("utf-8"))

    # -- endpoints ----------------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """POST /jobs -- returns ``{"run_id", "state", "deduped"}``."""
        return self._json("POST", "/jobs", payload)

    def jobs(self) -> Dict[str, Any]:
        return self._json("GET", "/jobs")

    def job(self, run_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{run_id}")

    def result_text(self, run_id: str) -> str:
        """GET /jobs/<id>/result as raw text (the byte-compare surface)."""
        _, raw, _ = self._request("GET", f"/jobs/{run_id}/result")
        return raw.decode("utf-8")

    def result(self, run_id: str) -> Any:
        return json.loads(self.result_text(run_id))

    def cancel(self, run_id: str) -> Dict[str, Any]:
        return self._json("POST", f"/jobs/{run_id}/cancel")

    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._json("GET", "/metrics")

    def wait(
        self, run_id: str, timeout: float = 60.0, poll_s: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until ``run_id`` reaches a terminal state; returns the job.

        Raises ``TimeoutError`` if the job is still queued/running when
        the deadline passes.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(run_id)
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {run_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll_s)


def _retry_after_s(body: Any, headers) -> float:
    if isinstance(body, dict) and isinstance(body.get("retry_after_s"), (int, float)):
        return float(body["retry_after_s"])
    try:
        return float(headers.get("Retry-After", "1"))
    except (TypeError, ValueError):  # pragma: no cover - malformed header
        return 1.0
