"""The durable simulation service: HTTP front end + recovery-first workers.

``repro serve`` (see :mod:`repro.cli`) builds a :class:`SimService`
from a :class:`ServiceConfig` and runs it until SIGTERM/SIGINT.  All
state that matters lives *outside* the process: jobs in the SQLite
:class:`~repro.service.store.RunStore`, finished cells in the shared
content-addressed cell cache.  The process itself is disposable --
that is the design, not an accident:

* **startup recovery** -- any job found ``running`` in the store was
  orphaned by a dead predecessor; it is reclaimed to ``queued`` and
  re-enqueued on the priority lane.  Because every settled cell was
  cached before the crash, the re-run replays cached cells and only
  computes the remainder (``service.jobs_recovered``);
* **idempotent submission** -- the run id is a content hash of the
  canonicalized payload, so a client that resubmits after a timeout
  gets the original job (``deduped: true``) instead of a duplicate;
* **admission control** -- per-client token buckets and a bounded queue
  turn overload into HTTP 429 + ``Retry-After`` instead of an unbounded
  backlog (``service.jobs_rejected``);
* **graceful drain** -- SIGTERM stops admissions (503), sets every
  running job's cancellation token so its sweep stops submitting new
  cells and drains in-flight ones into the cache, then marks those jobs
  ``queued`` again (resumable) before the process exits.

Endpoints (all JSON unless noted)::

    POST /jobs              submit a job; 202 accepted / 200 deduped /
                            429 shed (Retry-After) / 503 draining
    GET  /jobs              job summaries
    GET  /jobs/<id>         job detail + per-cell progress
    GET  /jobs/<id>/result  the result JSON exactly as stored (byte-
                            identical to ``repro sweep <exp> --json``)
    POST /jobs/<id>/cancel  cancel a queued or running job
    GET  /healthz           liveness + state counts
    GET  /metrics           service counters (+ obs registry when on)

Job payloads name either a paper experiment (``{"experiment":
"table1", "seeds": [0], "epochs": 2, "scale": 4}``) or a raw sweep
spec (``{"spec": {"name": ..., "cells": [{"key", "fn", "kwargs",
"seed"}, ...]}}``).  Spec cells resolve their callables by import path;
only prefixes in ``ServiceConfig.allow_fn_prefixes`` (default
``repro.``) are accepted, so a network peer cannot point a job at
arbitrary code.  Cell keys become cache *filenames*, so they must be
relative paths of plain components (no ``..``, no leading ``/``) -- a
peer cannot use a key to write outside the service data directory.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..obs import state as obs_state
from ..sweep import SweepCancelled, SweepCell, SweepOptions, SweepSpec
from .queue import AdmissionQueue, QueueFull, RateLimited
from .store import RunStore, StoreError

__all__ = ["ServiceConfig", "SimService", "normalize_payload"]

logger = logging.getLogger("repro.service")

#: Counters the service tracks in memory (reset on restart; durable
#: facts -- how many jobs exist in each state -- come from the store).
_COUNTERS = (
    "jobs_submitted",
    "jobs_deduped",
    "jobs_rejected",
    "jobs_recovered",
    "jobs_completed",
    "jobs_failed",
    "jobs_cancelled",
    "jobs_requeued",
)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` can tune, in one frozen value."""

    data_dir: str
    host: str = "127.0.0.1"
    port: int = 8765  #: 0 picks a free port (written to ``<data_dir>/endpoint``)
    job_workers: int = 1  #: concurrent jobs (threads popping the queue)
    sweep_workers: Optional[int] = None  #: per-job cell parallelism
    queue_size: int = 64
    rate: Optional[float] = 10.0  #: per-client submissions/s (None = off)
    burst: Optional[float] = 20.0
    executor: Optional[str] = None
    timeout: Optional[float] = None  #: per-cell deadline (supervised executor)
    retries: int = 0
    drain_timeout_s: float = 30.0
    allow_fn_prefixes: Tuple[str, ...] = ("repro.",)

    def __post_init__(self) -> None:
        if self.job_workers < 1:
            raise ValueError(f"job_workers must be >= 1, got {self.job_workers}")
        if self.queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {self.queue_size}")
        if self.drain_timeout_s <= 0:
            raise ValueError(
                f"drain_timeout_s must be > 0, got {self.drain_timeout_s}"
            )


def _experiment_names() -> Tuple[str, ...]:
    from ..cli import _EXPERIMENTS  # light module; kept in sync with analysis

    return _EXPERIMENTS


def normalize_payload(
    raw: Dict[str, Any], allow_fn_prefixes: Tuple[str, ...] = ("repro.",)
) -> Dict[str, Any]:
    """Validate a submitted job body and return its canonical payload.

    The canonical payload is what :func:`~repro.service.store.job_run_id`
    hashes, so normalization is what makes submission idempotent:
    defaults are filled in explicitly (``{"experiment": "fig17"}`` and
    ``{"experiment": "fig17", "seeds": [0]}`` hash identically) and
    non-identity knobs (``cached_only``, client hints) are stripped.
    Raises ``ValueError`` with a client-presentable message.
    """
    if not isinstance(raw, dict):
        raise ValueError("job payload must be a JSON object")
    if ("experiment" in raw) == ("spec" in raw):
        raise ValueError("job payload needs exactly one of 'experiment' or 'spec'")

    if "experiment" in raw:
        name = raw["experiment"]
        if name not in _experiment_names():
            raise ValueError(f"unknown experiment {name!r}")
        seeds = raw.get("seeds", [0])
        if not isinstance(seeds, list) or not seeds or not all(
            isinstance(s, int) and not isinstance(s, bool) for s in seeds
        ):
            raise ValueError("'seeds' must be a non-empty list of integers")
        epochs = raw.get("epochs", 8)
        scale = raw.get("scale", 4)
        for label, value in (("epochs", epochs), ("scale", scale)):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(f"'{label}' must be an integer >= 1")
        return {
            "kind": "experiment",
            "name": name,
            "seeds": list(seeds),
            "epochs": epochs,
            "scale": scale,
        }

    spec = raw["spec"]
    if not isinstance(spec, dict) or not isinstance(spec.get("name"), str):
        raise ValueError("'spec' must be an object with a string 'name'")
    cells = spec.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError("'spec.cells' must be a non-empty list")
    seen = set()
    canonical_cells = []
    for i, cell in enumerate(cells):
        if not isinstance(cell, dict):
            raise ValueError(f"spec cell #{i} must be an object")
        key, fn = cell.get("key"), cell.get("fn")
        if not isinstance(key, str) or not key:
            raise ValueError(f"spec cell #{i} needs a string 'key'")
        # Keys become cache *filenames* ("/" nests subdirectories), so a
        # traversal key like "../../etc/x" would make the service write
        # pickles outside its data dir.  Permit only relative paths of
        # plain components.
        if (
            "\\" in key
            or "\x00" in key
            or any(part in ("", ".", "..") for part in key.split("/"))
        ):
            raise ValueError(
                f"spec cell key {key!r} must be a relative path of "
                "non-empty components without '.' or '..'"
            )
        if key in seen:
            raise ValueError(f"duplicate spec cell key {key!r}")
        seen.add(key)
        if not isinstance(fn, str) or not any(
            fn.startswith(prefix) for prefix in allow_fn_prefixes
        ):
            raise ValueError(
                f"spec cell {key!r}: fn must be a 'module:qualname' string "
                f"under one of the allowed prefixes {list(allow_fn_prefixes)}"
            )
        kwargs = cell.get("kwargs", {})
        if not isinstance(kwargs, dict):
            raise ValueError(f"spec cell {key!r}: 'kwargs' must be an object")
        seed = cell.get("seed")
        if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
            raise ValueError(f"spec cell {key!r}: 'seed' must be an integer or null")
        canonical_cells.append(
            {"key": key, "fn": fn, "kwargs": kwargs, "seed": seed}
        )
    return {"kind": "spec", "name": spec["name"], "cells": canonical_cells}


def result_json(value: Any) -> str:
    """Canonical result serialization.

    Byte-for-byte the string ``repro sweep <experiment> --json`` prints
    (minus the trailing newline) -- the crash-recovery invariant is
    asserted by ``cmp``-ing this against a clean serial run's output.
    """
    return json.dumps(value, sort_keys=True, default=repr)


class _CancelToken:
    """Per-job cancellation handle shared with the sweep engine."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def set(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()


class SimService:
    """The job service: store + queue + worker threads + HTTP server."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.data_dir = Path(config.data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.cells_dir = self.data_dir / "cells"
        self.store = RunStore(self.data_dir / "runs.sqlite3")
        self.queue = AdmissionQueue(
            maxsize=config.queue_size, rate=config.rate, burst=config.burst
        )
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self._counter_lock = threading.Lock()
        self._admit_lock = threading.Lock()
        self._cancels: Dict[str, _CancelToken] = {}
        self._cancel_lock = threading.Lock()
        self._draining = False
        self._stop = threading.Event()
        self._workers: List[threading.Thread] = []
        self._httpd: Optional[ThreadingHTTPServer] = None
        self.started_at = time.time()

    # -- counters -----------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        with self._counter_lock:
            self.counters[name] += value
        if obs_state.enabled():
            obs_metrics.counter_add(f"service.{name}", value)

    # -- lifecycle ----------------------------------------------------------

    def recover(self) -> List[str]:
        """Reclaim orphaned ``running`` jobs and re-enqueue all queued work.

        Runs once before the server accepts traffic.  Reclaimed jobs
        (and previously queued ones flagged priority) ride the priority
        lane: their settled cells are already in the cell cache, so they
        finish near-free and ahead of fresh submissions.
        """
        reclaimed = self.store.reclaim_running()
        for run_id in reclaimed:
            logger.warning("recovery: reclaimed running job %s -> queued", run_id)
        for job in self.store.jobs(state="queued"):
            self.queue.push(job["run_id"], priority=job["priority"], force=True)
        if reclaimed:
            self._count("jobs_recovered", len(reclaimed))
        return reclaimed

    def start(self) -> Tuple[str, int]:
        """Recover, spawn workers, bind the HTTP server; returns (host, port)."""
        self.recover()
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        for i in range(self.config.job_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{i}", daemon=True
            )
            thread.start()
            self._workers.append(thread)
        host, port = self._httpd.server_address[:2]
        endpoint = f"http://{host}:{port}"
        (self.data_dir / "endpoint").write_text(endpoint + "\n")
        logger.info("simulation service listening on %s", endpoint)
        return str(host), int(port)

    def serve_forever(self) -> None:
        assert self._httpd is not None, "call start() first"
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._httpd.server_close()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (main thread only)."""

        def _handler(signum, frame):  # pragma: no cover - signal path
            logger.warning("signal %s: draining service", signum)
            threading.Thread(target=self.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    def shutdown(self) -> None:
        """Drain: refuse new work, stop sweeps resumably, stop the server.

        Running jobs get their cancellation token set; the sweep engine
        stops submitting cells, drains in-flight ones into the cell
        cache, and raises -- the worker thread then marks the job
        ``queued`` (resumable) because we are draining, not cancelling.
        """
        self._draining = True
        with self._cancel_lock:
            for token in self._cancels.values():
                token.set()
        self._stop.set()
        deadline = time.monotonic() + self.config.drain_timeout_s
        for thread in self._workers:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
        if self._httpd is not None:
            self._httpd.shutdown()

    @property
    def draining(self) -> bool:
        return self._draining

    # -- submission (HTTP POST /jobs) ---------------------------------------

    @staticmethod
    def _shed(exc: Exception) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """429 response for a structured rejection carrying ``retry_after_s``."""
        retry_after_s = getattr(exc, "retry_after_s", 1.0)
        return (
            429,
            {"error": str(exc), "retry_after_s": retry_after_s},
            {"Retry-After": str(max(1, int(retry_after_s + 0.999)))},
        )

    def submit(
        self, raw: Dict[str, Any], client: str, rate_key: Optional[str] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Admission pipeline; returns ``(http_status, body, headers)``.

        ``client`` is an advisory label recorded on the job row (the
        ``X-Client`` header when present); ``rate_key`` is the identity
        rate limiting charges -- the HTTP layer passes the peer's remote
        address, which a client cannot rotate the way it can a header.
        """
        if self._draining:
            return 503, {"error": "service is draining"}, {"Retry-After": "5"}
        try:
            self.queue.check_rate(rate_key if rate_key is not None else client)
        except RateLimited as exc:
            self._count("jobs_rejected")
            return self._shed(exc)
        cached_only = bool(raw.get("cached_only", False)) if isinstance(raw, dict) else False
        try:
            payload = normalize_payload(
                {k: v for k, v in raw.items() if k != "cached_only"}
                if isinstance(raw, dict) else raw,
                self.config.allow_fn_prefixes,
            )
        except ValueError as exc:
            return 400, {"error": str(exc)}, {}

        with self._admit_lock:
            # Peek whether this payload dedupes before charging queue
            # capacity: repeat submissions of queued/running/done jobs
            # must stay near-free even when the queue is full.
            from .store import job_run_id

            existing = self.store.job(job_run_id(payload))
            is_fresh = existing is None or existing["state"] in ("failed", "cancelled")
            if is_fresh:
                try:
                    self.queue.check_capacity()
                except QueueFull as exc:
                    self._count("jobs_rejected")
                    return self._shed(exc)
            run_id, is_new, state = self.store.submit(
                payload, client=client, priority=cached_only
            )
            if is_new:
                if existing is not None:
                    self.store.clear_cells(run_id)
                    self._count("jobs_requeued")
                self.queue.push(run_id, priority=cached_only, force=True)
                self._count("jobs_submitted")
                return (
                    202,
                    {"run_id": run_id, "state": "queued", "deduped": False},
                    {},
                )
        self._count("jobs_deduped")
        return 200, {"run_id": run_id, "state": state, "deduped": True}, {}

    # -- cancellation -------------------------------------------------------

    def cancel(self, run_id: str) -> Tuple[int, Dict[str, Any]]:
        job = self.store.job(run_id)
        if job is None:
            return 404, {"error": f"unknown run id {run_id!r}"}
        state = job["state"]
        if state == "queued":
            self.queue.drop(run_id)
            try:
                self.store.transition(run_id, "cancelled")
            except StoreError:
                # Lost the CAS: a worker claimed the job (or it settled)
                # between our read and the transition.  Re-read instead
                # of assuming where it went.
                job = self.store.job(run_id)
                if job is not None:
                    state = job["state"]
            else:
                self._count("jobs_cancelled")
                return 200, {"run_id": run_id, "state": "cancelled"}
        if state == "running":
            # Workers register the token *before* their queued->running
            # CAS, so every running job has one; a missing token means
            # the job settled since our read -- re-read and report the
            # terminal state rather than a phantom "cancelling".
            with self._cancel_lock:
                token = self._cancels.get(run_id)
            if token is not None:
                token.set()
                return 202, {"run_id": run_id, "state": "cancelling"}
            job = self.store.job(run_id)
            if job is not None:
                state = job["state"]
        return 409, {"error": f"job {run_id} already {state}"}

    # -- execution ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            run_id = self.queue.pop(timeout=0.2)
            if run_id is None:
                continue
            if self._draining:
                continue  # leave it queued in the store; recovery re-runs it
            job = self.store.job(run_id)
            if job is None or job["state"] != "queued":
                continue
            # Register the cancel token *before* the queued->running
            # CAS: a cancel() that loses its own queued->cancelled CAS
            # to us must find a token to set, or the job would run to
            # completion while the client was told "cancelling".
            token = _CancelToken()
            with self._cancel_lock:
                self._cancels[run_id] = token
            try:
                self.store.transition(run_id, "running")
            except StoreError:
                with self._cancel_lock:
                    self._cancels.pop(run_id, None)
                continue  # raced with a cancel; nothing to do
            try:
                value = self._execute(run_id, job["payload"], token)
            except SweepCancelled as exc:
                if self._draining:
                    self.store.transition(run_id, "queued", priority=True)
                    logger.warning("drain: job %s re-queued (%s)", run_id, exc)
                else:
                    self.store.transition(run_id, "cancelled", error=str(exc))
                    self._count("jobs_cancelled")
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                detail = f"{type(exc).__name__}: {exc}"
                for cell in getattr(exc, "failures", ()):  # SweepCellsFailed
                    first = (cell.error or "").splitlines() or [""]
                    detail += f"\n  {cell.key}: {cell.status}: {first[0]}"
                self.store.transition(run_id, "failed", error=detail)
                self._count("jobs_failed")
                logger.error("job %s failed: %s", run_id, detail)
            else:
                self.store.transition(run_id, "done", result=result_json(value))
                self._count("jobs_completed")
                logger.info("job %s done", run_id)
            finally:
                with self._cancel_lock:
                    self._cancels.pop(run_id, None)

    def _execute(self, run_id: str, payload: Dict[str, Any], token: _CancelToken):
        def progress(cell, done, total) -> None:
            self.store.record_cell(
                run_id, cell.key, cell.status, cell.elapsed_s, cell.attempts
            )

        options = SweepOptions(
            executor=self.config.executor,
            timeout=self.config.timeout,
            retries=self.config.retries,
            progress=progress,
            cancel=token,
        )
        if payload["kind"] == "experiment":
            from ..analysis.experiments import run_experiment

            return run_experiment(
                payload["name"],
                seeds=tuple(payload["seeds"]),
                epochs=payload["epochs"],
                scale=payload["scale"],
                workers=self.config.sweep_workers,
                cache_dir=str(self.cells_dir),
                resume=True,
                options=options,
            )
        from ..sweep import configured_workers, run_sweep

        spec = SweepSpec(
            payload["name"],
            tuple(
                SweepCell(
                    key=cell["key"], fn=cell["fn"],
                    kwargs=cell["kwargs"], seed=cell["seed"],
                )
                for cell in payload["cells"]
            ),
        )
        sweep = run_sweep(
            spec,
            workers=configured_workers(self.config.sweep_workers),
            cache_dir=str(self.cells_dir),
            resume=True,
            strict=True,
            options=options,
        )
        return sweep.values()

    # -- read models --------------------------------------------------------

    def job_detail(self, run_id: str) -> Optional[Dict[str, Any]]:
        job = self.store.job(run_id)
        if job is None:
            return None
        cells = self.store.cells(run_id)
        done = sum(1 for c in cells if c["status"] in ("ok", "cached"))
        job.pop("result", None)  # served by /result, may be large
        job["cells"] = cells
        job["progress"] = {"settled": len(cells), "ok": done}
        return job

    def health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "jobs": self.store.counts(),
            "queue": self.queue.depth(),
        }

    def metrics(self) -> Dict[str, Any]:
        with self._counter_lock:
            counters = dict(self.counters)
        payload: Dict[str, Any] = {
            "service": counters,
            "jobs": self.store.counts(),
            "queue": self.queue.depth(),
        }
        if obs_state.enabled():
            payload["metrics"] = obs_metrics.metrics_dict(deterministic_only=True)
        return payload


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the :class:`SimService` methods."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"

    @property
    def service(self) -> SimService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        logger.debug("%s %s", self.address_string(), format % args)

    def _client_label(self) -> str:
        """Advisory client label recorded on the job row.

        Never used for rate limiting -- the ``X-Client`` header is
        client-controlled, so buckets key on the remote address instead
        (rotating header values must not mint fresh buckets).
        """
        return self.headers.get("X-Client") or self.client_address[0]

    def _send_json(
        self, status: int, body: Dict[str, Any], headers: Optional[Dict[str, str]] = None
    ) -> None:
        data = (json.dumps(body, sort_keys=True) + "\n").encode()
        self._send_raw(status, data, headers)

    def _send_raw(
        self, status: int, data: bytes, headers: Optional[Dict[str, str]] = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return None
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["healthz"]:
            self._send_json(200, self.service.health())
        elif parts == ["metrics"]:
            self._send_json(200, self.service.metrics())
        elif parts == ["jobs"]:
            self._send_json(200, {"jobs": self.service.store.jobs()})
        elif len(parts) == 2 and parts[0] == "jobs":
            detail = self.service.job_detail(parts[1])
            if detail is None:
                self._send_json(404, {"error": f"unknown run id {parts[1]!r}"})
            else:
                self._send_json(200, detail)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            self._get_result(parts[1])
        else:
            self._send_json(404, {"error": f"no route for GET {self.path}"})

    def _get_result(self, run_id: str) -> None:
        job = self.service.store.job(run_id)
        if job is None:
            self._send_json(404, {"error": f"unknown run id {run_id!r}"})
            return
        if job["state"] != "done":
            self._send_json(
                409,
                {"error": f"job {run_id} is {job['state']}, not done",
                 "state": job["state"]},
            )
            return
        result = self.service.store.result(run_id) or "null"
        # Raw stored bytes + newline: byte-identical to `repro sweep
        # <experiment> --json` stdout, the recovery invariant's anchor.
        self._send_raw(200, (result + "\n").encode())

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["jobs"]:
            body = self._read_body()
            if not isinstance(body, dict):
                self._send_json(400, {"error": "request body must be a JSON object"})
                return
            status, payload, headers = self.service.submit(
                body, client=self._client_label(), rate_key=self.client_address[0]
            )
            self._send_json(status, payload, headers)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            status, payload = self.service.cancel(parts[1])
            self._send_json(status, payload)
        else:
            self._send_json(404, {"error": f"no route for POST {self.path}"})
