"""Area model (the Design Compiler / CACTI stand-in) -- Table III.

Component unit areas are calibrated at 7 nm so the paper's TB-STC
instance (8 DVPE arrays of 2x8 DVPEs with 8 FP16 multipliers each, one
codec unit, one MBD unit) synthesizes to the Table III budget:

=============  ==========  ==========
Component      Area (mm^2)  Share
=============  ==========  ==========
DVPE Array     1.43        97.28%
Codec Unit     0.03        2.04%
MBD Unit       0.01        0.68%
Total          1.47        100.00%
=============  ==========  ==========

The module also reproduces the A100 integration estimate: the reduction
network additions are ~0.08 mm^2 per tile; one TB-STC tile is 1/108 of
the A100's tensor-core complement, so the full-GPU overhead is
0.12 x 108 = 12.96 mm^2, 1.57% of the 826 mm^2 die.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import ArchConfig

__all__ = ["AreaParams", "area_breakdown", "a100_overhead_percent"]

#: A100 die area in mm^2 (NVIDIA whitepaper).
A100_DIE_MM2 = 826.0
#: TB-STC tile count equivalent to the A100 tensor-core complement.
A100_TILE_RATIO = 108


@dataclass(frozen=True)
class AreaParams:
    """Unit areas in mm^2 at 7 nm.

    Calibration: 128 DVPEs must total 1.43 mm^2.  Each DVPE carries
    8 FP16 multipliers + local accumulators/registers (the bulk), its
    share of the reduction network, and the alternate unit.  The paper
    states the added reduction network (incl. alternate units) totals
    0.08 mm^2 across the tile -- 0.000625 mm^2 per DVPE.
    """

    fp16_mac_mm2: float = 0.00116  # 8 per DVPE: multiplier + accumulate + regs
    reduction_network_per_dvpe_mm2: float = 0.000625  # incl. alternate unit
    dvpe_control_mm2: float = 0.001265  # sequencing, operand latches
    codec_unit_mm2: float = 0.03
    mbd_unit_mm2: float = 0.01


def area_breakdown(config: ArchConfig, params: AreaParams = AreaParams()) -> Dict[str, float]:
    """Component areas (mm^2) of one configuration -- Table III rows."""
    per_dvpe = (
        config.lanes_per_pe * params.fp16_mac_mm2
        + (params.reduction_network_per_dvpe_mm2 if config.alternate_unit or config.intra_block_mapping else 0.0)
        + params.dvpe_control_mm2
    )
    dvpe_total = config.num_pes * per_dvpe
    codec = params.codec_unit_mm2 if config.has_codec else 0.0
    mbd = params.mbd_unit_mm2 if config.has_mbd else 0.0
    total = dvpe_total + codec + mbd
    return {
        "DVPE Array": dvpe_total,
        "Codec Unit": codec,
        "MBD Unit": mbd,
        "Total": total,
    }


def a100_overhead_percent(config: ArchConfig, params: AreaParams = AreaParams()) -> float:
    """Added area when integrating at A100 scale, as a % of the die.

    Counts only the units added on top of a dense tensor core: the
    reduction network (with alternate units), the codec and the MBD.
    """
    added_per_tile = (
        config.num_pes * params.reduction_network_per_dvpe_mm2
        + (params.codec_unit_mm2 if config.has_codec else 0.0)
        + (params.mbd_unit_mm2 if config.has_mbd else 0.0)
    )
    return 100.0 * added_per_tile * A100_TILE_RATIO / A100_DIE_MM2
