"""Banked, open-row DRAM trace simulation (the detailed Ramulator mode).

:class:`~repro.hw.dram.DRAMModel` charges bandwidth and per-burst
overheads analytically; this module replays an actual *address trace*
(the format layers' consumption-order segments) against a banked DRAM
with an open-row policy:

* the address space interleaves across ``num_banks`` banks at row
  granularity;
* an access that hits the bank's open row pays only CAS + data burst;
* a miss pays precharge + activate + CAS, and bank-level parallelism
  lets misses on different banks overlap up to the command bus rate.

The cycle-level engine keeps the analytical model (it is faithful
enough for format *ratios* and much faster); the trace model exists to
validate those ratios -- DDC's long sequential runs must show far higher
row-hit rates than CSR's scattered fragments -- and for detailed
studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..formats.base import Segment

__all__ = ["DRAMTraceResult", "BankedDRAM"]


@dataclass(frozen=True)
class DRAMTraceResult:
    """Outcome of replaying one access trace."""

    cycles: int
    accesses: int
    row_hits: int
    row_misses: int
    energy_pj: float

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 1.0


class BankedDRAM:
    """Open-row, bank-interleaved DRAM replaying byte-address traces.

    Timing parameters are in memory-controller cycles; the defaults
    approximate LPDDR-class parts normalised to the accelerator's
    1 GHz domain.
    """

    def __init__(
        self,
        num_banks: int = 8,
        row_bytes: int = 1024,
        burst_bytes: int = 32,
        t_cas: int = 14,
        t_ras: int = 28,  # activate-to-precharge
        t_rp: int = 14,  # precharge
        burst_cycles: int = 4,
        activate_pj: float = 80.0,
        byte_pj: float = 4.0,
    ):
        if num_banks < 1 or row_bytes < burst_bytes or burst_bytes < 1:
            raise ValueError("invalid DRAM geometry")
        self.num_banks = num_banks
        self.row_bytes = row_bytes
        self.burst_bytes = burst_bytes
        self.t_cas = t_cas
        self.t_ras = t_ras
        self.t_rp = t_rp
        self.burst_cycles = burst_cycles
        self.activate_pj = activate_pj
        self.byte_pj = byte_pj

    def _locate(self, addr: int):
        """(bank, row) of a byte address under row-interleaved mapping."""
        row_global = addr // self.row_bytes
        return row_global % self.num_banks, row_global // self.num_banks

    def replay(self, segments: Iterable[Segment]) -> DRAMTraceResult:
        """Replay a consumption-order trace, burst by burst.

        Each segment expands into its covering bursts; every burst is
        one access.  The data bus serialises bursts; row misses add
        latency on their bank, overlapping with other banks' transfers
        (modelled by charging only the *exposed* portion, i.e. the miss
        penalty beyond the data-bus time since that bank's last use).
        """
        open_row: Dict[int, Optional[int]] = {b: None for b in range(self.num_banks)}
        bank_ready: Dict[int, int] = {b: 0 for b in range(self.num_banks)}
        bus_time = 0
        hits = 0
        misses = 0
        accesses = 0
        energy = 0.0

        for seg in segments:
            if seg.nbytes <= 0:
                continue
            first = (seg.addr // self.burst_bytes) * self.burst_bytes
            last = seg.addr + seg.nbytes
            addr = first
            while addr < last:
                bank, row = self._locate(addr)
                accesses += 1
                if open_row[bank] == row:
                    hits += 1
                    ready = max(bank_ready[bank], bus_time) + self.t_cas
                else:
                    misses += 1
                    penalty = self.t_rp + self.t_ras if open_row[bank] is not None else self.t_ras
                    ready = max(bank_ready[bank], bus_time) + penalty + self.t_cas
                    open_row[bank] = row
                    energy += self.activate_pj
                # The data burst occupies the shared bus after the bank
                # is ready; consecutive hits pipeline at the burst rate.
                bus_time = max(bus_time + self.burst_cycles, ready - self.t_cas + self.burst_cycles)
                bank_ready[bank] = bus_time
                energy += self.burst_bytes * self.byte_pj
                addr += self.burst_bytes

        return DRAMTraceResult(
            cycles=bus_time,
            accesses=accesses,
            row_hits=hits,
            row_misses=misses,
            energy_pj=energy,
        )

    def replay_encoded(self, encoded) -> DRAMTraceResult:
        """Replay an :class:`~repro.formats.base.EncodedMatrix` trace."""
        return self.replay(encoded.segments)
