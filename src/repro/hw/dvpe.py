"""Diverse Vector PE with configurable reduction nodes and alternate unit.

A DVPE (Fig. 10(a)) is an ``lanes``-wide FP16 multiplier array feeding a
tree of reduction nodes.  Each node either *accumulates* its two inputs
or *transmits* them unchanged, which is what lets one issue group carry
several concatenated segments (intra-block mapping) and still produce
separate partial sums.

The alternate unit buffers result beats when an issue group closes more
segments than the output port can drain in one cycle, trading a small
buffer for not stalling the multiplier array (Sec. VI-A1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs.state import enabled as _obs_enabled
from ..perf import timed
from .mapping import BlockWork, MappedSchedule, map_balanced, map_naive

__all__ = ["DVPEResult", "DVPE"]


@dataclass(frozen=True)
class DVPEResult:
    """Execution summary of one block on one DVPE."""

    compute_cycles: int
    stall_cycles: int
    macs: int
    results: int
    max_buffer_occupancy: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    def utilization(self, lanes: int) -> float:
        if self.total_cycles == 0:
            return 1.0
        return self.macs / (self.total_cycles * lanes)


class DVPE:
    """Cycle model of one Diverse Vector PE."""

    def __init__(
        self,
        lanes: int = 8,
        output_port_width: int = 2,
        alternate_unit: bool = True,
        alternate_buffer_depth: int = 8,
        intra_block_mapping: bool = True,
    ):
        if lanes < 1 or output_port_width < 1 or alternate_buffer_depth < 0:
            raise ValueError("invalid DVPE parameters")
        self.lanes = lanes
        self.output_port_width = output_port_width
        self.alternate_unit = alternate_unit
        self.alternate_buffer_depth = alternate_buffer_depth
        self.intra_block_mapping = intra_block_mapping

    def schedule(self, work: BlockWork) -> MappedSchedule:
        mapper = map_balanced if self.intra_block_mapping else map_naive
        return mapper(work, self.lanes)

    def execute(self, work: BlockWork) -> DVPEResult:
        """Run one block through the multiplier array and output stage.

        Output pressure: each cycle may complete several segments but the
        port drains only ``output_port_width`` results.  With the
        alternate unit the excess parks in the buffer (stalling only on
        overflow); without it the multiplier array stalls immediately.
        """
        sched = self.schedule(work)
        buffer_occ = 0
        max_occ = 0
        stalls = 0
        for produced in sched.outputs_per_cycle:
            buffer_occ += produced
            drained = min(self.output_port_width, buffer_occ)
            buffer_occ -= drained
            capacity = self.alternate_buffer_depth if self.alternate_unit else 0
            while buffer_occ > capacity:
                stalls += 1
                drain = min(self.output_port_width, buffer_occ)
                buffer_occ -= drain
            max_occ = max(max_occ, buffer_occ)
        # Drain whatever is still buffered after the last issue group.
        while buffer_occ > 0:
            stalls += 1
            buffer_occ -= min(self.output_port_width, buffer_occ)
        # The final drain overlaps the next block's first cycles when the
        # alternate unit exists; count it as stall only without it.
        if self.alternate_unit:
            stalls = max(0, stalls - (max_occ // self.output_port_width))
        return DVPEResult(
            compute_cycles=sched.num_cycles,
            stall_cycles=stalls,
            macs=sched.macs,
            results=sum(sched.outputs_per_cycle),
            max_buffer_occupancy=max_occ,
        )

    def block_cost(self, work: BlockWork) -> int:
        """Cycles to execute one block (the scheduler's cost metric)."""
        return self.execute(work).total_cycles

    @timed("hw.dvpe.block_costs_batch")
    def block_costs_batch(self, row_counts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`block_cost` over ``(n_blocks, m)`` segments.

        Reproduces :meth:`execute`'s output-buffer recurrence for *all*
        blocks at once: per issue-group timestep, completions arrive
        (``map_balanced`` closes a segment in the cycle its last element
        is packed into), the port drains ``output_port_width`` results,
        and overflow past the alternate buffer stalls in
        ``ceil(excess / port)`` steps.  Bit-exact with the scalar path
        (see ``tests/sim/test_vectorized_equivalence.py``); the loop
        implementation stays available via ``REPRO_REFERENCE_IMPL=1``.
        """
        counts = np.asarray(row_counts, dtype=np.int64)
        if counts.ndim != 2:
            raise ValueError(f"expected (n_blocks, m) counts, got {counts.shape}")
        n_blocks = counts.shape[0]
        if _obs_enabled():
            obs_metrics.counter_add("hw.dvpe.batches")
            obs_metrics.counter_add("hw.dvpe.blocks_costed", int(n_blocks))
        lanes = self.lanes
        if not self.intra_block_mapping:
            # Naive mapping: one segment per issue group, so at most one
            # completion per cycle -- the port (width >= 1) drains it
            # immediately and no stall is ever taken.
            return -(-counts // lanes).sum(axis=1)

        nnz = counts.sum(axis=1)
        num_cycles = -(-nnz // lanes)
        horizon = int(num_cycles.max()) if n_blocks else 0
        if horizon == 0:
            return np.zeros(n_blocks, dtype=np.int64)

        # Segment completions per cycle: segment s of block b completes in
        # the cycle holding its last packed element.
        ends = np.cumsum(counts, axis=1)
        has_work = counts > 0
        produced = np.zeros((n_blocks, horizon), dtype=np.int64)
        block_ids = np.broadcast_to(np.arange(n_blocks)[:, None], counts.shape)
        np.add.at(
            produced,
            (block_ids[has_work], (ends[has_work] - 1) // lanes),
            1,
        )

        port = self.output_port_width
        capacity = self.alternate_buffer_depth if self.alternate_unit else 0
        occ = np.zeros(n_blocks, dtype=np.int64)
        stalls = np.zeros(n_blocks, dtype=np.int64)
        max_occ = np.zeros(n_blocks, dtype=np.int64)
        for t in range(horizon):
            active = t < num_cycles
            level = occ + produced[:, t]
            level -= np.minimum(port, level)
            excess = np.maximum(level - capacity, 0)
            extra_drains = -(-excess // port)
            level = np.maximum(level - extra_drains * port, 0)
            occ = np.where(active, level, occ)
            stalls += np.where(active, extra_drains, 0)
            max_occ = np.maximum(max_occ, np.where(active, level, 0))
        # Drain whatever is still buffered after the last issue group.
        stalls += -(-occ // port)
        if self.alternate_unit:
            stalls = np.maximum(0, stalls - max_occ // port)
        return num_cycles + stalls
