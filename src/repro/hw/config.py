"""Architecture configurations for TB-STC and every baseline (Sec. VII-A).

The paper's TB-STC instance: 8 DVPE arrays of 2x8 DVPEs, each DVPE with
8 FP16 multipliers, a codec unit, an MBD unit, 1 GHz, 64 GB/s off-chip
bandwidth.  All baselines are configured with the *same peak compute,
on-chip capacity and bandwidth* ("For a fair way, we model and evaluate
the overhead in the same way for all baselines") and differ only in the
sparsity support knobs: which pattern family they exploit, their storage
format, and their scheduling/mapping capabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..core.patterns import PatternFamily

__all__ = [
    "ArchConfig",
    "tb_stc",
    "tensor_core",
    "stc",
    "vegeta",
    "highlight",
    "rm_stc",
    "sgcn",
    "dvpe_fan",
    "all_baselines",
]


@dataclass(frozen=True)
class ArchConfig:
    """One accelerator configuration.

    The compute fabric (``num_pe_arrays x pes_per_array`` PEs with
    ``lanes_per_pe`` FP16 MACs each) is shared by all designs; the
    feature flags select the sparsity machinery.
    """

    name: str
    # --- shared fabric (paper Sec. VII-A1) ---
    num_pe_arrays: int = 8
    pes_per_array: int = 16  # 2 x 8 DVPEs per array
    lanes_per_pe: int = 8  # FP16 multipliers per DVPE
    frequency_ghz: float = 1.0
    dram_bandwidth_gbs: float = 64.0
    onchip_buffer_kb: int = 192
    burst_bytes: int = 32
    # --- sparsity support ---
    pattern: PatternFamily = PatternFamily.TBS
    storage_format: str = "ddc"  # any name in repro.formats.available_formats()
    inter_block_scheduling: bool = True
    intra_block_mapping: bool = True
    alternate_unit: bool = True
    has_codec: bool = True
    has_mbd: bool = True
    #: Relative per-MAC datapath energy (1.0 = the TB-STC DVPE).  The
    #: unstructured designs pay for gather/union networks here
    #: (Fig. 6(d)); SIGMA's FAN pays for element-level forwarding.
    datapath_energy_scale: float = 1.0
    #: Relative on-chip memory energy.  Unstructured designs burn extra
    #: SRAM energy expanding bitmaps / gathering scattered operands.
    memory_energy_scale: float = 1.0
    #: Output results per PE per cycle before the alternate unit buffers.
    output_port_width: int = 2
    #: Alternate-unit buffer depth (results).
    alternate_buffer_depth: int = 8
    #: Scheduler lookahead (blocks fetched per cycle is 2 per Fig. 11(b)).
    scheduler_window: int = 8
    #: Metadata protection: 'none' | 'parity' | 'secded'.  Protected
    #: variants pay check-bit traffic and ECC-logic energy (see
    #: repro.faults.ecc) in exchange for fault-campaign coverage, making
    #: reliability another explorable architecture axis.
    metadata_ecc: str = "none"

    def __post_init__(self) -> None:
        if self.num_pe_arrays < 1 or self.pes_per_array < 1 or self.lanes_per_pe < 1:
            raise ValueError("fabric dimensions must be positive")
        if self.frequency_ghz <= 0 or self.dram_bandwidth_gbs <= 0:
            raise ValueError("frequency and bandwidth must be positive")
        if self.metadata_ecc not in ("none", "parity", "secded"):
            raise ValueError(f"metadata_ecc must be none/parity/secded, got {self.metadata_ecc!r}")

    @property
    def num_pes(self) -> int:
        return self.num_pe_arrays * self.pes_per_array

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.num_pes * self.lanes_per_pe

    @property
    def peak_tops(self) -> float:
        """Peak dense throughput in TOPS (2 ops per MAC)."""
        return 2 * self.peak_macs_per_cycle * self.frequency_ghz / 1e3

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bandwidth_gbs / self.frequency_ghz

    def with_bandwidth(self, gbs: float) -> "ArchConfig":
        """Copy with a different off-chip bandwidth (Fig. 15(c) sweep)."""
        return replace(self, dram_bandwidth_gbs=gbs)

    def with_ecc(self, mode: str) -> "ArchConfig":
        """Copy with a different metadata-protection mode."""
        return replace(self, name=f"{self.name}+{mode}" if mode != "none" else self.name,
                       metadata_ecc=mode)


def tb_stc(**overrides) -> ArchConfig:
    """The proposed architecture (Fig. 5(b))."""
    return ArchConfig(name="TB-STC", **overrides)


def tensor_core(**overrides) -> ArchConfig:
    """Dense Tensor Core (TC): no sparsity support at all."""
    cfg = dict(
        pattern=PatternFamily.US,  # irrelevant: computes everything densely
        storage_format="dense",
        inter_block_scheduling=False,
        intra_block_mapping=False,
        alternate_unit=False,
        has_codec=False,
        has_mbd=False,
        datapath_energy_scale=0.95,  # no sparsity muxes in the datapath
    )
    cfg.update(overrides)
    return ArchConfig(name="TC", **cfg)


def stc(**overrides) -> ArchConfig:
    """NVIDIA Sparse Tensor Core: fixed 2:4 (evaluated as 4:8) tile-wise."""
    cfg = dict(
        pattern=PatternFamily.TS,
        storage_format="sdc",  # aligned 50% compression with 2-bit indices
        inter_block_scheduling=False,
        # STC's 2x rate comes from packing two compressed 4:8 rows into
        # one 8-lane beat -- trivial because every row has the same N.
        intra_block_mapping=True,
        alternate_unit=False,
        has_codec=False,
        has_mbd=True,  # the B-operand multiplexer (Fig. 3(b))
        datapath_energy_scale=0.98,
    )
    cfg.update(overrides)
    return ArchConfig(name="STC", **cfg)


def vegeta(**overrides) -> ArchConfig:
    """VEGETA: row-wise N:M with per-row N, row-aligned storage."""
    cfg = dict(
        pattern=PatternFamily.RS_V,
        storage_format="sdc",
        inter_block_scheduling=False,
        intra_block_mapping=True,  # row-wise reordering / packing
        alternate_unit=False,
        has_codec=False,
        has_mbd=True,
        datapath_energy_scale=1.0,
    )
    cfg.update(overrides)
    return ArchConfig(name="VEGETA", **cfg)


def highlight(**overrides) -> ArchConfig:
    """HighLight: hierarchical row-wise sparsity, better compression."""
    cfg = dict(
        pattern=PatternFamily.RS_H,
        storage_format="sdc",
        inter_block_scheduling=True,  # coarse-level tile skipping
        intra_block_mapping=True,
        alternate_unit=False,
        has_codec=False,
        has_mbd=True,
        datapath_energy_scale=1.02,
    )
    cfg.update(overrides)
    return ArchConfig(name="HighLight", **cfg)


def rm_stc(**overrides) -> ArchConfig:
    """RM-STC: unstructured sparsity on a row-merge tensor-core dataflow.

    Speedup tracks nnz closely, but the gather/union datapath costs
    ~2x per-MAC energy (Fig. 6(d)) and bitmap metadata traffic.
    """
    cfg = dict(
        pattern=PatternFamily.US,
        storage_format="bitmap",
        inter_block_scheduling=True,
        intra_block_mapping=True,
        alternate_unit=True,
        has_codec=False,
        has_mbd=True,
        datapath_energy_scale=2.0,
        memory_energy_scale=1.6,
    )
    cfg.update(overrides)
    return ArchConfig(name="RM-STC", **cfg)


def sgcn(**overrides) -> ArchConfig:
    """SGCN: compressed-sparse GNN accelerator tuned for >90% sparsity.

    Keeps a high bandwidth-to-compute ratio (256 GB/s in Fig. 15(d))
    and compressed-sparse features consumed by a row-product dataflow --
    modelled as a contiguously streamable compressed layout -- with
    per-row processing overhead that makes it inefficient at moderate
    sparsity.
    """
    cfg = dict(
        pattern=PatternFamily.US,
        storage_format="bitmap",
        dram_bandwidth_gbs=256.0,
        inter_block_scheduling=True,
        intra_block_mapping=True,
        alternate_unit=False,
        has_codec=False,
        has_mbd=False,
        datapath_energy_scale=1.25,
        memory_energy_scale=1.3,
    )
    cfg.update(overrides)
    return ArchConfig(name="SGCN", **cfg)


def dvpe_fan(**overrides) -> ArchConfig:
    """Ablation baseline: our DVPE fabric with SIGMA's element-level FAN.

    The forwarding adder network balances at element granularity and
    ignores TBS's two-level (inter/intra-block) balance, burning energy
    (Sec. VII-E2: 1.61x worse EDP than the DVPE).
    """
    cfg = dict(
        pattern=PatternFamily.TBS,
        storage_format="ddc",
        inter_block_scheduling=True,
        intra_block_mapping=True,
        alternate_unit=False,
        has_codec=True,
        has_mbd=True,
        datapath_energy_scale=2.2,
        memory_energy_scale=1.4,
    )
    cfg.update(overrides)
    return ArchConfig(name="DVPE+FAN", **cfg)


def all_baselines() -> Tuple[ArchConfig, ...]:
    """The evaluation's baseline set plus TB-STC itself."""
    return (tensor_core(), stc(), vegeta(), highlight(), rm_stc(), tb_stc())
