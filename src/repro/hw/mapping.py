"""Intra-block sparsity-aware mapping (Sec. VI-B2, Fig. 11(c)/(d)).

A block arrives at a DVPE as its *computation-format segments*: one run
of non-zeros per output lane (for reduction-dim blocks every segment has
exactly N elements; for independent-dim blocks -- after the codec's
conversion -- segment lengths vary per row, summing to ``N * M``).

* **Naive mapping** issues one segment per pipeline cycle, so a segment
  with 1 element wastes 7 of the 8 multiplier lanes.
* **Sparsity-aware mapping** concatenates consecutive segments into full
  ``M``-wide issue groups; the block-level invariant that the total
  non-zero count is a multiple of M guarantees perfect packing, and the
  reduction nodes' accumulate/transmit configuration splits the partial
  sums back out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..core.patterns import Direction

__all__ = ["BlockWork", "MappedSchedule", "block_work_from_mask", "map_naive", "map_balanced"]


@dataclass(frozen=True)
class BlockWork:
    """Computation-format description of one block's work."""

    segments: Tuple[int, ...]  # per-output-lane non-zero counts
    m: int
    direction: Direction = Direction.ROW

    def __post_init__(self) -> None:
        if any(s < 0 for s in self.segments):
            raise ValueError("segment lengths must be non-negative")

    @property
    def nnz(self) -> int:
        return sum(self.segments)


@dataclass
class MappedSchedule:
    """Issue schedule of one block on one DVPE.

    ``cycles`` is the list of issue groups; each group is a list of
    ``(segment_id, count)`` pieces occupying the multiplier lanes that
    cycle.  ``outputs_per_cycle`` counts segment *completions* per cycle
    (results handed to the reduction network / alternate unit).
    """

    cycles: List[List[Tuple[int, int]]] = field(default_factory=list)
    outputs_per_cycle: List[int] = field(default_factory=list)

    @property
    def num_cycles(self) -> int:
        return len(self.cycles)

    @property
    def macs(self) -> int:
        return sum(count for cycle in self.cycles for _, count in cycle)

    def utilization(self, lanes: int) -> float:
        if not self.cycles:
            return 1.0
        return self.macs / (self.num_cycles * lanes)


def block_work_from_mask(block_mask: np.ndarray, direction: Direction, m: int) -> BlockWork:
    """Computation-format segments of one block.

    Computation format always runs along the reduction dimension: every
    output row of the block contributes one segment with that row's
    non-zero count.  Reduction-dim blocks have uniform segments; for
    independent-dim blocks the codec has converted the layout, but the
    per-row counts (and hence the imbalance) remain.
    """
    block_mask = np.asarray(block_mask, dtype=bool)
    if block_mask.ndim != 2:
        raise ValueError(f"expected a 2-D block mask, got {block_mask.shape}")
    counts = block_mask.sum(axis=1)
    return BlockWork(tuple(int(c) for c in counts), m=m, direction=direction)


def map_naive(work: BlockWork, lanes: int) -> MappedSchedule:
    """One segment per issue group; long segments split across cycles."""
    if lanes < 1:
        raise ValueError("lanes must be positive")
    schedule = MappedSchedule()
    for seg_id, count in enumerate(work.segments):
        if count == 0:
            continue
        remaining = count
        while remaining > 0:
            take = min(lanes, remaining)
            schedule.cycles.append([(seg_id, take)])
            remaining -= take
            schedule.outputs_per_cycle.append(1 if remaining == 0 else 0)
    return schedule


def map_balanced(work: BlockWork, lanes: int) -> MappedSchedule:
    """Greedy concatenation of consecutive segments into full issue groups.

    Packs the segment stream into ``ceil(nnz / lanes)`` cycles.  A cycle
    may close several short segments at once (each closure is one output
    result the reduction network must emit).
    """
    if lanes < 1:
        raise ValueError("lanes must be positive")
    schedule = MappedSchedule()
    current: List[Tuple[int, int]] = []
    free = lanes
    completions = 0

    def _flush() -> None:
        nonlocal current, free, completions
        if current:
            schedule.cycles.append(current)
            schedule.outputs_per_cycle.append(completions)
        current = []
        free = lanes
        completions = 0

    for seg_id, count in enumerate(work.segments):
        remaining = count
        while remaining > 0:
            take = min(free, remaining)
            current.append((seg_id, take))
            free -= take
            remaining -= take
            if remaining == 0:
                completions += 1
            if free == 0:
                _flush()
    _flush()
    return schedule


def mapping_cycles(work: BlockWork, lanes: int, balanced: bool) -> int:
    """Cycle count without materialising the schedule (fast path)."""
    if balanced:
        return math.ceil(work.nnz / lanes) if work.nnz else 0
    return sum(math.ceil(c / lanes) for c in work.segments if c)
