"""Hardware component models of TB-STC and its baselines.

* :mod:`~repro.hw.config` -- architecture configurations (Sec. VII-A).
* :mod:`~repro.hw.energy` -- per-op energy / power model (Table III).
* :mod:`~repro.hw.area` -- component area model (Table III, A100 1.57%).
* :mod:`~repro.hw.dram` -- DRAM timing/energy (Ramulator stand-in).
* :mod:`~repro.hw.dvpe` -- the Diverse Vector PE (Fig. 10(a)).
* :mod:`~repro.hw.mapping` -- intra-block sparsity-aware mapping.
* :mod:`~repro.hw.scheduler` -- inter-block sparsity-aware scheduling.
* :mod:`~repro.hw.codec` -- adaptive codec cycle/energy accounting.
* :mod:`~repro.hw.mbd` -- Matrix-B Distribution unit.
"""

from .area import A100_DIE_MM2, A100_TILE_RATIO, AreaParams, a100_overhead_percent, area_breakdown
from .codec import CodecStats, CodecUnit
from .config import (
    ArchConfig,
    all_baselines,
    dvpe_fan,
    highlight,
    rm_stc,
    sgcn,
    stc,
    tb_stc,
    tensor_core,
    vegeta,
)
from .dram import DRAMModel, DRAMResult
from .dram_trace import BankedDRAM, DRAMTraceResult
from .dvpe import DVPE, DVPEResult
from .energy import EnergyModel, EnergyParams, EnergyReport, scale_energy_between_nodes
from .mapping import (
    BlockWork,
    MappedSchedule,
    block_work_from_mask,
    map_balanced,
    map_naive,
    mapping_cycles,
)
from .mbd import MBDStats, MBDUnit
from .scheduler import ScheduleResult, schedule_direct, schedule_sparsity_aware

__all__ = [
    "A100_DIE_MM2",
    "A100_TILE_RATIO",
    "ArchConfig",
    "AreaParams",
    "BlockWork",
    "CodecStats",
    "CodecUnit",
    "BankedDRAM",
    "DRAMModel",
    "DRAMResult",
    "DRAMTraceResult",
    "DVPE",
    "DVPEResult",
    "EnergyModel",
    "EnergyParams",
    "EnergyReport",
    "MBDStats",
    "MBDUnit",
    "MappedSchedule",
    "ScheduleResult",
    "a100_overhead_percent",
    "all_baselines",
    "area_breakdown",
    "block_work_from_mask",
    "dvpe_fan",
    "highlight",
    "map_balanced",
    "map_naive",
    "mapping_cycles",
    "rm_stc",
    "scale_energy_between_nodes",
    "schedule_direct",
    "schedule_sparsity_aware",
    "sgcn",
    "stc",
    "tb_stc",
    "tensor_core",
    "vegeta",
]
