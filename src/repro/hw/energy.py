"""Energy and power model (the Sparseloop / Design Compiler stand-in).

Per-operation energies are expressed at a 7 nm node (the paper scales all
components to 7 nm via DeepScaleTool).  The dynamic constants are
calibrated so that the TB-STC instance running at full utilization and
1 GHz dissipates the Table III budget: 197.71 mW in the DVPE arrays,
2.19 mW in the codec and 0.69 mW in the MBD unit, 200.59 mW total.

All energies are in picojoules; :class:`EnergyReport` aggregates a
workload's component energies and derives power and EDP.
"""

from __future__ import annotations
from dataclasses import dataclass, field
from typing import Dict

from .config import ArchConfig

__all__ = ["EnergyParams", "EnergyReport", "EnergyModel", "scale_energy_between_nodes"]

#: DeepScaleTool-style dynamic-energy scaling factors relative to 7 nm
#: (approximate, capacitance-dominated; used to port published per-op
#: numbers from other nodes, as the paper does for its baselines).
_NODE_ENERGY_FACTOR = {7: 1.0, 10: 1.45, 12: 1.7, 16: 2.1, 22: 2.9, 28: 3.6, 45: 6.5, 65: 9.8}


def scale_energy_between_nodes(energy: float, from_nm: int, to_nm: int = 7) -> float:
    """Scale a dynamic energy between technology nodes."""
    try:
        factor = _NODE_ENERGY_FACTOR[to_nm] / _NODE_ENERGY_FACTOR[from_nm]
    except KeyError as exc:
        raise ValueError(f"unsupported node: {exc}") from None
    return energy * factor


@dataclass(frozen=True)
class EnergyParams:
    """Per-operation energies (pJ) and static power (mW) at 7 nm, 1 GHz.

    The MAC energy is calibrated against Table III: 1024 FP16 MACs/cycle
    at 1 GHz dissipating 197.71 mW gives 0.193 pJ/MAC for the DVPE
    datapath (multiplier + reduction node + registers + alternate unit).
    """

    mac_pj: float = 0.193
    #: Codec: 2.19 mW at 1 GHz moving ~16 elements/cycle -> 0.137 pJ/elem.
    codec_elem_pj: float = 0.137
    #: MBD: 0.69 mW at 1 GHz selecting ~16 B-elements/cycle -> 0.043 pJ.
    mbd_elem_pj: float = 0.043
    #: SECDED/parity encode+check per protected metadata word (a ~20-gate
    #: XOR tree at 7 nm; charged once per word moved through the buffer).
    ecc_word_pj: float = 0.02
    #: On-chip SRAM access energy per byte (7 nm, ~192 KB buffer).
    sram_byte_pj: float = 0.4
    #: Off-chip DRAM energy per byte (HBM/LPDDR5-class, I/O + core).
    dram_byte_pj: float = 4.0
    #: Register-file traffic per MAC operand pair, folded into mac_pj.
    #: Leakage/static power of the whole TB-STC tile (mW).
    static_mw: float = 8.0


@dataclass
class EnergyReport:
    """Aggregated energy of one simulated workload (all values pJ)."""

    components: Dict[str, float] = field(default_factory=dict)
    cycles: int = 0
    frequency_ghz: float = 1.0

    def add(self, component: str, picojoules: float) -> None:
        if picojoules < 0:
            raise ValueError(f"negative energy for {component}")
        self.components[component] = self.components.get(component, 0.0) + picojoules

    @property
    def total_pj(self) -> float:
        return sum(self.components.values())

    @property
    def total_j(self) -> float:
        return self.total_pj * 1e-12

    @property
    def time_s(self) -> float:
        return self.cycles / (self.frequency_ghz * 1e9)

    @property
    def average_power_w(self) -> float:
        time = self.time_s
        return self.total_j / time if time > 0 else 0.0

    @property
    def edp(self) -> float:
        """Energy-Delay Product in J*s."""
        return self.total_j * self.time_s

    def to_dict(self) -> Dict:
        """Plain JSON-ready payload (used by ``SimResult.to_dict``)."""
        return {
            "components": dict(self.components),
            "cycles": int(self.cycles),
            "frequency_ghz": float(self.frequency_ghz),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "EnergyReport":
        return cls(
            components={str(k): float(v) for k, v in data["components"].items()},
            cycles=int(data["cycles"]),
            frequency_ghz=float(data["frequency_ghz"]),
        )


class EnergyModel:
    """Integrates per-event energies for one architecture."""

    def __init__(self, config: ArchConfig, params: EnergyParams = EnergyParams()):
        self.config = config
        self.params = params

    def report(
        self,
        cycles: int,
        macs: int,
        dram_bytes: float,
        sram_bytes: float,
        codec_elements: int = 0,
        mbd_elements: int = 0,
        ecc_words: int = 0,
    ) -> EnergyReport:
        """Energy of one workload execution.

        ``macs`` counts real multiply-accumulates (the datapath scale of
        the config captures gather/union/FAN overhead per MAC);
        ``codec_elements`` / ``mbd_elements`` count elements passing
        through those units; ``ecc_words`` counts protected metadata
        words encoded+checked when the architecture runs with ECC.
        """
        if min(cycles, macs) < 0 or min(dram_bytes, sram_bytes) < 0 or ecc_words < 0:
            raise ValueError("negative activity counts")
        p = self.params
        report = EnergyReport(cycles=cycles, frequency_ghz=self.config.frequency_ghz)
        report.add("compute", macs * p.mac_pj * self.config.datapath_energy_scale)
        report.add("dram", dram_bytes * p.dram_byte_pj)
        report.add("sram", sram_bytes * p.sram_byte_pj * self.config.memory_energy_scale)
        if self.config.has_codec and codec_elements:
            report.add("codec", codec_elements * p.codec_elem_pj)
        if self.config.has_mbd and mbd_elements:
            report.add("mbd", mbd_elements * p.mbd_elem_pj)
        if ecc_words:
            report.add("ecc", ecc_words * p.ecc_word_pj)
        report.add("static", p.static_mw * 1e-3 * report.time_s * 1e12)
        return report

    def peak_dynamic_power_mw(self) -> Dict[str, float]:
        """Component power at full utilization -- reproduces Table III.

        DVPE: every MAC lane busy; codec and MBD at their rated element
        throughput (16 elements/cycle each).
        """
        cfg = self.config
        p = self.params
        ghz = cfg.frequency_ghz
        dvpe = cfg.peak_macs_per_cycle * p.mac_pj * cfg.datapath_energy_scale * ghz
        codec = 16 * p.codec_elem_pj * ghz if cfg.has_codec else 0.0
        mbd = 16 * p.mbd_elem_pj * ghz if cfg.has_mbd else 0.0
        return {
            "DVPE Array": dvpe,
            "Codec Unit": codec,
            "MBD Unit": mbd,
            "Total": dvpe + codec + mbd,
        }
