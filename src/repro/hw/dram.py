"""Cycle-level DRAM model (the Ramulator / DRAMPower stand-in).

Bandwidth is the paper's first-order constraint (64 GB/s baseline,
swept in Fig. 15(c)).  The model charges:

* streaming transfer time: ``fetched_bytes / bytes_per_cycle``;
* a per-burst command overhead for non-contiguous traffic, so traces
  with many short bursts (CSR-style) cannot reach peak bandwidth even
  when the byte count is small;
* a fixed access latency for the first beat of the tensor.

Energy follows DRAMPower's activate + read/write decomposition,
simplified to per-burst activation plus per-byte transfer costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..formats.memory_model import TrafficReport

__all__ = ["DRAMModel", "DRAMResult"]


@dataclass(frozen=True)
class DRAMResult:
    """Timing and energy of one tensor transfer."""

    cycles: int
    fetched_bytes: float
    energy_pj: float
    effective_bandwidth_fraction: float


class DRAMModel:
    """A bandwidth/latency/energy model for one memory channel."""

    def __init__(
        self,
        bandwidth_gbs: float = 64.0,
        frequency_ghz: float = 1.0,
        burst_bytes: int = 32,
        first_access_latency: int = 40,
        per_burst_overhead_cycles: float = 0.25,
        activate_pj: float = 80.0,
        byte_pj: float = 4.0,
    ):
        if bandwidth_gbs <= 0 or frequency_ghz <= 0:
            raise ValueError("bandwidth and frequency must be positive")
        self.bandwidth_gbs = bandwidth_gbs
        self.frequency_ghz = frequency_ghz
        self.burst_bytes = burst_bytes
        self.first_access_latency = first_access_latency
        self.per_burst_overhead_cycles = per_burst_overhead_cycles
        self.activate_pj = activate_pj
        self.byte_pj = byte_pj

    @property
    def bytes_per_cycle(self) -> float:
        return self.bandwidth_gbs / self.frequency_ghz

    def transfer(self, nbytes: float, num_bursts: int = 1, contiguous: bool = True) -> DRAMResult:
        """Timing/energy of moving ``nbytes`` split into ``num_bursts``.

        Contiguous streams hide the per-burst overhead behind the data
        transfer; scattered traces pay it serially.
        """
        if nbytes < 0 or num_bursts < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return DRAMResult(0, 0.0, 0.0, 1.0)
        stream_cycles = nbytes / self.bytes_per_cycle
        overhead = 0.0 if contiguous else num_bursts * self.per_burst_overhead_cycles
        cycles = int(math.ceil(stream_cycles + overhead)) + self.first_access_latency
        energy = num_bursts * self.activate_pj + nbytes * self.byte_pj
        ideal = nbytes / self.bytes_per_cycle
        fraction = min(1.0, ideal / max(1e-9, cycles - self.first_access_latency))
        return DRAMResult(cycles, nbytes, energy, fraction)

    def transfer_report(self, report: TrafficReport) -> DRAMResult:
        """Transfer an encoded matrix given its traffic analysis."""
        contiguous = report.num_segments <= max(1, report.num_bursts // 8)
        return self.transfer(report.fetched_bytes, report.num_bursts, contiguous)
