"""Cycle-level DRAM model (the Ramulator / DRAMPower stand-in).

Bandwidth is the paper's first-order constraint (64 GB/s baseline,
swept in Fig. 15(c)).  The model charges:

* streaming transfer time: ``fetched_bytes / bytes_per_cycle``;
* a per-burst command overhead for non-contiguous traffic, so traces
  with many short bursts (CSR-style) cannot reach peak bandwidth even
  when the byte count is small;
* a fixed access latency for the first beat of the tensor.

Energy follows DRAMPower's activate + read/write decomposition,
simplified to per-burst activation plus per-byte transfer costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..formats.base import Segment
from ..formats.memory_model import TrafficReport

__all__ = [
    "DRAMModel",
    "DRAMResult",
    "TransactionFaultModel",
    "PerturbedTrace",
    "perturb_trace",
]


@dataclass(frozen=True)
class DRAMResult:
    """Timing and energy of one tensor transfer."""

    cycles: int
    fetched_bytes: float
    energy_pj: float
    effective_bandwidth_fraction: float


class DRAMModel:
    """A bandwidth/latency/energy model for one memory channel."""

    def __init__(
        self,
        bandwidth_gbs: float = 64.0,
        frequency_ghz: float = 1.0,
        burst_bytes: int = 32,
        first_access_latency: int = 40,
        per_burst_overhead_cycles: float = 0.25,
        activate_pj: float = 80.0,
        byte_pj: float = 4.0,
    ):
        if bandwidth_gbs <= 0 or frequency_ghz <= 0:
            raise ValueError("bandwidth and frequency must be positive")
        self.bandwidth_gbs = bandwidth_gbs
        self.frequency_ghz = frequency_ghz
        self.burst_bytes = burst_bytes
        self.first_access_latency = first_access_latency
        self.per_burst_overhead_cycles = per_burst_overhead_cycles
        self.activate_pj = activate_pj
        self.byte_pj = byte_pj

    @property
    def bytes_per_cycle(self) -> float:
        return self.bandwidth_gbs / self.frequency_ghz

    def transfer(self, nbytes: float, num_bursts: int = 1, contiguous: bool = True) -> DRAMResult:
        """Timing/energy of moving ``nbytes`` split into ``num_bursts``.

        Contiguous streams hide the per-burst overhead behind the data
        transfer; scattered traces pay it serially.
        """
        if nbytes < 0 or num_bursts < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return DRAMResult(0, 0.0, 0.0, 1.0)
        stream_cycles = nbytes / self.bytes_per_cycle
        overhead = 0.0 if contiguous else num_bursts * self.per_burst_overhead_cycles
        cycles = int(math.ceil(stream_cycles + overhead)) + self.first_access_latency
        energy = num_bursts * self.activate_pj + nbytes * self.byte_pj
        ideal = nbytes / self.bytes_per_cycle
        fraction = min(1.0, ideal / max(1e-9, cycles - self.first_access_latency))
        return DRAMResult(cycles, nbytes, energy, fraction)

    def transfer_report(self, report: TrafficReport) -> DRAMResult:
        """Transfer an encoded matrix given its traffic analysis."""
        contiguous = report.num_segments <= max(1, report.num_bursts // 8)
        return self.transfer(report.fetched_bytes, report.num_bursts, contiguous)


# ---------------------------------------------------------------------------
# Transaction-level fault injection (repro.faults campaigns)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransactionFaultModel:
    """Per-transaction fault probabilities for a consumption trace.

    ``p_drop``     -- the transaction never completes (its bytes are
                      missing; a DMA byte counter catches the shortfall);
    ``p_duplicate``-- the transaction is replayed (data intact, but the
                      bus carries it twice -- pure bandwidth/energy waste);
    ``p_corrupt``  -- the transaction completes with flipped payload bits
                      (in-flight corruption past any storage-side ECC).
    """

    p_drop: float = 0.0
    p_duplicate: float = 0.0
    p_corrupt: float = 0.0

    def __post_init__(self) -> None:
        for name in ("p_drop", "p_duplicate", "p_corrupt"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")


@dataclass
class PerturbedTrace:
    """A consumption trace after transaction faults were applied."""

    segments: List[Segment] = field(default_factory=list)
    dropped: List[Segment] = field(default_factory=list)
    duplicated: List[Segment] = field(default_factory=list)
    corrupted: List[Segment] = field(default_factory=list)

    @property
    def delivered_bytes(self) -> int:
        return sum(seg.nbytes for seg in self.segments)

    @property
    def missing_bytes(self) -> int:
        return sum(seg.nbytes for seg in self.dropped)

    def length_check_fails(self, expected_bytes: int) -> bool:
        """Would a DMA byte-counter check flag this transfer?

        Duplicates overwrite their own buffer region, so only *missing*
        bytes trip the counter -- exactly like real descriptor-completion
        accounting.
        """
        return self.delivered_bytes - sum(s.nbytes for s in self.duplicated) != expected_bytes


def perturb_trace(
    segments: Sequence[Segment],
    model: TransactionFaultModel,
    rng: np.random.Generator,
) -> PerturbedTrace:
    """Apply transaction faults to a trace, deterministically from ``rng``.

    Each segment (one DRAM transaction in the analytic model) draws one
    uniform variate; the fault kinds partition ``[0, p_drop + p_dup +
    p_corrupt)``.  Dropped segments vanish from the replayed trace;
    duplicated ones appear twice back-to-back (the retry); corrupted
    ones stay in place but are reported so the caller can garble the
    matching payload bytes.
    """
    out = PerturbedTrace()
    thresholds = (
        model.p_drop,
        model.p_drop + model.p_duplicate,
        model.p_drop + model.p_duplicate + model.p_corrupt,
    )
    if thresholds[-1] > 1.0:
        raise ValueError("fault probabilities sum past 1.0")
    for seg in segments:
        u = float(rng.random())
        if u < thresholds[0]:
            out.dropped.append(seg)
        elif u < thresholds[1]:
            out.segments.append(seg)
            out.segments.append(seg)
            out.duplicated.append(seg)
        elif u < thresholds[2]:
            out.segments.append(seg)
            out.corrupted.append(seg)
        else:
            out.segments.append(seg)
    return out
