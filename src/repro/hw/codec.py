"""Hardware accounting for the adaptive codec unit (Fig. 8(b)).

The functional conversion lives in :mod:`repro.formats.conversion`;
this layer adds what the cycle simulator needs:

* conversion cycles per block (only independent-dimension blocks convert;
  reduction-dimension blocks pass through, Fig. 9(a));
* how much of that work hides under the PE pipeline (Fig. 14 shows only
  ~3.57% visible overhead);
* element counts for the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.patterns import Direction
from ..formats.conversion import block_storage_stream, convert_block

__all__ = ["CodecStats", "CodecUnit"]


@dataclass
class CodecStats:
    """Aggregated codec activity over one workload."""

    converted_blocks: int = 0
    passthrough_blocks: int = 0
    elements: int = 0
    conversion_cycles: int = 0
    visible_cycles: int = 0

    def merge(self, other: "CodecStats") -> None:
        self.converted_blocks += other.converted_blocks
        self.passthrough_blocks += other.passthrough_blocks
        self.elements += other.elements
        self.conversion_cycles += other.conversion_cycles
        self.visible_cycles += other.visible_cycles


class CodecUnit:
    """Cycle/energy accounting for the codec's queue group."""

    def __init__(self, lanes: int = 8, in_width: int = 2, threshold: int = 2):
        if lanes < 1:
            raise ValueError("codec lanes must be positive")
        self.lanes = lanes
        self.in_width = in_width
        self.threshold = threshold

    def process_block(
        self,
        block_values: np.ndarray,
        direction: Direction,
        pe_cycles: int,
    ) -> CodecStats:
        """Account one block.

        ``pe_cycles`` is how long the PE array will chew on this block;
        the codec streams ahead of the PEs, so conversion is visible
        only to the extent it exceeds the compute time (plus the final
        merge beat).
        """
        stats = CodecStats()
        nnz = int(np.count_nonzero(block_values))
        stats.elements = nnz
        if direction is Direction.ROW or nnz == 0:
            stats.passthrough_blocks = 1
            return stats
        stream = block_storage_stream(np.asarray(block_values), direction)
        schedule = convert_block(
            stream,
            n_queues=self.lanes,
            in_width=self.in_width,
            threshold=self.threshold,
        )
        stats.converted_blocks = 1
        stats.conversion_cycles = schedule.cycles
        # The flush beat cannot be hidden (the PE waits for the last
        # elements); anything beyond the PE's own runtime is also
        # exposed.
        stats.visible_cycles = schedule.flush_cycles + max(0, schedule.cycles - pe_cycles)
        return stats

    def process_workload(
        self,
        blocks: Sequence[np.ndarray],
        directions: Sequence[Direction],
        pe_cycles: Sequence[int],
    ) -> CodecStats:
        """Aggregate over a block list (same order as the scheduler's)."""
        if not (len(blocks) == len(directions) == len(pe_cycles)):
            raise ValueError("blocks, directions and pe_cycles must align")
        total = CodecStats()
        for block, direction, cycles in zip(blocks, directions, pe_cycles):
            total.merge(self.process_block(block, direction, cycles))
        return total
