"""Matrix-B Distribution unit (Sec. VI-A2, Fig. 10(b)).

The MBD unit gathers the rows of the dense operand B that the sparse
indices of A select, in the order the DVPEs consume them.  It is a MUX
array (16 8-to-1 multiplexers) plus a transpose array (four 8x8
transpose units); the C0-C2 multiplexers route a tile through the
transpose array *before* the MUX selection for column-major (independent
dimension) blocks and *after* it for row-major blocks, and C3 emits the
reorganised tile.

Functionally the unit is a gather + optional transpose; the cycle cost
is pipelined away (it runs one tile ahead of the DVPEs), so the model
tracks element counts for energy plus a correctness-checked functional
path used by the functional simulator tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.patterns import Direction

__all__ = ["MBDStats", "MBDUnit"]


@dataclass
class MBDStats:
    """Aggregated MBD activity."""

    mux_selections: int = 0
    transposed_tiles: int = 0

    def merge(self, other: "MBDStats") -> None:
        self.mux_selections += other.mux_selections
        self.transposed_tiles += other.transposed_tiles


class MBDUnit:
    """Functional + accounting model of the MBD unit."""

    def __init__(self, mux_count: int = 16, transpose_units: int = 4, tile: int = 8):
        if mux_count < 1 or transpose_units < 1 or tile < 1:
            raise ValueError("invalid MBD parameters")
        self.mux_count = mux_count
        self.transpose_units = transpose_units
        self.tile = tile

    def gather(
        self,
        b_tile: np.ndarray,
        reduction_indices: Sequence[int],
        direction: Direction,
    ) -> tuple:
        """Select the B rows that A's non-zero columns touch.

        ``b_tile`` is the ``m x k`` slice of B aligned with one A block
        column; ``reduction_indices`` are the Rid values of the block's
        non-zeros in computation order.  Returns ``(gathered, stats)``
        where ``gathered`` has one B row per index.
        """
        b_tile = np.asarray(b_tile)
        if b_tile.ndim != 2:
            raise ValueError(f"expected a 2-D B tile, got {b_tile.shape}")
        indices = np.asarray(list(reduction_indices), dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= b_tile.shape[0]):
            raise ValueError("reduction index out of range for the B tile")
        stats = MBDStats(mux_selections=int(indices.size))
        work = b_tile
        if direction is Direction.COL:
            # Column-major blocks route through the transpose array so
            # the gathered rows arrive in DVPE lane order (C0-C2 path).
            stats.transposed_tiles = 1
        gathered = work[indices] if indices.size else np.zeros((0, b_tile.shape[1]))
        return gathered, stats

    def selection_count(self, nnz: int, b_cols: int) -> int:
        """MUX operations for one block against ``b_cols`` columns of B."""
        if nnz < 0 or b_cols < 0:
            raise ValueError("negative counts")
        return nnz * b_cols
