"""Inter-block sparsity-aware scheduling (Sec. VI-B1, Fig. 11(a)/(b)).

Blocks have different costs (their N differs), so statically mapping
them round-robin onto PEs leaves some PEs idle while others grind
through dense blocks -- the paper's example wastes half the PE-cycles.

The scheduling unit sits between the on-chip buffer and the PE array,
fetches up to two blocks per cycle into a small window, and dispatches
each to the PE that will free up first, merging light blocks into idle
slots.  We model both policies event-driven:

* :func:`schedule_direct` -- round-robin static assignment (the
  "direct mapping" baseline in Fig. 16(b));
* :func:`schedule_sparsity_aware` -- windowed earliest-free-PE dispatch.

Both schedulers run an optimized default path (array wave-packing for
direct; a max-heap window with numpy busy accumulators for
sparsity-aware) plus the original loop-based reference behind
``REPRO_REFERENCE_IMPL=1``; the equivalence suite proves the two agree
bit-exactly.  Duck-typed sequences (e.g. the corrupted descriptor
streams the stall guards exist for) always take the reference event
loop, whose length-snapshot guards they exercise.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs.state import enabled as _obs_enabled
from ..obs.tracer import instant as _obs_instant
from ..perf import use_reference_impl
from ..perf.timers import enabled as _perf_enabled
from ..perf.timers import snapshot as _perf_snapshot
from ..perf.timers import timed

__all__ = [
    "Assignment",
    "ScheduleResult",
    "SimStallError",
    "schedule_direct",
    "schedule_sparsity_aware",
]


class SimStallError(RuntimeError):
    """The scheduler or simulator stopped making forward progress.

    Raised instead of spinning when a malformed block list (corrupted
    descriptor stream, lying length, non-finite costs) would otherwise
    hang the event loop, or when a simulation blows through its cycle
    budget.  ``state`` carries a diagnostic snapshot (cursors, pending
    blocks, buffer contents, and -- when stage timing is enabled -- the
    perf snapshot taken at stall time under the ``"perf"`` key) so the
    stall is debuggable post-mortem.

    ``cause`` is a short machine-readable tag (``"fetch_no_progress"``,
    ``"stream_overrun"``, ``"cycle_budget"``); when observability is on,
    constructing the error bumps the ``stall.<cause>`` counter and emits
    an instant trace event, so stall distribution is visible in sweep
    metrics without the raise site doing anything extra.
    """

    def __init__(
        self, message: str, state: Optional[dict] = None, cause: Optional[str] = None
    ):
        self.cause = cause
        self.state = dict(state or {})
        if cause is not None:
            self.state.setdefault("cause", cause)
        if self.state:
            detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.state.items()))
            message = f"{message} [{detail}]"
        if _perf_enabled():
            # Kept out of the message (stage splits are bulky); available
            # to post-mortem tooling via the state dump.
            self.state.setdefault("perf", _perf_snapshot())
        if _obs_enabled():
            obs_metrics.counter_add(f"stall.{cause or 'unknown'}")
            _obs_instant("stall", cause=cause or "unknown")
        super().__init__(message)


@dataclass(frozen=True)
class Assignment:
    """One block's placement: which PE ran it and when."""

    block: int
    pe: int
    start: float
    end: float


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a block list onto a PE array."""

    makespan: int
    total_work: int
    num_pes: int
    per_pe_busy: tuple
    assignments: Tuple[Assignment, ...] = field(default=())

    @property
    def utilization(self) -> float:
        if self.makespan == 0 or self.num_pes == 0:
            return 1.0
        return self.total_work / (self.makespan * self.num_pes)

    @property
    def idle_cycles(self) -> int:
        return self.makespan * self.num_pes - self.total_work


def _validate(costs: Sequence[int], num_pes: int) -> None:
    if num_pes < 1:
        raise ValueError("need at least one PE")
    # Bounded by a length snapshot: a malformed sequence whose __len__
    # grows (a corrupted descriptor stream) must not turn validation
    # into an infinite scan.
    for i in range(len(costs)):
        c = costs[i]
        if not math.isfinite(c):
            raise ValueError(f"block cost {i} is not finite: {c!r}")
        if c < 0:
            raise ValueError("block costs must be non-negative")


def _as_cost_array(costs) -> Optional[np.ndarray]:
    """1-D ndarray view of a trusted sequence, or None for anything else.

    Only genuine arrays, lists and tuples take the vectorized paths;
    duck-typed sequences (whose ``__len__``/``__getitem__`` the stall
    guards must observe live) fall back to the reference event loop.
    """
    if isinstance(costs, np.ndarray):
        arr = costs
    elif isinstance(costs, (list, tuple)):
        if not costs:
            return np.zeros(0, dtype=np.int64)
        try:
            arr = np.asarray(costs)
        except (ValueError, TypeError):
            return None
    else:
        return None
    if arr.ndim != 1 or arr.dtype.kind not in "iufb":
        return None
    if arr.dtype.kind == "b":
        arr = arr.astype(np.int64)
    return arr


def _validate_array(arr: np.ndarray, num_pes: int) -> None:
    if num_pes < 1:
        raise ValueError("need at least one PE")
    if arr.size == 0:
        return
    if arr.dtype.kind == "f":
        finite = np.isfinite(arr)
        if not finite.all():
            i = int(np.argmin(finite))
            raise ValueError(f"block cost {i} is not finite: {arr[i]!r}")
    if (arr < 0).any():
        raise ValueError("block costs must be non-negative")


@timed("hw.scheduler.direct")
def schedule_direct(
    costs: Sequence[int], num_pes: int, record: bool = False
) -> ScheduleResult:
    """Direct (lockstep) mapping: waves of ``num_pes`` blocks in order.

    This is the Fig. 11(a) baseline: the PE array loads one block per PE,
    computes, and only loads the next wave when the *slowest* block of
    the current wave finishes -- so every wave costs its maximum block
    cost and light blocks leave their PEs idle.

    ``record=True`` captures per-block placements for trace rendering.
    """
    arr = None if record or use_reference_impl() else _as_cost_array(costs)
    if arr is None:
        return _schedule_direct_reference(costs, num_pes, record)
    _validate_array(arr, num_pes)
    n = int(arr.size)
    if n == 0:
        return ScheduleResult(0, 0, num_pes, tuple([0] * num_pes))
    pad = (-n) % num_pes
    waves = (np.pad(arr, (0, pad)) if pad else arr).reshape(-1, num_pes)
    wave_max = waves.max(axis=1)
    if _obs_enabled():
        for w in wave_max.tolist():
            obs_metrics.observe("hw.scheduler.wave_cycles", w)
    if arr.dtype.kind == "f":
        # Left-to-right Python summation: bit-identical to the reference
        # loop's sequential accumulation (float addition is not
        # associative, and numpy's pairwise reduction would diverge in
        # the last ulps).
        makespan = float(sum(wave_max.tolist()))
        total = float(sum(arr.tolist()))
        busy = tuple(float(sum(col)) for col in waves.T.tolist())
    else:
        makespan = int(wave_max.sum())
        total = int(arr.sum())
        busy = tuple(int(b) for b in waves.sum(axis=0))
    return ScheduleResult(makespan, total, num_pes, busy)


def _schedule_direct_reference(
    costs: Sequence[int], num_pes: int, record: bool = False
) -> ScheduleResult:
    """Loop-based reference for :func:`schedule_direct`."""
    _validate(costs, num_pes)
    busy = [0] * num_pes
    makespan = 0
    assignments: List[Assignment] = []
    for w0 in range(0, len(costs), num_pes):
        wave = costs[w0 : w0 + num_pes]
        if record:
            for pe, cost in enumerate(wave):
                assignments.append(Assignment(w0 + pe, pe, makespan, makespan + cost))
        if _obs_enabled():
            obs_metrics.observe("hw.scheduler.wave_cycles", max(wave))
        makespan += max(wave)
        for pe, cost in enumerate(wave):
            busy[pe] += cost
    total = sum(costs)
    return ScheduleResult(makespan, total, num_pes, tuple(busy), tuple(assignments))


@timed("hw.scheduler.sparsity_aware")
def schedule_sparsity_aware(
    costs: Sequence[int],
    num_pes: int,
    window: int = 8,
    fetch_per_cycle: int = 2,
    record: bool = False,
) -> ScheduleResult:
    """Windowed earliest-free-PE dispatch.

    The scheduler can only see ``window`` blocks ahead (it fetches two
    per cycle from the buffer, Fig. 11(b)), so it is not an offline LPT
    solver -- but with TBS block costs bounded by M the greedy policy
    lands within one block of the optimal makespan.

    Dispatch rule: hand the *largest* block in the window to the PE that
    frees first (longest-processing-time within the lookahead).

    The optimized path keeps the window in a max-heap keyed
    ``(-cost, -block_id)`` -- the exact tie-break of the reference's
    ``sort(reverse=True); pop(0)`` -- and accumulates per-PE busy time
    and total work in numpy arrays instead of re-reading the stream.
    """
    if use_reference_impl():
        return _schedule_sparsity_aware_reference(
            costs, num_pes, window, fetch_per_cycle, record
        )
    arr = _as_cost_array(costs)
    if arr is not None:
        _validate_array(arr, num_pes)
        return _dispatch_array(arr, num_pes, window, fetch_per_cycle, record)
    _validate(costs, num_pes)
    if window < 1 or fetch_per_cycle < 1:
        raise ValueError("window and fetch rate must be positive")
    pending = costs
    # Snapshot the block count once: every bound below uses it, so even
    # a sequence whose __len__ drifts (corrupted block list) terminates.
    n_blocks = len(pending)
    busy = np.zeros(num_pes, dtype=np.float64)
    buffer: List[Tuple] = []  # max-heap of (-cost, -block_id)
    heap = [(0, pe) for pe in range(num_pes)]  # (free_time, pe)
    heapq.heapify(heap)
    fetch_cursor = 0
    dispatched = 0
    fetched_total = 0  # duck-typed path: left-to-right sum at fetch time
    assignments: List[Assignment] = []

    def _stall_state() -> dict:
        return {
            "fetch_cursor": fetch_cursor,
            "dispatched": dispatched,
            "n_blocks": n_blocks,
            "claimed_len": len(pending),
            "window": window,
            "buffer": sorted(((-nc, -nb) for nc, nb in buffer), reverse=True)[:8],
        }

    while fetch_cursor < len(pending) or buffer:
        # Refill the window (bounded fetch bandwidth is folded into the
        # window bound: at 2 blocks/cycle the buffer never starves for
        # blocks costing >= 1 cycle).
        while fetch_cursor < min(len(pending), n_blocks) and len(buffer) < window:
            cost = pending[fetch_cursor]
            heapq.heappush(buffer, (-cost, -fetch_cursor))
            fetched_total += cost
            fetch_cursor += 1
        # Progress guard: every outer iteration must dispatch exactly one
        # of the n_blocks blocks; anything else is a stalled or corrupted
        # stream, and spinning here would hang the whole report pipeline.
        if not buffer:
            raise SimStallError(
                "scheduler fetch stage made no progress",
                cause="fetch_no_progress",
                state=_stall_state(),
            )
        if dispatched >= n_blocks:
            raise SimStallError(
                "scheduler dispatched every block but the stream claims more pending",
                cause="stream_overrun",
                state=_stall_state(),
            )
        # Dispatch the heaviest visible block to the earliest-free PE.
        neg_cost, neg_id = heapq.heappop(buffer)
        cost, block_id = -neg_cost, -neg_id
        dispatched += 1
        free_time, pe = heapq.heappop(heap)
        heapq.heappush(heap, (free_time + cost, pe))
        busy[pe] += cost
        if record:
            assignments.append(Assignment(block_id, pe, free_time, free_time + cost))

    makespan = max(t for t, _ in heap) if heap else 0
    return ScheduleResult(
        makespan, fetched_total, num_pes, tuple(busy.tolist()), tuple(assignments)
    )


def _dispatch_array(
    arr: np.ndarray, num_pes: int, window: int, fetch_per_cycle: int, record: bool
) -> ScheduleResult:
    """Array fast path of :func:`schedule_sparsity_aware`.

    A validated fixed-length cost array cannot stall (the fetch stage
    always progresses and the stream length is constant), so the guarded
    generic loop reduces to a tight heap loop over native Python numbers
    -- identical arithmetic (IEEE-754 double either way) and identical
    ``(-cost, -block_id)`` tie-breaks, without per-element numpy scalar
    overhead.
    """
    if window < 1 or fetch_per_cycle < 1:
        raise ValueError("window and fetch rate must be positive")
    n_blocks = int(arr.shape[0])
    int_costs = arr.dtype.kind != "f"
    costs_list = arr.tolist()
    if _obs_enabled():
        obs_metrics.counter_add("hw.scheduler.blocks_dispatched", n_blocks)
        for c in costs_list:
            obs_metrics.observe("hw.scheduler.block_cycles", c)
    busy = [0] * num_pes if int_costs else [0.0] * num_pes
    buffer: List[Tuple] = []  # max-heap of (-cost, -block_id)
    heap = [(0, pe) for pe in range(num_pes)]  # (free_time, pe)
    heapq.heapify(heap)
    assignments: List[Assignment] = []
    push, pop = heapq.heappush, heapq.heappop
    fetch_cursor = 0
    for _ in range(n_blocks):
        while fetch_cursor < n_blocks and len(buffer) < window:
            push(buffer, (-costs_list[fetch_cursor], -fetch_cursor))
            fetch_cursor += 1
        # Dispatch the heaviest visible block to the earliest-free PE.
        neg_cost, neg_id = pop(buffer)
        cost = -neg_cost
        free_time, pe = pop(heap)
        push(heap, (free_time + cost, pe))
        busy[pe] += cost
        if record:
            assignments.append(Assignment(-neg_id, pe, free_time, free_time + cost))

    makespan = max(t for t, _ in heap) if heap else 0
    # Same total as re-reading the stream (float arrays sum left-to-right
    # to match the reference accumulation order).
    total = int(arr.sum()) if int_costs else float(sum(costs_list))
    return ScheduleResult(makespan, total, num_pes, tuple(busy), tuple(assignments))


def _schedule_sparsity_aware_reference(
    costs: Sequence[int],
    num_pes: int,
    window: int = 8,
    fetch_per_cycle: int = 2,
    record: bool = False,
) -> ScheduleResult:
    """Loop-based reference for :func:`schedule_sparsity_aware`."""
    _validate(costs, num_pes)
    if window < 1 or fetch_per_cycle < 1:
        raise ValueError("window and fetch rate must be positive")
    pending = costs
    n_blocks = len(pending)
    buffer: List[Tuple[float, int]] = []  # (cost, block_id)
    heap = [(0, pe) for pe in range(num_pes)]  # (free_time, pe)
    heapq.heapify(heap)
    busy = [0] * num_pes
    fetch_cursor = 0
    dispatched = 0
    assignments: List[Assignment] = []

    def _stall_state() -> dict:
        return {
            "fetch_cursor": fetch_cursor,
            "dispatched": dispatched,
            "n_blocks": n_blocks,
            "claimed_len": len(pending),
            "window": window,
            "buffer": buffer[:8],
        }

    while fetch_cursor < len(pending) or buffer:
        while fetch_cursor < min(len(pending), n_blocks) and len(buffer) < window:
            buffer.append((pending[fetch_cursor], fetch_cursor))
            fetch_cursor += 1
        if not buffer:
            raise SimStallError(
                "scheduler fetch stage made no progress",
                cause="fetch_no_progress",
                state=_stall_state(),
            )
        if dispatched >= n_blocks:
            raise SimStallError(
                "scheduler dispatched every block but the stream claims more pending",
                cause="stream_overrun",
                state=_stall_state(),
            )
        buffer.sort(reverse=True)
        cost, block_id = buffer.pop(0)
        dispatched += 1
        free_time, pe = heapq.heappop(heap)
        heapq.heappush(heap, (free_time + cost, pe))
        busy[pe] += cost
        if record:
            assignments.append(Assignment(block_id, pe, free_time, free_time + cost))

    makespan = max(t for t, _ in heap) if heap else 0
    total = sum(pending[i] for i in range(n_blocks))
    return ScheduleResult(makespan, total, num_pes, tuple(busy), tuple(assignments))
