"""Inter-block sparsity-aware scheduling (Sec. VI-B1, Fig. 11(a)/(b)).

Blocks have different costs (their N differs), so statically mapping
them round-robin onto PEs leaves some PEs idle while others grind
through dense blocks -- the paper's example wastes half the PE-cycles.

The scheduling unit sits between the on-chip buffer and the PE array,
fetches up to two blocks per cycle into a small window, and dispatches
each to the PE that will free up first, merging light blocks into idle
slots.  We model both policies event-driven:

* :func:`schedule_direct` -- round-robin static assignment (the
  "direct mapping" baseline in Fig. 16(b));
* :func:`schedule_sparsity_aware` -- windowed earliest-free-PE dispatch.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["Assignment", "ScheduleResult", "schedule_direct", "schedule_sparsity_aware"]


@dataclass(frozen=True)
class Assignment:
    """One block's placement: which PE ran it and when."""

    block: int
    pe: int
    start: float
    end: float


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a block list onto a PE array."""

    makespan: int
    total_work: int
    num_pes: int
    per_pe_busy: tuple
    assignments: Tuple[Assignment, ...] = field(default=())

    @property
    def utilization(self) -> float:
        if self.makespan == 0 or self.num_pes == 0:
            return 1.0
        return self.total_work / (self.makespan * self.num_pes)

    @property
    def idle_cycles(self) -> int:
        return self.makespan * self.num_pes - self.total_work


def _validate(costs: Sequence[int], num_pes: int) -> None:
    if num_pes < 1:
        raise ValueError("need at least one PE")
    if any(c < 0 for c in costs):
        raise ValueError("block costs must be non-negative")


def schedule_direct(
    costs: Sequence[int], num_pes: int, record: bool = False
) -> ScheduleResult:
    """Direct (lockstep) mapping: waves of ``num_pes`` blocks in order.

    This is the Fig. 11(a) baseline: the PE array loads one block per PE,
    computes, and only loads the next wave when the *slowest* block of
    the current wave finishes -- so every wave costs its maximum block
    cost and light blocks leave their PEs idle.

    ``record=True`` captures per-block placements for trace rendering.
    """
    _validate(costs, num_pes)
    busy = [0] * num_pes
    makespan = 0
    assignments: List[Assignment] = []
    for w0 in range(0, len(costs), num_pes):
        wave = costs[w0 : w0 + num_pes]
        if record:
            for pe, cost in enumerate(wave):
                assignments.append(Assignment(w0 + pe, pe, makespan, makespan + cost))
        makespan += max(wave)
        for pe, cost in enumerate(wave):
            busy[pe] += cost
    total = sum(costs)
    return ScheduleResult(makespan, total, num_pes, tuple(busy), tuple(assignments))


def schedule_sparsity_aware(
    costs: Sequence[int],
    num_pes: int,
    window: int = 8,
    fetch_per_cycle: int = 2,
    record: bool = False,
) -> ScheduleResult:
    """Windowed earliest-free-PE dispatch.

    The scheduler can only see ``window`` blocks ahead (it fetches two
    per cycle from the buffer, Fig. 11(b)), so it is not an offline LPT
    solver -- but with TBS block costs bounded by M the greedy policy
    lands within one block of the optimal makespan.

    Dispatch rule: hand the *largest* block in the window to the PE that
    frees first (longest-processing-time within the lookahead).
    """
    _validate(costs, num_pes)
    if window < 1 or fetch_per_cycle < 1:
        raise ValueError("window and fetch rate must be positive")
    pending = list(costs)
    buffer: List[Tuple[float, int]] = []  # (cost, block_id)
    heap = [(0, pe) for pe in range(num_pes)]  # (free_time, pe)
    heapq.heapify(heap)
    busy = [0] * num_pes
    fetch_cursor = 0
    assignments: List[Assignment] = []

    while fetch_cursor < len(pending) or buffer:
        # Refill the window (bounded fetch bandwidth is folded into the
        # window bound: at 2 blocks/cycle the buffer never starves for
        # blocks costing >= 1 cycle).
        while fetch_cursor < len(pending) and len(buffer) < window:
            buffer.append((pending[fetch_cursor], fetch_cursor))
            fetch_cursor += 1
        # Dispatch the heaviest visible block to the earliest-free PE.
        buffer.sort(reverse=True)
        cost, block_id = buffer.pop(0)
        free_time, pe = heapq.heappop(heap)
        heapq.heappush(heap, (free_time + cost, pe))
        busy[pe] += cost
        if record:
            assignments.append(Assignment(block_id, pe, free_time, free_time + cost))

    makespan = max(t for t, _ in heap) if heap else 0
    total = sum(costs)
    return ScheduleResult(makespan, total, num_pes, tuple(busy), tuple(assignments))
