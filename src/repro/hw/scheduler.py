"""Inter-block sparsity-aware scheduling (Sec. VI-B1, Fig. 11(a)/(b)).

Blocks have different costs (their N differs), so statically mapping
them round-robin onto PEs leaves some PEs idle while others grind
through dense blocks -- the paper's example wastes half the PE-cycles.

The scheduling unit sits between the on-chip buffer and the PE array,
fetches up to two blocks per cycle into a small window, and dispatches
each to the PE that will free up first, merging light blocks into idle
slots.  We model both policies event-driven:

* :func:`schedule_direct` -- round-robin static assignment (the
  "direct mapping" baseline in Fig. 16(b));
* :func:`schedule_sparsity_aware` -- windowed earliest-free-PE dispatch.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "Assignment",
    "ScheduleResult",
    "SimStallError",
    "schedule_direct",
    "schedule_sparsity_aware",
]


class SimStallError(RuntimeError):
    """The scheduler or simulator stopped making forward progress.

    Raised instead of spinning when a malformed block list (corrupted
    descriptor stream, lying length, non-finite costs) would otherwise
    hang the event loop, or when a simulation blows through its cycle
    budget.  ``state`` carries a diagnostic snapshot (cursors, pending
    blocks, buffer contents) so the stall is debuggable post-mortem.
    """

    def __init__(self, message: str, state: Optional[dict] = None):
        self.state = dict(state or {})
        if self.state:
            detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.state.items()))
            message = f"{message} [{detail}]"
        super().__init__(message)


@dataclass(frozen=True)
class Assignment:
    """One block's placement: which PE ran it and when."""

    block: int
    pe: int
    start: float
    end: float


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a block list onto a PE array."""

    makespan: int
    total_work: int
    num_pes: int
    per_pe_busy: tuple
    assignments: Tuple[Assignment, ...] = field(default=())

    @property
    def utilization(self) -> float:
        if self.makespan == 0 or self.num_pes == 0:
            return 1.0
        return self.total_work / (self.makespan * self.num_pes)

    @property
    def idle_cycles(self) -> int:
        return self.makespan * self.num_pes - self.total_work


def _validate(costs: Sequence[int], num_pes: int) -> None:
    if num_pes < 1:
        raise ValueError("need at least one PE")
    # Bounded by a length snapshot: a malformed sequence whose __len__
    # grows (a corrupted descriptor stream) must not turn validation
    # into an infinite scan.
    for i in range(len(costs)):
        c = costs[i]
        if not math.isfinite(c):
            raise ValueError(f"block cost {i} is not finite: {c!r}")
        if c < 0:
            raise ValueError("block costs must be non-negative")


def schedule_direct(
    costs: Sequence[int], num_pes: int, record: bool = False
) -> ScheduleResult:
    """Direct (lockstep) mapping: waves of ``num_pes`` blocks in order.

    This is the Fig. 11(a) baseline: the PE array loads one block per PE,
    computes, and only loads the next wave when the *slowest* block of
    the current wave finishes -- so every wave costs its maximum block
    cost and light blocks leave their PEs idle.

    ``record=True`` captures per-block placements for trace rendering.
    """
    _validate(costs, num_pes)
    busy = [0] * num_pes
    makespan = 0
    assignments: List[Assignment] = []
    for w0 in range(0, len(costs), num_pes):
        wave = costs[w0 : w0 + num_pes]
        if record:
            for pe, cost in enumerate(wave):
                assignments.append(Assignment(w0 + pe, pe, makespan, makespan + cost))
        makespan += max(wave)
        for pe, cost in enumerate(wave):
            busy[pe] += cost
    total = sum(costs)
    return ScheduleResult(makespan, total, num_pes, tuple(busy), tuple(assignments))


def schedule_sparsity_aware(
    costs: Sequence[int],
    num_pes: int,
    window: int = 8,
    fetch_per_cycle: int = 2,
    record: bool = False,
) -> ScheduleResult:
    """Windowed earliest-free-PE dispatch.

    The scheduler can only see ``window`` blocks ahead (it fetches two
    per cycle from the buffer, Fig. 11(b)), so it is not an offline LPT
    solver -- but with TBS block costs bounded by M the greedy policy
    lands within one block of the optimal makespan.

    Dispatch rule: hand the *largest* block in the window to the PE that
    frees first (longest-processing-time within the lookahead).
    """
    _validate(costs, num_pes)
    if window < 1 or fetch_per_cycle < 1:
        raise ValueError("window and fetch rate must be positive")
    pending = costs
    # Snapshot the block count once: every bound below uses it, so even
    # a sequence whose __len__ drifts (corrupted block list) terminates.
    n_blocks = len(pending)
    buffer: List[Tuple[float, int]] = []  # (cost, block_id)
    heap = [(0, pe) for pe in range(num_pes)]  # (free_time, pe)
    heapq.heapify(heap)
    busy = [0] * num_pes
    fetch_cursor = 0
    dispatched = 0
    assignments: List[Assignment] = []

    def _stall_state() -> dict:
        return {
            "fetch_cursor": fetch_cursor,
            "dispatched": dispatched,
            "n_blocks": n_blocks,
            "claimed_len": len(pending),
            "window": window,
            "buffer": buffer[:8],
        }

    while fetch_cursor < len(pending) or buffer:
        # Refill the window (bounded fetch bandwidth is folded into the
        # window bound: at 2 blocks/cycle the buffer never starves for
        # blocks costing >= 1 cycle).
        while fetch_cursor < min(len(pending), n_blocks) and len(buffer) < window:
            buffer.append((pending[fetch_cursor], fetch_cursor))
            fetch_cursor += 1
        # Progress guard: every outer iteration must dispatch exactly one
        # of the n_blocks blocks; anything else is a stalled or corrupted
        # stream, and spinning here would hang the whole report pipeline.
        if not buffer:
            raise SimStallError(
                "scheduler fetch stage made no progress", state=_stall_state()
            )
        if dispatched >= n_blocks:
            raise SimStallError(
                "scheduler dispatched every block but the stream claims more pending",
                state=_stall_state(),
            )
        # Dispatch the heaviest visible block to the earliest-free PE.
        buffer.sort(reverse=True)
        cost, block_id = buffer.pop(0)
        dispatched += 1
        free_time, pe = heapq.heappop(heap)
        heapq.heappush(heap, (free_time + cost, pe))
        busy[pe] += cost
        if record:
            assignments.append(Assignment(block_id, pe, free_time, free_time + cost))

    makespan = max(t for t, _ in heap) if heap else 0
    total = sum(pending[i] for i in range(n_blocks))
    return ScheduleResult(makespan, total, num_pes, tuple(busy), tuple(assignments))
