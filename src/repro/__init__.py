"""repro -- a from-scratch reproduction of TB-STC (HPCA 2025).

TB-STC is a *Transposable Block-wise N:M Structured Sparse Tensor Core*:
a sparsity pattern (TBS) that applies N:M structure per ``M x M`` block in
either the reduction or the independent dimension, plus the tensor-core
micro-architecture that executes it efficiently.

Package layout
--------------
* :mod:`repro.core`      -- TBS pattern, Algorithm 1, mask-space math.
* :mod:`repro.formats`   -- sparse storage formats (CSR, SDC, DDC) and the
  codec's storage<->computation format conversion.
* :mod:`repro.hw`        -- hardware component models: DVPE, codec, MBD,
  scheduler, DRAM, energy and area.
* :mod:`repro.sim`       -- cycle-level simulators of TB-STC and all the
  baselines (TC, STC, VEGETA, HighLight, RM-STC, SGCN, DVPE+FAN).
* :mod:`repro.nn`        -- numpy neural-network substrate for the sparse
  training and one-shot pruning accuracy experiments.
* :mod:`repro.workloads` -- layer/model GEMM workloads and synthetic
  sparse-weight generation.
* :mod:`repro.analysis`  -- Pareto frontiers, experiment drivers, tables.
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]
