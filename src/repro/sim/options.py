"""The :class:`SimOptions` bundle -- ``simulate()``'s redesigned front door.

``simulate()`` historically grew one keyword argument per subsystem
(energy calibration, the SGCN row-overhead model, quantization, ECC,
fault injection, the stall guard) until every new feature widened a
nine-parameter signature and every sweep had to plumb loose kwargs
across call layers.  ``SimOptions`` freezes those knobs into one
immutable, picklable, hashable value object:

* pass it positionally or as ``options=`` to :func:`repro.sim.engine
  .simulate` / :func:`repro.sim.baselines.simulate_arch`;
* ship it across process boundaries inside sweep cells (it pickles, and
  its :meth:`to_dict` round-trips through JSON for cache keys);
* derive variants with :func:`dataclasses.replace` instead of mutating.

The old loose kwargs still work through a deprecation shim in
``simulate()`` that warns once per call-site.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional

from ..hw.energy import EnergyParams

__all__ = ["SimOptions"]


@dataclass(frozen=True)
class SimOptions:
    """Every non-(config, workload) knob of one ``simulate()`` call.

    Defaults reproduce a plain fault-free FP16 simulation; see
    ``simulate()``'s docstring for each field's semantics.
    """

    #: Per-operation energy calibration; None means :class:`EnergyParams()`.
    energy_params: Optional[EnergyParams] = None
    #: Per-non-empty-row cycle overhead of CSR-style machines (SGCN model).
    row_overhead_cycles: float = 0.0
    #: Weight payload width; < 16 models quantized weights (Fig. 15(b)).
    weight_bits: int = 16
    #: Metadata ECC (:class:`repro.faults.ecc.ECCConfig`); None defers to
    #: ``config.metadata_ecc``.
    ecc: Optional[Any] = None
    #: Fault-injection target ('values' | 'indices' | 'metadata'), or None.
    fault: Optional[str] = None
    #: Seed for the injected flip (only read when ``fault`` is set).
    fault_seed: int = 0
    #: Raise ``SimStallError`` when modeled cycles exceed this budget.
    cycle_budget: Optional[int] = None
    #: Transposable-mask solver backend used when the simulated
    #: workload's masks are (re)built ('greedy' | 'exact' | 'tsenor');
    #: None defers to ``$REPRO_TSOLVER`` and then 'greedy'.  Inert for
    #: workloads whose masks were built elsewhere.
    tsolver: Optional[str] = None
    #: Consumption orientation of the A operand ('forward' |
    #: 'transposed').  'transposed' models the backward pass draining
    #: the transpose of the same stored encoding -- the format is never
    #: re-encoded, so formats whose layouts transpose poorly (CSR, SDC)
    #: pay their honest traffic penalty.
    orientation: str = "forward"

    _FAULT_TARGETS = ("values", "indices", "metadata")

    def __post_init__(self) -> None:
        if not 2 <= self.weight_bits <= 16:
            raise ValueError(f"weight_bits must be in [2, 16], got {self.weight_bits}")
        if self.row_overhead_cycles < 0:
            raise ValueError(f"row_overhead_cycles must be >= 0, got {self.row_overhead_cycles}")
        if self.fault is not None and self.fault not in self._FAULT_TARGETS:
            raise ValueError(
                f"fault must be one of {self._FAULT_TARGETS} or None, got {self.fault!r}"
            )
        if self.cycle_budget is not None and self.cycle_budget < 1:
            raise ValueError(f"cycle_budget must be >= 1, got {self.cycle_budget}")
        if self.tsolver is not None:
            from ..core.tsolvers import TSOLVER_NAMES

            if self.tsolver not in TSOLVER_NAMES:
                raise ValueError(
                    f"tsolver must be one of {TSOLVER_NAMES} or None, got {self.tsolver!r}"
                )
        from ..formats.base import ORIENTATIONS

        if self.orientation not in ORIENTATIONS:
            raise ValueError(
                f"orientation must be one of {ORIENTATIONS}, got {self.orientation!r}"
            )

    def with_(self, **changes: Any) -> "SimOptions":
        """A copy with ``changes`` applied (thin ``dataclasses.replace``)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dict (nested dataclasses expand to dicts)."""
        out: Dict[str, Any] = {
            "row_overhead_cycles": self.row_overhead_cycles,
            "weight_bits": self.weight_bits,
            "fault": self.fault,
            "fault_seed": self.fault_seed,
            "cycle_budget": self.cycle_budget,
            "tsolver": self.tsolver,
            "orientation": self.orientation,
        }
        out["energy_params"] = None if self.energy_params is None else asdict(self.energy_params)
        if self.ecc is None:
            out["ecc"] = None
        elif hasattr(self.ecc, "mode"):
            out["ecc"] = {"mode": self.ecc.mode}
        else:  # pragma: no cover - ecc is always an ECCConfig in-repo
            out["ecc"] = repr(self.ecc)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimOptions":
        data = dict(data)
        params = data.get("energy_params")
        if isinstance(params, dict):
            data["energy_params"] = EnergyParams(**params)
        ecc = data.get("ecc")
        if isinstance(ecc, dict):
            from ..faults.ecc import ECCConfig

            data["ecc"] = ECCConfig(mode=ecc["mode"])
        return cls(**data)
