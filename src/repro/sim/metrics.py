"""Simulation results and derived metrics (speedup, EDP, utilization)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..hw.energy import EnergyReport

__all__ = ["SIM_RESULT_SCHEMA", "SimResult", "speedup", "normalized_edp", "aggregate"]

#: Version stamped into ``SimResult.to_dict`` payloads.  Bump whenever a
#: field is added/renamed/retyped so cached or cross-process payloads
#: from older code fail loudly in ``from_dict`` instead of silently
#: deserializing into the wrong shape.
#:
#: History: 2 added the ``metrics`` key (observability payload).
SIM_RESULT_SCHEMA = 2


@dataclass
class SimResult:
    """Outcome of simulating one workload on one architecture."""

    arch: str
    workload: str
    cycles: int
    compute_cycles: int
    memory_cycles: int
    codec_visible_cycles: int
    macs: int
    dram_bytes: float
    energy: EnergyReport
    compute_utilization: float
    bandwidth_utilization: float
    frequency_ghz: float = 1.0
    breakdown: Dict[str, float] = field(default_factory=dict)
    #: Outcome of the optional per-run fault injection (see
    #: ``sim.engine.simulate``'s ``fault`` parameter): one of
    #: ``repro.faults.CLASSES``, or None when no fault was injected.
    fault_classification: Optional[str] = None
    #: Per-stage wall-time split of this ``simulate()`` call, present only
    #: when stage timing was enabled (``repro.perf.timers.enable()``):
    #: ``{stage: {"calls": n, "seconds": s}}``.  Not scaled or aggregated
    #: -- it describes the simulator, not the modeled hardware.
    perf_breakdown: Optional[Dict[str, Dict[str, float]]] = None
    #: Deterministic observability payload of this ``simulate()`` call
    #: (``repro.obs.metrics`` ``to_dict(deterministic_only=True)``
    #: shape, own ``schema_version``), present only when observability
    #: was enabled (``repro.obs.enable()``).  Like ``perf_breakdown`` it
    #: describes the simulator run, so ``scaled``/``aggregate`` drop it.
    metrics: Optional[Dict] = None

    @property
    def time_s(self) -> float:
        return self.cycles / (self.frequency_ghz * 1e9)

    @property
    def energy_j(self) -> float:
        return self.energy.total_j

    @property
    def edp(self) -> float:
        """Energy-Delay Product (J*s) -- the paper's headline metric."""
        return self.energy_j * self.time_s

    def to_dict(self) -> Dict:
        """Versioned JSON-ready payload (inverse of :meth:`from_dict`).

        This is the one sanctioned way a ``SimResult`` crosses a process
        boundary or lands in CLI JSON output: sweep workers return
        ``result.to_dict()`` and the aggregator rebuilds with
        ``SimResult.from_dict`` -- no ad-hoc dict plumbing, and a schema
        bump turns silent drift into a loud error.
        """
        return {
            "schema_version": SIM_RESULT_SCHEMA,
            "arch": self.arch,
            "workload": self.workload,
            "cycles": int(self.cycles),
            "compute_cycles": int(self.compute_cycles),
            "memory_cycles": int(self.memory_cycles),
            "codec_visible_cycles": int(self.codec_visible_cycles),
            "macs": int(self.macs),
            "dram_bytes": float(self.dram_bytes),
            "energy": self.energy.to_dict(),
            "compute_utilization": float(self.compute_utilization),
            "bandwidth_utilization": float(self.bandwidth_utilization),
            "frequency_ghz": float(self.frequency_ghz),
            "breakdown": dict(self.breakdown),
            "fault_classification": self.fault_classification,
            "perf_breakdown": self.perf_breakdown,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimResult":
        """Rebuild a result from :meth:`to_dict` output (schema-checked)."""
        version = data.get("schema_version")
        if version != SIM_RESULT_SCHEMA:
            raise ValueError(
                f"SimResult payload schema {version!r} != supported {SIM_RESULT_SCHEMA}"
            )
        return cls(
            arch=data["arch"],
            workload=data["workload"],
            cycles=int(data["cycles"]),
            compute_cycles=int(data["compute_cycles"]),
            memory_cycles=int(data["memory_cycles"]),
            codec_visible_cycles=int(data["codec_visible_cycles"]),
            macs=int(data["macs"]),
            dram_bytes=float(data["dram_bytes"]),
            energy=EnergyReport.from_dict(data["energy"]),
            compute_utilization=float(data["compute_utilization"]),
            bandwidth_utilization=float(data["bandwidth_utilization"]),
            frequency_ghz=float(data["frequency_ghz"]),
            breakdown={str(k): float(v) for k, v in data["breakdown"].items()},
            fault_classification=data.get("fault_classification"),
            perf_breakdown=data.get("perf_breakdown"),
            metrics=data.get("metrics"),
        )

    def scaled(self, repeats: int) -> "SimResult":
        """The same layer executed ``repeats`` times back-to-back."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        clone = EnergyReport(cycles=self.energy.cycles * repeats, frequency_ghz=self.frequency_ghz)
        for comp, pj in self.energy.components.items():
            clone.add(comp, pj * repeats)
        return SimResult(
            arch=self.arch,
            workload=self.workload,
            cycles=self.cycles * repeats,
            compute_cycles=self.compute_cycles * repeats,
            memory_cycles=self.memory_cycles * repeats,
            codec_visible_cycles=self.codec_visible_cycles * repeats,
            macs=self.macs * repeats,
            dram_bytes=self.dram_bytes * repeats,
            energy=clone,
            compute_utilization=self.compute_utilization,
            bandwidth_utilization=self.bandwidth_utilization,
            frequency_ghz=self.frequency_ghz,
            breakdown={k: v * repeats for k, v in self.breakdown.items()},
        )


def speedup(result: SimResult, baseline: SimResult) -> float:
    """How much faster ``result`` is than ``baseline`` (>1 = faster)."""
    if result.time_s <= 0:
        return float("inf")
    return baseline.time_s / result.time_s


def normalized_edp(result: SimResult, baseline: SimResult) -> float:
    """EDP of ``result`` relative to ``baseline`` (<1 = better)."""
    if baseline.edp <= 0:
        return float("inf")
    return result.edp / baseline.edp


def aggregate(results: List[SimResult], repeats: Optional[List[int]] = None) -> SimResult:
    """Sum per-layer results into an end-to-end result (Fig. 13).

    Layers run back-to-back on one device, so cycles/energy add; the
    utilizations become work-weighted averages.
    """
    if not results:
        raise ValueError("nothing to aggregate")
    if repeats is None:
        repeats = [1] * len(results)
    if len(repeats) != len(results):
        raise ValueError("repeats must align with results")
    scaled = [r.scaled(n) for r, n in zip(results, repeats)]
    total_cycles = sum(r.cycles for r in scaled)
    energy = EnergyReport(cycles=total_cycles, frequency_ghz=scaled[0].frequency_ghz)
    for r in scaled:
        for comp, pj in r.energy.components.items():
            energy.add(comp, pj)
    total_macs = sum(r.macs for r in scaled)
    breakdown: Dict[str, float] = {}
    for r in scaled:
        for k, v in r.breakdown.items():
            breakdown[k] = breakdown.get(k, 0.0) + v
    weight = lambda attr: (
        sum(getattr(r, attr) * r.cycles for r in scaled) / total_cycles if total_cycles else 1.0
    )
    return SimResult(
        arch=scaled[0].arch,
        workload="+".join(dict.fromkeys(r.workload for r in scaled)),
        cycles=total_cycles,
        compute_cycles=sum(r.compute_cycles for r in scaled),
        memory_cycles=sum(r.memory_cycles for r in scaled),
        codec_visible_cycles=sum(r.codec_visible_cycles for r in scaled),
        macs=total_macs,
        dram_bytes=sum(r.dram_bytes for r in scaled),
        energy=energy,
        compute_utilization=weight("compute_utilization"),
        bandwidth_utilization=weight("bandwidth_utilization"),
        frequency_ghz=scaled[0].frequency_ghz,
        breakdown=breakdown,
    )
