"""Cycle-level simulators of TB-STC and the baseline architectures."""

from .baselines import ARCH_FAMILY, arch_by_name, simulate_arch, simulate_layer_sweep
from .breakdown import codec_overhead_fraction, cycle_breakdown
from .engine import PIPELINE_FILL_CYCLES, block_segments, simulate
from .functional import functional_block_product, functional_spmm, verify_workload
from .metrics import SIM_RESULT_SCHEMA, SimResult, aggregate, normalized_edp, speedup
from .options import SimOptions

__all__ = [
    "ARCH_FAMILY",
    "PIPELINE_FILL_CYCLES",
    "SIM_RESULT_SCHEMA",
    "SimOptions",
    "SimResult",
    "aggregate",
    "arch_by_name",
    "block_segments",
    "codec_overhead_fraction",
    "cycle_breakdown",
    "functional_block_product",
    "functional_spmm",
    "normalized_edp",
    "simulate",
    "simulate_arch",
    "simulate_layer_sweep",
    "speedup",
    "verify_workload",
]
